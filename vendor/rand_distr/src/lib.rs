//! Offline shim for `rand_distr` 0.4: `Exp1` and `StandardNormal` via
//! inverse-transform / Box–Muller sampling. See `vendor/README.md`.

pub use rand::distributions::Distribution;
use rand::{Rng, RngCore};

/// The standard exponential distribution `Exp(1)`.
#[derive(Clone, Copy, Debug)]
pub struct Exp1;

impl Distribution<f64> for Exp1 {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse transform −ln U; clamping U away from zero keeps the
        // log finite.
        -rng.gen::<f64>().max(f64::MIN_POSITIVE).ln()
    }
}

impl Distribution<f32> for Exp1 {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        <Exp1 as Distribution<f64>>::sample(self, rng) as f32
    }
}

/// The standard normal distribution `N(0, 1)`.
#[derive(Clone, Copy, Debug)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller (one of the pair; simple and dependency-free).
        let u1: f64 = (1.0 - rng.gen::<f64>()).max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn exp1_mean_near_one() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| <Exp1 as Distribution<f64>>::sample(&Exp1, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SmallRng::seed_from_u64(12);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| StandardNormal.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
