//! Offline shim for `criterion`: a minimal wall-clock timing harness with
//! the same API shape (groups, `bench_with_input`, `iter`/`iter_batched`).
//! It reports mean/min per benchmark to stdout — no statistics, plots, or
//! saved baselines. See `vendor/README.md`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, as in upstream.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost; the shim times per-iteration
/// either way, so the variants only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (setup excluded from timing).
    LargeInput,
    /// Fresh setup every iteration.
    PerIteration,
}

/// Identifies one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Measures one routine; handed to the closure of `bench_with_input`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on inputs built by `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher, input);
        let mean = bencher.elapsed.as_secs_f64() / bencher.iters.max(1) as f64;
        println!(
            "{}/{}: mean {:.3} ms ({} iters)",
            self.name,
            id.id,
            mean * 1e3,
            bencher.iters
        );
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this only consumes the group).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups (for `harness = false`
/// bench targets).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Ignore harness-style CLI args (e.g. `--bench` from cargo).
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let input = vec![1u64, 2, 3];
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", input.len()), &input, |b, v| {
            b.iter(|| {
                runs += 1;
                v.iter().sum::<u64>()
            })
        });
        group.bench_with_input(BenchmarkId::new("batched", 0), &input, |b, v| {
            b.iter_batched(|| v.clone(), |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
