//! Offline shim for `proptest`: randomized property testing with the same
//! macro and combinator surface this workspace uses, minus shrinking. A
//! failing case panics with the case index and seed instead of a minimized
//! counterexample. See `vendor/README.md`.

use rand::rngs::SmallRng;
use rand::Rng;

/// A generator of test values.
///
/// Unlike upstream there is no value tree / shrinking: `generate` draws a
/// single value directly from the RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `f`, retrying a bounded number of
    /// times before panicking.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut SmallRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// A strategy that always yields clones of one value (upstream `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// Builds that strategy.
    fn arbitrary() -> Self::Strategy;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = std::ops::RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for any `bool`.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut SmallRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> Self::Strategy {
        AnyBool
    }
}

/// The full-domain strategy for `A` (`any::<u64>()` etc.).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec`s of `element`-generated values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Test-execution plumbing used by the [`proptest!`] macro.
pub mod test_runner {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Runner configuration (only `cases` is meaningful in the shim).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config with the given case count (mirrors upstream).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A property failure (from `prop_assert!` and friends).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// What property bodies return.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives a property over `cases` deterministic seeds.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner with `config`.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Generates and checks `config.cases` values, panicking on the
        /// first failure (no shrinking; the seed is reported instead).
        pub fn run<S: Strategy>(
            &mut self,
            strategy: &S,
            test: impl Fn(S::Value) -> TestCaseResult,
        ) {
            for case in 0..self.config.cases {
                // Deterministic per-case seeds: failures are reproducible
                // across runs without persistence files.
                let seed =
                    0xB5AD_4ECE_DA1C_E2A9u64 ^ (case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
                let mut rng = SmallRng::seed_from_u64(seed);
                let value = strategy.generate(&mut rng);
                if let Err(e) = test(value) {
                    panic!("property failed at case {case} (seed {seed:#x}): {e}");
                }
            }
        }
    }
}

/// Asserts inside a `proptest!` body; failures abort only the current case
/// closure via `return Err`, which the runner turns into a panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` != `{:?}`", lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: `{:?}` != `{:?}`", format!($($fmt)*), lhs, rhs),
            ));
        }
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            let strategy = ($($strat,)+);
            runner.run(&strategy, |($($pat,)+)| -> $crate::test_runner::TestCaseResult {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// The glob-imported surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Just, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -5i32..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn tuple_pattern_destructures((a, b) in (0u32..10, 0u32..10)) {
            prop_assert!(a < 10 && b < 10);
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u8..255, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..8).prop_flat_map(|n| {
            crate::collection::vec(0..n, 1..=4).prop_map(move |v| (n, v))
        })) {
            let (n, v) = pair;
            prop_assert!(v.iter().all(|&x| x < n), "all below {}", n);
        }

        #[test]
        fn any_u64_compiles(x in any::<u64>()) {
            prop_assert_eq!(x, x);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        fn config_cases_accepted(x in 0u8..=255) {
            prop_assert!(u32::from(x) < 256);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_case_info() {
        let mut runner = crate::test_runner::TestRunner::new(Default::default());
        runner.run(&(0u32..10,), |(x,)| {
            crate::prop_assert!(x > 100, "x was {}", x);
            Ok(())
        });
    }
}
