//! Offline shim for `rayon`: the parallel-iterator subset used by this
//! workspace, implemented **sequentially** behind the same trait names.
//!
//! The workspace only relies on rayon for correctness (the distributed
//! algorithms' wall-clock figures come from virtual-time models, not from
//! measured speedups), so a faithful sequential execution is a valid
//! stand-in on machines without a crates.io mirror. See `vendor/README.md`.

/// A "parallel" iterator: a thin wrapper over a sequential iterator.
pub struct Par<I>(I);

/// Core parallel-iterator operations (sequential here).
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;

    /// Unwraps into the sequential iterator that drives everything.
    fn into_seq(self) -> Self::Iter;

    /// Maps each element.
    fn map<R, F>(self, f: F) -> Par<std::iter::Map<Self::Iter, F>>
    where
        F: FnMut(Self::Item) -> R,
    {
        Par(self.into_seq().map(f))
    }

    /// Maps each element to a serial iterator and flattens.
    fn flat_map_iter<U, F>(self, f: F) -> Par<std::iter::FlatMap<Self::Iter, U, F>>
    where
        U: IntoIterator,
        F: FnMut(Self::Item) -> U,
    {
        Par(self.into_seq().flat_map(f))
    }

    /// Keeps elements satisfying the predicate.
    fn filter<F>(self, f: F) -> Par<std::iter::Filter<Self::Iter, F>>
    where
        F: FnMut(&Self::Item) -> bool,
    {
        Par(self.into_seq().filter(f))
    }

    /// Maps and keeps only `Some` results.
    fn filter_map<R, F>(self, f: F) -> Par<std::iter::FilterMap<Self::Iter, F>>
    where
        F: FnMut(Self::Item) -> Option<R>,
    {
        Par(self.into_seq().filter_map(f))
    }

    /// Maps with a per-worker scratch value (a single scratch here).
    fn map_with<T, U, F>(self, init: T, f: F) -> Par<MapWithIter<Self::Iter, T, F>>
    where
        F: FnMut(&mut T, Self::Item) -> U,
    {
        Par(MapWithIter {
            iter: self.into_seq(),
            scratch: init,
            f,
        })
    }

    /// Runs `f` on every element.
    fn for_each<F>(self, f: F)
    where
        F: FnMut(Self::Item),
    {
        self.into_seq().for_each(f)
    }

    /// [`ParallelIterator::for_each`] with a per-worker scratch value.
    fn for_each_with<T, F>(self, init: T, mut f: F)
    where
        F: FnMut(&mut T, Self::Item),
    {
        let mut scratch = init;
        self.into_seq().for_each(|item| f(&mut scratch, item));
    }

    /// Sums the elements.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.into_seq().sum()
    }

    /// Collects into any `FromIterator` container.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.into_seq().collect()
    }

    /// Folds with an identity constructor (rayon's signature; sequential
    /// here, so a single fold over one "split").
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item,
        OP: Fn(Self::Item, Self::Item) -> Self::Item,
    {
        self.into_seq().fold(identity(), op)
    }

    /// Largest element.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.into_seq().max()
    }

    /// Number of elements.
    fn count(self) -> usize {
        self.into_seq().count()
    }
}

/// Iterator behind [`ParallelIterator::map_with`].
pub struct MapWithIter<I, T, F> {
    iter: I,
    scratch: T,
    f: F,
}

impl<I: Iterator, T, U, F: FnMut(&mut T, I::Item) -> U> Iterator for MapWithIter<I, T, F> {
    type Item = U;
    fn next(&mut self) -> Option<U> {
        let item = self.iter.next()?;
        Some((self.f)(&mut self.scratch, item))
    }
}

/// Marker + indexed operations; every shim iterator is "indexed".
pub trait IndexedParallelIterator: ParallelIterator {
    /// Zips with another parallel iterable (must be equal length upstream;
    /// unchecked here, matching `zip`'s shortest-wins only when misused).
    fn zip_eq<Z>(self, other: Z) -> Par<std::iter::Zip<Self::Iter, Z::Iter>>
    where
        Z: IntoParallelIterator,
    {
        Par(self.into_seq().zip(other.into_par_iter().into_seq()))
    }

    /// Zips with another parallel iterable.
    fn zip<Z>(self, other: Z) -> Par<std::iter::Zip<Self::Iter, Z::Iter>>
    where
        Z: IntoParallelIterator,
    {
        Par(self.into_seq().zip(other.into_par_iter().into_seq()))
    }

    /// Pairs each element with its index.
    fn enumerate(self) -> Par<std::iter::Enumerate<Self::Iter>> {
        Par(self.into_seq().enumerate())
    }

    /// Hint accepted and ignored (sequential execution).
    fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

impl<I: Iterator> ParallelIterator for Par<I> {
    type Item = I::Item;
    type Iter = I;
    fn into_seq(self) -> I {
        self.0
    }
}

impl<I: Iterator> IndexedParallelIterator for Par<I> {}

/// Conversion into a parallel iterator (named impls rather than a blanket
/// over `IntoIterator`, so `Par` itself can also implement it).
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// Sequential driver.
    type Iter: Iterator<Item = Self::Item>;
    /// Wraps into [`Par`].
    fn into_par_iter(self) -> Par<Self::Iter>;
}

// Blanket over every parallel iterator (including opaque
// `impl IndexedParallelIterator` returns). No overlap with the concrete
// impls below: `ParallelIterator` is local, so no other crate can
// implement it for `Range`/`Vec`/slices, and this crate does not.
impl<T: ParallelIterator> IntoParallelIterator for T {
    type Item = T::Item;
    type Iter = T::Iter;
    fn into_par_iter(self) -> Par<T::Iter> {
        Par(self.into_seq())
    }
}

macro_rules! impl_into_par_for_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = std::ops::Range<$t>;
            fn into_par_iter(self) -> Par<Self::Iter> {
                Par(self)
            }
        }
        impl IntoParallelIterator for std::ops::RangeInclusive<$t> {
            type Item = $t;
            type Iter = std::ops::RangeInclusive<$t>;
            fn into_par_iter(self) -> Par<Self::Iter> {
                Par(self)
            }
        }
    )*};
}
impl_into_par_for_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

impl<'a, T> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.iter())
    }
}

impl<'a, T> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.iter())
    }
}

impl<'a, T> IntoParallelIterator for &'a mut Vec<T> {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.iter_mut())
    }
}

impl<'a, T> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.iter_mut())
    }
}

/// `par_iter` by shared reference.
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: 'a;
    /// Sequential driver.
    type Iter: Iterator<Item = Self::Item>;
    /// Borrowing counterpart of [`IntoParallelIterator::into_par_iter`].
    fn par_iter(&'a self) -> Par<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator,
{
    type Item = <&'a C as IntoParallelIterator>::Item;
    type Iter = <&'a C as IntoParallelIterator>::Iter;
    fn par_iter(&'a self) -> Par<Self::Iter> {
        self.into_par_iter()
    }
}

/// `par_iter_mut` by mutable reference.
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type.
    type Item: 'a;
    /// Sequential driver.
    type Iter: Iterator<Item = Self::Item>;
    /// Borrowing counterpart of [`IntoParallelIterator::into_par_iter`].
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoParallelIterator,
{
    type Item = <&'a mut C as IntoParallelIterator>::Item;
    type Iter = <&'a mut C as IntoParallelIterator>::Iter;
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter> {
        self.into_par_iter()
    }
}

/// Slice-specific "parallel" views.
pub trait ParallelSlice<T> {
    /// Overlapping windows of `size` elements.
    fn par_windows(&self, size: usize) -> Par<std::slice::Windows<'_, T>>;
    /// Non-overlapping chunks of at most `size` elements.
    fn par_chunks(&self, size: usize) -> Par<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_windows(&self, size: usize) -> Par<std::slice::Windows<'_, T>> {
        Par(self.windows(size))
    }
    fn par_chunks(&self, size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par(self.chunks(size))
    }
}

/// Runs both closures (sequentially here) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Number of worker threads (1: the shim executes sequentially).
pub fn current_num_threads() -> usize {
    1
}

/// Module mirror of `rayon::iter`.
pub mod iter {
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator,
    };
}

/// Module mirror of `rayon::slice`.
pub mod slice {
    pub use crate::ParallelSlice;
}

/// Module mirror of `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator, ParallelSlice,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_sum() {
        let v: Vec<u64> = (0u64..10).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v[9], 18);
        let s: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 90);
    }

    #[test]
    fn windows_zip_enumerate() {
        let xs = [0usize, 2, 5];
        let lens: Vec<usize> = xs
            .par_windows(2)
            .zip_eq((0..2usize).into_par_iter())
            .enumerate()
            .map(|(i, (w, j))| {
                assert_eq!(i, j);
                w[1] - w[0]
            })
            .collect();
        assert_eq!(lens, vec![2, 3]);
    }

    #[test]
    fn flat_map_iter_flattens() {
        let v: Vec<usize> = (0usize..3)
            .into_par_iter()
            .flat_map_iter(|i| 0..i)
            .collect();
        assert_eq!(v, vec![0, 0, 1]);
    }
}
