//! Offline shim for `rand` 0.8: the subset this workspace uses.
//!
//! [`rngs::SmallRng`] is xoshiro256++ with the splitmix64
//! `seed_from_u64` expansion — the same generator family upstream uses on
//! 64-bit targets, so seeded fixtures produce the same streams if the
//! real crate is ever restored. Uniform range sampling uses a simple
//! widening-multiply; its tiny bias is irrelevant for test fixtures.

/// Raw generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;
    /// Builds from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Builds from a `u64` via splitmix64 expansion (upstream-compatible).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // splitmix64, as in rand_core::SeedableRng::seed_from_u64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Sampling ranges for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Raw draws of an unsigned word, matching upstream `Standard` (u32 comes
/// from `next_u32`, which the xoshiro backend takes from the high bits).
trait DrawRaw: Sized {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl DrawRaw for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}
impl DrawRaw for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl DrawRaw for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

// Upstream rand 0.8 `UniformInt` sampling (Lemire widening-multiply with
// rejection), reproduced exactly so seeded streams match the real crate:
// `$t => ($unsigned, $u_large, $widen)` mirrors `uniform_int_impl!`.
macro_rules! impl_sample_range_int {
    ($($t:ty => ($unsigned:ty, $u_large:ty, $widen:ty)),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "UniformSampler::sample_single: low >= high");
                (self.start..=self.end - 1).sample_single(rng)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "UniformSampler::sample_single_inclusive: low > high");
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                if range == 0 {
                    // The range covers the whole type; any value works.
                    return <$u_large as DrawRaw>::draw(rng) as $t;
                }
                #[allow(clippy::manual_range_contains)]
                let zone = if <$unsigned>::MAX <= u16::MAX as $unsigned {
                    // Small types reject by exact modulus (upstream note:
                    // faster than the approximation for i8/i16).
                    let unsigned_max: $u_large = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = <$u_large as DrawRaw>::draw(rng);
                    let m = (v as $widen) * (range as $widen);
                    let hi = (m >> <$u_large>::BITS) as $u_large;
                    let lo = m as $u_large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => (u8, u32, u64),
    u16 => (u16, u32, u64),
    u32 => (u32, u32, u64),
    u64 => (u64, u64, u128),
    usize => (usize, usize, u128),
    i8 => (u8, u32, u64),
    i16 => (u16, u32, u64),
    i32 => (u32, u32, u64),
    i64 => (u64, u64, u128),
    isize => (usize, usize, u128),
);

// Upstream rand 0.8 `UniformFloat::sample_single`: one raw word becomes a
// mantissa in [1, 2); the result is FMA-shaped `v * scale - scale + low`.
macro_rules! impl_sample_range_float {
    ($($t:ty => ($uty:ty, $bits_to_discard:expr, $exponent_bits:expr)),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (self.start, self.end);
                assert!(low < high, "UniformSampler::sample_single: low >= high");
                let mut scale = high - low;
                loop {
                    // A value in [1, 2): exponent 0, random mantissa.
                    let raw: $uty = <$uty as DrawRaw>::draw(rng);
                    let value1_2 = <$t>::from_bits($exponent_bits | (raw >> $bits_to_discard));
                    let value0_scale = value1_2 * scale - scale;
                    let res = value0_scale + low;
                    if res < high {
                        return res;
                    }
                    // Rounded onto `high`: shrink scale one ulp and retry.
                    scale = <$t>::from_bits(scale.to_bits() - 1);
                }
            }
        }
    )*};
}
impl_sample_range_float!(
    f32 => (u32, 32 - 23, 127u32 << 23),
    f64 => (u64, 64 - 52, 1023u64 << 52),
);

/// User-facing generator methods.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draws a value of type `T` from its standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Bernoulli draw (upstream `Bernoulli` comparison against a 64-bit
    /// fixed-point threshold; `p == 1` consumes no randomness).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "p={p} is outside range [0.0, 1.0]"
        );
        if p == 1.0 {
            return true;
        }
        let p_int = (p * (2.0f64).powi(64)) as u64;
        self.next_u64() < p_int
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distributions (the subset `rand_distr` and `gen` need).
pub mod distributions {
    use crate::RngCore;

    /// Types that can produce values of `T` given a generator.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution of a type (uniform on its domain, or
    /// `[0, 1)` for floats).
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
        }
    }
    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }
    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }
    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use crate::{RngCore, SeedableRng};

    /// xoshiro256++ — upstream `SmallRng` on 64-bit targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state would be a fixed point; upstream seeds via
            // splitmix64 which never produces it, but guard anyway.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    /// Alias: the workspace never relies on `StdRng`'s CSPRNG quality.
    pub type StdRng = SmallRng;
}

/// Sequence helpers.
pub mod seq {
    use crate::{Rng, RngCore};

    /// Upstream's index sampler: bounds that fit in `u32` draw through the
    /// `u32` uniform path (this is what keeps `shuffle` streams identical
    /// to the real crate).
    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
        if ubound <= (u32::MAX as usize) {
            rng.gen_range(0..ubound as u32) as usize
        } else {
            rng.gen_range(0..ubound)
        }
    }

    /// Slice shuffling / choosing.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element (`None` if empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = gen_index(rng, i + 1);
                self.swap(i, j);
            }
        }
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[gen_index(rng, self.len())])
            }
        }
    }
}

/// Prelude mirror.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.5f64..1.5);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        use crate::seq::SliceRandom;
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
