//! Offline shim for `crossbeam-channel`: the `unbounded` channel API this
//! workspace uses, delegating to `std::sync::mpsc` (which has been backed
//! by the crossbeam implementation — with a `Sync` `Sender` — since Rust
//! 1.72). See `vendor/README.md`.

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

/// Sending half of an unbounded channel.
pub struct Sender<T>(std::sync::mpsc::Sender<T>);

/// Receiving half of an unbounded channel.
pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    /// Sends, failing only if all receivers are gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.0.send(value)
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv()
    }

    /// Blocks until a message arrives, all senders are gone, or
    /// `timeout` elapses.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        self.0.recv_timeout(timeout)
    }
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = std::sync::mpsc::channel();
    (Sender(tx), Receiver(rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_thread_roundtrip() {
        let (tx, rx) = unbounded::<u64>();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || tx.send(1).unwrap());
            s.spawn(move || tx2.send(2).unwrap());
            let a = rx.recv().unwrap();
            let b = rx.recv().unwrap();
            assert_eq!(a + b, 3);
        });
    }

    #[test]
    fn sender_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<Sender<u64>>();
    }
}
