//! Quick start: cluster a small protein-similarity network with serial
//! MCL, then run the distributed (simulated 4-rank) HipMCL and check both
//! agree.
//!
//! Run with: `cargo run --release --example quickstart`

use hipmcl::prelude::*;
use hipmcl::workloads::protein::generate_protein_net;

fn main() {
    // 1. Generate a small network with planted protein families.
    let cfg = ProteinNetConfig {
        n: 300,
        avg_degree: 16.0,
        min_cluster: 10,
        max_cluster: 40,
        noise_frac: 0.04,
        ..Default::default()
    };
    let net = generate_protein_net(&cfg);
    let graph = Csc::from_triples(&net.graph);
    println!(
        "network: {} proteins, {} connections, {} planted families",
        graph.ncols(),
        graph.nnz(),
        net.num_clusters
    );

    // 2. Serial MCL.
    let mcl_cfg = MclConfig::testing(24);
    let serial = hipmcl::core::cluster_serial(&graph, &mcl_cfg);
    println!(
        "serial MCL: {} clusters in {} iterations (converged: {})",
        serial.num_clusters, serial.iterations, serial.converged
    );

    // 3. Distributed HipMCL on a simulated 2x2 grid of Summit nodes.
    let reports = Universe::run(4, MachineModel::summit(), |comm| {
        let grid = ProcGrid::new(comm);
        let mut gpus = MultiGpu::summit_node(grid.world.model());
        let net = generate_protein_net(&cfg);
        let graph = Csc::from_triples(&net.graph);
        hipmcl::core::dist::cluster_distributed(&grid, &mut gpus, &graph, &mcl_cfg)
    });
    let dist = &reports[0];
    println!(
        "distributed HipMCL (4 ranks): {} clusters in {} iterations, modeled time {:.3} ms",
        dist.num_clusters,
        dist.iterations,
        dist.total_time * 1e3
    );

    // 4. The two must find the same partition.
    assert_eq!(dist.num_clusters, serial.num_clusters);
    for i in 0..graph.ncols() {
        for j in (i + 1)..graph.ncols() {
            assert_eq!(
                dist.labels[i] == dist.labels[j],
                serial.labels[i] == serial.labels[j],
                "partition mismatch at ({i},{j})"
            );
        }
    }
    println!("serial and distributed clusterings agree ✓");

    // 5. Cluster size histogram (top ten).
    let sizes =
        hipmcl::summa::components::cluster_size_histogram(&serial.labels, serial.num_clusters);
    println!("largest clusters: {:?}", &sizes[..sizes.len().min(10)]);
}
