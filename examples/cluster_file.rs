//! File-to-file clustering, HipMCL-style: read a labelled protein
//! similarity edge list (`protA protB score` per line), run MCL, write
//! one cluster of labels per line — the workflow of the real tool.
//!
//! Run with:
//! `cargo run --release --example cluster_file -- [input] [output]`
//!
//! Without arguments, a demo edge list is generated, clustered and
//! printed, and the quality metrics are reported.

use hipmcl::core::quality;
use hipmcl::prelude::*;
use hipmcl::sparse::labels::{read_labelled_edge_list, write_labelled_clusters};
use hipmcl::workloads::protein::generate_protein_net;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let input: Box<dyn std::io::Read> = if let Some(path) = args.get(1) {
        Box::new(std::fs::File::open(path).expect("open input"))
    } else {
        // Demo input: a small planted network rendered as a labelled edge
        // list with protein-style names.
        let net = generate_protein_net(&ProteinNetConfig {
            n: 240,
            avg_degree: 14.0,
            min_cluster: 10,
            max_cluster: 40,
            noise_frac: 0.04,
            ..Default::default()
        });
        let mut text = String::new();
        for (r, c, v) in net.graph.iter() {
            if r < c {
                text.push_str(&format!("PROT{r:05} PROT{c:05} {v:.4}\n"));
            }
        }
        println!(
            "(no input given: generated a demo edge list with {} similarities)",
            net.graph.nnz() / 2
        );
        Box::new(std::io::Cursor::new(text))
    };

    // 1. Ingest: labels -> dense ids.
    let (triples, map) = read_labelled_edge_list(input).expect("parse edge list");
    let graph = Csc::from_triples(&triples);
    println!(
        "{} proteins, {} stored similarities",
        map.len(),
        graph.nnz()
    );

    // 2. Cluster (serial driver; use the distributed one for big inputs).
    let cfg = MclConfig::testing(64);
    let result = hipmcl::core::cluster_serial(&graph, &cfg);
    println!(
        "MCL: {} clusters in {} iterations (converged: {})",
        result.num_clusters, result.iterations, result.converged
    );

    // 3. Quality: weighted modularity of the found partition.
    let sym = hipmcl::sparse::colops::symmetrize_max(&graph);
    let q = quality::modularity(&sym, &result.labels);
    println!("modularity: {q:.3}");

    // 4. Emit clusters with original labels.
    let mut out: Box<dyn Write> = if let Some(path) = args.get(2) {
        Box::new(std::fs::File::create(path).expect("create output"))
    } else {
        Box::new(std::io::stdout())
    };
    if args.get(2).is_none() {
        println!("\nfirst clusters (label per member, tab separated):");
        let shown: Vec<Vec<u32>> = result.clusters.iter().take(5).cloned().collect();
        write_labelled_clusters(&mut out, &shown, &map).expect("write clusters");
        println!("... ({} clusters total)", result.num_clusters);
    } else {
        write_labelled_clusters(&mut out, &result.clusters, &map).expect("write clusters");
        println!("clusters written to {}", args[2]);
    }
}
