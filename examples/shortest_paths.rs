//! All-pairs shortest paths on the MCL machinery: the same distributed
//! Pipelined Sparse SUMMA that squares the stochastic matrix during MCL
//! expansion, instantiated at the **min-plus semiring** — repeated
//! squaring doubles the hop horizon, so `⌈lg n⌉` rounds converge to the
//! exact distance matrix. The run also prints the per-stage communication
//! choices the hybrid broadcast/gather policy made.
//!
//! Run with: `cargo run --release --example shortest_paths`

use hipmcl::comm::{CommMode, MachineModel, ProcGrid, Universe};
use hipmcl::gpu::multi::MultiGpu;
use hipmcl::sparse::MinPlus;
use hipmcl::summa::spgemm::{summa_spgemm_in, SummaConfig};
use hipmcl::summa::DistMatrix;
use hipmcl::workloads::apsp::{bellman_ford_apsp, generate_apsp_digraph};

fn main() {
    let n = 120;
    let g = generate_apsp_digraph(n, 5 * n, 42);
    println!(
        "digraph: {} vertices, {} arcs (integer weights 1..=9, zero diagonal)",
        n,
        g.nnz() - n
    );

    // Serial reference: per-source Bellman-Ford.
    let want = bellman_ford_apsp(&g);
    println!("Bellman-Ford reference: {} finite distances", want.nnz());

    // Distributed hop-doubling on a simulated 3x3 grid of Summit nodes.
    let rounds = n.next_power_of_two().trailing_zeros();
    let results = Universe::run(9, MachineModel::summit(), move |comm| {
        let grid = ProcGrid::new(comm);
        let mut gpus = MultiGpu::summit_node(grid.world.model());
        let cfg = SummaConfig::optimized(1 << 30);
        let mut d = DistMatrix::from_global_in(MinPlus, &grid, &g);
        let mut last_choices = Vec::new();
        let mut modeled = (0.0, 0.0);
        for _ in 0..rounds {
            let out = summa_spgemm_in(MinPlus, &grid, &mut gpus, &d, &d, &cfg);
            modeled = (out.modeled_comm_time(), out.modeled_comm_time_broadcast());
            last_choices = out.comm_choices;
            d = out.c;
        }
        (d.gather_to_root_in(MinPlus, &grid), last_choices, modeled)
    });

    let (gathered, choices, (hybrid, bcast)) = results.into_iter().next().unwrap();
    let got = gathered.expect("rank 0 gathers the distance matrix");
    println!(
        "distributed hop-doubling (9 ranks, {} squarings): {} finite distances",
        rounds,
        got.nnz()
    );
    assert_eq!(
        got, want,
        "distributed APSP must match Bellman-Ford exactly"
    );
    println!("distance matrices are bit-identical\n");

    // Per-stage communication record of the final squaring (rank 0).
    println!("final squaring, per-stage comm choices (rank 0):");
    println!("  phase stage operand    bytes  mode        t_tree      t_flat");
    for c in &choices {
        println!(
            "  {:>5} {:>5} {:>7} {:>8}  {:<9} {:>9.3e} {:>9.3e}",
            c.phase,
            c.stage,
            c.operand,
            c.bytes,
            match c.mode {
                CommMode::Broadcast => "tree",
                CommMode::Gather => "flat",
            },
            c.t_tree,
            c.t_flat,
        );
    }
    println!(
        "\nmodeled comm (final squaring): hybrid {:.3e} s vs all-broadcast {:.3e} s",
        hybrid, bcast
    );
}
