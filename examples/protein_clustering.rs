//! Cluster a scaled-down version of one of the paper's networks
//! (Table I) with the fully optimized HipMCL configuration, and print the
//! per-stage time breakdown the way Fig. 1 reports it.
//!
//! Run with: `cargo run --release --example protein_clustering [scale]`
//! where `scale` divides the paper's vertex count (default 20000).

use hipmcl::prelude::*;

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);

    let dataset = Dataset::Archaea;
    let cfg = dataset.config(scale);
    println!(
        "dataset {} at 1/{}: {} proteins, avg degree {:.0} (paper: {} proteins, {} connections)",
        dataset.name(),
        scale,
        cfg.n,
        cfg.avg_degree,
        dataset.paper_size().0,
        dataset.paper_size().1,
    );

    // 16 simulated Summit nodes (4x4 grid), optimized HipMCL with
    // convergence-aware active-set shrinking: settled columns freeze out
    // of the SUMMA operand, so late iterations multiply a smaller matrix.
    let p = 16;
    let mut mcl_cfg = MclConfig::optimized(2 << 30);
    mcl_cfg.prune.select = 200;
    mcl_cfg.summa.policy = hipmcl::gpu::select::SelectionPolicy::always_gpu();
    mcl_cfg.active_set = hipmcl::summa::ActiveSetPolicy::shrink();

    let reports = Universe::run(p, MachineModel::summit(), |comm| {
        let grid = ProcGrid::new(comm);
        let mut gpus = MultiGpu::summit_node(grid.world.model());
        let net = dataset.instance(scale);
        let graph = Csc::from_triples(&net.graph);
        let report = hipmcl::core::dist::cluster_distributed(&grid, &mut gpus, &graph, &mcl_cfg);
        (report, net.num_clusters)
    });
    let (report, planted) = &reports[0];

    println!(
        "\nclusters found: {} (planted: {planted}), iterations: {}, converged: {}",
        report.num_clusters, report.iterations, report.converged
    );
    println!(
        "modeled wall time on {p} Summit nodes: {:.3} s",
        report.total_time
    );
    println!("\nstage breakdown (max over ranks, summed over iterations):");
    for (name, t) in &report.stage_times {
        println!("  {name:<16} {:>10.4} s", t);
    }
    println!("  {:<16} {:>10.4} s", "cpu idle", report.cpu_idle);
    println!("  {:<16} {:>10.4} s", "gpu idle", report.gpu_idle);

    println!("\nper-iteration trace:");
    println!("  iter   flops        nnz(pruned)  cf      chaos      active  frozen");
    for (i, it) in report.trace.iter().enumerate() {
        println!(
            "  {:<6} {:<12} {:<12} {:<7.2} {:<10.5} {:<7} {}",
            i + 1,
            it.flops,
            it.nnz_pruned,
            it.cf,
            it.chaos,
            it.active_cols,
            it.frozen_cols
        );
    }
    println!(
        "\nactive set at convergence: {} columns still live, {} frozen \
         (reshard overhead {:.4} s)",
        report.active_cols, report.frozen_cols, report.reshard_time
    );
}
