//! Strong-scaling demonstration: the same scaled isom100-1-like network
//! clustered on growing simulated node counts, reporting modeled time and
//! parallel efficiency (the shape of the paper's Fig. 7).
//!
//! Run with: `cargo run --release --example strong_scaling_demo`

use hipmcl::prelude::*;

fn main() {
    let dataset = Dataset::Isom100_1;
    // 35M / 20k = 1750 vertices: big enough for real per-rank work,
    // small enough for a fast demo (debug builds shrink further).
    let scale: u64 = if cfg!(debug_assertions) {
        100_000
    } else {
        20_000
    };

    let cfg = dataset.config(scale);
    println!(
        "dataset {} at 1/{scale}: {} proteins, avg degree {:.0}",
        dataset.name(),
        cfg.n,
        cfg.avg_degree
    );

    let mut mcl_cfg = MclConfig::optimized(2 << 30);
    mcl_cfg.prune.select = 120;
    mcl_cfg.max_iters = 6; // fixed work per node count for a clean curve

    println!(
        "\n{:>7} {:>14} {:>10} {:>12}",
        "nodes", "time (s)", "speedup", "efficiency"
    );
    let mut t1 = None;
    for p in [1usize, 4, 16, 36] {
        let reports = Universe::run(p, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let net = dataset.instance(scale);
            let graph = Csc::from_triples(&net.graph);
            hipmcl::core::dist::cluster_distributed(&grid, &mut gpus, &graph, &mcl_cfg).total_time
        });
        let t = reports[0];
        let base = *t1.get_or_insert(t);
        let speedup = base / t;
        println!(
            "{:>7} {:>14.4} {:>10.2} {:>11.0}%",
            p,
            t,
            speedup,
            100.0 * speedup / p as f64
        );
    }
    println!("\n(paper: 49% efficiency for isom100-1 from 100 to 400 Summit nodes)");
}
