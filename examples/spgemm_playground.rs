//! Explore the local SpGEMM kernels and the probabilistic nnz estimator
//! on matrices of varying density — the decision data behind the paper's
//! hybrid kernel selection (Fig. 4, §VI) and Fig. 6.
//!
//! Run with: `cargo run --release --example spgemm_playground`

use hipmcl::comm::{GpuLib, MachineModel, SpgemmKernel};
use hipmcl::spgemm::estimate::relative_error;
use hipmcl::spgemm::CohenEstimator;
use hipmcl::workloads::er::generate_er_symmetric;
use hipmcl::Csc;
use std::time::Instant;

fn main() {
    let model = MachineModel::summit();
    let n = 3000;

    println!("C = A·A on Erdos-Renyi graphs of growing density (n = {n})\n");
    println!(
        "{:<10} {:>10} {:>8} | {:>10} {:>10} {:>10} | est(r=5) err",
        "avg deg", "flops", "cf", "heap ms", "hash ms", "spa ms"
    );

    for avg_deg in [4usize, 16, 64, 128] {
        let a = Csc::from_triples(&generate_er_symmetric(n, n * avg_deg / 2, 42));
        let flops = hipmcl::spgemm::flops(&a, &a);
        let exact = hipmcl::spgemm::symbolic::output_nnz(&a, &a);
        let cf = flops as f64 / exact.max(1) as f64;

        let time_ms = |f: &dyn Fn() -> Csc<f64>| {
            let t0 = Instant::now();
            let c = f();
            let dt = t0.elapsed().as_secs_f64() * 1e3;
            assert_eq!(c.nnz() as u64, exact);
            dt
        };
        let t_heap = time_ms(&|| hipmcl::spgemm::heap::multiply(&a, &a));
        let t_hash = time_ms(&|| hipmcl::spgemm::hash::multiply(&a, &a));
        let t_spa = time_ms(&|| hipmcl::spgemm::spa::multiply(&a, &a));

        let est = CohenEstimator::new(5, 7).estimate_total(&a, &a);
        let err = relative_error(est, exact as f64);

        println!(
            "{:<10} {:>10} {:>8.2} | {:>10.2} {:>10.2} {:>10.2} | {:>10.1}%",
            avg_deg,
            flops,
            cf,
            t_heap,
            t_hash,
            t_spa,
            err * 100.0
        );
    }

    println!("\nmodeled Summit-node rates at cf regimes (flops/s):");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "cf", "cpu-heap", "cpu-hash", "rmerge2", "bhsparse", "nsparse"
    );
    for cf in [0.5, 2.0, 8.0, 32.0, 128.0] {
        let cpu = |k| model.cpu_spgemm_rate(k, cf);
        let gpu = |l| model.gpu_spgemm_rate(l, cf) * 6.0; // node aggregate
        println!(
            "{:<10} {:>12.2e} {:>12.2e} {:>12.2e} {:>12.2e} {:>12.2e}",
            cf,
            cpu(SpgemmKernel::CpuHeap),
            cpu(SpgemmKernel::CpuHash),
            gpu(GpuLib::Rmerge2),
            gpu(GpuLib::Bhsparse),
            gpu(GpuLib::Nsparse),
        );
    }
    println!(
        "\n(the hybrid selector picks the row-wise winner: heap below cf≈2,\n\
         hash above; nsparse when a GPU is available and cf is large — §VI)"
    );
}
