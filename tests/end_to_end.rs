//! Cross-crate integration tests: the whole stack, exercised through the
//! public umbrella API exactly the way `examples/` use it.

use hipmcl::prelude::*;
use hipmcl::workloads::protein::generate_protein_net;

fn small_net(seed: u64) -> (Csc<f64>, Vec<u32>, usize) {
    let net = generate_protein_net(&ProteinNetConfig {
        n: 180,
        avg_degree: 14.0,
        min_cluster: 10,
        max_cluster: 30,
        noise_frac: 0.04,
        seed,
        ..Default::default()
    });
    (Csc::from_triples(&net.graph), net.truth, net.num_clusters)
}

fn same_partition(a: &[u32], b: &[u32]) -> bool {
    a.len() == b.len()
        && (0..a.len()).all(|i| ((i + 1)..a.len()).all(|j| (a[i] == a[j]) == (b[i] == b[j])))
}

#[test]
fn serial_and_distributed_agree_across_grids() {
    let (graph, _, _) = small_net(5);
    let cfg = MclConfig::testing(20);
    let serial = hipmcl::core::cluster_serial(&graph, &cfg);
    assert!(serial.converged);

    for p in [1usize, 4, 9, 16] {
        let reports = Universe::run(p, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let (graph, _, _) = small_net(5);
            hipmcl::core::dist::cluster_distributed(
                &grid,
                &mut gpus,
                &graph,
                &MclConfig::testing(20),
            )
        });
        for r in &reports {
            assert_eq!(r.num_clusters, serial.num_clusters, "p={p}");
            assert!(same_partition(&r.labels, &serial.labels), "p={p}");
        }
    }
}

#[test]
fn all_three_paper_configurations_find_identical_clusters() {
    let cfgs = [
        MclConfig::original_hipmcl(u64::MAX),
        MclConfig::optimized_no_overlap(u64::MAX),
        MclConfig::optimized(u64::MAX),
    ];
    let mut partitions: Vec<Vec<u32>> = Vec::new();
    let mut times = Vec::new();
    for base in cfgs {
        let reports = Universe::run(4, MachineModel::summit(), move |comm| {
            let grid = ProcGrid::new(comm);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let (graph, _, _) = small_net(6);
            let mut cfg = base;
            cfg.prune.select = 20;
            hipmcl::core::dist::cluster_distributed(&grid, &mut gpus, &graph, &cfg)
        });
        partitions.push(reports[0].labels.clone());
        times.push(reports[0].total_time);
    }
    assert!(same_partition(&partitions[0], &partitions[1]));
    assert!(same_partition(&partitions[0], &partitions[2]));
    // All three produced positive modeled times.
    assert!(times.iter().all(|&t| t > 0.0));
}

#[test]
fn clustering_recovers_planted_families_end_to_end() {
    let (graph, truth, planted) = small_net(7);
    let result = hipmcl::core::cluster_serial(&graph, &MclConfig::testing(20));
    assert_eq!(result.num_clusters, planted);
    assert!(same_partition(&result.labels, &truth));
}

#[test]
fn matrix_market_roundtrip_through_cluster_output() {
    let (graph, _, _) = small_net(8);
    // Write the graph, read it back, cluster both, compare.
    let mut buf = Vec::new();
    hipmcl::sparse::io::write_matrix_market(&mut buf, &graph).unwrap();
    let back = Csc::from_triples(&hipmcl::sparse::io::read_matrix_market(&buf[..]).unwrap());
    assert_eq!(back, graph);

    let a = hipmcl::core::cluster_serial(&graph, &MclConfig::testing(20));
    let b = hipmcl::core::cluster_serial(&back, &MclConfig::testing(20));
    assert_eq!(a.labels, b.labels);

    // Cluster output format.
    let mut out = Vec::new();
    hipmcl::sparse::io::write_clusters(&mut out, &a.clusters).unwrap();
    assert_eq!(out.iter().filter(|&&c| c == b'\n').count(), a.num_clusters);
}

#[test]
fn registry_dataset_runs_distributed() {
    let reports = Universe::run(4, MachineModel::summit(), |comm| {
        let grid = ProcGrid::new(comm);
        let mut gpus = MultiGpu::summit_node(grid.world.model());
        let net = Dataset::Archaea.instance(10_000); // 164 proteins
        let graph = Csc::from_triples(&net.graph);
        let mut cfg = MclConfig::optimized(u64::MAX);
        cfg.prune.select = 30;
        let r = hipmcl::core::dist::cluster_distributed(&grid, &mut gpus, &graph, &cfg);
        (r.converged, r.num_clusters, r.total_time)
    });
    for (converged, k, t) in reports {
        assert!(converged);
        assert!(k >= 1);
        assert!(t > 0.0);
    }
}

#[test]
fn estimators_agree_with_exact_on_mcl_iterates() {
    // Run a couple of MCL iterations and verify the probabilistic
    // estimator tracks the exact one within the Fig. 6 error band.
    let reports = Universe::run(4, MachineModel::summit(), |comm| {
        let grid = ProcGrid::new(comm);
        let (graph, _, _) = small_net(9);
        let prepared = hipmcl::core::serial::prepare_matrix(&graph, &MclConfig::testing(20));
        let a = DistMatrix::from_global(&grid, &prepared.to_triples());
        let exact = hipmcl::summa::estimate::estimate_memory(
            &grid,
            &a,
            &a,
            hipmcl::summa::estimate::EstimatorKind::ExactSymbolic,
            0,
        );
        // Average several sketch seeds (shared keys correlate columns).
        let mean: f64 = (0..8)
            .map(|s| {
                hipmcl::summa::estimate::estimate_memory(
                    &grid,
                    &a,
                    &a,
                    hipmcl::summa::estimate::EstimatorKind::Probabilistic { r: 10 },
                    s,
                )
                .nnz_estimate
            })
            .sum::<f64>()
            / 8.0;
        (exact.nnz_estimate, mean)
    });
    let (exact, est) = reports[0];
    let err = (est - exact).abs() / exact;
    assert!(err < 0.2, "estimate {est} vs exact {exact} (err {err})");
}

#[test]
fn gpu_and_cpu_paths_produce_identical_products() {
    use hipmcl::comm::GpuLib;
    let (graph, _, _) = small_net(10);
    let want = hipmcl::spgemm::hash::multiply(&graph, &graph);
    for lib in GpuLib::all() {
        let got = hipmcl::gpu::libs::multiply_csc(&graph, &graph, lib);
        assert_eq!(got.nnz(), want.nnz(), "{}", lib.name());
        assert!(got.max_abs_diff(&want) < 1e-9, "{}", lib.name());
    }
}
