//! Integration tests for convergence-aware active-set shrinking: the
//! `Shrink { epsilon: 0.0, .. }` degenerate policy must be a perfect
//! no-op (nothing ever settles under a strict `<` comparison), and a
//! real shrink run must reproduce the serial reference clusters.
//!
//! These tests dispatch through [`Universe::run_dist`], so the transport
//! comes from the environment: `HIPMCL_TRANSPORT=process-shm` (with the
//! `process-shm` feature built) runs every rank as an OS process over
//! shared-memory rings, and the bit-identity assertions below then
//! double as cross-transport checks. `HIPMCL_MAX_RANKS=k` skips rank
//! counts above `k` (CI's shm matrix arm caps at 4).

use hipmcl::core::dist::{cluster_distributed, DistMclReport};
use hipmcl::prelude::*;
use hipmcl::summa::ActiveSetPolicy;
use proptest::prelude::*;

fn max_ranks() -> usize {
    std::env::var("HIPMCL_MAX_RANKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX)
        .max(1)
}

/// Random square nonnegative matrix with guaranteed self-loops; the
/// driver symmetrizes and normalizes it into a stochastic operand.
fn random_graph(n: usize, edges: &[(usize, usize, f64)]) -> Csc<f64> {
    let mut t = Triples::new(n, n);
    for j in 0..n {
        t.push(j as u32, j as u32, 1.0);
    }
    for &(i, j, v) in edges {
        t.push((i % n) as u32, (j % n) as u32, v);
    }
    Csc::from_triples(&t)
}

fn run_dist(p: usize, graph: Csc<f64>, policy: ActiveSetPolicy) -> DistMclReport {
    let results = Universe::run_dist(p, MachineModel::summit(), move |comm| {
        let grid = ProcGrid::new(comm);
        let mut gpus = MultiGpu::summit_node(grid.world.model());
        let mut cfg = MclConfig::testing(12);
        cfg.active_set = policy;
        cluster_distributed(&grid, &mut gpus, &graph, &cfg)
    });
    results.into_iter().next().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `epsilon: 0.0` never settles a column (strict `<`), so the run
    /// must be bit-identical to `Off` — same labels, same iteration
    /// count, nothing frozen — at every rank count.
    #[test]
    fn epsilon_zero_is_bit_identical_to_off(
        n in 8usize..24,
        edges in proptest::collection::vec(
            (0usize..24, 0usize..24, 0.05f64..1.0), 8..40),
    ) {
        let graph = random_graph(n, &edges);
        let zero = ActiveSetPolicy::Shrink {
            epsilon: 0.0,
            min_shrink_frac: 0.0,
            reshard_every: 1,
        };
        for p in [1usize, 4, 9].into_iter().filter(|&p| p <= max_ranks()) {
            let off = run_dist(p, graph.clone(), ActiveSetPolicy::Off);
            let shrunk = run_dist(p, graph.clone(), zero);
            prop_assert_eq!(&off.labels, &shrunk.labels, "labels at p={}", p);
            prop_assert_eq!(off.iterations, shrunk.iterations, "iterations at p={}", p);
            prop_assert_eq!(off.num_clusters, shrunk.num_clusters);
            prop_assert_eq!(shrunk.frozen_cols, 0, "nothing may settle at eps=0");
            prop_assert_eq!(shrunk.active_cols, n);
        }
    }
}

#[test]
fn shrinking_run_matches_serial_reference_at_four_ranks() {
    // A deterministic planted instance large enough that columns settle
    // at different iterations: shrinking engages, yet the partition
    // matches the serial oracle and the full-operand distributed run.
    let net = hipmcl::workloads::protein::generate_protein_net(&ProteinNetConfig {
        n: 120,
        avg_degree: 12.0,
        min_cluster: 8,
        max_cluster: 24,
        noise_frac: 0.05,
        seed: 97,
        ..Default::default()
    });
    let graph = Csc::from_triples(&net.graph);

    let mut cfg = MclConfig::testing(12);
    cfg.active_set = ActiveSetPolicy::shrink();
    let serial = {
        let mut c = cfg;
        c.active_set = ActiveSetPolicy::Off;
        cluster_serial(&graph, &c)
    };

    let p = 4.min(max_ranks());
    let on = run_dist(p, graph.clone(), ActiveSetPolicy::shrink());
    let off = run_dist(p, graph, ActiveSetPolicy::Off);

    assert_eq!(on.labels, off.labels, "shrinking changed the clusters");
    assert_eq!(on.labels, serial.labels, "distributed diverged from serial");
    assert_eq!(on.num_clusters, serial.num_clusters);
    assert!(on.converged);
    // The instance actually exercised the machinery.
    assert!(on.frozen_cols > 0, "no column ever settled");
    assert_eq!(on.frozen_cols + on.active_cols, 120);
    // Active columns shrink monotonically and the per-iteration split
    // always accounts for every column.
    let mut prev = u64::MAX;
    for it in &on.trace {
        assert!(it.active_cols <= prev);
        assert_eq!(it.active_cols + it.frozen_cols, 120);
        prev = it.active_cols;
    }
    // The report surfaces the reshard cost it paid.
    assert!(on.reshard_time > 0.0);
    assert_eq!(off.reshard_time, 0.0);
}
