//! Integration tests for the *invariants* of distributed MCL runs:
//! stochasticity maintained across iterations, instrumentation sanity,
//! and configuration-independence of the clustering.

use hipmcl::prelude::*;
use hipmcl::workloads::protein::generate_protein_net;

fn net_graph(seed: u64, n: usize) -> Csc<f64> {
    let net = generate_protein_net(&ProteinNetConfig {
        n,
        avg_degree: 16.0,
        min_cluster: 10,
        max_cluster: 40,
        noise_frac: 0.05,
        seed,
        ..Default::default()
    });
    Csc::from_triples(&net.graph)
}

#[test]
fn phased_execution_does_not_change_clusters() {
    use hipmcl::summa::spgemm::PhasePlan;
    let run = |phases: usize| {
        let reports = Universe::run(4, MachineModel::summit(), move |comm| {
            let grid = ProcGrid::new(comm);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let graph = net_graph(21, 160);
            let mut cfg = MclConfig::testing(20);
            cfg.summa.phases = PhasePlan::Fixed(phases);
            hipmcl::core::dist::cluster_distributed(&grid, &mut gpus, &graph, &cfg)
        });
        reports.into_iter().next().unwrap()
    };
    let one = run(1);
    let many = run(4);
    assert_eq!(one.num_clusters, many.num_clusters);
    assert_eq!(one.labels, many.labels);
    assert_eq!(one.iterations, many.iterations);
}

#[test]
fn merge_strategy_does_not_change_clusters() {
    use hipmcl::summa::merge::MergeStrategy;
    let run = |strategy: MergeStrategy, pipelined: bool| {
        let reports = Universe::run(9, MachineModel::summit(), move |comm| {
            let grid = ProcGrid::new(comm);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let graph = net_graph(22, 150);
            let mut cfg = MclConfig::testing(20);
            cfg.summa.merge = strategy;
            cfg.summa.pipelined = pipelined;
            cfg.summa.policy = hipmcl::gpu::select::SelectionPolicy::always_gpu();
            hipmcl::core::dist::cluster_distributed(&grid, &mut gpus, &graph, &cfg)
        });
        reports.into_iter().next().unwrap()
    };
    let mw = run(MergeStrategy::Multiway, false);
    let bin = run(MergeStrategy::Binary, true);
    assert_eq!(mw.labels, bin.labels);
    assert_eq!(mw.num_clusters, bin.num_clusters);
}

#[test]
fn chaos_trace_reaches_convergence_threshold() {
    let reports = Universe::run(4, MachineModel::summit(), |comm| {
        let grid = ProcGrid::new(comm);
        let mut gpus = MultiGpu::summit_node(grid.world.model());
        let graph = net_graph(23, 140);
        hipmcl::core::dist::cluster_distributed(&grid, &mut gpus, &graph, &MclConfig::testing(20))
    });
    let r = &reports[0];
    assert!(r.converged);
    let last = r.trace.last().unwrap();
    assert!(last.chaos < 1e-3);
    // Chaos at convergence must be far below the starting chaos.
    assert!(r.trace[0].chaos > 10.0 * last.chaos.max(1e-12));
}

#[test]
fn instrumentation_is_internally_consistent() {
    let reports = Universe::run(4, MachineModel::summit(), |comm| {
        let grid = ProcGrid::new(comm);
        let mut gpus = MultiGpu::summit_node(grid.world.model());
        let graph = net_graph(24, 150);
        let mut cfg = MclConfig::optimized(u64::MAX);
        cfg.prune.select = 20;
        hipmcl::core::dist::cluster_distributed(&grid, &mut gpus, &graph, &cfg)
    });
    let r = &reports[0];
    // Every stage time is finite and non-negative; the expansion wall
    // covers the kernel time it contains.
    let get = |s: &str| r.stage_times.iter().find(|(n, _)| n == s).unwrap().1;
    for (name, t) in &r.stage_times {
        assert!(t.is_finite() && *t >= 0.0, "{name}: {t}");
    }
    assert!(
        r.total_time >= get("expansion"),
        "total covers the SUMMA section"
    );
    assert!(r.cpu_idle >= 0.0 && r.gpu_idle >= 0.0);
    assert_eq!(r.merge_peaks.len(), r.iterations);
    assert_eq!(r.estimates.len(), r.iterations);
}

#[test]
fn gpu_estimator_variant_runs_end_to_end() {
    use hipmcl::summa::estimate::EstimatorKind;
    let reports = Universe::run(4, MachineModel::summit(), |comm| {
        let grid = ProcGrid::new(comm);
        let mut gpus = MultiGpu::summit_node(grid.world.model());
        let graph = net_graph(25, 140);
        let mut cfg = MclConfig::testing(20)
            .with_estimator(EstimatorKind::ProbabilisticGpu { r: 5 }, 1 << 30);
        cfg.summa.policy = hipmcl::gpu::select::SelectionPolicy::always_gpu();
        hipmcl::core::dist::cluster_distributed(&grid, &mut gpus, &graph, &cfg)
    });
    let r = &reports[0];
    assert!(r.converged);
    assert!(r
        .estimates
        .iter()
        .flatten()
        .all(|e| e.scheme == "probabilistic-gpu"));
}

#[test]
fn label_propagation_agrees_with_union_find_on_mcl_output() {
    let reports = Universe::run(4, MachineModel::summit(), |comm| {
        let grid = ProcGrid::new(comm);
        let mut gpus = MultiGpu::summit_node(grid.world.model());
        let graph = net_graph(26, 120);
        let cfg = MclConfig::testing(16);
        let r = hipmcl::core::dist::cluster_distributed(&grid, &mut gpus, &graph, &cfg);
        // Re-run the final component extraction with label propagation on
        // the converged matrix reconstructed from another full run.
        let prepared = hipmcl::core::serial::prepare_matrix(&graph, &cfg);
        let serial = hipmcl::core::cluster_serial(&graph, &cfg);
        let _ = prepared;
        (r.num_clusters, serial.num_clusters)
    });
    for (dist_k, serial_k) in reports {
        assert_eq!(dist_k, serial_k);
    }
}
