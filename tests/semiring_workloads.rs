//! Integration tests for the semiring-generic SUMMA: the same distributed
//! pipeline that powers MCL's plus-times expansion must compute all-pairs
//! shortest paths (min-plus) and transitive closure (boolean) by repeated
//! squaring, matching serial references *exactly* — min-plus and boolean
//! have no roundoff (APSP weights are small integers in `f64`), so the
//! comparisons are `assert_eq!`, not tolerance checks.
//!
//! `HIPMCL_BENCH_SCALE=k` shrinks the instances by `k` (CI uses 4).
//!
//! These tests dispatch through [`Universe::run_dist`], so the transport
//! and time model come from the environment: `HIPMCL_TRANSPORT=process-shm`
//! (with the `process-shm` feature built) runs every rank as an OS
//! process over shared-memory rings, and the assertions below — all
//! exact — then double as cross-transport bit-identity checks.
//! `HIPMCL_MAX_RANKS=k` skips rank counts above `k` (CI's shm matrix arm
//! caps at 4).

use hipmcl::comm::{MachineModel, ProcGrid, Universe};
use hipmcl::gpu::multi::MultiGpu;
use hipmcl::sparse::{Boolean, Csc, MinPlus, Semiring, Value};
use hipmcl::summa::spgemm::{summa_spgemm_in, SummaConfig};
use hipmcl::summa::DistMatrix;
use hipmcl::workloads::apsp::{bellman_ford_apsp, generate_apsp_digraph};
use hipmcl::workloads::reach::{bfs_closure, generate_reach_digraph};

fn scale() -> usize {
    std::env::var("HIPMCL_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1)
}

fn max_ranks() -> usize {
    std::env::var("HIPMCL_MAX_RANKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX)
        .max(1)
}

/// Distributed repeated squaring under `s`: `⌈lg n⌉` rounds of
/// `D ← D ⊗ D` through the full SUMMA pipeline, gathered to root.
/// Returns the closure plus the last round's modeled comm times
/// (chosen-mode sum, all-broadcast sum) for the comm-policy assertions.
fn distributed_closure<S: Semiring>(
    s: S,
    p: usize,
    cfg: SummaConfig,
    global: hipmcl::sparse::Triples<S::Elem>,
) -> (Csc<S::Elem>, f64, f64)
where
    S::Elem: Value,
{
    let n = global.nrows();
    // 2^k-hop horizon after k squarings: ⌈lg n⌉ rounds reach every path.
    let rounds = n.next_power_of_two().trailing_zeros().max(1);
    let results = Universe::run_dist(p, MachineModel::summit(), move |comm| {
        let grid = ProcGrid::new(comm);
        let mut gpus = MultiGpu::summit_node(grid.world.model());
        let mut d = DistMatrix::from_global_in(s, &grid, &global);
        let mut modeled = (0.0, 0.0);
        for _ in 0..rounds {
            let out = summa_spgemm_in(s, &grid, &mut gpus, &d, &d, &cfg);
            assert!(
                !out.comm_choices.is_empty(),
                "per-stage comm choices must be recorded"
            );
            modeled = (out.modeled_comm_time(), out.modeled_comm_time_broadcast());
            d = out.c;
        }
        (d.gather_to_root_in(s, &grid), modeled)
    });
    let (gathered, modeled) = results.into_iter().next().unwrap();
    (gathered.unwrap(), modeled.0, modeled.1)
}

#[test]
fn min_plus_apsp_matches_bellman_ford_exactly() {
    let n = (96 / scale()).max(24);
    let g = generate_apsp_digraph(n, 4 * n, 31);
    let want = bellman_ford_apsp(&g);
    for p in [1usize, 4].into_iter().filter(|&p| p <= max_ranks()) {
        let cfg = SummaConfig::cpu_pipelined(1 << 30);
        let (got, hybrid, bcast) = distributed_closure(MinPlus, p, cfg, g.clone());
        assert_eq!(got, want, "p={p}: APSP must be bit-identical");
        assert!(hybrid <= bcast, "p={p}: hybrid comm {hybrid} vs {bcast}");
    }
}

#[test]
fn min_plus_apsp_survives_phased_execution() {
    use hipmcl::summa::spgemm::PhasePlan;
    let n = (80 / scale()).max(20);
    let g = generate_apsp_digraph(n, 4 * n, 32);
    let want = bellman_ford_apsp(&g);
    if max_ranks() < 4 {
        return; // the fixed 4-rank grid exceeds HIPMCL_MAX_RANKS
    }
    let mut cfg = SummaConfig::cpu_pipelined(1 << 30);
    cfg.phases = PhasePlan::Fixed(3);
    let (got, _, _) = distributed_closure(MinPlus, 4, cfg, g);
    assert_eq!(got, want, "phased min-plus SUMMA must be bit-identical");
}

#[test]
fn boolean_reachability_matches_bfs_closure_exactly() {
    let n = (120 / scale()).max(24);
    let g = generate_reach_digraph(n, 3 * n, 33);
    let want = bfs_closure(&g);
    for p in [1usize, 9].into_iter().filter(|&p| p <= max_ranks()) {
        let cfg = SummaConfig::optimized(1 << 30);
        let (got, hybrid, bcast) = distributed_closure(Boolean, p, cfg, g.clone());
        assert_eq!(got, want, "p={p}: closure must be bit-identical");
        assert!(hybrid <= bcast, "p={p}: hybrid comm {hybrid} vs {bcast}");
    }
}

#[test]
fn boolean_reachability_on_the_gpu_executor_matches_cpu_pool() {
    if max_ranks() < 4 {
        return; // the fixed 4-rank grid exceeds HIPMCL_MAX_RANKS
    }
    let n = (64 / scale()).max(20);
    let g = generate_reach_digraph(n, 3 * n, 34);
    let want = bfs_closure(&g);
    let (gpu, _, _) = distributed_closure(Boolean, 4, SummaConfig::optimized(1 << 30), g.clone());
    let (cpu, _, _) = distributed_closure(Boolean, 4, SummaConfig::cpu_pipelined(1 << 30), g);
    assert_eq!(gpu, want);
    assert_eq!(cpu, want);
}
