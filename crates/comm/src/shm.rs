//! The `process-shm` transport: ranks as OS processes exchanging
//! wire-encoded frames over shared-memory rings. Pure `std` (unix).
//!
//! # How a universe becomes processes
//!
//! [`Universe::run_with`](crate::Universe::run_with) cannot ship a
//! closure to another process, so this backend re-executes the current
//! binary, `mpirun`-style: the parent creates a session directory of
//! ring files under `/dev/shm` (tmpfs — file pages *are* shared
//! memory), then spawns `P` copies of `current_exe()` with
//! `HIPMCL_SHM_{DIR,RANK,RANKS,UNIVERSE}` set. Each child runs the same
//! program from the top; when it reaches the `run_with` call identified
//! by its `UNIVERSE` ordinal it becomes rank `RANK` over a
//! [`ShmEndpoint`], runs the rank closure, wire-encodes its result into
//! `result_<rank>.bin`, and exits. The parent collects and decodes the
//! per-rank results, so the caller sees exactly the `Vec<R>` the
//! in-process transport would return.
//!
//! Earlier `process-shm` universes in the same program are *replayed*
//! in-process by the child to reach the target call site with identical
//! state — which is sound precisely because results are bit-identical
//! across transports. The consequence is a determinism contract: code
//! executed before a `process-shm` universe must be deterministic
//! (no RNG without fixed seeds, no branching on wall-clock or
//! process-id values). Under `cargo test`, the test thread's name is
//! the test's own path, which is how a child re-runs just the right
//! test (`<name> --exact --test-threads=1`).
//!
//! # The rings
//!
//! One single-producer/single-consumer byte ring per ordered rank pair.
//! File layout: `head` and `tail` are free-running byte counters, each
//! stored twice (`primary`, `secondary`) so a reader can detect torn
//! reads — the writer updates the secondary copy first, then the
//! primary, and a reader retries until both copies agree. Data lives at
//! offset 64, indexed modulo the capacity. Frames are
//! `[total_len u64][header 40 B][payload]`. A sender blocked on a full
//! ring keeps draining its own incoming rings meanwhile, so cyclic
//! exchanges larger than the ring capacity cannot deadlock.

use crate::comm::Comm;
use crate::launch::{
    self, ChildIdentity, LaunchFamily, SessionGuard, SHM_ENV_DIR, SHM_ENV_RANK, SHM_ENV_RANKS,
    SHM_ENV_UNIVERSE,
};
use crate::packet::WirePayload;
use crate::transport::{
    Endpoint, Frame, FrameHeader, FramePayload, RecvError, TransportKind, FRAME_HEADER_BYTES,
};
use crate::universe::{run_threads, UniverseConfig};
use hipmcl_sparse::wire::{WireDecode, WireEncode};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Offset of the duplicated head counter (writer-owned).
const HEAD_OFF: u64 = 0;
/// Offset of the duplicated tail counter (reader-owned).
const TAIL_OFF: u64 = 16;
/// Start of ring data.
const DATA_OFF: u64 = 64;
/// Sleep between polls while a ring is empty/full.
const POLL: Duration = Duration::from_micros(50);

fn ring_path(dir: &Path, src: usize, dst: usize) -> PathBuf {
    dir.join(format!("ring_{src}_{dst}.bin"))
}

/// One mapped ring file (either end).
struct Ring {
    file: File,
    cap: u64,
}

impl Ring {
    fn open(path: &Path, cap: u64) -> Self {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .unwrap_or_else(|e| panic!("open ring {}: {e}", path.display()));
        Self { file, cap }
    }

    /// Reads a duplicated counter, retrying until both copies agree.
    fn counter(&self, off: u64) -> u64 {
        loop {
            let mut a = [0u8; 8];
            let mut b = [0u8; 8];
            self.file.read_exact_at(&mut a, off).expect("ring read");
            self.file.read_exact_at(&mut b, off + 8).expect("ring read");
            if a == b {
                return u64::from_le_bytes(a);
            }
            std::hint::spin_loop();
        }
    }

    /// Publishes a duplicated counter: secondary first, then primary, so
    /// a concurrent reader only accepts the value once both landed.
    fn publish(&self, off: u64, v: u64) {
        let b = v.to_le_bytes();
        self.file.write_all_at(&b, off + 8).expect("ring write");
        self.file.write_all_at(&b, off).expect("ring write");
    }

    /// Copies `buf` into the data area at ring position `pos % cap`,
    /// wrapping once if needed.
    fn write_data(&self, pos: u64, buf: &[u8]) {
        let at = pos % self.cap;
        let first = ((self.cap - at) as usize).min(buf.len());
        self.file
            .write_all_at(&buf[..first], DATA_OFF + at)
            .expect("ring write");
        if first < buf.len() {
            self.file
                .write_all_at(&buf[first..], DATA_OFF)
                .expect("ring write");
        }
    }

    /// Copies `buf.len()` bytes out of the data area at `pos % cap`.
    fn read_data(&self, pos: u64, buf: &mut [u8]) {
        let at = pos % self.cap;
        let first = ((self.cap - at) as usize).min(buf.len());
        self.file
            .read_exact_at(&mut buf[..first], DATA_OFF + at)
            .expect("ring read");
        if first < buf.len() {
            self.file
                .read_exact_at(&mut buf[first..], DATA_OFF)
                .expect("ring read");
        }
    }
}

/// The producing end: owns the head counter.
struct RingWriter {
    ring: Ring,
    head: u64,
}

impl RingWriter {
    /// Writes as much of `buf` as currently fits; returns bytes consumed
    /// (possibly 0 — the caller polls and retries).
    fn push(&mut self, buf: &[u8]) -> usize {
        let tail = self.ring.counter(TAIL_OFF);
        let free = self.ring.cap - (self.head - tail);
        let n = (free as usize).min(buf.len());
        if n == 0 {
            return 0;
        }
        self.ring.write_data(self.head, &buf[..n]);
        self.head += n as u64;
        self.ring.publish(HEAD_OFF, self.head);
        n
    }
}

/// The consuming end: owns the tail counter and reassembles frames.
struct RingReader {
    ring: Ring,
    tail: u64,
    staging: Vec<u8>,
}

impl RingReader {
    /// Drains everything currently in the ring into the staging buffer;
    /// returns `true` if any bytes arrived.
    fn pull(&mut self) -> bool {
        let head = self.ring.counter(HEAD_OFF);
        if head == self.tail {
            return false;
        }
        let n = (head - self.tail) as usize;
        let start = self.staging.len();
        self.staging.resize(start + n, 0);
        self.ring.read_data(self.tail, &mut self.staging[start..]);
        self.tail = head;
        self.ring.publish(TAIL_OFF, self.tail);
        true
    }

    /// Extracts the next complete frame from the staging buffer, if any.
    fn next_frame(&mut self) -> Option<Frame> {
        if self.staging.len() < 8 {
            return None;
        }
        let len = u64::from_le_bytes(self.staging[..8].try_into().unwrap()) as usize;
        debug_assert!(len >= FRAME_HEADER_BYTES, "runt frame ({len} B)");
        if self.staging.len() < 8 + len {
            return None;
        }
        let header = FrameHeader::decode(
            &self.staging[8..8 + FRAME_HEADER_BYTES]
                .try_into()
                .expect("fixed-width header"),
        );
        let payload = self.staging[8 + FRAME_HEADER_BYTES..8 + len].to_vec();
        self.staging.drain(..8 + len);
        Some(Frame {
            header,
            payload: FramePayload::Bytes(payload),
        })
    }
}

/// A rank's endpoint over the session's ring files.
pub struct ShmEndpoint {
    writers: RefCell<Vec<Option<RingWriter>>>,
    readers: RefCell<Vec<Option<RingReader>>>,
    inbox: RefCell<VecDeque<Frame>>,
}

impl ShmEndpoint {
    /// Opens all rings touching `rank` in an existing session directory.
    pub fn open(dir: &Path, rank: usize, p: usize, ring_bytes: usize) -> Self {
        let cap = ring_bytes as u64;
        let writers = (0..p)
            .map(|dst| {
                (dst != rank).then(|| RingWriter {
                    ring: Ring::open(&ring_path(dir, rank, dst), cap),
                    head: 0,
                })
            })
            .collect();
        let readers = (0..p)
            .map(|src| {
                (src != rank).then(|| RingReader {
                    ring: Ring::open(&ring_path(dir, src, rank), cap),
                    tail: 0,
                    staging: Vec::new(),
                })
            })
            .collect();
        Self {
            writers: RefCell::new(writers),
            readers: RefCell::new(readers),
            inbox: RefCell::new(VecDeque::new()),
        }
    }

    /// Moves every complete frame from every ring into the inbox;
    /// returns how many frames arrived.
    fn drain_incoming(&self) -> usize {
        let mut got = 0;
        let mut readers = self.readers.borrow_mut();
        let mut inbox = self.inbox.borrow_mut();
        for r in readers.iter_mut().flatten() {
            r.pull();
            while let Some(f) = r.next_frame() {
                inbox.push_back(f);
                got += 1;
            }
        }
        got
    }
}

impl Endpoint for ShmEndpoint {
    fn kind(&self) -> TransportKind {
        TransportKind::ProcessShm
    }

    fn byte_oriented(&self) -> bool {
        true
    }

    fn send_frame(&self, dst_world: usize, frame: Frame) {
        let payload = match frame.payload {
            FramePayload::Bytes(b) => b,
            FramePayload::Typed(_) => {
                unreachable!("typed payload on a byte-oriented transport")
            }
        };
        let mut buf = Vec::with_capacity(8 + FRAME_HEADER_BYTES + payload.len());
        buf.extend_from_slice(&((FRAME_HEADER_BYTES + payload.len()) as u64).to_le_bytes());
        frame.header.encode(&mut buf);
        buf.extend_from_slice(&payload);

        let mut written = 0;
        while written < buf.len() {
            let n = {
                let mut writers = self.writers.borrow_mut();
                writers[dst_world]
                    .as_mut()
                    .expect("send to self goes through the mailbox, not the ring")
                    .push(&buf[written..])
            };
            written += n;
            if written < buf.len() && n == 0 {
                // Ring full: keep consuming our own traffic so a cyclic
                // exchange larger than the ring capacity cannot deadlock.
                if self.drain_incoming() == 0 {
                    std::thread::sleep(POLL);
                }
            }
        }
    }

    fn recv_frame(&self, timeout: Option<Duration>) -> Result<Frame, RecvError> {
        let start = Instant::now();
        loop {
            if let Some(f) = self.inbox.borrow_mut().pop_front() {
                return Ok(f);
            }
            if self.drain_incoming() == 0 {
                if let Some(t) = timeout {
                    if start.elapsed() >= t {
                        return Err(RecvError::Timeout);
                    }
                }
                std::thread::sleep(POLL);
            }
        }
    }
}

/// Dispatcher for a `process-shm` universe: parent orchestration or
/// child rank execution, decided by the environment. The launch ordinal
/// is shared with the socket backend ([`launch::next_ordinal`]), so a
/// child of *either* family replays universes that are not its target
/// in-process — bit-identical by construction — and program state
/// evolves exactly as in the parent.
pub(crate) fn run_processes<R, F>(cfg: &UniverseConfig, f: &F) -> Vec<R>
where
    R: WirePayload,
    F: Fn(Comm) -> R + Sync,
{
    assert!(cfg.ranks > 0, "need at least one rank");
    let ordinal = launch::next_ordinal();
    match launch::child_identity() {
        Some(id) if id.family == LaunchFamily::Shm && id.serves(ordinal) => {
            child_rank(cfg, f, &id, ordinal)
        }
        Some(_) => run_threads(cfg, f),
        None => parent(cfg, f, ordinal),
    }
}

/// The parent side: session setup, spawn, result collection.
fn parent<R, F>(cfg: &UniverseConfig, _f: &F, ordinal: u64) -> Vec<R>
where
    R: WirePayload,
    F: Fn(Comm) -> R + Sync,
{
    let p = cfg.ranks;
    let dir = launch::create_session_dir("hipmcl-shm");
    let _guard = SessionGuard(dir.clone());

    // Ring files, zero-initialized counters, data area left sparse.
    for s in 0..p {
        for d in 0..p {
            if s != d {
                let f = File::create(ring_path(&dir, s, d)).expect("create ring");
                f.set_len(DATA_OFF + cfg.shm_ring_bytes as u64)
                    .expect("size ring");
            }
        }
    }
    // Session metadata lets children detect divergent replays early.
    {
        let mut meta = Vec::new();
        (p as u64).encode(&mut meta);
        (cfg.shm_ring_bytes as u64).encode(&mut meta);
        std::fs::write(dir.join("meta.bin"), meta).expect("write meta");
    }

    let exe = std::env::current_exe().expect("current_exe for rank spawn");
    let args = launch::child_args();
    let children: Vec<_> = (0..p)
        .map(|rank| {
            std::process::Command::new(&exe)
                .args(&args)
                .env(SHM_ENV_DIR, &dir)
                .env(SHM_ENV_RANK, rank.to_string())
                .env(SHM_ENV_RANKS, p.to_string())
                .env(SHM_ENV_UNIVERSE, ordinal.to_string())
                .stdout(std::process::Stdio::null())
                .spawn()
                .unwrap_or_else(|e| panic!("spawn rank {rank}: {e}"))
        })
        .collect();

    let mut failures = Vec::new();
    for (rank, child) in children.into_iter().enumerate() {
        let mut child = child;
        let status = child.wait().expect("wait for rank");
        if !status.success() {
            failures.push(format!("rank {rank} exited with {status}"));
        }
    }
    assert!(
        failures.is_empty(),
        "process-shm universe {ordinal} failed: {}",
        failures.join("; ")
    );

    launch::collect_results(&dir, p)
}

/// The child side: become the rank in `id`, run the closure, persist the
/// result, exit without returning.
fn child_rank<R, F>(cfg: &UniverseConfig, f: &F, id: &ChildIdentity, ordinal: u64) -> !
where
    R: WirePayload,
    F: Fn(Comm) -> R + Sync,
{
    let dir = id.dir.clone().expect("shm child always has a session dir");
    let (rank, p) = (id.rank, id.ranks);
    // Replay-divergence tripwire: the child's config at the target call
    // site must match what the parent set up.
    let meta = std::fs::read(dir.join("meta.bin")).expect("read session meta");
    let (meta_p, meta_ring) = <(u64, u64)>::decode_all(&meta).expect("decode session meta");
    assert!(
        p == cfg.ranks && meta_p as usize == cfg.ranks && meta_ring as usize == cfg.shm_ring_bytes,
        "universe {ordinal} diverged between parent and child replay \
         (parent: {meta_p} ranks / {meta_ring} B rings; child: {} ranks / {} B rings). \
         Code before a process-shm universe must be deterministic.",
        cfg.ranks,
        cfg.shm_ring_bytes,
    );

    let endpoint = ShmEndpoint::open(&dir, rank, p, cfg.shm_ring_bytes);
    let comm = Comm::new_world(rank, p, cfg.shared(), Box::new(endpoint));
    let result = f(comm);

    launch::write_result(&dir, rank, &result.encoded());
    std::process::exit(0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TimeModel;
    use crate::collectives::{allgather, allreduce, barrier};
    use crate::machine::MachineModel;
    use crate::universe::Universe;

    fn shm_cfg(p: usize) -> UniverseConfig {
        UniverseConfig::new(p, MachineModel::summit())
            .with_transport(TransportKind::ProcessShm)
            .with_recv_deadline(Some(Duration::from_secs(60)))
    }

    #[test]
    fn ring_transfers_bytes_across_threads() {
        let dir = launch::create_session_dir("hipmcl-ringtest");
        let _guard = SessionGuard(dir.clone());
        let path = ring_path(&dir, 0, 1);
        let cap = 4096u64; // small, to force wrapping and backpressure
        let f = File::create(&path).unwrap();
        f.set_len(DATA_OFF + cap).unwrap();

        // A pseudo-random but deterministic byte stream much larger
        // than the ring.
        let data: Vec<u8> = (0..100_000u64)
            .map(|i| (i.wrapping_mul(2654435761) >> 7) as u8)
            .collect();
        let expect = data.clone();
        std::thread::scope(|s| {
            let pw = path.clone();
            let writer = s.spawn(move || {
                let mut w = RingWriter {
                    ring: Ring::open(&pw, cap),
                    head: 0,
                };
                let mut written = 0;
                while written < data.len() {
                    let n = w.push(&data[written..]);
                    written += n;
                    if n == 0 {
                        std::thread::sleep(POLL);
                    }
                }
            });
            let mut r = RingReader {
                ring: Ring::open(&path, cap),
                tail: 0,
                staging: Vec::new(),
            };
            while r.staging.len() < expect.len() {
                if !r.pull() {
                    std::thread::sleep(POLL);
                }
            }
            assert_eq!(r.staging, expect);
            writer.join().unwrap();
        });
    }

    #[test]
    fn shm_p2p_roundtrip() {
        let results = Universe::run_with(shm_cfg(2), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.5f64, 2.5, -0.0]);
                0.0
            } else {
                let v: Vec<f64> = comm.recv(0, 7);
                assert_eq!(v[2].to_bits(), (-0.0f64).to_bits(), "bits survive the wire");
                v.iter().sum()
            }
        });
        assert_eq!(results, vec![0.0, 4.0]);
    }

    #[test]
    fn shm_collectives_and_clocks_match_in_process() {
        let body = |comm: Comm| {
            let mut comm = comm;
            comm.advance_clock(comm.rank() as f64 * 1e-3);
            let sum = allreduce(&comm, comm.rank() as u64, |a, b| a + b);
            let all: Vec<u64> = allgather(&comm, sum + comm.rank() as u64);
            barrier(&comm);
            let sub = comm.split((comm.rank() % 2) as u64, comm.rank() as u64);
            let subs: Vec<u64> = allgather(&sub, comm.rank() as u64);
            (all, subs, comm.now())
        };
        let shm = Universe::run_with(shm_cfg(4), body);
        let inp = Universe::run_with(UniverseConfig::new(4, MachineModel::summit()), body);
        assert_eq!(
            shm, inp,
            "results and modeled clocks identical across transports"
        );
    }

    #[test]
    fn split_ordering_identical_across_transports() {
        // Satellite: deterministic color/key reassignment tables must
        // produce the same subcommunicator ranks on both transports.
        // (The proptest against the pure reference model lives in
        // `crate::proptests`; shm universes must stay deterministic, so
        // this arm pins fixed tables.)
        let colors = [2u64, 0, 1, 0, 2, 1, 0, 2, 1];
        let keys = [4u64, 0, 3, 3, 1, 1, 0, 2, 2];
        let body = move |comm: Comm| {
            let r = comm.rank();
            let mut comm = comm;
            let sub = comm.split(colors[r], keys[r]);
            let members: Vec<u64> = allgather(&sub, comm.rank() as u64);
            (sub.rank(), sub.size(), members)
        };
        let shm = Universe::run_with(shm_cfg(9), body);
        let inp = Universe::run_with(UniverseConfig::new(9, MachineModel::summit()), body);
        assert_eq!(shm, inp);
    }

    #[test]
    fn shm_measured_time_reports_wall_seconds() {
        let cfg = shm_cfg(2).with_time(TimeModel::Measured);
        let results = Universe::run_with(cfg, |comm| {
            if comm.rank() == 0 {
                std::thread::sleep(Duration::from_millis(5));
                comm.send(1, 0, vec![0u8; 1 << 16]);
            } else {
                let _: Vec<u8> = comm.recv(0, 0);
            }
            comm.stats()
        });
        assert!(results[1].modeled_comm_s > 0.0);
        assert!(
            results[1].measured_comm_s >= 0.004,
            "receiver measurably blocked, got {}",
            results[1].measured_comm_s
        );
    }

    #[test]
    fn sequential_shm_universes_replay_correctly() {
        // Two shm universes in one test: the child serving universe 1
        // must replay universe 0 in-process to get here.
        let a = Universe::run_with(shm_cfg(2), |comm| comm.rank() as u64 + 1);
        assert_eq!(a, vec![1, 2]);
        let b = Universe::run_with(shm_cfg(2), |comm| {
            allreduce(&comm, comm.rank() as u64, |x, y| x + y)
        });
        assert_eq!(b, vec![1, 1]);
    }
}
