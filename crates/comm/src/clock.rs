//! Per-rank virtual clocks, asynchronous-resource timelines, and
//! communication statistics.
//!
//! The reproduction separates *what happens* (real data movement, real
//! kernels — correctness) from *how long it takes on Summit* (the virtual
//! clock). Each rank advances its own [`VClock`]: compute sections add
//! modeled kernel durations, message receipt synchronizes with the
//! sender's clock plus the α–β transfer cost. The per-stage timers
//! ([`StageTimers`]) that feed every paper table accumulate out of these
//! clocks.
//!
//! Asynchronous resources — GPU kernel queues, copy engines, the per-rank
//! CPU worker pool — are modeled by the [`Timeline`]/[`Event`] pair: a
//! FIFO queue in virtual time whose gaps between jobs are the idle times
//! Table V reports. Whoever holds a returned [`Event`] decides what to
//! overlap against it; the timeline itself never blocks anyone.

/// How a rank experiences time. Orthogonal to the transport
/// ([`crate::transport::TransportKind`]): any transport composes with
/// either model.
///
/// The *modeled* clock is always maintained and always authoritative for
/// scheduling (`Comm::now`, timeline submission, collective charging) —
/// that is what keeps results bit-identical and runs reproducible across
/// transports. `Measured` does not replace it; it *additionally* samples
/// the monotonic wall clock around communication and kernel sections, so
/// a single run reports modeled and measured durations side by side.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TimeModel {
    /// Charge α–β and kernel-model durations on the virtual clock only
    /// (the default; fully deterministic).
    #[default]
    Modeled,
    /// Also read the monotonic wall clock: comm waits and kernel
    /// launches record measured seconds next to their modeled ones.
    Measured,
}

impl TimeModel {
    /// Parses `HIPMCL_TIME`-style names.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "modeled" | "model" | "virtual" => Some(Self::Modeled),
            "measured" | "wall" | "real" => Some(Self::Measured),
            _ => None,
        }
    }

    /// Canonical name (the one `parse` round-trips).
    pub fn name(self) -> &'static str {
        match self {
            Self::Modeled => "modeled",
            Self::Measured => "measured",
        }
    }

    /// `true` under [`TimeModel::Measured`].
    #[inline]
    pub fn is_measured(self) -> bool {
        self == Self::Measured
    }
}

impl std::fmt::Display for TimeModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A rank's clock pair: the modeled [`VClock`] plus, under
/// [`TimeModel::Measured`], a monotonic wall-clock origin.
#[derive(Clone, Copy, Debug)]
pub struct RankClock {
    time: TimeModel,
    vclock: VClock,
    origin: std::time::Instant,
}

impl RankClock {
    /// A fresh clock pair at virtual zero / wall now.
    pub fn new(time: TimeModel) -> Self {
        Self {
            time,
            vclock: VClock::new(),
            origin: std::time::Instant::now(),
        }
    }

    /// The time model in force.
    #[inline]
    pub fn time_model(&self) -> TimeModel {
        self.time
    }

    /// Current *modeled* time — authoritative for all scheduling.
    #[inline]
    pub fn now(&self) -> f64 {
        self.vclock.now()
    }

    /// Advances the modeled clock by `dt` seconds.
    #[inline]
    pub fn advance(&mut self, dt: f64) {
        self.vclock.advance(dt);
    }

    /// Jumps the modeled clock to `t` if later; returns modeled idle.
    #[inline]
    pub fn wait_until(&mut self, t: f64) -> f64 {
        self.vclock.wait_until(t)
    }

    /// Wall seconds since this rank started, or `0.0` under
    /// [`TimeModel::Modeled`] (so Modeled runs never read the host
    /// clock and stay bit-for-bit reproducible in their instrumentation
    /// too).
    #[inline]
    pub fn measured_now(&self) -> f64 {
        if self.time.is_measured() {
            self.origin.elapsed().as_secs_f64()
        } else {
            0.0
        }
    }

    /// Resets modeled time to zero and re-anchors the wall origin.
    pub fn reset(&mut self) {
        self.vclock.reset();
        self.origin = std::time::Instant::now();
    }
}

/// A virtual clock, in seconds of modeled machine time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct VClock {
    now: f64,
}

impl VClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances by `dt` seconds (compute or transfer cost).
    #[inline]
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0, "negative duration {dt}");
        self.now += dt;
    }

    /// Waits until `t`: jumps forward if `t` is in the future, otherwise
    /// no-op. Returns the idle time spent waiting (0 if none) — the
    /// quantity Table V reports for CPUs and GPUs.
    #[inline]
    pub fn wait_until(&mut self, t: f64) -> f64 {
        if t > self.now {
            let idle = t - self.now;
            self.now = t;
            idle
        } else {
            0.0
        }
    }

    /// Resets to zero (between experiments).
    pub fn reset(&mut self) {
        self.now = 0.0;
    }
}

/// Completion event of an asynchronous operation on some timeline —
/// a GPU kernel, a D2H transfer, a CPU worker-pool job. Purely a virtual
/// timestamp; whoever holds the event decides what to overlap against it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// Virtual time at which the operation completes.
    pub at: f64,
}

/// A FIFO resource timeline: jobs occupy the resource one at a time, each
/// starting no earlier than both its `ready` time and the end of the
/// previous job. This is the shared backbone of every asynchronous
/// executor in the pipeline — GPU kernel queues, copy engines, and the
/// per-rank CPU worker pool all advance one of these — so idle-time
/// accounting (Table V) reads identically off any of them.
///
/// ```
/// use hipmcl_comm::Timeline;
///
/// let mut t = Timeline::new();
/// let first = t.submit(0.0, 2.0); // ready at 0, takes 2s
/// assert_eq!(first.at, 2.0);
/// // Ready before the first job ends: queues FIFO, no gap.
/// assert_eq!(t.submit(1.0, 1.0).at, 3.0);
/// // Ready 2s after the queue drained: the gap is idle time.
/// let third = t.submit(5.0, 1.0);
/// assert_eq!(third.at, 6.0);
/// assert_eq!(t.idle_time(), 2.0);
/// assert_eq!(t.busy_until(), 6.0);
/// assert_eq!(t.jobs(), 3);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Timeline {
    /// The resource is busy until this time.
    busy_until: f64,
    /// Accumulated gaps between consecutive jobs.
    idle: f64,
    /// End of the last job (to measure the next gap).
    last_end: f64,
    /// Jobs submitted so far.
    jobs: usize,
}

impl Timeline {
    /// A timeline with nothing queued.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a job of duration `dur` that may start at `ready`; returns
    /// its completion event. The gap (if any) between the previous job's
    /// end and this job's start counts as idle time — except before the
    /// first job, which mirrors how Table V measures idleness *within* a
    /// pipeline section rather than from time zero.
    pub fn submit(&mut self, ready: f64, dur: f64) -> Event {
        debug_assert!(dur >= 0.0, "negative job duration {dur}");
        let start = ready.max(self.busy_until);
        if self.jobs > 0 {
            self.idle += (start - self.last_end).max(0.0);
        }
        let end = start + dur;
        self.busy_until = end;
        self.last_end = end;
        self.jobs += 1;
        Event { at: end }
    }

    /// Time at which everything queued so far has finished.
    pub fn busy_until(&self) -> f64 {
        self.busy_until
    }

    /// Accumulated gaps between jobs.
    pub fn idle_time(&self) -> f64 {
        self.idle
    }

    /// Number of jobs submitted.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Resets to an empty timeline (between pipeline sections).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Message and byte counters for one rank, plus the modeled-vs-measured
/// receive-wait rollup.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommStats {
    /// Point-to-point messages sent.
    pub msgs_sent: usize,
    /// Bytes sent (modeled wire bytes).
    pub bytes_sent: u64,
    /// Messages received.
    pub msgs_recv: usize,
    /// Bytes received.
    pub bytes_recv: u64,
    /// Modeled seconds this rank's clock jumped forward waiting in
    /// `recv` (the α–β arrival charge). Accumulated under both time
    /// models.
    pub modeled_comm_s: f64,
    /// Wall seconds spent blocked in `recv` (matching + transfer +
    /// decode). Only accumulated under [`TimeModel::Measured`]; exactly
    /// `0.0` under Modeled.
    pub measured_comm_s: f64,
}

impl CommStats {
    /// Accumulates another rank's stats (for whole-job reporting).
    pub fn merge(&mut self, other: &CommStats) {
        self.msgs_sent += other.msgs_sent;
        self.bytes_sent += other.bytes_sent;
        self.msgs_recv += other.msgs_recv;
        self.bytes_recv += other.bytes_recv;
        self.modeled_comm_s += other.modeled_comm_s;
        self.measured_comm_s += other.measured_comm_s;
    }

    /// The counter delta `self − earlier` (for per-section rollups:
    /// snapshot before, subtract after).
    pub fn delta_since(&self, earlier: &CommStats) -> CommStats {
        CommStats {
            msgs_sent: self.msgs_sent - earlier.msgs_sent,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            msgs_recv: self.msgs_recv - earlier.msgs_recv,
            bytes_recv: self.bytes_recv - earlier.bytes_recv,
            modeled_comm_s: self.modeled_comm_s - earlier.modeled_comm_s,
            measured_comm_s: self.measured_comm_s - earlier.measured_comm_s,
        }
    }
}

/// Named per-stage virtual-time buckets, mirroring the stage breakdown of
/// the paper's Fig. 1/5/8 (local SpGEMM, memory estimation, SUMMA
/// broadcast, merging, pruning, other).
#[derive(Clone, Debug, Default)]
pub struct StageTimers {
    entries: Vec<(String, f64)>,
}

impl StageTimers {
    /// Empty timer set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `dt` seconds to stage `name`.
    pub fn add(&mut self, name: &str, dt: f64) {
        debug_assert!(dt >= 0.0, "negative stage time {dt} for {name}");
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| n == name) {
            e.1 += dt;
        } else {
            self.entries.push((name.to_string(), dt));
        }
    }

    /// Time recorded for `name` (0 if absent).
    pub fn get(&self, name: &str) -> f64 {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |(_, t)| *t)
    }

    /// All stages in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(n, t)| (n.as_str(), *t))
    }

    /// Sum over all stages.
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|(_, t)| t).sum()
    }

    /// Merges by taking the per-stage *maximum* across ranks — the
    /// convention for reporting distributed stage times (the slowest rank
    /// determines the stage's wall time).
    pub fn merge_max(&mut self, other: &StageTimers) {
        for (name, t) in other.iter() {
            if let Some(e) = self.entries.iter_mut().find(|(n, _)| n == name) {
                e.1 = e.1.max(t);
            } else {
                self.entries.push((name.to_string(), t));
            }
        }
    }

    /// Merges by summing per-stage (accumulating iterations).
    pub fn merge_add(&mut self, other: &StageTimers) {
        for (name, t) in other.iter() {
            self.add(name, t);
        }
    }
}

use hipmcl_sparse::wire::{WireDecode, WireEncode, WireError, WireReader};

impl crate::packet::WireSize for CommStats {
    fn wire_bytes(&self) -> usize {
        48 // six 8-byte words
    }
}

impl crate::packet::WireSize for StageTimers {
    fn wire_bytes(&self) -> usize {
        8 + self
            .entries
            .iter()
            .map(|(n, _)| 8 + n.len() + 8)
            .sum::<usize>()
    }
}

impl WireEncode for CommStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.msgs_sent.encode(out);
        self.bytes_sent.encode(out);
        self.msgs_recv.encode(out);
        self.bytes_recv.encode(out);
        self.modeled_comm_s.encode(out);
        self.measured_comm_s.encode(out);
    }
}

impl WireDecode for CommStats {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(CommStats {
            msgs_sent: usize::decode(r)?,
            bytes_sent: u64::decode(r)?,
            msgs_recv: usize::decode(r)?,
            bytes_recv: u64::decode(r)?,
            modeled_comm_s: f64::decode(r)?,
            measured_comm_s: f64::decode(r)?,
        })
    }
}

impl WireEncode for StageTimers {
    fn encode(&self, out: &mut Vec<u8>) {
        self.entries.encode(out);
    }
}

impl WireDecode for StageTimers {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(StageTimers {
            entries: Vec::<(String, f64)>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_queues_fifo_and_tracks_idle() {
        let mut t = Timeline::new();
        let e1 = t.submit(0.0, 1.0);
        assert_eq!(e1.at, 1.0);
        // Ready before the previous job ends: queues behind it, no gap.
        let e2 = t.submit(0.5, 2.0);
        assert_eq!(e2.at, 3.0);
        assert_eq!(t.idle_time(), 0.0);
        // Ready after a gap: the gap is idle.
        let e3 = t.submit(5.0, 1.0);
        assert_eq!(e3.at, 6.0);
        assert!((t.idle_time() - 2.0).abs() < 1e-12);
        assert_eq!(t.jobs(), 3);
        assert_eq!(t.busy_until(), 6.0);
    }

    #[test]
    fn timeline_leading_gap_is_not_idle() {
        let mut t = Timeline::new();
        t.submit(10.0, 1.0);
        assert_eq!(t.idle_time(), 0.0, "time before the first job is not idle");
    }

    #[test]
    fn timeline_reset() {
        let mut t = Timeline::new();
        t.submit(0.0, 1.0);
        t.submit(3.0, 1.0);
        t.reset();
        assert_eq!(t.busy_until(), 0.0);
        assert_eq!(t.idle_time(), 0.0);
        assert_eq!(t.jobs(), 0);
    }

    #[test]
    fn clock_advances_and_waits() {
        let mut c = VClock::new();
        c.advance(1.5);
        assert_eq!(c.now(), 1.5);
        let idle = c.wait_until(2.0);
        assert_eq!(idle, 0.5);
        assert_eq!(c.now(), 2.0);
        assert_eq!(c.wait_until(1.0), 0.0, "past deadlines are free");
        assert_eq!(c.now(), 2.0);
    }

    #[test]
    fn clock_reset() {
        let mut c = VClock::new();
        c.advance(3.0);
        c.reset();
        assert_eq!(c.now(), 0.0);
    }

    #[test]
    fn stats_merge() {
        let mut a = CommStats {
            msgs_sent: 1,
            bytes_sent: 10,
            msgs_recv: 2,
            bytes_recv: 20,
            modeled_comm_s: 0.5,
            measured_comm_s: 0.0,
        };
        let b = CommStats {
            msgs_sent: 3,
            bytes_sent: 30,
            msgs_recv: 4,
            bytes_recv: 40,
            modeled_comm_s: 1.5,
            measured_comm_s: 0.25,
        };
        a.merge(&b);
        assert_eq!(a.msgs_sent, 4);
        assert_eq!(a.bytes_recv, 60);
        assert_eq!(a.modeled_comm_s, 2.0);
        let d = a.delta_since(&b);
        assert_eq!(d.msgs_sent, 1);
        assert_eq!(d.bytes_sent, 10);
        assert_eq!(d.modeled_comm_s, 0.5);
    }

    #[test]
    fn time_model_parse_and_default() {
        assert_eq!(TimeModel::parse("measured"), Some(TimeModel::Measured));
        assert_eq!(TimeModel::parse("wall"), Some(TimeModel::Measured));
        assert_eq!(TimeModel::parse("modeled"), Some(TimeModel::Modeled));
        assert_eq!(TimeModel::parse("bogus"), None);
        assert_eq!(TimeModel::default(), TimeModel::Modeled);
        assert!(!TimeModel::Modeled.is_measured());
    }

    #[test]
    fn rank_clock_modeled_never_reads_wall() {
        let mut c = RankClock::new(TimeModel::Modeled);
        c.advance(1.0);
        assert_eq!(c.now(), 1.0);
        assert_eq!(c.measured_now(), 0.0, "Modeled must not sample wall time");
        assert_eq!(c.wait_until(3.0), 2.0);
        c.reset();
        assert_eq!(c.now(), 0.0);
    }

    #[test]
    fn rank_clock_measured_tracks_wall_alongside_model() {
        let mut c = RankClock::new(TimeModel::Measured);
        c.advance(5.0);
        assert_eq!(c.now(), 5.0, "modeled clock stays authoritative");
        let w0 = c.measured_now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(c.measured_now() > w0, "wall clock advances on its own");
    }

    #[test]
    fn stage_timers_accumulate() {
        let mut t = StageTimers::new();
        t.add("spgemm", 1.0);
        t.add("spgemm", 2.0);
        t.add("merge", 0.5);
        assert_eq!(t.get("spgemm"), 3.0);
        assert_eq!(t.get("absent"), 0.0);
        assert_eq!(t.total(), 3.5);
    }

    #[test]
    fn stage_timers_merge_max_and_add() {
        let mut a = StageTimers::new();
        a.add("x", 1.0);
        let mut b = StageTimers::new();
        b.add("x", 3.0);
        b.add("y", 2.0);
        let mut mx = a.clone();
        mx.merge_max(&b);
        assert_eq!(mx.get("x"), 3.0);
        assert_eq!(mx.get("y"), 2.0);
        a.merge_add(&b);
        assert_eq!(a.get("x"), 4.0);
    }
}
