//! The universe: spawns `P` rank threads and hands each a world
//! communicator, like `mpirun`.

use crate::comm::{Comm, Shared};
use crate::machine::MachineModel;
use crate::packet::Packet;
use crossbeam_channel::unbounded;
use std::sync::Arc;

/// Entry point of the simulated-MPI runtime.
pub struct Universe;

impl Universe {
    /// Runs `f` on `p` ranks (one OS thread each) under the given machine
    /// model and returns the per-rank results, indexed by rank.
    ///
    /// Rank bodies may use rayon internally for intra-rank threading (the
    /// OpenMP analogue); the global rayon pool is shared by all ranks,
    /// which matches the simulation's virtual-time accounting (intra-rank
    /// parallel speedup is *modeled* via
    /// [`MachineModel::thread_efficiency`], not measured).
    ///
    /// Panics in any rank propagate after all ranks are joined.
    pub fn run<R, F>(p: usize, model: MachineModel, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Sync,
    {
        assert!(p > 0, "need at least one rank");
        let (senders, receivers): (Vec<_>, Vec<_>) = (0..p).map(|_| unbounded::<Packet>()).unzip();
        let shared = Arc::new(Shared { senders, model });

        std::thread::scope(|scope| {
            let handles: Vec<_> = receivers
                .into_iter()
                .enumerate()
                .map(|(rank, rx)| {
                    let shared = Arc::clone(&shared);
                    let f = &f;
                    scope.spawn(move || f(Comm::new_world(rank, p, shared, rx)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_rank_ordered() {
        let results = Universe::run(5, MachineModel::summit(), |comm| comm.rank() * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn single_rank_universe() {
        let results = Universe::run(1, MachineModel::summit(), |comm| {
            assert_eq!(comm.size(), 1);
            comm.advance_clock(2.0);
            comm.now()
        });
        assert_eq!(results, vec![2.0]);
    }

    #[test]
    fn sequential_universes_are_independent() {
        for _ in 0..3 {
            let r = Universe::run(3, MachineModel::summit(), |comm| {
                if comm.rank() == 0 {
                    comm.send(2, 0, 99u32);
                    0
                } else if comm.rank() == 2 {
                    comm.recv::<u32>(0, 0)
                } else {
                    0
                }
            });
            assert_eq!(r[2], 99);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Universe::run(0, MachineModel::summit(), |_| ());
    }
}
