//! The universe: spawns `P` ranks and hands each a world communicator,
//! like `mpirun`.
//!
//! A universe is configured by transport × time model
//! ([`UniverseConfig`]): any [`TransportKind`] composes with any
//! [`TimeModel`]. [`Universe::run`] is the legacy deterministic entry
//! point (in-process threads, modeled time, bit-identical to the
//! pre-transport-split runtime); [`Universe::run_with`] takes an
//! explicit config; [`Universe::run_dist`] reads the config from the
//! environment (`HIPMCL_TRANSPORT`, `HIPMCL_TIME`,
//! `HIPMCL_RECV_DEADLINE_MS`) so one binary serves every mode.

use crate::clock::TimeModel;
use crate::comm::{Comm, Shared};
use crate::machine::MachineModel;
use crate::packet::WirePayload;
use crate::transport::{InProcessEndpoint, TransportKind};
use std::sync::Arc;
use std::time::Duration;

/// Default receive deadline when the policy wants one: long enough for
/// any honest workload step, short enough to fail a hung run. Applied
/// under [`TimeModel::Measured`] and — regardless of time model — on
/// every remote transport ([`TransportKind::is_remote`]), where a dead
/// peer process would otherwise hang the survivors forever.
pub const DEFAULT_RECV_DEADLINE: Duration = Duration::from_secs(30);

/// Socket-transport settings ([`TransportKind::Tcp`] /
/// [`TransportKind::Uds`]). Every field has a sensible default for the
/// single-host case; multi-host TCP runs set `root` (and usually `bind`)
/// per rank, either here or via the `HIPMCL_TCP_*` environment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SocketConfig {
    /// Rendezvous address rank 0 listens on, `HOST:PORT` (port `0` =
    /// ephemeral). Required for hand-launched multi-host TCP; picked
    /// automatically when a local parent orchestrates the launch.
    pub root: Option<String>,
    /// Local listener bind address for non-root ranks, `HOST:PORT`.
    /// Defaults to `0.0.0.0:0`; set it when the host is multi-homed and
    /// peers must dial a specific interface.
    pub bind: Option<String>,
    /// Session directory: Unix-domain socket names and (local launches)
    /// result files. Defaults to a fresh directory under `/dev/shm`.
    pub dir: Option<std::path::PathBuf>,
    /// Total budget for the rendezvous: dialing with retry/backoff and
    /// waiting for all peers to accept.
    pub dial_timeout: Duration,
}

impl Default for SocketConfig {
    fn default() -> Self {
        Self {
            root: None,
            bind: None,
            dir: None,
            dial_timeout: Duration::from_secs(20),
        }
    }
}

/// Validates a `HOST:PORT` string from the environment, returning an
/// actionable message naming the variable on failure.
fn parse_host_port(var: &str, s: &str) -> Result<String, String> {
    let (host, port) = s.rsplit_once(':').ok_or_else(|| {
        format!("{var}: expected HOST:PORT, got {s:?} (e.g. 10.0.0.1:7177, or node17:0 for an ephemeral port)")
    })?;
    if host.is_empty() {
        return Err(format!(
            "{var}: empty host in {s:?} (use 0.0.0.0:PORT to listen on all interfaces)"
        ));
    }
    if port.parse::<u16>().is_err() {
        return Err(format!(
            "{var}: port {port:?} in {s:?} is not a u16 (0-65535; 0 asks the OS for an ephemeral port)"
        ));
    }
    Ok(s.to_string())
}

/// Full configuration of a universe: rank count, machine model,
/// transport, time model, receive-deadline policy.
#[derive(Clone, Debug)]
pub struct UniverseConfig {
    /// Number of ranks.
    pub ranks: usize,
    /// The α–β/kernel cost model charged on the modeled clock.
    pub model: MachineModel,
    /// How bytes move between ranks.
    pub transport: TransportKind,
    /// How time is charged.
    pub time: TimeModel,
    /// Receive-deadline override: `Some(None)` forces deadlines off,
    /// `Some(Some(d))` forces `d`, `None` uses the policy default
    /// ([`DEFAULT_RECV_DEADLINE`] on remote transports and under
    /// Measured time, otherwise off).
    pub recv_deadline: Option<Option<Duration>>,
    /// Per-directed-pair ring capacity for the `process-shm` transport.
    pub shm_ring_bytes: usize,
    /// Socket-transport settings (addresses, session dir, dial budget).
    pub socket: SocketConfig,
}

impl UniverseConfig {
    /// The deterministic default: in-process transport, modeled time,
    /// no deadline.
    pub fn new(ranks: usize, model: MachineModel) -> Self {
        Self {
            ranks,
            model,
            transport: TransportKind::default(),
            time: TimeModel::default(),
            recv_deadline: None,
            shm_ring_bytes: 16 << 20,
            socket: SocketConfig::default(),
        }
    }

    /// Reads transport/time/deadline overrides from the environment:
    /// `HIPMCL_TRANSPORT` (`in-process` | `process-shm` | `tcp` | `uds`),
    /// `HIPMCL_TIME` (`modeled` | `measured`), `HIPMCL_RECV_DEADLINE_MS`
    /// (`0` = off), `HIPMCL_SHM_RING_BYTES`, and the socket settings
    /// `HIPMCL_TCP_ROOT` / `HIPMCL_TCP_BIND` (`HOST:PORT`),
    /// `HIPMCL_TCP_DIR`, `HIPMCL_TCP_DIAL_TIMEOUT_MS`. Unset variables
    /// keep the defaults; malformed values panic with the variable name
    /// and the accepted forms.
    pub fn from_env(ranks: usize, model: MachineModel) -> Self {
        Self::new(ranks, model)
            .apply_env(|key| std::env::var(key).ok())
            .unwrap_or_else(|msg| panic!("{msg}"))
    }

    /// [`UniverseConfig::from_env`] with the environment abstracted as a
    /// lookup function, so validation is testable without mutating the
    /// real (process-global, racy) environment. Returns the message
    /// `from_env` would panic with.
    pub fn apply_env(mut self, get: impl Fn(&str) -> Option<String>) -> Result<Self, String> {
        if let Some(s) = get("HIPMCL_TRANSPORT") {
            self.transport = TransportKind::parse(&s).ok_or_else(|| {
                format!(
                    "HIPMCL_TRANSPORT: unknown transport {s:?} \
                     (expected in-process | process-shm | tcp | uds)"
                )
            })?;
        }
        if let Some(s) = get("HIPMCL_TIME") {
            self.time = TimeModel::parse(&s).ok_or_else(|| {
                format!("HIPMCL_TIME: unknown time model {s:?} (expected modeled | measured)")
            })?;
        }
        if let Some(s) = get("HIPMCL_RECV_DEADLINE_MS") {
            let ms: u64 = s.parse().map_err(|_| {
                format!("HIPMCL_RECV_DEADLINE_MS: not a number: {s:?} (milliseconds; 0 = off)")
            })?;
            self.recv_deadline = Some((ms > 0).then(|| Duration::from_millis(ms)));
        }
        if let Some(s) = get("HIPMCL_SHM_RING_BYTES") {
            self.shm_ring_bytes = s.parse().map_err(|_| {
                format!("HIPMCL_SHM_RING_BYTES: not a number: {s:?} (ring capacity in bytes)")
            })?;
        }
        if let Some(s) = get("HIPMCL_TCP_ROOT") {
            self.socket.root = Some(parse_host_port("HIPMCL_TCP_ROOT", &s)?);
        }
        if let Some(s) = get("HIPMCL_TCP_BIND") {
            self.socket.bind = Some(parse_host_port("HIPMCL_TCP_BIND", &s)?);
        }
        if let Some(s) = get("HIPMCL_TCP_DIR") {
            if s.is_empty() {
                return Err(
                    "HIPMCL_TCP_DIR: empty path (unset the variable to use a fresh /dev/shm dir)"
                        .into(),
                );
            }
            self.socket.dir = Some(std::path::PathBuf::from(s));
        }
        if let Some(s) = get("HIPMCL_TCP_DIAL_TIMEOUT_MS") {
            let ms: u64 = s.parse().map_err(|_| {
                format!("HIPMCL_TCP_DIAL_TIMEOUT_MS: not a number: {s:?} (milliseconds, > 0)")
            })?;
            if ms == 0 {
                return Err(format!(
                    "HIPMCL_TCP_DIAL_TIMEOUT_MS: must be > 0, got {s:?} \
                     (a zero dial budget can never rendezvous)"
                ));
            }
            self.socket.dial_timeout = Duration::from_millis(ms);
        }
        Ok(self)
    }

    /// Replaces the transport.
    pub fn with_transport(mut self, t: TransportKind) -> Self {
        self.transport = t;
        self
    }

    /// Replaces the time model.
    pub fn with_time(mut self, t: TimeModel) -> Self {
        self.time = t;
        self
    }

    /// Overrides the receive deadline (`None` = deadlines off).
    pub fn with_recv_deadline(mut self, d: Option<Duration>) -> Self {
        self.recv_deadline = Some(d);
        self
    }

    /// The deadline actually in force after applying the policy default.
    /// An explicit override always wins. Otherwise remote transports
    /// ([`TransportKind::is_remote`]) get [`DEFAULT_RECV_DEADLINE`]
    /// under *every* time model — their peers are separate processes
    /// that can die independently, and a receive aimed at a corpse must
    /// fail with diagnostics, not hang (this used to key off the time
    /// model alone, which hung `HIPMCL_TIME=modeled` runs on real
    /// processes). In-process universes keep the time-model rule: off
    /// under Modeled (a deterministic run may legitimately idle at a
    /// blocking recv while a peer grinds), on under Measured.
    pub fn resolved_recv_deadline(&self) -> Option<Duration> {
        match self.recv_deadline {
            Some(explicit) => explicit,
            None if self.transport.is_remote() => Some(DEFAULT_RECV_DEADLINE),
            None => match self.time {
                TimeModel::Modeled => None,
                TimeModel::Measured => Some(DEFAULT_RECV_DEADLINE),
            },
        }
    }

    pub(crate) fn shared(&self) -> Arc<Shared> {
        Arc::new(Shared {
            model: self.model.clone(),
            time: self.time,
            recv_deadline: self.resolved_recv_deadline(),
        })
    }
}

/// Entry point of the simulated-MPI runtime.
pub struct Universe;

impl Universe {
    /// Runs `f` on `p` ranks (one OS thread each) under the given machine
    /// model and returns the per-rank results, indexed by rank. Always
    /// the deterministic default mode: in-process transport, modeled
    /// time.
    ///
    /// Rank bodies may use rayon internally for intra-rank threading (the
    /// OpenMP analogue); the global rayon pool is shared by all ranks,
    /// which matches the simulation's virtual-time accounting (intra-rank
    /// parallel speedup is *modeled* via
    /// [`MachineModel::thread_efficiency`], not measured).
    ///
    /// Panics in any rank propagate after all ranks are joined.
    pub fn run<R, F>(p: usize, model: MachineModel, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Sync,
    {
        run_threads(&UniverseConfig::new(p, model), &f)
    }

    /// Runs `f` under an explicit [`UniverseConfig`] — any transport,
    /// any time model. Results must be wire-encodable because the
    /// `process-shm` transport ships them back from child processes as
    /// bytes.
    pub fn run_with<R, F>(cfg: UniverseConfig, f: F) -> Vec<R>
    where
        R: WirePayload,
        F: Fn(Comm) -> R + Sync,
    {
        match cfg.transport {
            TransportKind::InProcess => run_threads(&cfg, &f),
            #[cfg(feature = "process-shm")]
            TransportKind::ProcessShm => crate::shm::run_processes(&cfg, &f),
            #[cfg(not(feature = "process-shm"))]
            TransportKind::ProcessShm => panic!(
                "transport process-shm requested but the `process-shm` cargo feature \
                 is not enabled; rebuild with --features process-shm"
            ),
            TransportKind::Tcp | TransportKind::Uds => crate::socket::run_sockets(&cfg, &f),
        }
    }

    /// [`Universe::run_with`] with the config read from the environment
    /// ([`UniverseConfig::from_env`]) — the dispatch point probes and
    /// workload tests use so `HIPMCL_TRANSPORT=process-shm cargo test`
    /// exercises the real byte-moving backend with zero code changes.
    pub fn run_dist<R, F>(p: usize, model: MachineModel, f: F) -> Vec<R>
    where
        R: WirePayload,
        F: Fn(Comm) -> R + Sync,
    {
        Self::run_with(UniverseConfig::from_env(p, model), f)
    }
}

/// The in-process engine: one scoped thread per rank over typed
/// channels. Used directly by [`Universe::run`] and for the
/// `InProcess` arm of [`Universe::run_with`]; the shm backend also
/// reuses it to deterministically replay earlier universes inside child
/// processes.
pub(crate) fn run_threads<R, F>(cfg: &UniverseConfig, f: &F) -> Vec<R>
where
    R: Send,
    F: Fn(Comm) -> R + Sync,
{
    let p = cfg.ranks;
    assert!(p > 0, "need at least one rank");
    let shared = cfg.shared();
    let endpoints = InProcessEndpoint::universe(p);

    std::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, ep)| {
                let shared = Arc::clone(&shared);
                scope.spawn(move || f(Comm::new_world(rank, p, shared, Box::new(ep))))
            })
            .collect();
        // Join everyone before propagating, so a panicking rank cannot
        // leave peers running against torn-down channels; then re-raise
        // the first rank's original payload (keeps `should_panic`
        // expectations pointed at the real message, not a generic
        // "rank panicked").
        let results: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        results
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_rank_ordered() {
        let results = Universe::run(5, MachineModel::summit(), |comm| comm.rank() * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn single_rank_universe() {
        let results = Universe::run(1, MachineModel::summit(), |comm| {
            assert_eq!(comm.size(), 1);
            comm.advance_clock(2.0);
            comm.now()
        });
        assert_eq!(results, vec![2.0]);
    }

    #[test]
    fn sequential_universes_are_independent() {
        for _ in 0..3 {
            let r = Universe::run(3, MachineModel::summit(), |comm| {
                if comm.rank() == 0 {
                    comm.send(2, 0, 99u32);
                    0
                } else if comm.rank() == 2 {
                    comm.recv::<u32>(0, 0)
                } else {
                    0
                }
            });
            assert_eq!(r[2], 99);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Universe::run(0, MachineModel::summit(), |_| ());
    }

    #[test]
    fn rank_panics_propagate_with_original_message() {
        let caught = std::panic::catch_unwind(|| {
            let _ = Universe::run(2, MachineModel::summit(), |comm| {
                if comm.rank() == 1 {
                    panic!("deliberate rank failure");
                }
            });
        })
        .unwrap_err();
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("deliberate rank failure"), "got {msg:?}");
    }

    #[test]
    fn config_deadline_policy_defaults() {
        let m = MachineModel::summit;
        assert_eq!(UniverseConfig::new(2, m()).resolved_recv_deadline(), None);
        assert_eq!(
            UniverseConfig::new(2, m())
                .with_time(TimeModel::Measured)
                .resolved_recv_deadline(),
            Some(DEFAULT_RECV_DEADLINE)
        );
        assert_eq!(
            UniverseConfig::new(2, m())
                .with_time(TimeModel::Measured)
                .with_recv_deadline(None)
                .resolved_recv_deadline(),
            None,
            "explicit off beats the Measured default"
        );
        assert_eq!(
            UniverseConfig::new(2, m())
                .with_recv_deadline(Some(Duration::from_millis(5)))
                .resolved_recv_deadline(),
            Some(Duration::from_millis(5))
        );
    }

    #[test]
    fn remote_transports_default_to_a_deadline_even_under_modeled_time() {
        // The regression this pins: a dead peer process under
        // HIPMCL_TIME=modeled used to hang the survivors forever because
        // the deadline keyed off the time model alone.
        let m = MachineModel::summit;
        for t in [
            TransportKind::ProcessShm,
            TransportKind::Tcp,
            TransportKind::Uds,
        ] {
            let cfg = UniverseConfig::new(2, m()).with_transport(t);
            assert_eq!(cfg.time, TimeModel::Modeled);
            assert_eq!(
                cfg.resolved_recv_deadline(),
                Some(DEFAULT_RECV_DEADLINE),
                "remote transport {t} must have a default deadline"
            );
            assert_eq!(
                cfg.with_recv_deadline(None).resolved_recv_deadline(),
                None,
                "explicit off still wins on {t}"
            );
        }
    }

    fn env_of<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |key| {
            pairs
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn apply_env_accepts_well_formed_socket_settings() {
        let cfg = UniverseConfig::new(4, MachineModel::summit())
            .apply_env(env_of(&[
                ("HIPMCL_TRANSPORT", "tcp"),
                ("HIPMCL_TCP_ROOT", "10.0.0.1:7177"),
                ("HIPMCL_TCP_BIND", "0.0.0.0:0"),
                ("HIPMCL_TCP_DIR", "/tmp/mcl-session"),
                ("HIPMCL_TCP_DIAL_TIMEOUT_MS", "1500"),
            ]))
            .unwrap();
        assert_eq!(cfg.transport, TransportKind::Tcp);
        assert_eq!(cfg.socket.root.as_deref(), Some("10.0.0.1:7177"));
        assert_eq!(cfg.socket.bind.as_deref(), Some("0.0.0.0:0"));
        assert_eq!(
            cfg.socket.dir.as_deref(),
            Some(std::path::Path::new("/tmp/mcl-session"))
        );
        assert_eq!(cfg.socket.dial_timeout, Duration::from_millis(1500));
    }

    #[test]
    fn apply_env_rejects_malformed_values_with_actionable_messages() {
        let m = MachineModel::summit;
        let cases: &[(&str, &str, &str)] = &[
            (
                "HIPMCL_TRANSPORT",
                "carrier-pigeon",
                "in-process | process-shm | tcp | uds",
            ),
            ("HIPMCL_TCP_ROOT", "no-port-here", "HOST:PORT"),
            ("HIPMCL_TCP_ROOT", ":7177", "empty host"),
            ("HIPMCL_TCP_ROOT", "host:70000", "not a u16"),
            ("HIPMCL_TCP_BIND", "host:port", "not a u16"),
            ("HIPMCL_TCP_DIR", "", "empty path"),
            ("HIPMCL_TCP_DIAL_TIMEOUT_MS", "soon", "not a number"),
            ("HIPMCL_TCP_DIAL_TIMEOUT_MS", "0", "must be > 0"),
            ("HIPMCL_RECV_DEADLINE_MS", "1e3", "not a number"),
        ];
        for (var, value, expect) in cases {
            let err = UniverseConfig::new(2, m())
                .apply_env(env_of(&[(var, value)]))
                .unwrap_err();
            assert!(
                err.contains(var) && err.contains(expect),
                "{var}={value:?}: message {err:?} should name the variable and say {expect:?}"
            );
        }
    }

    #[test]
    fn run_with_in_process_matches_run() {
        let cfg = UniverseConfig::new(3, MachineModel::summit());
        let a = Universe::run_with(cfg, |comm| comm.rank() as u64 * 7);
        let b = Universe::run(3, MachineModel::summit(), |comm| comm.rank() as u64 * 7);
        assert_eq!(a, b);
    }
}
