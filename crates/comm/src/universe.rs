//! The universe: spawns `P` ranks and hands each a world communicator,
//! like `mpirun`.
//!
//! A universe is configured by transport × time model
//! ([`UniverseConfig`]): any [`TransportKind`] composes with any
//! [`TimeModel`]. [`Universe::run`] is the legacy deterministic entry
//! point (in-process threads, modeled time, bit-identical to the
//! pre-transport-split runtime); [`Universe::run_with`] takes an
//! explicit config; [`Universe::run_dist`] reads the config from the
//! environment (`HIPMCL_TRANSPORT`, `HIPMCL_TIME`,
//! `HIPMCL_RECV_DEADLINE_MS`) so one binary serves every mode.

use crate::clock::TimeModel;
use crate::comm::{Comm, Shared};
use crate::machine::MachineModel;
use crate::packet::WirePayload;
use crate::transport::{InProcessEndpoint, TransportKind};
use std::sync::Arc;
use std::time::Duration;

/// Default receive deadline under [`TimeModel::Measured`]: long enough
/// for any honest workload step, short enough to fail a hung test run.
pub const DEFAULT_MEASURED_RECV_DEADLINE: Duration = Duration::from_secs(30);

/// Full configuration of a universe: rank count, machine model,
/// transport, time model, receive-deadline policy.
#[derive(Clone, Debug)]
pub struct UniverseConfig {
    /// Number of ranks.
    pub ranks: usize,
    /// The α–β/kernel cost model charged on the modeled clock.
    pub model: MachineModel,
    /// How bytes move between ranks.
    pub transport: TransportKind,
    /// How time is charged.
    pub time: TimeModel,
    /// Receive-deadline override: `Some(None)` forces deadlines off,
    /// `Some(Some(d))` forces `d`, `None` uses the policy default
    /// (off under Modeled, [`DEFAULT_MEASURED_RECV_DEADLINE`] under
    /// Measured).
    pub recv_deadline: Option<Option<Duration>>,
    /// Per-directed-pair ring capacity for the `process-shm` transport.
    pub shm_ring_bytes: usize,
}

impl UniverseConfig {
    /// The deterministic default: in-process transport, modeled time,
    /// no deadline.
    pub fn new(ranks: usize, model: MachineModel) -> Self {
        Self {
            ranks,
            model,
            transport: TransportKind::default(),
            time: TimeModel::default(),
            recv_deadline: None,
            shm_ring_bytes: 16 << 20,
        }
    }

    /// Reads transport/time/deadline overrides from the environment:
    /// `HIPMCL_TRANSPORT` (`in-process` | `process-shm`), `HIPMCL_TIME`
    /// (`modeled` | `measured`), `HIPMCL_RECV_DEADLINE_MS` (`0` = off),
    /// `HIPMCL_SHM_RING_BYTES`. Unset variables keep the defaults.
    pub fn from_env(ranks: usize, model: MachineModel) -> Self {
        let mut cfg = Self::new(ranks, model);
        if let Ok(s) = std::env::var("HIPMCL_TRANSPORT") {
            cfg.transport = TransportKind::parse(&s)
                .unwrap_or_else(|| panic!("HIPMCL_TRANSPORT: unknown transport {s:?}"));
        }
        if let Ok(s) = std::env::var("HIPMCL_TIME") {
            cfg.time = TimeModel::parse(&s)
                .unwrap_or_else(|| panic!("HIPMCL_TIME: unknown time model {s:?}"));
        }
        if let Ok(s) = std::env::var("HIPMCL_RECV_DEADLINE_MS") {
            let ms: u64 = s
                .parse()
                .unwrap_or_else(|_| panic!("HIPMCL_RECV_DEADLINE_MS: not a number: {s:?}"));
            cfg.recv_deadline = Some((ms > 0).then(|| Duration::from_millis(ms)));
        }
        if let Ok(s) = std::env::var("HIPMCL_SHM_RING_BYTES") {
            cfg.shm_ring_bytes = s
                .parse()
                .unwrap_or_else(|_| panic!("HIPMCL_SHM_RING_BYTES: not a number: {s:?}"));
        }
        cfg
    }

    /// Replaces the transport.
    pub fn with_transport(mut self, t: TransportKind) -> Self {
        self.transport = t;
        self
    }

    /// Replaces the time model.
    pub fn with_time(mut self, t: TimeModel) -> Self {
        self.time = t;
        self
    }

    /// Overrides the receive deadline (`None` = deadlines off).
    pub fn with_recv_deadline(mut self, d: Option<Duration>) -> Self {
        self.recv_deadline = Some(d);
        self
    }

    /// The deadline actually in force after applying the policy default:
    /// off under Modeled (deterministic runs may legitimately idle at a
    /// blocking recv while a peer grinds), on under Measured (a silent
    /// tag would otherwise hang a wall-clock run forever).
    pub fn resolved_recv_deadline(&self) -> Option<Duration> {
        match self.recv_deadline {
            Some(explicit) => explicit,
            None => match self.time {
                TimeModel::Modeled => None,
                TimeModel::Measured => Some(DEFAULT_MEASURED_RECV_DEADLINE),
            },
        }
    }

    pub(crate) fn shared(&self) -> Arc<Shared> {
        Arc::new(Shared {
            model: self.model.clone(),
            time: self.time,
            recv_deadline: self.resolved_recv_deadline(),
        })
    }
}

/// Entry point of the simulated-MPI runtime.
pub struct Universe;

impl Universe {
    /// Runs `f` on `p` ranks (one OS thread each) under the given machine
    /// model and returns the per-rank results, indexed by rank. Always
    /// the deterministic default mode: in-process transport, modeled
    /// time.
    ///
    /// Rank bodies may use rayon internally for intra-rank threading (the
    /// OpenMP analogue); the global rayon pool is shared by all ranks,
    /// which matches the simulation's virtual-time accounting (intra-rank
    /// parallel speedup is *modeled* via
    /// [`MachineModel::thread_efficiency`], not measured).
    ///
    /// Panics in any rank propagate after all ranks are joined.
    pub fn run<R, F>(p: usize, model: MachineModel, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Sync,
    {
        run_threads(&UniverseConfig::new(p, model), &f)
    }

    /// Runs `f` under an explicit [`UniverseConfig`] — any transport,
    /// any time model. Results must be wire-encodable because the
    /// `process-shm` transport ships them back from child processes as
    /// bytes.
    pub fn run_with<R, F>(cfg: UniverseConfig, f: F) -> Vec<R>
    where
        R: WirePayload,
        F: Fn(Comm) -> R + Sync,
    {
        match cfg.transport {
            TransportKind::InProcess => run_threads(&cfg, &f),
            #[cfg(feature = "process-shm")]
            TransportKind::ProcessShm => crate::shm::run_processes(&cfg, &f),
            #[cfg(not(feature = "process-shm"))]
            TransportKind::ProcessShm => panic!(
                "transport process-shm requested but the `process-shm` cargo feature \
                 is not enabled; rebuild with --features process-shm"
            ),
        }
    }

    /// [`Universe::run_with`] with the config read from the environment
    /// ([`UniverseConfig::from_env`]) — the dispatch point probes and
    /// workload tests use so `HIPMCL_TRANSPORT=process-shm cargo test`
    /// exercises the real byte-moving backend with zero code changes.
    pub fn run_dist<R, F>(p: usize, model: MachineModel, f: F) -> Vec<R>
    where
        R: WirePayload,
        F: Fn(Comm) -> R + Sync,
    {
        Self::run_with(UniverseConfig::from_env(p, model), f)
    }
}

/// The in-process engine: one scoped thread per rank over typed
/// channels. Used directly by [`Universe::run`] and for the
/// `InProcess` arm of [`Universe::run_with`]; the shm backend also
/// reuses it to deterministically replay earlier universes inside child
/// processes.
pub(crate) fn run_threads<R, F>(cfg: &UniverseConfig, f: &F) -> Vec<R>
where
    R: Send,
    F: Fn(Comm) -> R + Sync,
{
    let p = cfg.ranks;
    assert!(p > 0, "need at least one rank");
    let shared = cfg.shared();
    let endpoints = InProcessEndpoint::universe(p);

    std::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, ep)| {
                let shared = Arc::clone(&shared);
                scope.spawn(move || f(Comm::new_world(rank, p, shared, Box::new(ep))))
            })
            .collect();
        // Join everyone before propagating, so a panicking rank cannot
        // leave peers running against torn-down channels; then re-raise
        // the first rank's original payload (keeps `should_panic`
        // expectations pointed at the real message, not a generic
        // "rank panicked").
        let results: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        results
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_rank_ordered() {
        let results = Universe::run(5, MachineModel::summit(), |comm| comm.rank() * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn single_rank_universe() {
        let results = Universe::run(1, MachineModel::summit(), |comm| {
            assert_eq!(comm.size(), 1);
            comm.advance_clock(2.0);
            comm.now()
        });
        assert_eq!(results, vec![2.0]);
    }

    #[test]
    fn sequential_universes_are_independent() {
        for _ in 0..3 {
            let r = Universe::run(3, MachineModel::summit(), |comm| {
                if comm.rank() == 0 {
                    comm.send(2, 0, 99u32);
                    0
                } else if comm.rank() == 2 {
                    comm.recv::<u32>(0, 0)
                } else {
                    0
                }
            });
            assert_eq!(r[2], 99);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Universe::run(0, MachineModel::summit(), |_| ());
    }

    #[test]
    fn rank_panics_propagate_with_original_message() {
        let caught = std::panic::catch_unwind(|| {
            let _ = Universe::run(2, MachineModel::summit(), |comm| {
                if comm.rank() == 1 {
                    panic!("deliberate rank failure");
                }
            });
        })
        .unwrap_err();
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("deliberate rank failure"), "got {msg:?}");
    }

    #[test]
    fn config_deadline_policy_defaults() {
        let m = MachineModel::summit;
        assert_eq!(UniverseConfig::new(2, m()).resolved_recv_deadline(), None);
        assert_eq!(
            UniverseConfig::new(2, m())
                .with_time(TimeModel::Measured)
                .resolved_recv_deadline(),
            Some(DEFAULT_MEASURED_RECV_DEADLINE)
        );
        assert_eq!(
            UniverseConfig::new(2, m())
                .with_time(TimeModel::Measured)
                .with_recv_deadline(None)
                .resolved_recv_deadline(),
            None,
            "explicit off beats the Measured default"
        );
        assert_eq!(
            UniverseConfig::new(2, m())
                .with_recv_deadline(Some(Duration::from_millis(5)))
                .resolved_recv_deadline(),
            Some(Duration::from_millis(5))
        );
    }

    #[test]
    fn run_with_in_process_matches_run() {
        let cfg = UniverseConfig::new(3, MachineModel::summit());
        let a = Universe::run_with(cfg, |comm| comm.rank() as u64 * 7);
        let b = Universe::run(3, MachineModel::summit(), |comm| comm.rank() as u64 * 7);
        assert_eq!(a, b);
    }
}
