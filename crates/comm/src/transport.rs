//! The transport layer: *how bytes move between ranks*, divorced from
//! *how time is charged* ([`crate::clock::TimeModel`]).
//!
//! A transport is anything that can deliver length-prefixed frames
//! between world ranks with matched send/recv semantics. Everything
//! else — tag matching, α–β charging, collectives (barrier, bcast,
//! reduce, gather), and communicator splitting — is derived from that
//! one primitive in [`crate::comm`] and [`crate::collectives`], so every
//! transport gets the full MPI-like surface for free and all transports
//! produce bit-identical results.
//!
//! Four transports ship:
//!
//! * [`TransportKind::InProcess`] — ranks are OS threads, frames move
//!   through typed crossbeam channels as `Box<dyn Any>`. No bytes are
//!   serialized; this is the default and is fully deterministic under
//!   [`crate::clock::TimeModel::Modeled`].
//! * [`TransportKind::ProcessShm`] (feature `process-shm`) — ranks are
//!   OS *processes*, frames are wire-encoded
//!   ([`hipmcl_sparse::wire`]) and moved through single-producer
//!   single-consumer shared-memory rings. Real bytes, real copies, real
//!   wall time.
//! * [`TransportKind::Tcp`] — ranks are OS processes, possibly on
//!   *different machines*, moving the same frame format over TCP
//!   streams after a rank-0 rendezvous ([`crate::socket`]).
//! * [`TransportKind::Uds`] — the same socket backend over Unix-domain
//!   stream sockets: single-host only, but skips the TCP/IP stack and
//!   needs no free port.

use std::any::Any;
use std::time::Duration;

/// Which transport a universe runs on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// Threads + typed channels (the default; deterministic, zero-copy).
    #[default]
    InProcess,
    /// OS processes + serialized frames over shared-memory rings.
    /// Requires the `process-shm` cargo feature at runtime.
    ProcessShm,
    /// OS processes + serialized frames over TCP streams; the only
    /// transport that spans machines. Always built (pure std).
    Tcp,
    /// OS processes + serialized frames over Unix-domain stream
    /// sockets — the socket backend without the TCP/IP stack, for
    /// single-host runs that want real sockets but no port.
    Uds,
}

impl TransportKind {
    /// Parses `HIPMCL_TRANSPORT`-style names.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "in-process" | "inprocess" | "threads" => Some(Self::InProcess),
            "process-shm" | "shm" | "processes" => Some(Self::ProcessShm),
            "tcp" | "socket" | "sockets" => Some(Self::Tcp),
            "uds" | "unix" | "unix-domain" => Some(Self::Uds),
            _ => None,
        }
    }

    /// Canonical name (the one `parse` round-trips).
    pub fn name(self) -> &'static str {
        match self {
            Self::InProcess => "in-process",
            Self::ProcessShm => "process-shm",
            Self::Tcp => "tcp",
            Self::Uds => "uds",
        }
    }

    /// `true` for transports whose ranks are separate OS processes, so a
    /// peer can die *independently* (crash, OOM-kill, unplugged cable)
    /// while this rank keeps running. Remote transports get a receive
    /// deadline by default under **every** time model — a dead peer must
    /// surface as a diagnostic, never as an infinite hang.
    pub fn is_remote(self) -> bool {
        match self {
            Self::InProcess => false,
            Self::ProcessShm | Self::Tcp | Self::Uds => true,
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Frame metadata — everything the receiver needs for tag matching and
/// α–β charging, independent of how the payload travelled.
#[derive(Clone, Copy, Debug)]
pub struct FrameHeader {
    /// World rank of the sender.
    pub src_world: usize,
    /// Communicator context (world = 0; splits derive ids), preventing
    /// cross-communicator tag collisions.
    pub ctx: u64,
    /// User or collective tag.
    pub tag: u64,
    /// Sender's *modeled* clock at send time. Travels with the frame on
    /// every transport so modeled accounting is transport-invariant.
    pub send_clock: f64,
    /// Modeled wire size in bytes (what the α–β model charges).
    pub bytes: usize,
}

/// Fixed serialized size of a [`FrameHeader`] on byte-oriented
/// transports: five 8-byte little-endian words.
pub const FRAME_HEADER_BYTES: usize = 40;

impl FrameHeader {
    /// Serializes the header (always exactly [`FRAME_HEADER_BYTES`]).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.src_world as u64).to_le_bytes());
        out.extend_from_slice(&self.ctx.to_le_bytes());
        out.extend_from_slice(&self.tag.to_le_bytes());
        out.extend_from_slice(&self.send_clock.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.bytes as u64).to_le_bytes());
    }

    /// Deserializes a header from exactly [`FRAME_HEADER_BYTES`] bytes.
    pub fn decode(buf: &[u8; FRAME_HEADER_BYTES]) -> Self {
        let word = |i: usize| u64::from_le_bytes(buf[i * 8..(i + 1) * 8].try_into().unwrap());
        Self {
            src_world: word(0) as usize,
            ctx: word(1),
            tag: word(2),
            send_clock: f64::from_bits(word(3)),
            bytes: word(4) as usize,
        }
    }
}

/// A frame's payload: either the typed value itself (in-process, no
/// serialization) or its wire encoding (byte-oriented transports).
pub enum FramePayload {
    /// The boxed value, moved by pointer between threads.
    Typed(Box<dyn Any + Send>),
    /// The wire-encoded bytes, decoded by the receiver.
    Bytes(Vec<u8>),
}

impl std::fmt::Debug for FramePayload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Typed(_) => f.write_str("Typed(..)"),
            Self::Bytes(b) => write!(f, "Bytes({} B)", b.len()),
        }
    }
}

/// One in-flight message.
#[derive(Debug)]
pub struct Frame {
    /// Matching/charging metadata.
    pub header: FrameHeader,
    /// The payload.
    pub payload: FramePayload,
}

/// Why a blocking receive returned without a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvError {
    /// The deadline elapsed with no frame arriving.
    Timeout,
    /// All peers hung up (a rank panicked or exited).
    Disconnected,
    /// A specific peer's connection closed (process died, stream broke,
    /// corrupt framing). Carries the peer's world rank; the transport
    /// keeps a reason string retrievable via
    /// [`Endpoint::closed_peer_info`].
    PeerClosed(usize),
}

/// A rank's connection to its universe: matched frame send/recv.
///
/// This is the entire transport contract. Tag matching, out-of-order
/// buffering, clock charging, deadlines, collectives and `split` are
/// all layered on top by [`crate::comm::Comm`], identically for every
/// implementation.
pub trait Endpoint {
    /// Which transport this endpoint belongs to.
    fn kind(&self) -> TransportKind;

    /// `true` if payloads must travel as [`FramePayload::Bytes`].
    /// Senders consult this to decide whether to wire-encode.
    fn byte_oriented(&self) -> bool;

    /// Delivers `frame` to `dst_world`'s incoming queue. May block on
    /// transport backpressure but never on the receiver's progress
    /// through unrelated tags.
    fn send_frame(&self, dst_world: usize, frame: Frame);

    /// Blocks for the next incoming frame (any source, any tag — the
    /// caller does the matching). `timeout` of `None` waits forever.
    fn recv_frame(&self, timeout: Option<Duration>) -> Result<Frame, RecvError>;

    /// If the connection to `world` is known dead, the reason ("connection
    /// closed", "read error: …"). Transports with per-peer connections
    /// (sockets) record closures here so a receive aimed at a dead peer
    /// fails fast with diagnostics instead of waiting out the deadline.
    fn closed_peer_info(&self, world: usize) -> Option<String> {
        let _ = world;
        None
    }
}

/// The default transport: typed crossbeam channels between rank threads.
pub struct InProcessEndpoint {
    senders: std::sync::Arc<Vec<crossbeam_channel::Sender<Frame>>>,
    rx: crossbeam_channel::Receiver<Frame>,
}

impl InProcessEndpoint {
    /// Builds the full set of endpoints for a `p`-rank universe, indexed
    /// by rank.
    pub fn universe(p: usize) -> Vec<Self> {
        let (senders, receivers): (Vec<_>, Vec<_>) = (0..p)
            .map(|_| crossbeam_channel::unbounded::<Frame>())
            .unzip();
        let senders = std::sync::Arc::new(senders);
        receivers
            .into_iter()
            .map(|rx| Self {
                senders: std::sync::Arc::clone(&senders),
                rx,
            })
            .collect()
    }
}

impl Endpoint for InProcessEndpoint {
    fn kind(&self) -> TransportKind {
        TransportKind::InProcess
    }

    fn byte_oriented(&self) -> bool {
        false
    }

    fn send_frame(&self, dst_world: usize, frame: Frame) {
        self.senders[dst_world]
            .send(frame)
            .expect("peer rank hung up (panicked?)");
    }

    fn recv_frame(&self, timeout: Option<Duration>) -> Result<Frame, RecvError> {
        match timeout {
            None => self.rx.recv().map_err(|_| RecvError::Disconnected),
            Some(d) => self.rx.recv_timeout(d).map_err(|e| match e {
                crossbeam_channel::RecvTimeoutError::Timeout => RecvError::Timeout,
                crossbeam_channel::RecvTimeoutError::Disconnected => RecvError::Disconnected,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_roundtrips() {
        for k in [
            TransportKind::InProcess,
            TransportKind::ProcessShm,
            TransportKind::Tcp,
            TransportKind::Uds,
        ] {
            assert_eq!(TransportKind::parse(k.name()), Some(k));
        }
        assert_eq!(TransportKind::parse("shm"), Some(TransportKind::ProcessShm));
        assert_eq!(TransportKind::parse("sockets"), Some(TransportKind::Tcp));
        assert_eq!(TransportKind::parse("SOCKET"), Some(TransportKind::Tcp));
        assert_eq!(TransportKind::parse("unix"), Some(TransportKind::Uds));
        assert_eq!(
            TransportKind::parse("unix-domain"),
            Some(TransportKind::Uds)
        );
        assert_eq!(TransportKind::parse("bogus"), None);
        assert_eq!(TransportKind::default(), TransportKind::InProcess);
    }

    #[test]
    fn remote_classification() {
        assert!(!TransportKind::InProcess.is_remote());
        assert!(TransportKind::ProcessShm.is_remote());
        assert!(TransportKind::Tcp.is_remote());
        assert!(TransportKind::Uds.is_remote());
    }

    #[test]
    fn header_encoding_is_fixed_width_and_exact() {
        let h = FrameHeader {
            src_world: 3,
            ctx: 0xdead_beef,
            tag: (1 << 63) | 17,
            send_clock: -0.0,
            bytes: 1_000_000,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), FRAME_HEADER_BYTES);
        let back = FrameHeader::decode(&buf.try_into().unwrap());
        assert_eq!(back.src_world, 3);
        assert_eq!(back.ctx, 0xdead_beef);
        assert_eq!(back.tag, (1 << 63) | 17);
        assert_eq!(back.send_clock.to_bits(), (-0.0f64).to_bits());
        assert_eq!(back.bytes, 1_000_000);
    }

    #[test]
    fn in_process_endpoints_deliver_and_time_out() {
        let eps = InProcessEndpoint::universe(2);
        eps[0].send_frame(
            1,
            Frame {
                header: FrameHeader {
                    src_world: 0,
                    ctx: 0,
                    tag: 5,
                    send_clock: 0.0,
                    bytes: 8,
                },
                payload: FramePayload::Typed(Box::new(42u64)),
            },
        );
        let f = eps[1].recv_frame(None).unwrap();
        assert_eq!(f.header.tag, 5);
        assert_eq!(
            eps[1]
                .recv_frame(Some(Duration::from_millis(1)))
                .unwrap_err(),
            RecvError::Timeout
        );
    }
}
