//! Shared machinery for transports that run ranks as OS *processes*
//! (`process-shm` rings, TCP/Unix-domain sockets): re-exec bookkeeping,
//! session directories, and per-rank result files.
//!
//! # The re-exec / replay contract
//!
//! A closure cannot be shipped to another process, so every process
//! backend re-executes the current binary, `mpirun`-style, and lets the
//! child run the same program from the top until it reaches the target
//! `run_with` call. "The target" is identified by a per-thread **launch
//! ordinal** shared by *all* process transports: parent and child bump
//! it at the same call sites, so a TCP child on its way to universe 3
//! replays an earlier `process-shm` universe 1 in-process rather than
//! spawning a nested process tree. The consequence is the determinism
//! contract documented in the `shm` module: code executed before a
//! process-backed universe must be deterministic.
//!
//! A child learns its identity from the environment
//! ([`child_identity`]): which transport family launched it, its rank,
//! the world size, and — when a parent on the same host orchestrates the
//! launch — the session directory and target ordinal. Socket ranks
//! launched *by hand* on several machines (`HIPMCL_TCP_RANK` set, no
//! session directory) have no target ordinal: every socket universe they
//! reach runs over the wire, and results are exchanged through the
//! sockets themselves instead of through files.

use crate::packet::WirePayload;
use std::cell::Cell;
use std::path::{Path, PathBuf};

/// Environment of a `process-shm` child rank.
pub(crate) const SHM_ENV_DIR: &str = "HIPMCL_SHM_DIR";
pub(crate) const SHM_ENV_RANK: &str = "HIPMCL_SHM_RANK";
pub(crate) const SHM_ENV_RANKS: &str = "HIPMCL_SHM_RANKS";
pub(crate) const SHM_ENV_UNIVERSE: &str = "HIPMCL_SHM_UNIVERSE";

/// Environment of a socket (TCP / Unix-domain) child rank. `TCP` in the
/// names covers both socket transports — the Unix-domain variant is the
/// same launch protocol with paths instead of addresses.
pub(crate) const TCP_ENV_DIR: &str = "HIPMCL_TCP_DIR";
pub(crate) const TCP_ENV_RANK: &str = "HIPMCL_TCP_RANK";
pub(crate) const TCP_ENV_RANKS: &str = "HIPMCL_TCP_RANKS";
pub(crate) const TCP_ENV_UNIVERSE: &str = "HIPMCL_TCP_UNIVERSE";

/// Which process transport launched a child.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum LaunchFamily {
    /// Shared-memory rings (`HIPMCL_SHM_*`).
    Shm,
    /// Stream sockets (`HIPMCL_TCP_*`), TCP or Unix-domain.
    Socket,
}

/// A child rank's identity, read from the environment.
#[derive(Clone, Debug)]
pub(crate) struct ChildIdentity {
    /// Transport family that set the variables.
    pub family: LaunchFamily,
    /// This process's world rank.
    pub rank: usize,
    /// World size.
    pub ranks: usize,
    /// Ordinal of the universe this child serves, when a parent process
    /// orchestrates the launch. `None` for hand-launched socket ranks,
    /// which serve *every* socket universe the program reaches.
    pub universe: Option<u64>,
    /// Session directory (rings, rendezvous sockets, result files).
    /// Always present for parent-orchestrated launches.
    pub dir: Option<PathBuf>,
}

impl ChildIdentity {
    /// `true` if this launch `ordinal` is the one the child was spawned
    /// to serve. Hand-launched ranks serve every universe of their
    /// family.
    pub fn serves(&self, ordinal: u64) -> bool {
        match self.universe {
            Some(target) => target == ordinal,
            None => true,
        }
    }
}

thread_local! {
    /// Ordinal of the next process-backed universe requested on this
    /// thread, shared by every launch family (see module docs).
    static LAUNCH_ORDINAL: Cell<u64> = const { Cell::new(0) };
}

/// Issues the next launch ordinal. Every process transport calls this at
/// its `run_with` entry, parent or child, which is what keeps the
/// counters in lockstep across the re-exec boundary.
pub(crate) fn next_ordinal() -> u64 {
    LAUNCH_ORDINAL.with(|c| {
        let v = c.get();
        c.set(v + 1);
        v
    })
}

fn env_usize(key: &str) -> usize {
    std::env::var(key)
        .unwrap_or_else(|_| panic!("{key} must be set alongside the rank variable"))
        .parse()
        .unwrap_or_else(|_| panic!("{key}: not a number"))
}

/// Reads the child identity, if any, from the environment. At most one
/// launch family's rank variable may be set.
pub(crate) fn child_identity() -> Option<ChildIdentity> {
    let shm = std::env::var(SHM_ENV_RANK).ok();
    let tcp = std::env::var(TCP_ENV_RANK).ok();
    assert!(
        shm.is_none() || tcp.is_none(),
        "both {SHM_ENV_RANK} and {TCP_ENV_RANK} are set; a child belongs to one launch family"
    );
    if let Some(rank_s) = shm {
        let universe: u64 = std::env::var(SHM_ENV_UNIVERSE)
            .unwrap_or_else(|_| panic!("{SHM_ENV_UNIVERSE} must accompany {SHM_ENV_RANK}"))
            .parse()
            .unwrap_or_else(|_| panic!("{SHM_ENV_UNIVERSE}: not a number"));
        return Some(ChildIdentity {
            family: LaunchFamily::Shm,
            rank: rank_s
                .parse()
                .unwrap_or_else(|_| panic!("{SHM_ENV_RANK}: not a number")),
            ranks: env_usize(SHM_ENV_RANKS),
            universe: Some(universe),
            dir: Some(PathBuf::from(std::env::var(SHM_ENV_DIR).unwrap_or_else(
                |_| panic!("{SHM_ENV_DIR} must accompany {SHM_ENV_RANK}"),
            ))),
        });
    }
    if let Some(rank_s) = tcp {
        // A parent-orchestrated socket child carries a session directory
        // and a target ordinal; a hand-launched multi-host rank carries
        // neither and serves every socket universe.
        let universe = std::env::var(TCP_ENV_UNIVERSE).ok().map(|s| {
            s.parse()
                .unwrap_or_else(|_| panic!("{TCP_ENV_UNIVERSE}: not a number"))
        });
        return Some(ChildIdentity {
            family: LaunchFamily::Socket,
            rank: rank_s
                .parse()
                .unwrap_or_else(|_| panic!("{TCP_ENV_RANK}: not a number")),
            ranks: env_usize(TCP_ENV_RANKS),
            universe,
            dir: std::env::var(TCP_ENV_DIR).ok().map(PathBuf::from),
        });
    }
    None
}

/// Process-unique suffix for session directories (two tests running
/// process-backed universes concurrently in one binary must not collide).
pub(crate) fn unique_session_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Directory for session state: `/dev/shm` when present (tmpfs pages are
/// shared memory, and short Unix-socket paths live happily there),
/// otherwise the system temp dir.
pub(crate) fn session_root() -> PathBuf {
    let shm = Path::new("/dev/shm");
    if shm.is_dir() {
        shm.to_path_buf()
    } else {
        std::env::temp_dir()
    }
}

/// Creates a fresh uniquely-named session directory under
/// [`session_root`].
pub(crate) fn create_session_dir(prefix: &str) -> PathBuf {
    let dir = session_root().join(format!(
        "{prefix}-{}-{}",
        std::process::id(),
        unique_session_id()
    ));
    std::fs::create_dir_all(&dir).expect("create session dir");
    dir
}

/// Removes the session directory when the parent is done (or panics).
pub(crate) struct SessionGuard(pub PathBuf);

impl Drop for SessionGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Arguments that make a re-executed child reach this exact call site.
pub(crate) fn child_args() -> Vec<String> {
    match std::thread::current().name() {
        // Under `cargo test`, libtest names each test thread after the
        // test's full path — rerun exactly that test, serially.
        Some(name) if name != "main" => vec![
            name.to_string(),
            "--exact".into(),
            "--test-threads=1".into(),
            "--nocapture".into(),
        ],
        // A normal binary: replay its own command line.
        _ => std::env::args().skip(1).collect(),
    }
}

/// Where rank `rank` publishes its wire-encoded result.
pub(crate) fn result_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("result_{rank}.bin"))
}

/// Atomically publishes a child rank's encoded result (tmp + rename, so
/// the parent never reads a torn file).
pub(crate) fn write_result(dir: &Path, rank: usize, encoded: &[u8]) {
    let tmp = dir.join(format!("result_{rank}.tmp"));
    std::fs::write(&tmp, encoded).expect("write result");
    std::fs::rename(&tmp, result_path(dir, rank)).expect("publish result");
}

/// Reads and decodes every rank's result file, indexed by rank.
pub(crate) fn collect_results<R: WirePayload>(dir: &Path, p: usize) -> Vec<R> {
    (0..p)
        .map(|rank| {
            let path = result_path(dir, rank);
            let bytes =
                std::fs::read(&path).unwrap_or_else(|e| panic!("read result of rank {rank}: {e}"));
            R::decode_all(&bytes).unwrap_or_else(|e| panic!("decode result of rank {rank}: {e}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinals_increment_per_thread() {
        let a = next_ordinal();
        let b = next_ordinal();
        assert_eq!(b, a + 1);
        std::thread::spawn(|| assert_eq!(next_ordinal(), 0))
            .join()
            .unwrap();
    }

    #[test]
    fn session_dirs_are_unique() {
        let a = create_session_dir("hipmcl-launchtest");
        let b = create_session_dir("hipmcl-launchtest");
        assert_ne!(a, b);
        let _ga = SessionGuard(a.clone());
        let _gb = SessionGuard(b.clone());
        assert!(a.is_dir() && b.is_dir());
    }

    #[test]
    fn results_roundtrip_through_files() {
        let dir = create_session_dir("hipmcl-launchtest");
        let _g = SessionGuard(dir.clone());
        use hipmcl_sparse::wire::WireEncode;
        for rank in 0..3usize {
            write_result(&dir, rank, &(rank as u64 * 7).encoded());
        }
        let got: Vec<u64> = collect_results(&dir, 3);
        assert_eq!(got, vec![0, 7, 14]);
    }
}
