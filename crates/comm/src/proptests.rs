//! Property tests over the collective operations: for random rank counts,
//! roots and payloads, the tree implementations must agree with their
//! sequential specifications, and virtual clocks must satisfy basic
//! sanity (monotonicity, synchronization bounds).

use crate::collectives::*;
use crate::machine::MachineModel;
use crate::universe::Universe;
use proptest::prelude::*;

proptest! {
    // Thread-spawning tests are comparatively expensive; keep the case
    // counts modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn bcast_delivers_root_value(p in 1usize..10, root_sel in 0usize..10, payload in any::<u64>()) {
        let root = root_sel % p;
        let results = Universe::run(p, MachineModel::summit(), move |comm| {
            let v = (comm.rank() == root).then_some(payload);
            bcast(&comm, root, v)
        });
        prop_assert!(results.iter().all(|&v| v == payload));
    }

    #[test]
    fn reduce_matches_sequential_fold(p in 1usize..10, root_sel in 0usize..10, values in proptest::collection::vec(0u64..1000, 10)) {
        let root = root_sel % p;
        let vals = values.clone();
        let results = Universe::run(p, MachineModel::summit(), move |comm| {
            reduce(&comm, root, vals[comm.rank()], |a, b| a + b)
        });
        let expect: u64 = values[..p].iter().sum();
        prop_assert_eq!(results[root], Some(expect));
        for (r, v) in results.iter().enumerate() {
            if r != root {
                prop_assert_eq!(*v, None);
            }
        }
    }

    #[test]
    fn allgather_orders_by_rank(p in 1usize..10) {
        let results = Universe::run(p, MachineModel::summit(), |comm| {
            allgather(&comm, comm.rank() as u64 * 7)
        });
        let expect: Vec<u64> = (0..p as u64).map(|r| r * 7).collect();
        for r in results {
            prop_assert_eq!(&r, &expect);
        }
    }

    #[test]
    fn allreduce_is_rank_symmetric(p in 2usize..10, values in proptest::collection::vec(0u64..1000, 10)) {
        let vals = values.clone();
        let results = Universe::run(p, MachineModel::summit(), move |comm| {
            allreduce(&comm, vals[comm.rank()], u64::max)
        });
        let expect = *values[..p].iter().max().unwrap();
        prop_assert!(results.iter().all(|&v| v == expect));
    }

    #[test]
    fn clocks_never_regress_through_collectives(p in 2usize..8, busy in proptest::collection::vec(0u32..1000, 8)) {
        let busy = busy.clone();
        let results = Universe::run(p, MachineModel::summit(), move |comm| {
            let before = comm.now();
            comm.advance_clock(busy[comm.rank()] as f64 * 1e-6);
            let mid = comm.now();
            barrier(&comm);
            let after = comm.now();
            (before, mid, after)
        });
        // After a barrier every clock is at least the max pre-barrier time.
        let max_mid = results.iter().map(|&(_, m, _)| m).fold(0.0f64, f64::max);
        for &(before, mid, after) in &results {
            prop_assert!(mid >= before);
            prop_assert!(after >= mid);
            prop_assert!(after >= max_mid, "barrier must not finish before the slowest rank");
        }
    }

    #[test]
    fn split_reassignment_matches_reference(p in 2usize..10,
                                            colors in proptest::collection::vec(0u64..4, 10),
                                            keys in proptest::collection::vec(0u64..6, 10)) {
        // Arbitrary color/key reassignment must agree with the pure
        // reference model of MPI_Comm_split: group = ranks with my
        // color, ordered by (key, parent rank). The reference is
        // transport-independent — the deterministic cross-transport
        // equality of the actual implementation is pinned by
        // `shm::tests::split_ordering_identical_across_transports`.
        let (c, k) = (colors.clone(), keys.clone());
        let results = Universe::run(p, MachineModel::summit(), move |comm| {
            let r = comm.rank();
            let mut comm = comm;
            let sub = comm.split(c[r], k[r]);
            let members: Vec<u64> = allgather(&sub, comm.rank() as u64);
            (sub.rank(), sub.size(), members)
        });
        for (world_rank, (sub_rank, sub_size, members)) in results.iter().enumerate() {
            let mut expect: Vec<(u64, usize)> = (0..p)
                .filter(|&r| colors[r] == colors[world_rank])
                .map(|r| (keys[r], r))
                .collect();
            expect.sort();
            let expect_ranks: Vec<u64> = expect.iter().map(|&(_, r)| r as u64).collect();
            prop_assert_eq!(*sub_size, expect_ranks.len());
            prop_assert_eq!(members, &expect_ranks, "membership ordered by (key, parent)");
            prop_assert_eq!(
                expect_ranks[*sub_rank], world_rank as u64,
                "each rank lands at its reference position"
            );
        }
    }

    #[test]
    fn split_groups_are_self_consistent(p in 2usize..10, modulo in 2usize..4) {
        let m = modulo;
        let results = Universe::run(p, MachineModel::summit(), move |comm| {
            let color = (comm.rank() % m) as u64;
            let mut comm = comm;
            let sub = comm.split(color, comm.rank() as u64);
            // Every member sees the same member list, ordered by key.
            let members: Vec<u64> = allgather(&sub, comm.rank() as u64);
            (color, sub.rank(), members)
        });
        for (world_rank, (color, sub_rank, members)) in results.iter().enumerate() {
            let expect: Vec<u64> =
                (0..p as u64).filter(|r| r % m as u64 == *color).collect();
            prop_assert_eq!(members, &expect);
            prop_assert_eq!(members[*sub_rank], world_rank as u64, "own slot holds own rank");
        }
    }
}
