//! Simulated-MPI communication substrate for `hipmcl-rs`.
//!
//! HipMCL is an MPI + OpenMP code; this reproduction has no MPI cluster, so
//! the distributed algorithms run on a message-passing runtime instead (see
//! DESIGN.md, substitution table). The substrate is built from two
//! *orthogonal* axes, chosen per universe and invisible to algorithm code:
//!
//! **Transport** ([`transport::Endpoint`], [`TransportKind`]) — how frames
//! physically move between ranks. Every message is a length-prefixed frame
//! (`[FrameHeader][payload]`); collectives (broadcast, reduce, gather,
//! barrier, split) are built from matched point-to-point sends over
//! binomial trees exactly as a small MPI would build them, *above* the
//! transport, so every backend inherits them unchanged.
//!
//! * [`TransportKind::InProcess`] (default): ranks are OS threads, frames
//!   ride typed in-memory channels — fast, deterministic, zero-copy for
//!   large slabs (`Arc` payloads).
//! * [`TransportKind::ProcessShm`] (`--features process-shm`, `shm` module):
//!   ranks are OS processes; frames are byte-encoded ([`WirePayload`]'s
//!   explicit little-endian wire format) and move through shared-memory
//!   SPSC rings. Real serialization, real cross-address-space movement.
//! * [`TransportKind::Tcp`] / [`TransportKind::Uds`] ([`socket`] module,
//!   always built — pure std): ranks are OS processes moving the same
//!   frames over stream sockets after a rank-0 rendezvous. TCP is the
//!   only transport that spans *machines* (hand-launch ranks with
//!   `HIPMCL_TCP_RANK` / `HIPMCL_TCP_RANKS` / `HIPMCL_TCP_ROOT`); the
//!   Unix-domain variant is the same backend without the TCP/IP stack.
//!   Remote transports get a receive deadline by default under every
//!   time model, and a dead peer surfaces as a rank/tag/peer diagnostic
//!   instead of a hang.
//!
//! **Time model** ([`TimeModel`], [`clock`]) — how time is charged.
//!
//! * [`TimeModel::Modeled`] (default): every rank carries a virtual clock;
//!   message receipt charges an α–β (latency + bytes/bandwidth) cost from
//!   the [`machine::MachineModel`]; compute sections charge kernel-model
//!   durations. Tree collectives accumulate these along their critical
//!   path, so `lg p` factors, load imbalance, and idle time emerge rather
//!   than being hand-computed. This is what lets a laptop reproduce the
//!   *shape* of 100–1024-node Summit results. Modeled mode never reads the
//!   host clock.
//! * [`TimeModel::Measured`]: the modeled clock still runs (and stays
//!   authoritative — schedules, stats, and results are bit-identical to
//!   Modeled), but ranks *additionally* sample the monotonic host clock,
//!   so reports carry a real wall-time breakdown next to the modeled one,
//!   and blocking receives gain a deadline that panics with rank/tag/src
//!   diagnostics instead of hanging.
//!
//! The invariant tying the axes together: **what is computed is a property
//! of the algorithm alone**. Cluster labels, modeled times, and comm
//! schedules are bit-identical across all transport × time combinations
//! (`probe_transport` asserts this end-to-end on the Archaea workload).
//!
//! Entry point: [`universe::Universe::run`] spawns `P` ranks and hands
//! each a [`comm::Comm`]; [`universe::Universe::run_with`] takes a
//! [`UniverseConfig`] selecting transport and time model, and
//! [`universe::Universe::run_dist`] reads them from `HIPMCL_TRANSPORT` /
//! `HIPMCL_TIME` so tests and benches can be re-run under any combination
//! without code changes.

pub mod clock;
pub mod collectives;
pub mod comm;
pub mod grid;
pub(crate) mod launch;
pub mod machine;
pub mod packet;
#[cfg(feature = "process-shm")]
pub mod shm;
pub mod socket;
pub mod transport;
pub mod universe;

pub use clock::{CommStats, Event, RankClock, StageTimers, TimeModel, Timeline, VClock};
pub use comm::Comm;
pub use grid::ProcGrid;
pub use hipmcl_sparse::wire::{WireDecode, WireEncode, WireError, WireReader};
pub use machine::{CommMode, GpuLib, MachineModel, MergeKernel, SpgemmKernel};
pub use packet::{WirePayload, WireSize};
pub use transport::{Endpoint, Frame, FrameHeader, FramePayload, RecvError, TransportKind};
pub use universe::{SocketConfig, Universe, UniverseConfig};

#[cfg(test)]
mod proptests;
