//! Simulated-MPI communication substrate for `hipmcl-rs`.
//!
//! HipMCL is an MPI + OpenMP code; this reproduction has no MPI cluster, so
//! the distributed algorithms run on an in-process message-passing runtime
//! instead (see DESIGN.md, substitution table). The design goals, in order:
//!
//! 1. **Real semantics** — ranks are OS threads; data really moves through
//!    typed channels; collectives are built from point-to-point sends over
//!    binomial trees exactly as a small MPI would build them. Results are
//!    bit-identical to a serial execution, so every distributed algorithm
//!    in the upper crates is tested for *correctness*, not merely mimed.
//! 2. **Modeled time** — every rank carries a virtual clock ([`clock`]).
//!    Message receipt charges an α–β (latency + bytes/bandwidth) cost from
//!    the [`machine::MachineModel`]; compute sections charge kernel-model
//!    durations. Tree collectives accumulate these along their critical
//!    path, so `lg p` factors, load imbalance, and idle time emerge rather
//!    than being hand-computed. This is what lets a laptop reproduce the
//!    *shape* of 100–1024-node Summit results.
//! 3. **Subcommunicators** — Sparse SUMMA lives on a `√P × √P` grid with
//!    per-row and per-column broadcast domains ([`grid`]), created by
//!    `Comm::split` like `MPI_Comm_split`.
//!
//! Entry point: [`universe::Universe::run`] spawns `P` ranks and hands each
//! a [`comm::Comm`].

pub mod clock;
pub mod collectives;
pub mod comm;
pub mod grid;
pub mod machine;
pub mod packet;
pub mod universe;

pub use clock::{CommStats, Event, StageTimers, Timeline, VClock};
pub use comm::Comm;
pub use grid::ProcGrid;
pub use machine::{CommMode, GpuLib, MachineModel, MergeKernel, SpgemmKernel};
pub use packet::WireSize;
pub use universe::Universe;

#[cfg(test)]
mod proptests;
