//! The 2D process grid of Sparse SUMMA: `√P × √P` ranks, each owning one
//! block of every distributed matrix, with row and column
//! subcommunicators for the stage broadcasts (§II, "Overview of Sparse
//! SUMMA"). HipMCL requires `P` to be a perfect square; so does this grid.

use crate::comm::Comm;

/// A rank's view of the square process grid.
pub struct ProcGrid {
    /// World (grid-parent) communicator over all `P` ranks.
    pub world: Comm,
    /// Communicator over this rank's grid row (size `√P`).
    pub row_comm: Comm,
    /// Communicator over this rank's grid column (size `√P`).
    pub col_comm: Comm,
    /// Grid side length `√P`.
    pub side: usize,
    /// This rank's grid row.
    pub row: usize,
    /// This rank's grid column.
    pub col: usize,
}

impl ProcGrid {
    /// Builds the grid from a world communicator whose size is a perfect
    /// square. Ranks are laid out row-major: world rank `r` sits at grid
    /// coordinates `(r / side, r % side)`. Collective.
    pub fn new(mut world: Comm) -> Self {
        let p = world.size();
        let side = integer_sqrt(p);
        assert_eq!(
            side * side,
            p,
            "SUMMA grid needs a perfect-square rank count, got {p}"
        );
        let rank = world.rank();
        let (row, col) = (rank / side, rank % side);
        let row_comm = world.split(row as u64, col as u64);
        let col_comm = world.split((side + col) as u64, row as u64);
        debug_assert_eq!(row_comm.rank(), col);
        debug_assert_eq!(col_comm.rank(), row);
        Self {
            world,
            row_comm,
            col_comm,
            side,
            row,
            col,
        }
    }

    /// World rank of grid position `(row, col)`.
    pub fn rank_of(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.side && col < self.side);
        row * self.side + col
    }

    /// Total rank count `P`.
    pub fn size(&self) -> usize {
        self.side * self.side
    }
}

/// Exact integer square root (floor).
pub fn integer_sqrt(n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let mut x = (n as f64).sqrt() as usize;
    // Fix up floating error at the boundary.
    while (x + 1) * (x + 1) <= n {
        x += 1;
    }
    while x * x > n {
        x -= 1;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{allgather, allreduce};
    use crate::machine::MachineModel;
    use crate::universe::Universe;

    #[test]
    fn integer_sqrt_exact_and_floor() {
        assert_eq!(integer_sqrt(0), 0);
        assert_eq!(integer_sqrt(1), 1);
        assert_eq!(integer_sqrt(16), 4);
        assert_eq!(integer_sqrt(17), 4);
        assert_eq!(integer_sqrt(24), 4);
        assert_eq!(integer_sqrt(25), 5);
    }

    #[test]
    fn grid_coordinates_are_row_major() {
        let results = Universe::run(9, MachineModel::summit(), |comm| {
            let world_rank = comm.rank();
            let grid = ProcGrid::new(comm);
            assert_eq!(grid.rank_of(grid.row, grid.col), world_rank);
            (grid.row, grid.col, grid.side)
        });
        assert_eq!(results[0], (0, 0, 3));
        assert_eq!(results[5], (1, 2, 3));
        assert_eq!(results[8], (2, 2, 3));
    }

    #[test]
    fn row_and_col_comms_partition_correctly() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            // Sum of world ranks along my row and along my column.
            let row_sum = allreduce(&grid.row_comm, grid.world.rank() as u64, |a, b| a + b);
            let col_sum = allreduce(&grid.col_comm, grid.world.rank() as u64, |a, b| a + b);
            (row_sum, col_sum)
        });
        // Grid: row 0 = {0,1}, row 1 = {2,3}; col 0 = {0,2}, col 1 = {1,3}.
        assert_eq!(results[0], (1, 2));
        assert_eq!(results[1], (1, 4));
        assert_eq!(results[2], (5, 2));
        assert_eq!(results[3], (5, 4));
    }

    #[test]
    fn row_comm_ranks_are_columns() {
        let results = Universe::run(9, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let cols: Vec<u64> = allgather(&grid.row_comm, grid.col as u64);
            let rows: Vec<u64> = allgather(&grid.col_comm, grid.row as u64);
            (cols, rows)
        });
        for r in results {
            assert_eq!(r.0, vec![0, 1, 2], "row comm ordered by column");
            assert_eq!(r.1, vec![0, 1, 2], "col comm ordered by row");
        }
    }

    #[test]
    #[should_panic(expected = "perfect-square rank count")]
    fn non_square_rank_count_rejected() {
        let _ = Universe::run(3, MachineModel::summit(), |comm| {
            let _ = ProcGrid::new(comm);
        });
    }
}
