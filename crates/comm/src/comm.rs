//! The communicator: matched point-to-point messaging with virtual-clock
//! charging, receive deadlines, and communicator splitting
//! (`MPI_Comm_split` analogue).
//!
//! `Comm` is transport-agnostic: it owns tag matching, out-of-order
//! buffering, α–β charging and split bookkeeping, and delegates the
//! actual movement of frames to an [`Endpoint`]
//! (see [`crate::transport`]). Under a byte-oriented endpoint payloads
//! are wire-encoded on send and decoded on recv; under the in-process
//! endpoint they move as boxed values — either way the caller sees the
//! same typed API and bit-identical values.

use crate::clock::{CommStats, RankClock, TimeModel};
use crate::machine::MachineModel;
use crate::packet::WirePayload;
use crate::transport::{Endpoint, Frame, FrameHeader, FramePayload, RecvError, TransportKind};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

/// Per-rank mailbox: the transport endpoint plus a buffer for frames
/// that arrived before anyone asked for them (out-of-order matching).
pub(crate) struct Mailbox {
    endpoint: Box<dyn Endpoint>,
    pending: RefCell<Vec<Frame>>,
}

impl Mailbox {
    pub(crate) fn new(endpoint: Box<dyn Endpoint>) -> Self {
        Self {
            endpoint,
            pending: RefCell::new(Vec::new()),
        }
    }
}

/// Universe-wide configuration shared by all communicators of a rank.
pub(crate) struct Shared {
    pub(crate) model: MachineModel,
    pub(crate) time: TimeModel,
    /// `None` disables the receive deadline (hang forever, as MPI would).
    pub(crate) recv_deadline: Option<Duration>,
}

/// A communicator handle owned by one rank.
///
/// The world communicator is created by [`crate::Universe::run`]; grid
/// row/column communicators come from [`Comm::split`]. All communicators
/// of a rank share the rank's mailbox and clock pair.
pub struct Comm {
    /// Context id separating traffic of different communicators.
    ctx: u64,
    /// This rank within the communicator.
    rank: usize,
    /// Map from communicator rank to world rank.
    world_ranks: Vec<usize>,
    /// Monotone counter deriving child contexts (kept in lockstep across
    /// ranks because splits execute in program order on every rank).
    split_seq: u64,
    /// Monotone counter issuing collective tags, likewise in lockstep.
    coll_seq: std::cell::Cell<u64>,
    shared: Arc<Shared>,
    mailbox: Rc<Mailbox>,
    clock: Rc<RefCell<RankClock>>,
    stats: Rc<RefCell<CommStats>>,
}

impl Comm {
    pub(crate) fn new_world(
        rank: usize,
        size: usize,
        shared: Arc<Shared>,
        endpoint: Box<dyn Endpoint>,
    ) -> Self {
        Self::from_mailbox(rank, size, shared, Rc::new(Mailbox::new(endpoint)))
    }

    /// A world communicator over an existing (possibly shared) mailbox.
    /// The socket backend uses this to run the rank closure and then the
    /// result exchange over the *same* connections without losing frames
    /// the first communicator buffered for the second.
    pub(crate) fn from_mailbox(
        rank: usize,
        size: usize,
        shared: Arc<Shared>,
        mailbox: Rc<Mailbox>,
    ) -> Self {
        let time = shared.time;
        Self {
            ctx: 0,
            rank,
            world_ranks: (0..size).collect(),
            split_seq: 0,
            coll_seq: std::cell::Cell::new(0),
            shared,
            mailbox,
            clock: Rc::new(RefCell::new(RankClock::new(time))),
            stats: Rc::new(RefCell::new(CommStats::default())),
        }
    }

    /// Rank of this process in this communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.world_ranks.len()
    }

    /// World rank of `rank` in this communicator.
    pub fn world_rank_of(&self, rank: usize) -> usize {
        self.world_ranks[rank]
    }

    /// The machine model in force.
    pub fn model(&self) -> &MachineModel {
        &self.shared.model
    }

    /// The time model in force.
    pub fn time_model(&self) -> TimeModel {
        self.shared.time
    }

    /// The transport this universe runs on.
    pub fn transport(&self) -> TransportKind {
        self.mailbox.endpoint.kind()
    }

    /// The receive deadline in force (`None` = wait forever).
    pub fn recv_deadline(&self) -> Option<Duration> {
        self.shared.recv_deadline
    }

    /// Current virtual time of this rank (authoritative for scheduling
    /// under both time models).
    pub fn now(&self) -> f64 {
        self.clock.borrow().now()
    }

    /// Wall seconds since this rank started, or `0.0` under
    /// [`TimeModel::Modeled`]. Sample before/after a section to get its
    /// measured duration.
    pub fn measured_now(&self) -> f64 {
        self.clock.borrow().measured_now()
    }

    /// Advances this rank's virtual clock by `dt` seconds of compute.
    pub fn advance_clock(&self, dt: f64) {
        self.clock.borrow_mut().advance(dt);
    }

    /// Jumps this rank's clock forward to `t` (if later); returns idle time.
    pub fn wait_clock_until(&self, t: f64) -> f64 {
        self.clock.borrow_mut().wait_until(t)
    }

    /// Resets clock and statistics (between experiments in one universe).
    pub fn reset_instrumentation(&self) {
        self.clock.borrow_mut().reset();
        *self.stats.borrow_mut() = CommStats::default();
    }

    /// Communication statistics accumulated so far.
    pub fn stats(&self) -> CommStats {
        *self.stats.borrow()
    }

    /// Issues the next collective sequence number. Collectives execute in
    /// identical program order on every rank of a communicator, so these
    /// counters stay in lockstep and uniquely tag each collective's
    /// traffic.
    pub(crate) fn next_coll_seq(&self) -> u64 {
        let s = self.coll_seq.get();
        self.coll_seq.set(s + 1);
        s
    }

    /// Sends `value` to `dst` (communicator rank) with `tag`.
    ///
    /// Non-blocking in virtual time: the send itself charges nothing; the
    /// α–β cost is charged at the receiver against the sender's clock, the
    /// usual LogP-style accounting.
    pub fn send<T: WirePayload>(&self, dst: usize, tag: u64, value: T) {
        let bytes = value.wire_bytes();
        self.send_with_bytes(dst, tag, value, bytes)
    }

    /// [`Comm::send`] with an explicit wire size (for payloads whose
    /// modeled size differs from their in-memory size).
    pub fn send_with_bytes<T: WirePayload>(&self, dst: usize, tag: u64, value: T, bytes: usize) {
        let world_dst = self.world_ranks[dst];
        let payload = if self.mailbox.endpoint.byte_oriented() {
            FramePayload::Bytes(value.encoded())
        } else {
            FramePayload::Typed(Box::new(value))
        };
        let frame = Frame {
            header: FrameHeader {
                src_world: self.world_ranks[self.rank],
                ctx: self.ctx,
                tag,
                send_clock: self.now(),
                bytes,
            },
            payload,
        };
        {
            let mut st = self.stats.borrow_mut();
            st.msgs_sent += 1;
            st.bytes_sent += bytes as u64;
        }
        self.mailbox.endpoint.send_frame(world_dst, frame);
    }

    /// Receives the message `(src, tag)` (communicator ranks), blocking
    /// until it arrives. Charges `max(own_clock, sender_clock + α + βb)`
    /// on the modeled clock; under [`TimeModel::Measured`] additionally
    /// accumulates the wall seconds spent blocked (match + decode) into
    /// [`CommStats::measured_comm_s`].
    ///
    /// If a receive deadline is configured (see
    /// [`crate::UniverseConfig::recv_deadline`]) and no matching frame
    /// arrives in time, panics with rank/src/tag diagnostics instead of
    /// deadlocking the run.
    pub fn recv<T: WirePayload>(&self, src: usize, tag: u64) -> T {
        let measured = self.shared.time.is_measured();
        let wall0 = if measured {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let world_src = self.world_ranks[src];
        let frame = self.match_frame(world_src, src, tag);
        let arrival = frame.header.send_clock + self.shared.model.p2p_time(frame.header.bytes);
        let idle = self.clock.borrow_mut().wait_until(arrival);
        let value = match frame.payload {
            FramePayload::Typed(b) => *b
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("type mismatch receiving tag {tag} from {src}")),
            FramePayload::Bytes(buf) => T::decode_all(&buf).unwrap_or_else(|e| {
                panic!("wire decode failed receiving tag {tag} from {src}: {e}")
            }),
        };
        {
            let mut st = self.stats.borrow_mut();
            st.msgs_recv += 1;
            st.bytes_recv += frame.header.bytes as u64;
            st.modeled_comm_s += idle;
            if let Some(t0) = wall0 {
                st.measured_comm_s += t0.elapsed().as_secs_f64();
            }
        }
        value
    }

    /// Pulls the first frame matching `(world_src, ctx, tag)`, buffering
    /// everything else. Enforces the configured receive deadline.
    fn match_frame(&self, world_src: usize, src: usize, tag: u64) -> Frame {
        // Check the pending buffer first.
        {
            let mut pending = self.mailbox.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(|f| {
                f.header.src_world == world_src && f.header.ctx == self.ctx && f.header.tag == tag
            }) {
                return pending.swap_remove(pos);
            }
        }
        // Fail fast if the transport already knows the source is dead —
        // no point waiting out the deadline on a corpse.
        if let Some(reason) = self.mailbox.endpoint.closed_peer_info(world_src) {
            self.peer_closed_panic(world_src, src, tag, &reason);
        }
        let deadline = self.shared.recv_deadline;
        let started = deadline.map(|_| std::time::Instant::now());
        loop {
            let remaining = match (deadline, started) {
                (Some(d), Some(t0)) => match d.checked_sub(t0.elapsed()) {
                    Some(left) => Some(left),
                    None => self.recv_deadline_panic(world_src, src, tag, d),
                },
                _ => None,
            };
            let frame = match self.mailbox.endpoint.recv_frame(remaining) {
                Ok(f) => f,
                Err(RecvError::Timeout) => {
                    self.recv_deadline_panic(world_src, src, tag, deadline.unwrap())
                }
                Err(RecvError::Disconnected) => panic!("universe torn down while receiving"),
                Err(RecvError::PeerClosed(dead)) if dead == world_src => {
                    let reason = self
                        .mailbox
                        .endpoint
                        .closed_peer_info(dead)
                        .unwrap_or_else(|| "connection closed".into());
                    self.peer_closed_panic(world_src, src, tag, &reason);
                }
                // Some *other* peer died. Our source may still deliver;
                // keep waiting (the deadline still bounds us), and let a
                // receive actually aimed at the dead peer do the failing.
                Err(RecvError::PeerClosed(_)) => continue,
            };
            if frame.header.src_world == world_src
                && frame.header.ctx == self.ctx
                && frame.header.tag == tag
            {
                return frame;
            }
            self.mailbox.pending.borrow_mut().push(frame);
        }
    }

    #[allow(clippy::panic)]
    fn peer_closed_panic(&self, world_src: usize, src: usize, tag: u64, reason: &str) -> ! {
        panic!(
            "peer rank died: rank {} (world {}) was receiving tag {:#x} from src {} \
             (world {}) on ctx {:#x}, but that peer's connection is gone ({reason}) \
             [transport {}, time {}]",
            self.rank,
            self.world_ranks[self.rank],
            tag,
            src,
            world_src,
            self.ctx,
            self.transport(),
            self.shared.time,
        );
    }

    #[allow(clippy::panic)]
    fn recv_deadline_panic(&self, world_src: usize, src: usize, tag: u64, after: Duration) -> ! {
        let pending = self.mailbox.pending.borrow();
        panic!(
            "recv deadline exceeded after {:.1?}: rank {} (world {}) waiting for tag {:#x} \
             from src {} (world {}) on ctx {:#x}; {} unmatched frame(s) buffered \
             [transport {}, time {}]",
            after,
            self.rank,
            self.world_ranks[self.rank],
            tag,
            src,
            world_src,
            self.ctx,
            pending.len(),
            self.transport(),
            self.shared.time,
        );
    }

    /// Splits the communicator like `MPI_Comm_split`: ranks with the same
    /// `color` form a new communicator, ordered by `key` (ties broken by
    /// parent rank). Collective — every rank must call it.
    pub fn split(&mut self, color: u64, key: u64) -> Comm {
        // Exchange (color, key) among all parent ranks.
        let pairs: Vec<(u64, u64)> = crate::collectives::allgather(self, (color, key));
        let mut members: Vec<(u64, usize)> = pairs
            .iter()
            .enumerate()
            .filter(|(_, &(c, _))| c == color)
            .map(|(r, &(_, k))| (k, r))
            .collect();
        members.sort();
        let world_ranks: Vec<usize> = members
            .iter()
            .map(|&(_, parent_rank)| self.world_ranks[parent_rank])
            .collect();
        let new_rank = members
            .iter()
            .position(|&(_, parent_rank)| parent_rank == self.rank)
            .expect("calling rank must be in its own color group");

        // Derive a context id deterministically and identically on all
        // ranks of the group: parent ctx, split ordinal, and color.
        self.split_seq += 1;
        let ctx = fxhash3(self.ctx, self.split_seq, color);

        Comm {
            ctx,
            rank: new_rank,
            world_ranks,
            split_seq: 0,
            coll_seq: std::cell::Cell::new(0),
            shared: Arc::clone(&self.shared),
            mailbox: Rc::clone(&self.mailbox),
            clock: Rc::clone(&self.clock),
            stats: Rc::clone(&self.stats),
        }
    }
}

/// Deterministic 3-word mix for context derivation.
fn fxhash3(a: u64, b: u64, c: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for w in [a, b, c] {
        h ^= w;
        h = h.wrapping_mul(0x100000001b3);
        h ^= h >> 29;
    }
    h | 1 // never collide with the world context 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{Universe, UniverseConfig};

    #[test]
    fn fxhash3_is_deterministic_and_nonzero() {
        assert_eq!(fxhash3(1, 2, 3), fxhash3(1, 2, 3));
        assert_ne!(fxhash3(1, 2, 3), fxhash3(1, 2, 4));
        assert_ne!(fxhash3(0, 0, 0), 0);
    }

    #[test]
    fn p2p_roundtrip() {
        let results = Universe::run(2, MachineModel::summit(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.0f64, 2.0, 3.0]);
                0.0
            } else {
                let v: Vec<f64> = comm.recv(0, 7);
                v.iter().sum()
            }
        });
        assert_eq!(results[1], 6.0);
    }

    #[test]
    fn recv_charges_transfer_time() {
        let results = Universe::run(2, MachineModel::summit(), |comm| {
            if comm.rank() == 0 {
                comm.advance_clock(1.0); // sender is busy first
                comm.send(1, 0, vec![0u8; 1_000_000]);
            } else {
                let _: Vec<u8> = comm.recv(0, 0);
            }
            comm.now()
        });
        let expect = 1.0 + MachineModel::summit().p2p_time(1_000_000 + 8);
        assert!(
            (results[1] - expect).abs() < 1e-9,
            "got {} want {}",
            results[1],
            expect
        );
    }

    #[test]
    fn out_of_order_tags_match() {
        let results = Universe::run(2, MachineModel::summit(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 10u64);
                comm.send(1, 2, 20u64);
                0
            } else {
                // Receive in reverse tag order.
                let b: u64 = comm.recv(0, 2);
                let a: u64 = comm.recv(0, 1);
                a * 100 + b
            }
        });
        assert_eq!(results[1], 1020);
    }

    #[test]
    fn split_creates_independent_groups() {
        let results = Universe::run(4, MachineModel::summit(), |mut comm| {
            // Colors {0,1}: ranks 0,1 in group 0; ranks 2,3 in group 1.
            let color = (comm.rank() / 2) as u64;
            let sub = comm.split(color, comm.rank() as u64);
            assert_eq!(sub.size(), 2);
            // Exchange within each group; same tags must not cross groups.
            if sub.rank() == 0 {
                sub.send(1, 9, comm.rank() as u64);
                u64::MAX
            } else {
                sub.recv::<u64>(0, 9)
            }
        });
        assert_eq!(results[1], 0, "rank 1 hears from rank 0");
        assert_eq!(results[3], 2, "rank 3 hears from rank 2");
    }

    #[test]
    fn stats_count_messages() {
        let results = Universe::run(2, MachineModel::summit(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, 1u64);
                comm.send(1, 1, 2u64);
            } else {
                let _: u64 = comm.recv(0, 0);
                let _: u64 = comm.recv(0, 1);
            }
            comm.stats()
        });
        assert_eq!(results[0].msgs_sent, 2);
        assert_eq!(results[1].msgs_recv, 2);
        assert_eq!(results[0].bytes_sent, 16);
    }

    #[test]
    fn modeled_runs_never_sample_wall_time() {
        let results = Universe::run(2, MachineModel::summit(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0u8; 100_000]);
            } else {
                let _: Vec<u8> = comm.recv(0, 0);
            }
            (comm.stats(), comm.measured_now())
        });
        assert_eq!(results[1].0.measured_comm_s, 0.0);
        assert_eq!(results[1].1, 0.0);
        assert!(results[1].0.modeled_comm_s > 0.0, "α–β wait was charged");
    }

    #[test]
    fn measured_runs_report_both_rollups() {
        let cfg = UniverseConfig::new(2, MachineModel::summit()).with_time(TimeModel::Measured);
        let results = Universe::run_with(cfg, |comm| {
            if comm.rank() == 0 {
                // Make the receiver actually block on the wall clock.
                std::thread::sleep(Duration::from_millis(5));
                comm.send(1, 0, vec![1u64; 1000]);
            } else {
                let _: Vec<u64> = comm.recv(0, 0);
            }
            comm.stats()
        });
        let st = results[1];
        assert!(st.modeled_comm_s > 0.0, "modeled charge still accumulates");
        assert!(
            st.measured_comm_s >= 0.004,
            "wall blocking time recorded, got {}",
            st.measured_comm_s
        );
    }

    #[test]
    #[should_panic(expected = "recv deadline exceeded")]
    fn recv_on_silent_tag_panics_with_deadline() {
        let cfg = UniverseConfig::new(2, MachineModel::summit())
            .with_recv_deadline(Some(Duration::from_millis(20)));
        let _ = Universe::run_with(cfg, |comm| {
            if comm.rank() == 1 {
                // Nobody ever sends tag 99.
                let _: u64 = comm.recv(0, 99);
            }
        });
    }

    #[test]
    #[should_panic(expected = "recv deadline exceeded")]
    fn measured_time_defaults_deadline_on() {
        let cfg = UniverseConfig::new(2, MachineModel::summit()).with_time(TimeModel::Measured);
        assert!(cfg.resolved_recv_deadline().is_some());
        let short = cfg.with_recv_deadline(Some(Duration::from_millis(20)));
        let _ = Universe::run_with(short, |comm| {
            if comm.rank() == 1 {
                let _: u64 = comm.recv(0, 99);
            }
        });
    }
}
