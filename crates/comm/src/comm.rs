//! The communicator: point-to-point messaging with virtual-clock charging,
//! and communicator splitting (`MPI_Comm_split` analogue).

use crate::clock::{CommStats, VClock};
use crate::machine::MachineModel;
use crate::packet::{Packet, WireSize};
use crossbeam_channel::{Receiver, Sender};
use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Per-rank mailbox: the world receive channel plus a buffer for packets
/// that arrived before anyone asked for them (out-of-order matching).
pub(crate) struct Mailbox {
    rx: Receiver<Packet>,
    pending: RefCell<Vec<Packet>>,
}

/// State shared by all ranks of a universe.
pub(crate) struct Shared {
    pub(crate) senders: Vec<Sender<Packet>>,
    pub(crate) model: MachineModel,
}

/// A communicator handle owned by one rank.
///
/// The world communicator is created by [`crate::Universe::run`]; grid
/// row/column communicators come from [`Comm::split`]. All communicators
/// of a rank share the rank's mailbox and virtual clock.
pub struct Comm {
    /// Context id separating traffic of different communicators.
    ctx: u64,
    /// This rank within the communicator.
    rank: usize,
    /// Map from communicator rank to world rank.
    world_ranks: Vec<usize>,
    /// Monotone counter deriving child contexts (kept in lockstep across
    /// ranks because splits execute in program order on every rank).
    split_seq: u64,
    /// Monotone counter issuing collective tags, likewise in lockstep.
    coll_seq: std::cell::Cell<u64>,
    shared: Arc<Shared>,
    mailbox: Rc<Mailbox>,
    clock: Rc<RefCell<VClock>>,
    stats: Rc<RefCell<CommStats>>,
}

impl Comm {
    pub(crate) fn new_world(
        rank: usize,
        size: usize,
        shared: Arc<Shared>,
        rx: Receiver<Packet>,
    ) -> Self {
        Self {
            ctx: 0,
            rank,
            world_ranks: (0..size).collect(),
            split_seq: 0,
            coll_seq: std::cell::Cell::new(0),
            shared,
            mailbox: Rc::new(Mailbox {
                rx,
                pending: RefCell::new(Vec::new()),
            }),
            clock: Rc::new(RefCell::new(VClock::new())),
            stats: Rc::new(RefCell::new(CommStats::default())),
        }
    }

    /// Rank of this process in this communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.world_ranks.len()
    }

    /// World rank of `rank` in this communicator.
    pub fn world_rank_of(&self, rank: usize) -> usize {
        self.world_ranks[rank]
    }

    /// The machine model in force.
    pub fn model(&self) -> &MachineModel {
        &self.shared.model
    }

    /// Current virtual time of this rank.
    pub fn now(&self) -> f64 {
        self.clock.borrow().now()
    }

    /// Advances this rank's virtual clock by `dt` seconds of compute.
    pub fn advance_clock(&self, dt: f64) {
        self.clock.borrow_mut().advance(dt);
    }

    /// Jumps this rank's clock forward to `t` (if later); returns idle time.
    pub fn wait_clock_until(&self, t: f64) -> f64 {
        self.clock.borrow_mut().wait_until(t)
    }

    /// Resets clock and statistics (between experiments in one universe).
    pub fn reset_instrumentation(&self) {
        self.clock.borrow_mut().reset();
        *self.stats.borrow_mut() = CommStats::default();
    }

    /// Communication statistics accumulated so far.
    pub fn stats(&self) -> CommStats {
        *self.stats.borrow()
    }

    /// Issues the next collective sequence number. Collectives execute in
    /// identical program order on every rank of a communicator, so these
    /// counters stay in lockstep and uniquely tag each collective's
    /// traffic.
    pub(crate) fn next_coll_seq(&self) -> u64 {
        let s = self.coll_seq.get();
        self.coll_seq.set(s + 1);
        s
    }

    /// Sends `value` to `dst` (communicator rank) with `tag`.
    ///
    /// Non-blocking in virtual time: the send itself charges nothing; the
    /// α–β cost is charged at the receiver against the sender's clock, the
    /// usual LogP-style accounting.
    pub fn send<T: Any + Send + WireSize>(&self, dst: usize, tag: u64, value: T) {
        let bytes = value.wire_bytes();
        self.send_with_bytes(dst, tag, value, bytes)
    }

    /// [`Comm::send`] with an explicit wire size (for payloads whose
    /// modeled size differs from their in-memory size).
    pub fn send_with_bytes<T: Any + Send>(&self, dst: usize, tag: u64, value: T, bytes: usize) {
        let world_dst = self.world_ranks[dst];
        let pkt = Packet {
            src_world: self.world_ranks[self.rank],
            ctx: self.ctx,
            tag,
            send_clock: self.now(),
            bytes,
            payload: Box::new(value),
        };
        {
            let mut st = self.stats.borrow_mut();
            st.msgs_sent += 1;
            st.bytes_sent += bytes as u64;
        }
        self.shared.senders[world_dst]
            .send(pkt)
            .expect("peer rank hung up (panicked?)");
    }

    /// Receives the message `(src, tag)` (communicator ranks), blocking
    /// until it arrives. Charges `max(own_clock, sender_clock + α + βb)`.
    pub fn recv<T: Any + Send>(&self, src: usize, tag: u64) -> T {
        let world_src = self.world_ranks[src];
        let pkt = self.match_packet(world_src, tag);
        {
            let mut st = self.stats.borrow_mut();
            st.msgs_recv += 1;
            st.bytes_recv += pkt.bytes as u64;
        }
        let arrival = pkt.send_clock + self.shared.model.p2p_time(pkt.bytes);
        self.clock.borrow_mut().wait_until(arrival);
        *pkt.payload
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("type mismatch receiving tag {tag} from {src}"))
    }

    /// Pulls the first packet matching `(world_src, ctx, tag)`, buffering
    /// everything else.
    fn match_packet(&self, world_src: usize, tag: u64) -> Packet {
        // Check the pending buffer first.
        {
            let mut pending = self.mailbox.pending.borrow_mut();
            if let Some(pos) = pending
                .iter()
                .position(|p| p.src_world == world_src && p.ctx == self.ctx && p.tag == tag)
            {
                return pending.swap_remove(pos);
            }
        }
        loop {
            let pkt = self
                .mailbox
                .rx
                .recv()
                .expect("universe torn down while receiving");
            if pkt.src_world == world_src && pkt.ctx == self.ctx && pkt.tag == tag {
                return pkt;
            }
            self.mailbox.pending.borrow_mut().push(pkt);
        }
    }

    /// Splits the communicator like `MPI_Comm_split`: ranks with the same
    /// `color` form a new communicator, ordered by `key` (ties broken by
    /// parent rank). Collective — every rank must call it.
    pub fn split(&mut self, color: u64, key: u64) -> Comm {
        // Exchange (color, key) among all parent ranks.
        let pairs: Vec<(u64, u64)> = crate::collectives::allgather(self, (color, key));
        let mut members: Vec<(u64, usize)> = pairs
            .iter()
            .enumerate()
            .filter(|(_, &(c, _))| c == color)
            .map(|(r, &(_, k))| (k, r))
            .collect();
        members.sort();
        let world_ranks: Vec<usize> = members
            .iter()
            .map(|&(_, parent_rank)| self.world_ranks[parent_rank])
            .collect();
        let new_rank = members
            .iter()
            .position(|&(_, parent_rank)| parent_rank == self.rank)
            .expect("calling rank must be in its own color group");

        // Derive a context id deterministically and identically on all
        // ranks of the group: parent ctx, split ordinal, and color.
        self.split_seq += 1;
        let ctx = fxhash3(self.ctx, self.split_seq, color);

        Comm {
            ctx,
            rank: new_rank,
            world_ranks,
            split_seq: 0,
            coll_seq: std::cell::Cell::new(0),
            shared: Arc::clone(&self.shared),
            mailbox: Rc::clone(&self.mailbox),
            clock: Rc::clone(&self.clock),
            stats: Rc::clone(&self.stats),
        }
    }
}

/// Deterministic 3-word mix for context derivation.
fn fxhash3(a: u64, b: u64, c: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for w in [a, b, c] {
        h ^= w;
        h = h.wrapping_mul(0x100000001b3);
        h ^= h >> 29;
    }
    h | 1 // never collide with the world context 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn fxhash3_is_deterministic_and_nonzero() {
        assert_eq!(fxhash3(1, 2, 3), fxhash3(1, 2, 3));
        assert_ne!(fxhash3(1, 2, 3), fxhash3(1, 2, 4));
        assert_ne!(fxhash3(0, 0, 0), 0);
    }

    #[test]
    fn p2p_roundtrip() {
        let results = Universe::run(2, MachineModel::summit(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.0f64, 2.0, 3.0]);
                0.0
            } else {
                let v: Vec<f64> = comm.recv(0, 7);
                v.iter().sum()
            }
        });
        assert_eq!(results[1], 6.0);
    }

    #[test]
    fn recv_charges_transfer_time() {
        let results = Universe::run(2, MachineModel::summit(), |comm| {
            if comm.rank() == 0 {
                comm.advance_clock(1.0); // sender is busy first
                comm.send(1, 0, vec![0u8; 1_000_000]);
            } else {
                let _: Vec<u8> = comm.recv(0, 0);
            }
            comm.now()
        });
        let expect = 1.0 + MachineModel::summit().p2p_time(1_000_000 + 8);
        assert!(
            (results[1] - expect).abs() < 1e-9,
            "got {} want {}",
            results[1],
            expect
        );
    }

    #[test]
    fn out_of_order_tags_match() {
        let results = Universe::run(2, MachineModel::summit(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 10u64);
                comm.send(1, 2, 20u64);
                0
            } else {
                // Receive in reverse tag order.
                let b: u64 = comm.recv(0, 2);
                let a: u64 = comm.recv(0, 1);
                a * 100 + b
            }
        });
        assert_eq!(results[1], 1020);
    }

    #[test]
    fn split_creates_independent_groups() {
        let results = Universe::run(4, MachineModel::summit(), |mut comm| {
            // Colors {0,1}: ranks 0,1 in group 0; ranks 2,3 in group 1.
            let color = (comm.rank() / 2) as u64;
            let sub = comm.split(color, comm.rank() as u64);
            assert_eq!(sub.size(), 2);
            // Exchange within each group; same tags must not cross groups.
            if sub.rank() == 0 {
                sub.send(1, 9, comm.rank() as u64);
                u64::MAX
            } else {
                sub.recv::<u64>(0, 9)
            }
        });
        assert_eq!(results[1], 0, "rank 1 hears from rank 0");
        assert_eq!(results[3], 2, "rank 3 hears from rank 2");
    }

    #[test]
    fn stats_count_messages() {
        let results = Universe::run(2, MachineModel::summit(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, 1u64);
                comm.send(1, 1, 2u64);
            } else {
                let _: u64 = comm.recv(0, 0);
                let _: u64 = comm.recv(0, 1);
            }
            comm.stats()
        });
        assert_eq!(results[0].msgs_sent, 2);
        assert_eq!(results[1].msgs_recv, 2);
        assert_eq!(results[0].bytes_sent, 16);
    }
}
