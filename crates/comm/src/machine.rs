//! The machine model: kernel rate curves and interconnect parameters that
//! turn operation counts into virtual seconds.
//!
//! Calibration targets Summit (ORNL), the paper's platform: two 22-core
//! Power9 CPUs and six 16 GB V100 GPUs per node, dual-rail EDR InfiniBand
//! (fat tree). The absolute constants are order-of-magnitude figures from
//! public Summit specs; the *relative* figures (heap vs hash vs the three
//! GPU libraries as functions of the compression factor `cf`) are set to
//! reproduce the regimes the paper reports in Fig. 4 and §VI–VII:
//!
//! * heaps slightly beat hashes at `cf ≲ 2`, lose badly at large `cf`;
//! * `nsparse` ≈ 3.3× `cpu-hash` at large `cf`, poor at small `cf`;
//! * `bhsparse` ≈ 2.6× at large `cf`;
//! * `rmerge2` ≈ 1.1× overall and the best GPU library at small `cf`.
//!
//! Everything is an explicit struct field so ablation benches can perturb
//! the model.

/// Which SpGEMM kernel a local multiplication ran on (for rate lookup).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpgemmKernel {
    /// CPU, heap accumulation (original HipMCL).
    CpuHeap,
    /// CPU, hash accumulation (§VI).
    CpuHash,
    /// CPU, dense sparse accumulator.
    CpuSpa,
    /// One of the GPU libraries.
    Gpu(GpuLib),
}

/// The three GPU SpGEMM libraries the paper integrates (§III).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GpuLib {
    /// `bhsparse` (Liu & Vinter) — expand-sort-compress.
    Bhsparse,
    /// `nsparse` (Nagasaka et al.) — binned hash accumulation.
    Nsparse,
    /// `rmerge2` (Gremse et al.) — iterative row merging.
    Rmerge2,
}

impl GpuLib {
    /// Label used in the paper's plots.
    pub fn name(self) -> &'static str {
        match self {
            GpuLib::Bhsparse => "bhsparse",
            GpuLib::Nsparse => "nsparse",
            GpuLib::Rmerge2 => "rmerge2",
        }
    }

    /// All libraries, in the paper's plot order.
    pub fn all() -> [GpuLib; 3] {
        [GpuLib::Rmerge2, GpuLib::Bhsparse, GpuLib::Nsparse]
    }
}

impl SpgemmKernel {
    /// Label used in the paper's plots.
    pub fn name(self) -> &'static str {
        match self {
            SpgemmKernel::CpuHeap => "cpu-heap",
            SpgemmKernel::CpuHash => "cpu-hash",
            SpgemmKernel::CpuSpa => "cpu-spa",
            SpgemmKernel::Gpu(lib) => lib.name(),
        }
    }
}

/// Which algorithm a single k-way merge operation runs (the merge-side
/// analogue of [`SpgemmKernel`]). Rates are modeled by
/// [`MachineModel::merge_time_with`]; the per-merge selection rule lives
/// in `hipmcl_summa::merge::select_merge_kernel`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MergeKernel {
    /// Cursor-based k-way heap merge (original HipMCL's accumulator):
    /// `total · lg k` comparisons.
    Heap,
    /// Left-fold of two-way cursor merges. Cheaper constants than a heap
    /// at fan-in 2 (no sift), but each fold re-scans the accumulator, so
    /// work grows linearly with the fan-in.
    Pairwise,
    /// SpAdd-style hash accumulation (Hussain et al., arXiv:2112.10223;
    /// Nagasaka et al., arXiv:1804.01698): per-column hash table, O(1)
    /// per element regardless of fan-in, but a worse constant plus a
    /// table-setup cost that small merges cannot amortize.
    Hash,
    /// BRMerge-style two-way row merge (arXiv:2206.06611) appending into
    /// reusable arena slabs: same left-fold shape as `Pairwise` but each
    /// fold writes into pre-sized upper-bound slack instead of
    /// materializing a fresh CSC, so the per-element constant drops below
    /// the pairwise cursor merge. The fold re-scan still makes its work
    /// linear in the fan-in, so it owns the small-fan-in regime.
    BrMerge,
    /// Hussain-style parallel SpAdd (arXiv:2112.10223): contiguous
    /// per-thread column partitions, each thread accumulating through an
    /// epoch-stamped dense sparse accumulator sized from the column-nnz
    /// upper bracket. Fan-in independent like `Hash` but with a cheaper
    /// per-element constant and a smaller setup (the SPA is reused across
    /// columns and merges), so it owns the large-fan-in regime.
    SpAdd,
}

impl MergeKernel {
    /// Label used in probes and CSV output.
    pub fn name(self) -> &'static str {
        match self {
            MergeKernel::Heap => "heap",
            MergeKernel::Pairwise => "pairwise",
            MergeKernel::Hash => "hash",
            MergeKernel::BrMerge => "brmerge",
            MergeKernel::SpAdd => "spadd",
        }
    }

    /// All kernels, in display order.
    pub fn all() -> [MergeKernel; 5] {
        [
            MergeKernel::Heap,
            MergeKernel::Pairwise,
            MergeKernel::Hash,
            MergeKernel::BrMerge,
            MergeKernel::SpAdd,
        ]
    }
}

/// How a SUMMA stage moves an operand panel from its owner to the other
/// ranks of a row/column communicator (§V's communication dimension).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommMode {
    /// Binomial-tree broadcast: `⌈lg p⌉` hops, each forwarding the full
    /// payload — asymptotically right for large panels.
    Broadcast,
    /// Root-sequential point-to-point sends ("gather-style" exchange):
    /// one α, `p − 1` bandwidth terms serialized at the root — cheaper
    /// for small panels and small communicators where the tree's
    /// repeated latency dominates.
    Gather,
}

impl CommMode {
    /// Label used in probes and CSV output.
    pub fn name(self) -> &'static str {
        match self {
            CommMode::Broadcast => "broadcast",
            CommMode::Gather => "gather",
        }
    }
}

/// Per-element cost multiplier of [`MergeKernel::Pairwise`] relative to
/// one heap comparison: a two-way cursor merge does no sifting, so at
/// fan-in 2 it beats the heap (`0.8 < lg 2 = 1`); the left-fold re-scan
/// makes its work `total · 0.8 · (k − 1)`, losing from fan-in 3 up.
pub const PAIRWISE_MERGE_FACTOR: f64 = 0.8;
/// Per-element cost multiplier of [`MergeKernel::Hash`]: fan-in
/// independent, so it overtakes the heap's `lg k` once `lg k > 1.6`
/// (fan-in ≥ 4) — the same crossover shape as the heap/hash SpGEMM
/// selector (`hipmcl_spgemm::hybrid::HEAP_HASH_CF_CROSSOVER`).
pub const HASH_MERGE_FACTOR: f64 = 1.6;
/// Fixed table-setup cost of a hash merge, in merge-rate element-ops:
/// below this many total elements the heap's cache-resident cursors win
/// even at large fan-in.
pub const HASH_MERGE_SETUP_OPS: f64 = 4096.0;
/// Per-element cost multiplier of [`MergeKernel::BrMerge`]: a
/// single-pass k-cursor merge appending into pre-sized arena slack does
/// no per-merge allocation, copy-out, sorting or hashing — only the
/// linear min-scan over the cursor heads, whose per-element cost grows
/// with fan-in: `total · 0.3 · (k − 1)`. Beats everything through
/// fan-in 5 (calibrated against `probe_merge_gap` wall-clock); the
/// min-scan loses to the fan-in-independent SpAdd from fan-in 6 up
/// (`0.3 · 5 > 1.2`).
pub const BRMERGE_MERGE_FACTOR: f64 = 0.3;
/// Per-element cost multiplier of [`MergeKernel::SpAdd`]: the
/// epoch-stamped dense accumulator pays one stamp check plus an
/// amortized per-column sort per element — fan-in independent and
/// cheaper than the hash table's probing (`1.2 < 1.6`).
pub const SPADD_MERGE_FACTOR: f64 = 1.2;
/// Fixed setup cost of a parallel SpAdd, in merge-rate element-ops:
/// partitioning columns across threads and touching the reused SPA is
/// far cheaper than building hash tables (`2048 < 4096`), but tiny
/// merges still fall back to the setup-free cursor kernels (brmerge,
/// or the heap at very high fan-in).
pub const SPADD_SETUP_OPS: f64 = 2048.0;

/// Summit-like machine parameters. All times in seconds, rates in
/// operations (or bytes) per second, per *rank* unless stated.
#[derive(Clone, Debug)]
pub struct MachineModel {
    /// Human-readable name.
    pub name: &'static str,
    /// Network message latency (per hop of a tree collective).
    pub alpha: f64,
    /// Inverse network bandwidth per rank, s/byte.
    pub beta: f64,
    /// Host↔device transfer launch latency.
    pub link_alpha: f64,
    /// Inverse host↔device bandwidth, s/byte (NVLink on Summit).
    pub link_beta: f64,
    /// Effective per-core SpGEMM rate with hash accumulation, flops/s.
    /// (Sparse flops — dominated by irregular memory traffic, so far below
    /// peak FP throughput.)
    pub core_spgemm_rate: f64,
    /// CPU threads available to this rank.
    pub threads: usize,
    /// CPU sockets this rank's threads span (Summit nodes carry two
    /// Power9 sockets). Worker pools size one merge lane per socket;
    /// `1` collapses the node to a flat pool.
    pub sockets: usize,
    /// Fractional slowdown of a merge whose inputs live on another
    /// socket's workers (remote-NUMA traffic): a merge with every input
    /// remote costs `1 + xsocket_penalty` times its local duration.
    pub xsocket_penalty: f64,
    /// GPUs driven by this rank.
    pub gpus: usize,
    /// Aggregate GPU SpGEMM rate of a *full node* (all 6 GPUs) with
    /// `nsparse` at `cf → ∞`, flops/s.
    pub gpu_node_rate: f64,
    /// Thread-scaling penalty: efficiency = 1 / (1 + c·threads). Models
    /// OpenMP/NUMA overhead growing with the thread count — the effect
    /// behind the paper's thread-vs-process study (Fig. 5).
    pub thread_overhead: f64,
    /// Elementwise op rate per core (pruning, inflation), ops/s.
    pub core_elementwise_rate: f64,
    /// Merge rate per core, elements/s (two-way merge of sorted runs).
    pub core_merge_rate: f64,
    /// Cohen-estimator op rate per core, key-ops/s.
    pub core_estimate_rate: f64,
}

impl MachineModel {
    /// Summit, one MPI rank per node: 40 worker threads (paper's choice,
    /// out of 44 SMT-1 cores), 6 GPUs.
    pub fn summit() -> Self {
        Self {
            name: "summit-1rank-per-node",
            alpha: 3.0e-6,
            beta: 1.0 / 23.0e9,
            link_alpha: 1.0e-5,
            link_beta: 1.0 / 50.0e9,
            core_spgemm_rate: 7.5e7,
            threads: 40,
            sockets: 2,
            xsocket_penalty: 0.3,
            gpus: 6,
            gpu_node_rate: 7.8e9,
            thread_overhead: 0.007,
            core_elementwise_rate: 2.0e8,
            core_merge_rate: 1.2e8,
            core_estimate_rate: 1.5e8,
        }
    }

    /// Summit parameters for *reduced-scale* harness runs.
    ///
    /// On the real machine, per-node SUMMA payloads are hundreds of MB to
    /// GB, so fixed latencies (network α ≈ 3 µs, kernel/transfer launch
    /// ≈ 10 µs) are 4–5 orders of magnitude below the bandwidth terms.
    /// The harness shrinks workloads by 10³–10⁵, which would promote
    /// those constants into the dominant cost and mask every effect the
    /// paper measures. This model scales the fixed latencies down by the
    /// same order so they remain as negligible as they are on Summit;
    /// all rates and bandwidths (the terms that set the paper's shapes)
    /// are untouched.
    pub fn summit_bench() -> Self {
        Self {
            name: "summit-bench-scaled",
            alpha: 3.0e-10,
            link_alpha: 1.0e-9,
            ..Self::summit()
        }
    }

    /// Summit with `r` ranks per node (the "process-based" setting of
    /// Fig. 5): threads and GPUs are divided, network bandwidth per rank
    /// shrinks because ranks share the NIC.
    pub fn summit_ranks_per_node(r: usize) -> Self {
        let base = Self::summit();
        Self {
            name: "summit-multirank",
            beta: base.beta * r as f64,
            threads: base.threads / r,
            // Two or more ranks per node pin each rank to one socket.
            sockets: (base.sockets / r).max(1),
            gpus: (base.gpus / r).max(1),
            gpu_node_rate: base.gpu_node_rate / r as f64,
            ..base
        }
    }

    /// A CPU-only Summit node (for "original HipMCL" baselines).
    pub fn summit_cpu_only() -> Self {
        Self {
            gpus: 0,
            gpu_node_rate: 0.0,
            name: "summit-cpu-only",
            ..Self::summit()
        }
    }

    /// Thread-parallel efficiency for this rank's thread count.
    pub fn thread_efficiency(&self) -> f64 {
        1.0 / (1.0 + self.thread_overhead * self.threads as f64)
    }

    /// Effective CPU rate multiplier: threads × efficiency.
    fn cpu_parallel_factor(&self) -> f64 {
        self.threads as f64 * self.thread_efficiency()
    }

    /// CPU SpGEMM rate (flops/s for this rank) as a function of kernel and
    /// compression factor. See module docs for the shape rationale.
    pub fn cpu_spgemm_rate(&self, kernel: SpgemmKernel, cf: f64) -> f64 {
        let hash = self.core_spgemm_rate * self.cpu_parallel_factor();
        match kernel {
            SpgemmKernel::CpuHash => hash,
            // Heap: mild win at tiny cf, logarithmic decay after —
            // steepness follows the Nagasaka et al. ICPP'18 measurements
            // (hash 2-4x faster at MCL densities).
            SpgemmKernel::CpuHeap => hash * 1.15 / (0.9 + 0.5 * (1.0 + cf).ln()),
            // SPA: competitive at high density, pays dense-scratch traffic.
            SpgemmKernel::CpuSpa => hash * 0.9,
            SpgemmKernel::Gpu(_) => panic!("GPU kernel asked for CPU rate"),
        }
    }

    /// GPU SpGEMM rate (flops/s) for a *single device* of this rank.
    /// Saturating exponentials reproduce the Fig. 4 regimes: every library
    /// needs accumulation density (`cf`) to amortize its launch and
    /// memory-staging overheads.
    pub fn gpu_spgemm_rate(&self, lib: GpuLib, cf: f64) -> f64 {
        assert!(self.gpus > 0, "model has no GPUs");
        let hash_node = self.core_spgemm_rate * 40.0 / (1.0 + 0.007 * 40.0); // full-node cpu-hash
        let peak_node = self.gpu_node_rate; // nsparse at cf→∞ (≈3.3× hash_node)
        let per_gpu = |node_rate: f64| node_rate / 6.0;
        let s = |x: f64| 1.0 - (-x).exp();
        match lib {
            GpuLib::Nsparse => {
                per_gpu(hash_node * 0.5 + (peak_node - hash_node * 0.5) * s(cf / 12.0))
            }
            GpuLib::Bhsparse => {
                per_gpu(hash_node * 0.4 + (2.6 * hash_node - hash_node * 0.4) * s(cf / 12.0))
            }
            GpuLib::Rmerge2 => {
                per_gpu(hash_node * 0.92 + (1.1 * hash_node - hash_node * 0.92) * s(cf / 5.0))
            }
        }
    }

    /// Virtual duration of a local SpGEMM with `flops` work at compression
    /// factor `cf` on the given kernel. GPU kernels assume the work is
    /// split evenly across this rank's `gpus` devices (§III-A column
    /// splitting), so the duration is for the whole local multiply.
    pub fn spgemm_time(&self, kernel: SpgemmKernel, flops: u64, cf: f64) -> f64 {
        match kernel {
            SpgemmKernel::Gpu(lib) => {
                let rate = self.gpu_spgemm_rate(lib, cf) * self.gpus as f64;
                self.link_alpha + flops as f64 / rate
            }
            k => flops as f64 / self.cpu_spgemm_rate(k, cf),
        }
    }

    /// Model-derived GPU share of a hybrid CPU/GPU column split.
    ///
    /// Extends the §III-A multi-GPU column split by one more "device" (the
    /// CPU worker pool): a fraction `f` of the stage's `flops` goes to the
    /// devices, the rest to the pool, and the split is profitable exactly
    /// when both sides finish together. With aggregate device rate
    /// `R_G = gpus · gpu_spgemm_rate(lib, cf)`, pool rate
    /// `R_C = cpu_spgemm_rate(CpuHash, cf)` (the pool always runs the hash
    /// kernel on its slab), work `W = flops`, and the one-off device
    /// launch/transfer latency `link_alpha`, the balance condition
    ///
    /// ```text
    /// link_alpha + f·W/R_G = (1 − f)·W/R_C
    /// ```
    ///
    /// solves to
    ///
    /// ```text
    /// f* = (W/R_C − link_alpha) / (W·(1/R_G + 1/R_C))
    /// ```
    ///
    /// clamped to `[0, 1]`. Both rates are evaluated at the stage's
    /// estimated `cf` — the same quantity that flips the profitable kernel
    /// in Fig. 4 — so the split tracks per-stage density instead of a
    /// fixed constant. Degenerate cases: no devices or zero work → `0`
    /// (everything stays on the pool); a multiplication too small to
    /// amortize `link_alpha` also collapses to `0`.
    pub fn hybrid_gpu_fraction(&self, lib: GpuLib, flops: u64, cf: f64) -> f64 {
        if self.gpus == 0 || flops == 0 {
            return 0.0;
        }
        let rg = self.gpu_spgemm_rate(lib, cf) * self.gpus as f64;
        let rc = self.cpu_spgemm_rate(SpgemmKernel::CpuHash, cf);
        let w = flops as f64;
        let f = (w / rc - self.link_alpha) / (w * (1.0 / rg + 1.0 / rc));
        f.clamp(0.0, 1.0)
    }

    /// Point-to-point transfer time for `bytes`.
    pub fn p2p_time(&self, bytes: usize) -> f64 {
        self.alpha + bytes as f64 * self.beta
    }

    /// Modeled critical-path time of a binomial-tree broadcast of `bytes`
    /// over `p` ranks: `⌈lg p⌉ · (α + βb)`. Every tree level forwards the
    /// whole payload, so large panels pay the bandwidth term `lg p` times.
    pub fn tree_bcast_time(&self, p: usize, bytes: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let depth = (usize::BITS - (p - 1).leading_zeros()) as f64;
        depth * self.p2p_time(bytes)
    }

    /// Modeled time of a flat (root-sequential point-to-point) broadcast
    /// of `bytes` over `p` ranks: the root serializes `p − 1` sends onto
    /// its NIC, so the last receiver waits `α + (p − 1) · βb`. One α, one
    /// bandwidth term per peer — the small-message / small-`p` winner.
    pub fn flat_bcast_time(&self, p: usize, bytes: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        self.alpha + (p - 1) as f64 * bytes as f64 * self.beta
    }

    /// Picks the cheaper broadcast algorithm for a `bytes`-sized panel
    /// over `p` ranks under this model. The crossover sits where
    /// `⌈lg p⌉(α + βb) = α + (p−1)βb`; for `p = 4` that is
    /// `b* = α / (2β)` — payloads below it prefer [`CommMode::Gather`]
    /// (point-to-point), above it [`CommMode::Broadcast`].
    pub fn choose_comm_mode(&self, p: usize, bytes: usize) -> CommMode {
        if self.flat_bcast_time(p, bytes) <= self.tree_bcast_time(p, bytes) {
            CommMode::Gather
        } else {
            CommMode::Broadcast
        }
    }

    /// Host→device (or device→host) transfer time for `bytes`.
    pub fn link_time(&self, bytes: usize) -> f64 {
        self.link_alpha + bytes as f64 * self.link_beta
    }

    /// Elementwise pass over `n` entries (pruning, inflation, scaling).
    pub fn elementwise_time(&self, n: u64) -> f64 {
        n as f64 / (self.core_elementwise_rate * self.cpu_parallel_factor())
    }

    /// Merging `total` elements through a `ways`-way merge (heap of size
    /// `ways`): `total · lg(ways)` comparisons at the merge rate.
    /// Equivalent to [`merge_time_with`](Self::merge_time_with) for
    /// [`MergeKernel::Heap`] on the whole node.
    pub fn merge_time(&self, total: u64, ways: usize) -> f64 {
        self.merge_time_with(MergeKernel::Heap, total, ways)
    }

    /// Element-ops of a `ways`-way merge of `total` elements under the
    /// given kernel — the strategy dimension of the merge cost model:
    ///
    /// * `Heap` — `total · lg k` (cursor heap of size `k`);
    /// * `Pairwise` — `total · PAIRWISE_MERGE_FACTOR · (k − 1)` (left
    ///   fold of two-way merges; cheapest at `k = 2`, linear re-scan
    ///   beyond);
    /// * `Hash` — `total · HASH_MERGE_FACTOR + HASH_MERGE_SETUP_OPS`
    ///   (fan-in independent accumulation plus table setup);
    /// * `BrMerge` — `total · BRMERGE_MERGE_FACTOR · (k − 1)` (arena-backed
    ///   single-pass k-cursor merge; pairwise's fan-in shape with a much
    ///   smaller constant);
    /// * `SpAdd` — `total · SPADD_MERGE_FACTOR + SPADD_SETUP_OPS`
    ///   (parallel epoch-SPA accumulation; hash's shape, cheaper terms).
    ///
    /// The crossovers these formulas induce (brmerge at `k ≤ 5`, spadd at
    /// `k ≥ 6` with enough elements, heap for tiny high-fan-in merges;
    /// pairwise and hash are dominated and survive only as ablation
    /// baselines) are exactly what `select_merge_kernel` picks by
    /// evaluating this model.
    fn merge_ops_with(&self, kernel: MergeKernel, total: u64, ways: usize) -> f64 {
        let lg = (ways.max(2) as f64).log2();
        match kernel {
            MergeKernel::Heap => total as f64 * lg,
            MergeKernel::Pairwise => {
                total as f64 * PAIRWISE_MERGE_FACTOR * (ways.max(2) - 1) as f64
            }
            MergeKernel::Hash => total as f64 * HASH_MERGE_FACTOR + HASH_MERGE_SETUP_OPS,
            MergeKernel::BrMerge => total as f64 * BRMERGE_MERGE_FACTOR * (ways.max(2) - 1) as f64,
            MergeKernel::SpAdd => total as f64 * SPADD_MERGE_FACTOR + SPADD_SETUP_OPS,
        }
    }

    /// Virtual duration of a `ways`-way merge of `total` elements with
    /// `kernel`, run on the whole node's threads.
    pub fn merge_time_with(&self, kernel: MergeKernel, total: u64, ways: usize) -> f64 {
        self.merge_ops_with(kernel, total, ways)
            / (self.core_merge_rate * self.cpu_parallel_factor())
    }

    /// Virtual duration of the same merge run on a single socket's share
    /// of the threads (`threads / sockets` cores, re-evaluating the
    /// thread-scaling efficiency at the smaller count). This is what a
    /// merge task occupying one lane of a NUMA-sized worker pool costs.
    pub fn socket_merge_time_with(&self, kernel: MergeKernel, total: u64, ways: usize) -> f64 {
        let threads = (self.threads / self.sockets.max(1)).max(1) as f64;
        let factor = threads / (1.0 + self.thread_overhead * threads);
        self.merge_ops_with(kernel, total, ways) / (self.core_merge_rate * factor)
    }

    /// Virtual duration of a merge task as placed on one of `lanes` merge
    /// lanes, with `remote_elems` of its `total` input elements homed on a
    /// different socket than the chosen lane — the steal-cost model the
    /// lane scheduler evaluates per candidate lane. A multi-lane node runs
    /// the merge at the per-socket rate
    /// ([`socket_merge_time_with`](Self::socket_merge_time_with)); a
    /// single-lane node at the whole-node rate
    /// ([`merge_time_with`](Self::merge_time_with)). Remote-homed input
    /// elements scale the duration by up to `1 + xsocket_penalty` (all
    /// inputs remote), so a steal onto the "wrong" socket is only taken
    /// when the modeled end time still beats waiting for the home lane.
    pub fn merge_lane_time_with(
        &self,
        kernel: MergeKernel,
        total: u64,
        ways: usize,
        remote_elems: u64,
        lanes: usize,
    ) -> f64 {
        let base = if lanes > 1 {
            self.socket_merge_time_with(kernel, total, ways)
        } else {
            self.merge_time_with(kernel, total, ways)
        };
        base * (1.0 + self.xsocket_penalty * remote_elems as f64 / total.max(1) as f64)
    }

    /// Cohen estimation with `ops = r · (nnz A + nnz B)` key operations.
    pub fn estimate_time(&self, ops: u64) -> f64 {
        ops as f64 / (self.core_estimate_rate * self.cpu_parallel_factor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bcast_costs_match_closed_forms() {
        let m = MachineModel::summit();
        let b = 1 << 20;
        // Tree over 8 ranks: depth 3.
        let want_tree = 3.0 * (m.alpha + b as f64 * m.beta);
        assert!((m.tree_bcast_time(8, b) - want_tree).abs() < 1e-15);
        // Flat over 8 ranks: one α, 7 bandwidth terms.
        let want_flat = m.alpha + 7.0 * b as f64 * m.beta;
        assert!((m.flat_bcast_time(8, b) - want_flat).abs() < 1e-15);
        // Degenerate communicators are free.
        assert_eq!(m.tree_bcast_time(1, b), 0.0);
        assert_eq!(m.flat_bcast_time(1, b), 0.0);
    }

    #[test]
    fn comm_mode_crossover_pinned_at_p4() {
        // At p = 4 (tree depth 2): 2(α + βb) vs α + 3βb, equal at
        // b* = α / β. For Summit that is 3.0e-6 · 23e9 = 69 000 bytes.
        let m = MachineModel::summit();
        let bstar = (m.alpha / m.beta).round() as usize;
        assert_eq!(bstar, 69_000, "summit crossover point moved");
        assert_eq!(m.choose_comm_mode(4, bstar / 2), CommMode::Gather);
        assert_eq!(m.choose_comm_mode(4, bstar * 2), CommMode::Broadcast);
        // Exactly at the crossover the tie breaks toward Gather (≤).
        assert_eq!(m.choose_comm_mode(4, bstar), CommMode::Gather);
    }

    #[test]
    fn comm_mode_limits() {
        let m = MachineModel::summit();
        // Tiny payloads: latency dominates, point-to-point wins at any p.
        for p in [2usize, 4, 16, 64] {
            assert_eq!(m.choose_comm_mode(p, 8), CommMode::Gather, "p={p}");
        }
        // Huge payloads at large p: the tree's lg p bandwidth terms beat
        // the flat root's p − 1 serialized sends.
        for p in [8usize, 16, 64] {
            assert_eq!(
                m.choose_comm_mode(p, 64 << 20),
                CommMode::Broadcast,
                "p={p}"
            );
        }
        // p = 2 is always Gather: both cost α + βb, tie goes to the
        // cheaper machinery.
        assert_eq!(m.choose_comm_mode(2, 64 << 20), CommMode::Gather);
    }

    #[test]
    fn heap_beats_hash_at_low_cf_only() {
        let m = MachineModel::summit();
        assert!(
            m.cpu_spgemm_rate(SpgemmKernel::CpuHeap, 0.5)
                > m.cpu_spgemm_rate(SpgemmKernel::CpuHash, 0.5),
            "heap should win at cf=0.5"
        );
        assert!(
            m.cpu_spgemm_rate(SpgemmKernel::CpuHeap, 50.0)
                < 0.6 * m.cpu_spgemm_rate(SpgemmKernel::CpuHash, 50.0),
            "heap should lose badly at cf=50"
        );
    }

    #[test]
    fn gpu_library_ordering_matches_fig4() {
        let m = MachineModel::summit();
        let hash_node = m.cpu_spgemm_rate(SpgemmKernel::CpuHash, 100.0);
        // At large cf: nsparse ~3.3x, bhsparse ~2.6x, rmerge2 ~1.1x of
        // cpu-hash (node-aggregate GPU rate vs node CPU rate).
        let node = |lib| m.gpu_spgemm_rate(lib, 200.0) * 6.0;
        assert!((node(GpuLib::Nsparse) / hash_node - 3.3).abs() < 0.35);
        assert!((node(GpuLib::Bhsparse) / hash_node - 2.6).abs() < 0.3);
        assert!((node(GpuLib::Rmerge2) / hash_node - 1.1).abs() < 0.15);
        // At small cf: rmerge2 is the best GPU library.
        let small = |lib| m.gpu_spgemm_rate(lib, 0.5);
        assert!(small(GpuLib::Rmerge2) > small(GpuLib::Nsparse));
        assert!(small(GpuLib::Rmerge2) > small(GpuLib::Bhsparse));
    }

    #[test]
    fn spgemm_time_scales_with_flops() {
        let m = MachineModel::summit();
        let t1 = m.spgemm_time(SpgemmKernel::CpuHash, 1_000_000, 10.0);
        let t2 = m.spgemm_time(SpgemmKernel::CpuHash, 2_000_000, 10.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gpu_time_includes_launch_latency() {
        let m = MachineModel::summit();
        let tiny = m.spgemm_time(SpgemmKernel::Gpu(GpuLib::Nsparse), 1, 100.0);
        assert!(tiny >= m.link_alpha);
    }

    #[test]
    fn multirank_divides_resources() {
        let m1 = MachineModel::summit();
        let m4 = MachineModel::summit_ranks_per_node(4);
        assert_eq!(m4.threads, 10);
        assert_eq!(m4.gpus, 1);
        assert!(m4.beta > m1.beta);
        // Fewer threads -> better per-thread efficiency (Fig. 5 pruning).
        assert!(m4.thread_efficiency() > m1.thread_efficiency());
    }

    #[test]
    fn p2p_and_link_times_positive_monotone() {
        let m = MachineModel::summit();
        assert!(m.p2p_time(0) > 0.0);
        assert!(m.p2p_time(1 << 20) > m.p2p_time(1 << 10));
        assert!(
            m.link_time(1 << 20) < m.p2p_time(1 << 20),
            "NVLink faster than network"
        );
    }

    #[test]
    fn merge_time_grows_with_ways() {
        let m = MachineModel::summit();
        assert!(m.merge_time(1000, 16) > m.merge_time(1000, 2));
    }

    #[test]
    fn merge_kernel_crossovers_match_the_documented_rule() {
        let m = MachineModel::summit();
        let t = |k, total, ways| m.merge_time_with(k, total, ways);
        // Fan-in 2: the arena-backed k-cursor merge beats every cursor or
        // table alternative (0.3 < 0.8 < lg 2 = 1).
        for other in [MergeKernel::Heap, MergeKernel::Pairwise, MergeKernel::Hash] {
            assert!(t(MergeKernel::BrMerge, 100_000, 2) < t(other, 100_000, 2));
        }
        // Fan-in 3–5: brmerge's min-scan (≤ 4 · 0.3 = 1.2) still edges
        // out the fan-in independent spadd (1.2 + setup) and the heap.
        for ways in [3usize, 4, 5] {
            assert!(t(MergeKernel::BrMerge, 100_000, ways) < t(MergeKernel::SpAdd, 100_000, ways));
            assert!(t(MergeKernel::BrMerge, 100_000, ways) < t(MergeKernel::Heap, 100_000, ways));
        }
        // Fan-in ≥ 6 with enough elements: spadd wins (lg k > 1.2, and
        // 5 · 0.3 > 1.2); it also dominates its hash baseline everywhere.
        assert!(t(MergeKernel::SpAdd, 100_000, 6) < t(MergeKernel::Heap, 100_000, 6));
        assert!(t(MergeKernel::SpAdd, 100_000, 6) < t(MergeKernel::BrMerge, 100_000, 6));
        assert!(t(MergeKernel::SpAdd, 100_000, 16) < t(MergeKernel::Heap, 100_000, 16));
        assert!(t(MergeKernel::SpAdd, 100_000, 16) < t(MergeKernel::Hash, 100_000, 16));
        // ...but a tiny merge cannot amortize either setup cost.
        assert!(t(MergeKernel::Heap, 100, 8) < t(MergeKernel::Hash, 100, 8));
        assert!(t(MergeKernel::Heap, 100, 8) < t(MergeKernel::SpAdd, 100, 8));
        // Legacy baselines stay strictly dominated in their own regimes.
        assert!(t(MergeKernel::BrMerge, 100_000, 2) < t(MergeKernel::Pairwise, 100_000, 2));
        assert!(t(MergeKernel::SpAdd, 100_000, 8) < t(MergeKernel::Hash, 100_000, 8));
        // Back-compat: merge_time is the whole-node heap path.
        assert_eq!(
            m.merge_time(5000, 7),
            m.merge_time_with(MergeKernel::Heap, 5000, 7)
        );
    }

    #[test]
    fn socket_merge_is_slower_than_whole_node_merge() {
        let m = MachineModel::summit();
        assert_eq!(m.sockets, 2);
        let node = m.merge_time_with(MergeKernel::Heap, 1 << 20, 4);
        let socket = m.socket_merge_time_with(MergeKernel::Heap, 1 << 20, 4);
        assert!(socket > node, "half the cores must merge slower");
        // Better per-thread efficiency on one socket: less than 2x slower.
        assert!(socket < 2.0 * node, "socket {socket} vs node {node}");
    }

    #[test]
    fn merge_lane_time_prices_remote_inputs_and_lane_count() {
        let m = MachineModel::summit();
        let t = |remote, lanes| m.merge_lane_time_with(MergeKernel::Heap, 80_000, 4, remote, lanes);
        // No remote inputs on a multi-lane node: exactly the socket rate.
        assert_eq!(
            t(0, 2),
            m.socket_merge_time_with(MergeKernel::Heap, 80_000, 4)
        );
        // All inputs remote: scaled by 1 + xsocket_penalty.
        let ratio = t(80_000, 2) / t(0, 2);
        assert!((ratio - (1.0 + m.xsocket_penalty)).abs() < 1e-12);
        // Half remote: half the penalty.
        let half = t(40_000, 2) / t(0, 2);
        assert!((half - (1.0 + 0.5 * m.xsocket_penalty)).abs() < 1e-12);
        // A single-lane node merges at the whole-node rate.
        assert_eq!(t(0, 1), m.merge_time_with(MergeKernel::Heap, 80_000, 4));
        // Degenerate empty merge stays finite.
        assert!(m
            .merge_lane_time_with(MergeKernel::Heap, 0, 2, 0, 2)
            .is_finite());
    }

    #[test]
    fn multirank_pins_ranks_to_one_socket() {
        assert_eq!(MachineModel::summit_ranks_per_node(2).sockets, 1);
        assert_eq!(MachineModel::summit_ranks_per_node(4).sockets, 1);
        assert_eq!(MachineModel::summit().sockets, 2);
    }

    #[test]
    fn merge_kernel_names() {
        assert_eq!(MergeKernel::Heap.name(), "heap");
        assert_eq!(MergeKernel::Pairwise.name(), "pairwise");
        assert_eq!(MergeKernel::Hash.name(), "hash");
        assert_eq!(MergeKernel::BrMerge.name(), "brmerge");
        assert_eq!(MergeKernel::SpAdd.name(), "spadd");
        assert_eq!(MergeKernel::all().len(), 5);
    }

    #[test]
    fn kernel_names() {
        assert_eq!(SpgemmKernel::CpuHash.name(), "cpu-hash");
        assert_eq!(SpgemmKernel::Gpu(GpuLib::Nsparse).name(), "nsparse");
    }

    #[test]
    #[should_panic(expected = "GPU kernel")]
    fn cpu_rate_rejects_gpu_kernel() {
        MachineModel::summit().cpu_spgemm_rate(SpgemmKernel::Gpu(GpuLib::Nsparse), 1.0);
    }

    #[test]
    fn hybrid_fraction_grows_with_cf() {
        // nsparse needs density to out-rate the host (Fig. 4), so the
        // model-derived GPU share must grow with cf.
        let m = MachineModel::summit();
        let w = 1 << 30;
        let lo = m.hybrid_gpu_fraction(GpuLib::Nsparse, w, 1.0);
        let hi = m.hybrid_gpu_fraction(GpuLib::Nsparse, w, 100.0);
        assert!(lo < hi, "lo={lo} hi={hi}");
        // At high cf the share approaches R_G/(R_G + R_C).
        let rg = m.gpu_spgemm_rate(GpuLib::Nsparse, 100.0) * m.gpus as f64;
        let rc = m.cpu_spgemm_rate(SpgemmKernel::CpuHash, 100.0);
        assert!((hi - rg / (rg + rc)).abs() < 0.01, "hi={hi}");
    }

    #[test]
    fn hybrid_fraction_bounds_and_degenerate_cases() {
        let m = MachineModel::summit();
        for cf in [0.5, 2.0, 10.0, 200.0] {
            for flops in [1u64, 1000, 1 << 20, 1 << 40] {
                for lib in GpuLib::all() {
                    let f = m.hybrid_gpu_fraction(lib, flops, cf);
                    assert!(
                        (0.0..=1.0).contains(&f),
                        "{lib:?} cf={cf} flops={flops}: {f}"
                    );
                }
            }
        }
        // No devices or no work: everything stays on the pool.
        assert_eq!(
            MachineModel::summit_cpu_only().hybrid_gpu_fraction(GpuLib::Nsparse, 1 << 30, 50.0),
            0.0
        );
        assert_eq!(m.hybrid_gpu_fraction(GpuLib::Nsparse, 0, 50.0), 0.0);
        // Too small to amortize the launch latency: stay on the CPU.
        assert_eq!(m.hybrid_gpu_fraction(GpuLib::Nsparse, 1, 50.0), 0.0);
    }
}
