//! The machine model: kernel rate curves and interconnect parameters that
//! turn operation counts into virtual seconds.
//!
//! Calibration targets Summit (ORNL), the paper's platform: two 22-core
//! Power9 CPUs and six 16 GB V100 GPUs per node, dual-rail EDR InfiniBand
//! (fat tree). The absolute constants are order-of-magnitude figures from
//! public Summit specs; the *relative* figures (heap vs hash vs the three
//! GPU libraries as functions of the compression factor `cf`) are set to
//! reproduce the regimes the paper reports in Fig. 4 and §VI–VII:
//!
//! * heaps slightly beat hashes at `cf ≲ 2`, lose badly at large `cf`;
//! * `nsparse` ≈ 3.3× `cpu-hash` at large `cf`, poor at small `cf`;
//! * `bhsparse` ≈ 2.6× at large `cf`;
//! * `rmerge2` ≈ 1.1× overall and the best GPU library at small `cf`.
//!
//! Everything is an explicit struct field so ablation benches can perturb
//! the model.

/// Which SpGEMM kernel a local multiplication ran on (for rate lookup).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpgemmKernel {
    /// CPU, heap accumulation (original HipMCL).
    CpuHeap,
    /// CPU, hash accumulation (§VI).
    CpuHash,
    /// CPU, dense sparse accumulator.
    CpuSpa,
    /// One of the GPU libraries.
    Gpu(GpuLib),
}

/// The three GPU SpGEMM libraries the paper integrates (§III).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GpuLib {
    /// `bhsparse` (Liu & Vinter) — expand-sort-compress.
    Bhsparse,
    /// `nsparse` (Nagasaka et al.) — binned hash accumulation.
    Nsparse,
    /// `rmerge2` (Gremse et al.) — iterative row merging.
    Rmerge2,
}

impl GpuLib {
    /// Label used in the paper's plots.
    pub fn name(self) -> &'static str {
        match self {
            GpuLib::Bhsparse => "bhsparse",
            GpuLib::Nsparse => "nsparse",
            GpuLib::Rmerge2 => "rmerge2",
        }
    }

    /// All libraries, in the paper's plot order.
    pub fn all() -> [GpuLib; 3] {
        [GpuLib::Rmerge2, GpuLib::Bhsparse, GpuLib::Nsparse]
    }
}

impl SpgemmKernel {
    /// Label used in the paper's plots.
    pub fn name(self) -> &'static str {
        match self {
            SpgemmKernel::CpuHeap => "cpu-heap",
            SpgemmKernel::CpuHash => "cpu-hash",
            SpgemmKernel::CpuSpa => "cpu-spa",
            SpgemmKernel::Gpu(lib) => lib.name(),
        }
    }
}

/// Summit-like machine parameters. All times in seconds, rates in
/// operations (or bytes) per second, per *rank* unless stated.
#[derive(Clone, Debug)]
pub struct MachineModel {
    /// Human-readable name.
    pub name: &'static str,
    /// Network message latency (per hop of a tree collective).
    pub alpha: f64,
    /// Inverse network bandwidth per rank, s/byte.
    pub beta: f64,
    /// Host↔device transfer launch latency.
    pub link_alpha: f64,
    /// Inverse host↔device bandwidth, s/byte (NVLink on Summit).
    pub link_beta: f64,
    /// Effective per-core SpGEMM rate with hash accumulation, flops/s.
    /// (Sparse flops — dominated by irregular memory traffic, so far below
    /// peak FP throughput.)
    pub core_spgemm_rate: f64,
    /// CPU threads available to this rank.
    pub threads: usize,
    /// GPUs driven by this rank.
    pub gpus: usize,
    /// Aggregate GPU SpGEMM rate of a *full node* (all 6 GPUs) with
    /// `nsparse` at `cf → ∞`, flops/s.
    pub gpu_node_rate: f64,
    /// Thread-scaling penalty: efficiency = 1 / (1 + c·threads). Models
    /// OpenMP/NUMA overhead growing with the thread count — the effect
    /// behind the paper's thread-vs-process study (Fig. 5).
    pub thread_overhead: f64,
    /// Elementwise op rate per core (pruning, inflation), ops/s.
    pub core_elementwise_rate: f64,
    /// Merge rate per core, elements/s (two-way merge of sorted runs).
    pub core_merge_rate: f64,
    /// Cohen-estimator op rate per core, key-ops/s.
    pub core_estimate_rate: f64,
}

impl MachineModel {
    /// Summit, one MPI rank per node: 40 worker threads (paper's choice,
    /// out of 44 SMT-1 cores), 6 GPUs.
    pub fn summit() -> Self {
        Self {
            name: "summit-1rank-per-node",
            alpha: 3.0e-6,
            beta: 1.0 / 23.0e9,
            link_alpha: 1.0e-5,
            link_beta: 1.0 / 50.0e9,
            core_spgemm_rate: 7.5e7,
            threads: 40,
            gpus: 6,
            gpu_node_rate: 7.8e9,
            thread_overhead: 0.007,
            core_elementwise_rate: 2.0e8,
            core_merge_rate: 1.2e8,
            core_estimate_rate: 1.5e8,
        }
    }

    /// Summit parameters for *reduced-scale* harness runs.
    ///
    /// On the real machine, per-node SUMMA payloads are hundreds of MB to
    /// GB, so fixed latencies (network α ≈ 3 µs, kernel/transfer launch
    /// ≈ 10 µs) are 4–5 orders of magnitude below the bandwidth terms.
    /// The harness shrinks workloads by 10³–10⁵, which would promote
    /// those constants into the dominant cost and mask every effect the
    /// paper measures. This model scales the fixed latencies down by the
    /// same order so they remain as negligible as they are on Summit;
    /// all rates and bandwidths (the terms that set the paper's shapes)
    /// are untouched.
    pub fn summit_bench() -> Self {
        Self {
            name: "summit-bench-scaled",
            alpha: 3.0e-10,
            link_alpha: 1.0e-9,
            ..Self::summit()
        }
    }

    /// Summit with `r` ranks per node (the "process-based" setting of
    /// Fig. 5): threads and GPUs are divided, network bandwidth per rank
    /// shrinks because ranks share the NIC.
    pub fn summit_ranks_per_node(r: usize) -> Self {
        let base = Self::summit();
        Self {
            name: "summit-multirank",
            beta: base.beta * r as f64,
            threads: base.threads / r,
            gpus: (base.gpus / r).max(1),
            gpu_node_rate: base.gpu_node_rate / r as f64,
            ..base
        }
    }

    /// A CPU-only Summit node (for "original HipMCL" baselines).
    pub fn summit_cpu_only() -> Self {
        Self {
            gpus: 0,
            gpu_node_rate: 0.0,
            name: "summit-cpu-only",
            ..Self::summit()
        }
    }

    /// Thread-parallel efficiency for this rank's thread count.
    pub fn thread_efficiency(&self) -> f64 {
        1.0 / (1.0 + self.thread_overhead * self.threads as f64)
    }

    /// Effective CPU rate multiplier: threads × efficiency.
    fn cpu_parallel_factor(&self) -> f64 {
        self.threads as f64 * self.thread_efficiency()
    }

    /// CPU SpGEMM rate (flops/s for this rank) as a function of kernel and
    /// compression factor. See module docs for the shape rationale.
    pub fn cpu_spgemm_rate(&self, kernel: SpgemmKernel, cf: f64) -> f64 {
        let hash = self.core_spgemm_rate * self.cpu_parallel_factor();
        match kernel {
            SpgemmKernel::CpuHash => hash,
            // Heap: mild win at tiny cf, logarithmic decay after —
            // steepness follows the Nagasaka et al. ICPP'18 measurements
            // (hash 2-4x faster at MCL densities).
            SpgemmKernel::CpuHeap => hash * 1.15 / (0.9 + 0.5 * (1.0 + cf).ln()),
            // SPA: competitive at high density, pays dense-scratch traffic.
            SpgemmKernel::CpuSpa => hash * 0.9,
            SpgemmKernel::Gpu(_) => panic!("GPU kernel asked for CPU rate"),
        }
    }

    /// GPU SpGEMM rate (flops/s) for a *single device* of this rank.
    /// Saturating exponentials reproduce the Fig. 4 regimes: every library
    /// needs accumulation density (`cf`) to amortize its launch and
    /// memory-staging overheads.
    pub fn gpu_spgemm_rate(&self, lib: GpuLib, cf: f64) -> f64 {
        assert!(self.gpus > 0, "model has no GPUs");
        let hash_node = self.core_spgemm_rate * 40.0 / (1.0 + 0.007 * 40.0); // full-node cpu-hash
        let peak_node = self.gpu_node_rate; // nsparse at cf→∞ (≈3.3× hash_node)
        let per_gpu = |node_rate: f64| node_rate / 6.0;
        let s = |x: f64| 1.0 - (-x).exp();
        match lib {
            GpuLib::Nsparse => {
                per_gpu(hash_node * 0.5 + (peak_node - hash_node * 0.5) * s(cf / 12.0))
            }
            GpuLib::Bhsparse => {
                per_gpu(hash_node * 0.4 + (2.6 * hash_node - hash_node * 0.4) * s(cf / 12.0))
            }
            GpuLib::Rmerge2 => {
                per_gpu(hash_node * 0.92 + (1.1 * hash_node - hash_node * 0.92) * s(cf / 5.0))
            }
        }
    }

    /// Virtual duration of a local SpGEMM with `flops` work at compression
    /// factor `cf` on the given kernel. GPU kernels assume the work is
    /// split evenly across this rank's `gpus` devices (§III-A column
    /// splitting), so the duration is for the whole local multiply.
    pub fn spgemm_time(&self, kernel: SpgemmKernel, flops: u64, cf: f64) -> f64 {
        match kernel {
            SpgemmKernel::Gpu(lib) => {
                let rate = self.gpu_spgemm_rate(lib, cf) * self.gpus as f64;
                self.link_alpha + flops as f64 / rate
            }
            k => flops as f64 / self.cpu_spgemm_rate(k, cf),
        }
    }

    /// Model-derived GPU share of a hybrid CPU/GPU column split.
    ///
    /// Extends the §III-A multi-GPU column split by one more "device" (the
    /// CPU worker pool): a fraction `f` of the stage's `flops` goes to the
    /// devices, the rest to the pool, and the split is profitable exactly
    /// when both sides finish together. With aggregate device rate
    /// `R_G = gpus · gpu_spgemm_rate(lib, cf)`, pool rate
    /// `R_C = cpu_spgemm_rate(CpuHash, cf)` (the pool always runs the hash
    /// kernel on its slab), work `W = flops`, and the one-off device
    /// launch/transfer latency `link_alpha`, the balance condition
    ///
    /// ```text
    /// link_alpha + f·W/R_G = (1 − f)·W/R_C
    /// ```
    ///
    /// solves to
    ///
    /// ```text
    /// f* = (W/R_C − link_alpha) / (W·(1/R_G + 1/R_C))
    /// ```
    ///
    /// clamped to `[0, 1]`. Both rates are evaluated at the stage's
    /// estimated `cf` — the same quantity that flips the profitable kernel
    /// in Fig. 4 — so the split tracks per-stage density instead of a
    /// fixed constant. Degenerate cases: no devices or zero work → `0`
    /// (everything stays on the pool); a multiplication too small to
    /// amortize `link_alpha` also collapses to `0`.
    pub fn hybrid_gpu_fraction(&self, lib: GpuLib, flops: u64, cf: f64) -> f64 {
        if self.gpus == 0 || flops == 0 {
            return 0.0;
        }
        let rg = self.gpu_spgemm_rate(lib, cf) * self.gpus as f64;
        let rc = self.cpu_spgemm_rate(SpgemmKernel::CpuHash, cf);
        let w = flops as f64;
        let f = (w / rc - self.link_alpha) / (w * (1.0 / rg + 1.0 / rc));
        f.clamp(0.0, 1.0)
    }

    /// Point-to-point transfer time for `bytes`.
    pub fn p2p_time(&self, bytes: usize) -> f64 {
        self.alpha + bytes as f64 * self.beta
    }

    /// Host→device (or device→host) transfer time for `bytes`.
    pub fn link_time(&self, bytes: usize) -> f64 {
        self.link_alpha + bytes as f64 * self.link_beta
    }

    /// Elementwise pass over `n` entries (pruning, inflation, scaling).
    pub fn elementwise_time(&self, n: u64) -> f64 {
        n as f64 / (self.core_elementwise_rate * self.cpu_parallel_factor())
    }

    /// Merging `total` elements through a `ways`-way merge (heap of size
    /// `ways`): `total · lg(ways)` comparisons at the merge rate.
    pub fn merge_time(&self, total: u64, ways: usize) -> f64 {
        let lg = (ways.max(2) as f64).log2();
        total as f64 * lg / (self.core_merge_rate * self.cpu_parallel_factor())
    }

    /// Cohen estimation with `ops = r · (nnz A + nnz B)` key operations.
    pub fn estimate_time(&self, ops: u64) -> f64 {
        ops as f64 / (self.core_estimate_rate * self.cpu_parallel_factor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_beats_hash_at_low_cf_only() {
        let m = MachineModel::summit();
        assert!(
            m.cpu_spgemm_rate(SpgemmKernel::CpuHeap, 0.5)
                > m.cpu_spgemm_rate(SpgemmKernel::CpuHash, 0.5),
            "heap should win at cf=0.5"
        );
        assert!(
            m.cpu_spgemm_rate(SpgemmKernel::CpuHeap, 50.0)
                < 0.6 * m.cpu_spgemm_rate(SpgemmKernel::CpuHash, 50.0),
            "heap should lose badly at cf=50"
        );
    }

    #[test]
    fn gpu_library_ordering_matches_fig4() {
        let m = MachineModel::summit();
        let hash_node = m.cpu_spgemm_rate(SpgemmKernel::CpuHash, 100.0);
        // At large cf: nsparse ~3.3x, bhsparse ~2.6x, rmerge2 ~1.1x of
        // cpu-hash (node-aggregate GPU rate vs node CPU rate).
        let node = |lib| m.gpu_spgemm_rate(lib, 200.0) * 6.0;
        assert!((node(GpuLib::Nsparse) / hash_node - 3.3).abs() < 0.35);
        assert!((node(GpuLib::Bhsparse) / hash_node - 2.6).abs() < 0.3);
        assert!((node(GpuLib::Rmerge2) / hash_node - 1.1).abs() < 0.15);
        // At small cf: rmerge2 is the best GPU library.
        let small = |lib| m.gpu_spgemm_rate(lib, 0.5);
        assert!(small(GpuLib::Rmerge2) > small(GpuLib::Nsparse));
        assert!(small(GpuLib::Rmerge2) > small(GpuLib::Bhsparse));
    }

    #[test]
    fn spgemm_time_scales_with_flops() {
        let m = MachineModel::summit();
        let t1 = m.spgemm_time(SpgemmKernel::CpuHash, 1_000_000, 10.0);
        let t2 = m.spgemm_time(SpgemmKernel::CpuHash, 2_000_000, 10.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gpu_time_includes_launch_latency() {
        let m = MachineModel::summit();
        let tiny = m.spgemm_time(SpgemmKernel::Gpu(GpuLib::Nsparse), 1, 100.0);
        assert!(tiny >= m.link_alpha);
    }

    #[test]
    fn multirank_divides_resources() {
        let m1 = MachineModel::summit();
        let m4 = MachineModel::summit_ranks_per_node(4);
        assert_eq!(m4.threads, 10);
        assert_eq!(m4.gpus, 1);
        assert!(m4.beta > m1.beta);
        // Fewer threads -> better per-thread efficiency (Fig. 5 pruning).
        assert!(m4.thread_efficiency() > m1.thread_efficiency());
    }

    #[test]
    fn p2p_and_link_times_positive_monotone() {
        let m = MachineModel::summit();
        assert!(m.p2p_time(0) > 0.0);
        assert!(m.p2p_time(1 << 20) > m.p2p_time(1 << 10));
        assert!(
            m.link_time(1 << 20) < m.p2p_time(1 << 20),
            "NVLink faster than network"
        );
    }

    #[test]
    fn merge_time_grows_with_ways() {
        let m = MachineModel::summit();
        assert!(m.merge_time(1000, 16) > m.merge_time(1000, 2));
    }

    #[test]
    fn kernel_names() {
        assert_eq!(SpgemmKernel::CpuHash.name(), "cpu-hash");
        assert_eq!(SpgemmKernel::Gpu(GpuLib::Nsparse).name(), "nsparse");
    }

    #[test]
    #[should_panic(expected = "GPU kernel")]
    fn cpu_rate_rejects_gpu_kernel() {
        MachineModel::summit().cpu_spgemm_rate(SpgemmKernel::Gpu(GpuLib::Nsparse), 1.0);
    }

    #[test]
    fn hybrid_fraction_grows_with_cf() {
        // nsparse needs density to out-rate the host (Fig. 4), so the
        // model-derived GPU share must grow with cf.
        let m = MachineModel::summit();
        let w = 1 << 30;
        let lo = m.hybrid_gpu_fraction(GpuLib::Nsparse, w, 1.0);
        let hi = m.hybrid_gpu_fraction(GpuLib::Nsparse, w, 100.0);
        assert!(lo < hi, "lo={lo} hi={hi}");
        // At high cf the share approaches R_G/(R_G + R_C).
        let rg = m.gpu_spgemm_rate(GpuLib::Nsparse, 100.0) * m.gpus as f64;
        let rc = m.cpu_spgemm_rate(SpgemmKernel::CpuHash, 100.0);
        assert!((hi - rg / (rg + rc)).abs() < 0.01, "hi={hi}");
    }

    #[test]
    fn hybrid_fraction_bounds_and_degenerate_cases() {
        let m = MachineModel::summit();
        for cf in [0.5, 2.0, 10.0, 200.0] {
            for flops in [1u64, 1000, 1 << 20, 1 << 40] {
                for lib in GpuLib::all() {
                    let f = m.hybrid_gpu_fraction(lib, flops, cf);
                    assert!(
                        (0.0..=1.0).contains(&f),
                        "{lib:?} cf={cf} flops={flops}: {f}"
                    );
                }
            }
        }
        // No devices or no work: everything stays on the pool.
        assert_eq!(
            MachineModel::summit_cpu_only().hybrid_gpu_fraction(GpuLib::Nsparse, 1 << 30, 50.0),
            0.0
        );
        assert_eq!(m.hybrid_gpu_fraction(GpuLib::Nsparse, 0, 50.0), 0.0);
        // Too small to amortize the launch latency: stay on the CPU.
        assert_eq!(m.hybrid_gpu_fraction(GpuLib::Nsparse, 1, 50.0), 0.0);
    }
}
