//! The socket transports ([`TransportKind::Tcp`] /
//! [`TransportKind::Uds`]): ranks as OS processes — possibly on
//! *different machines* — exchanging wire-encoded frames over stream
//! sockets. Pure `std`, always built.
//!
//! # Frame format
//!
//! Identical to the shared-memory rings: `[total_len u64][header 40 B]
//! [payload]`, all little-endian (see [`crate::transport::FrameHeader`]).
//! A dedicated reader thread per peer connection reassembles frames and
//! pushes them into one incoming channel, so [`SocketEndpoint::recv_frame`]
//! is a single channel receive; writes go directly to the peer's stream.
//! Socket bytes are *untrusted* in a way ring bytes were not: the reader
//! rejects runt, oversized, and mis-attributed frames (a frame whose
//! header claims a source other than the connection it arrived on) by
//! closing the connection with a reason, which surfaces on the next
//! receive aimed at that peer as a rank/tag/peer diagnostic.
//!
//! # Rendezvous
//!
//! Rank 0 listens on the root address; every other rank dials it with
//! bounded retry + deterministic jittered backoff, sends a hello naming
//! its own listener address, and receives the full address table back.
//! The mesh then completes pairwise: rank *j* dials every rank *i* with
//! `0 < i < j` and accepts from every rank `> j` (listener backlogs make
//! the ordering deadlock-free). All rendezvous failures panic with the
//! rank, phase, and address involved.
//!
//! # Launch modes
//!
//! *Local* (the default, mirroring the `process-shm` re-exec path): the
//! `run_with` caller becomes the parent, spawns `P` copies of
//! `current_exe()` with `HIPMCL_TCP_{DIR,RANK,RANKS,UNIVERSE}` set, rank
//! 0 binds an ephemeral port and publishes it as `root_addr.txt` in the
//! session directory, and results come back as files, exactly like shm.
//!
//! *Hand-launched / multi-host*: the user starts one process per rank —
//! on as many machines as they like — with `HIPMCL_TCP_RANK`,
//! `HIPMCL_TCP_RANKS`, and `HIPMCL_TCP_ROOT=HOST:PORT` set (no
//! `HIPMCL_TCP_UNIVERSE`, no session dir). Every rank runs the same
//! binary; each socket universe it reaches runs over the wire, and the
//! per-rank results are exchanged *through the sockets themselves* so
//! every rank returns the identical `Vec<R>` the in-process transport
//! would produce.

use crate::comm::{Comm, Mailbox};
use crate::launch::{
    self, ChildIdentity, LaunchFamily, SessionGuard, TCP_ENV_DIR, TCP_ENV_RANK, TCP_ENV_RANKS,
    TCP_ENV_UNIVERSE,
};
use crate::packet::WirePayload;
use crate::transport::{
    Endpoint, Frame, FrameHeader, FramePayload, RecvError, TransportKind, FRAME_HEADER_BYTES,
};
use crate::universe::{run_threads, UniverseConfig};
use std::cell::RefCell;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// First word of every rendezvous message; guards against a stray client
/// (port scanner, wrong address) being mistaken for a rank.
const HELLO_MAGIC: u64 = 0x4849_504d_434c_534b; // "HIPMCLSK"

/// Upper bound on a single frame. Nothing the SUMMA stack ships comes
/// within two orders of magnitude of this; a larger length prefix means
/// a corrupt or hostile stream, not a big matrix.
const MAX_FRAME_BYTES: usize = 1 << 30;

/// Poll interval while waiting to accept or for the root-address file.
const POLL: Duration = Duration::from_millis(2);

/// Tag for the post-universe result exchange in hand-launched mode.
/// Collides with nothing: the universe body has fully matched its own
/// traffic by the time this runs on a fresh world communicator.
const RESULT_TAG: u64 = 0x5245_5355_4c54; // "RESULT"

/// A connected stream of either flavor.
enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    /// Half-closes the write side so the peer's reader sees EOF at a
    /// frame boundary (graceful teardown); already-sent frames still
    /// drain first.
    fn shutdown_write(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
            #[cfg(unix)]
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Write),
        };
    }

    /// The local IP as the remote end routes to it — what a TCP rank
    /// advertises as its dial-in host.
    fn local_ip(&self) -> Option<std::net::IpAddr> {
        match self {
            Stream::Tcp(s) => s.local_addr().ok().map(|a| a.ip()),
            #[cfg(unix)]
            Stream::Unix(_) => None,
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A listening socket of either flavor.
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

/// Binds a Unix-domain listener at `path`, clearing a stale socket file.
#[cfg(unix)]
fn bind_unix(path: &Path) -> std::io::Result<Listener> {
    if path.exists() {
        let _ = std::fs::remove_file(path);
    }
    UnixListener::bind(path).map(Listener::Unix)
}

#[cfg(not(unix))]
fn bind_unix(_path: &Path) -> std::io::Result<Listener> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "uds transport requires a unix platform (use tcp)",
    ))
}

/// Writes little-endian u64 words.
fn write_words(s: &mut Stream, words: &[u64]) -> std::io::Result<()> {
    for w in words {
        s.write_all(&w.to_le_bytes())?;
    }
    Ok(())
}

/// Reads one little-endian u64 word.
fn read_word(s: &mut Stream) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    s.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Reads a length-prefixed rendezvous string (addresses only — bounded
/// well below frame sizes).
fn read_addr(s: &mut Stream) -> std::io::Result<String> {
    let len = read_word(s)? as usize;
    if len > 4096 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("rendezvous address length {len} is implausible"),
        ));
    }
    let mut buf = vec![0u8; len];
    s.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 address"))
}

fn write_addr(s: &mut Stream, addr: &str) -> std::io::Result<()> {
    write_words(s, &[addr.len() as u64])?;
    s.write_all(addr.as_bytes())
}

/// Fills `buf`, returning how many bytes arrived before EOF.
fn read_full(s: &mut Stream, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut n = 0;
    while n < buf.len() {
        match s.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(k) => n += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(n)
}

/// What a reader thread forwards to the endpoint.
enum Incoming {
    Frame(Frame),
    Closed { peer: usize, reason: String },
}

/// Reads one frame off `s`, validating the untrusted envelope.
/// `Ok(None)` is a clean EOF at a frame boundary (the peer finished and
/// closed); anything else wrong is an `Err` with the reason.
fn read_frame(s: &mut Stream, expect_src: usize) -> Result<Option<Frame>, String> {
    let mut len_b = [0u8; 8];
    match read_full(s, &mut len_b) {
        Ok(0) => return Ok(None),
        Ok(n) if n < 8 => return Err(format!("truncated frame length ({n}/8 bytes, then EOF)")),
        Ok(_) => {}
        Err(e) => return Err(format!("read error: {e}")),
    }
    let total = u64::from_le_bytes(len_b) as usize;
    if total < FRAME_HEADER_BYTES {
        return Err(format!(
            "runt frame ({total} B < {FRAME_HEADER_BYTES} B header)"
        ));
    }
    if total > MAX_FRAME_BYTES {
        return Err(format!(
            "oversized frame ({total} B > {MAX_FRAME_BYTES} B cap) — corrupt stream?"
        ));
    }
    let mut hdr = [0u8; FRAME_HEADER_BYTES];
    s.read_exact(&mut hdr)
        .map_err(|e| format!("truncated frame header: {e}"))?;
    let header = FrameHeader::decode(&hdr);
    if header.src_world != expect_src {
        return Err(format!(
            "frame claims src_world {} on the connection from world {expect_src} — corrupt stream",
            header.src_world
        ));
    }
    // Chunked payload read: don't trust `total` enough to allocate it in
    // one shot before any payload bytes actually arrive.
    let mut remaining = total - FRAME_HEADER_BYTES;
    let mut payload = Vec::new();
    let mut chunk = vec![0u8; 64 * 1024];
    while remaining > 0 {
        let n = chunk.len().min(remaining);
        s.read_exact(&mut chunk[..n])
            .map_err(|e| format!("truncated frame payload: {e}"))?;
        payload.extend_from_slice(&chunk[..n]);
        remaining -= n;
    }
    Ok(Some(Frame {
        header,
        payload: FramePayload::Bytes(payload),
    }))
}

fn spawn_reader(stream: &Stream, peer: usize, tx: crossbeam_channel::Sender<Incoming>) {
    let mut rd = stream
        .try_clone()
        .unwrap_or_else(|e| panic!("clone stream of world {peer} for reader: {e}"));
    std::thread::spawn(move || loop {
        match read_frame(&mut rd, peer) {
            Ok(Some(f)) => {
                if tx.send(Incoming::Frame(f)).is_err() {
                    return; // endpoint gone, we're shutting down
                }
            }
            Ok(None) => {
                let _ = tx.send(Incoming::Closed {
                    peer,
                    reason: "connection closed (peer exited)".into(),
                });
                return;
            }
            Err(reason) => {
                let _ = tx.send(Incoming::Closed { peer, reason });
                return;
            }
        }
    });
}

/// A rank's endpoint over its mesh of peer connections.
pub struct SocketEndpoint {
    kind: TransportKind,
    world_rank: usize,
    writers: Vec<Option<RefCell<Stream>>>,
    rx: crossbeam_channel::Receiver<Incoming>,
    /// Keeps the channel open even with zero peers (p = 1) so
    /// `recv_frame` times out instead of reporting a torn-down universe.
    _tx: crossbeam_channel::Sender<Incoming>,
    closed: RefCell<Vec<Option<String>>>,
}

impl Endpoint for SocketEndpoint {
    fn kind(&self) -> TransportKind {
        self.kind
    }

    fn byte_oriented(&self) -> bool {
        true
    }

    fn send_frame(&self, dst_world: usize, frame: Frame) {
        let payload = match frame.payload {
            FramePayload::Bytes(b) => b,
            FramePayload::Typed(_) => {
                unreachable!("typed payload on a byte-oriented transport")
            }
        };
        let mut buf = Vec::with_capacity(8 + FRAME_HEADER_BYTES + payload.len());
        buf.extend_from_slice(&((FRAME_HEADER_BYTES + payload.len()) as u64).to_le_bytes());
        frame.header.encode(&mut buf);
        buf.extend_from_slice(&payload);
        let mut w = self.writers[dst_world]
            .as_ref()
            .expect("send to self goes through the mailbox, not the socket")
            .borrow_mut();
        w.write_all(&buf).unwrap_or_else(|e| {
            panic!(
                "rank (world {}) failed sending tag {:#x} to world {dst_world} over {}: {e} \
                 (peer process died?)",
                self.world_rank, frame.header.tag, self.kind
            )
        });
    }

    fn recv_frame(&self, timeout: Option<Duration>) -> Result<Frame, RecvError> {
        let msg = match timeout {
            None => self.rx.recv().map_err(|_| RecvError::Disconnected)?,
            Some(d) => self.rx.recv_timeout(d).map_err(|e| match e {
                crossbeam_channel::RecvTimeoutError::Timeout => RecvError::Timeout,
                crossbeam_channel::RecvTimeoutError::Disconnected => RecvError::Disconnected,
            })?,
        };
        match msg {
            Incoming::Frame(f) => Ok(f),
            Incoming::Closed { peer, reason } => {
                self.closed.borrow_mut()[peer] = Some(reason);
                Err(RecvError::PeerClosed(peer))
            }
        }
    }

    fn closed_peer_info(&self, world: usize) -> Option<String> {
        self.closed.borrow().get(world).and_then(|r| r.clone())
    }
}

impl Drop for SocketEndpoint {
    fn drop(&mut self) {
        for w in self.writers.iter().flatten() {
            w.borrow().shutdown_write();
        }
    }
}

/// Deterministic backoff for dial attempt `attempt` by `rank`: doubling
/// base capped at 100 ms, plus a rank/attempt-derived jitter so peers
/// dialing the same root don't retry in lockstep.
fn backoff(rank: usize, attempt: u32) -> Duration {
    let base = Duration::from_millis((2u64 << attempt.min(6)).min(100));
    let jitter_ms = (rank as u64)
        .wrapping_mul(7919)
        .wrapping_add(u64::from(attempt).wrapping_mul(104_729))
        % 5;
    base + Duration::from_millis(jitter_ms)
}

/// Dials `addr` with retry/backoff until `deadline`.
fn dial(kind: TransportKind, addr: &str, rank: usize, deadline: Instant) -> Stream {
    let mut attempt = 0u32;
    loop {
        let res = match kind {
            TransportKind::Tcp => TcpStream::connect(addr).map(Stream::Tcp),
            #[cfg(unix)]
            TransportKind::Uds => UnixStream::connect(addr).map(Stream::Unix),
            _ => unreachable!("dial on a non-socket transport"),
        };
        match res {
            Ok(s) => return s,
            Err(e) => {
                if Instant::now() >= deadline {
                    panic!(
                        "rank {rank}: could not reach {addr} over {kind} before the dial \
                         deadline (last error: {e}); is the root rank up, and is \
                         HIPMCL_TCP_ROOT the same on every rank?"
                    );
                }
                std::thread::sleep(backoff(rank, attempt));
                attempt += 1;
            }
        }
    }
}

/// Accepts one connection, polling until `deadline`.
fn accept_deadline(l: &Listener, rank: usize, expect: &str, deadline: Instant) -> Stream {
    l.set_nonblocking(true).expect("listener nonblocking");
    loop {
        match l.accept() {
            Ok(s) => {
                l.set_nonblocking(false).expect("listener blocking");
                return s;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    panic!(
                        "rank {rank}: gave up waiting to accept {expect} before the dial \
                         deadline; a peer rank likely never started or cannot route here"
                    );
                }
                std::thread::sleep(POLL);
            }
            Err(e) => panic!("rank {rank}: accept failed while waiting for {expect}: {e}"),
        }
    }
}

/// Where rank 0 listens, resolved per mode (see module docs).
fn root_addr(
    kind: TransportKind,
    cfg: &UniverseConfig,
    dir: Option<&Path>,
    rank: usize,
    deadline: Instant,
) -> String {
    if kind == TransportKind::Uds {
        let dir = dir.expect("uds root_addr needs a session dir");
        return dir.join("sock_0").to_string_lossy().into_owned();
    }
    if let Some(root) = cfg
        .socket
        .root
        .clone()
        .or_else(|| std::env::var("HIPMCL_TCP_ROOT").ok())
    {
        return root;
    }
    // Local launch: rank 0 binds an ephemeral port and publishes it.
    let dir = dir.unwrap_or_else(|| {
        panic!(
            "tcp transport needs a rendezvous address for hand-launched ranks: set \
             HIPMCL_TCP_ROOT=HOST:PORT identically on every rank (rank 0 listens there)"
        )
    });
    if rank == 0 {
        // The caller (bind_root) publishes the bound address; this value
        // is the bind target.
        return "127.0.0.1:0".into();
    }
    // Non-root ranks poll for the published address.
    let path = dir.join("root_addr.txt");
    loop {
        if let Ok(s) = std::fs::read_to_string(&path) {
            return s.trim().to_string();
        }
        if Instant::now() >= deadline {
            panic!(
                "rank {rank}: root address file {} never appeared; rank 0 failed to bind?",
                path.display()
            );
        }
        std::thread::sleep(POLL);
    }
}

/// Rank 0's listener, bound with retry (a just-released port or a stale
/// socket file clears within the budget) and published when local.
fn bind_root(
    kind: TransportKind,
    addr: &str,
    dir: Option<&Path>,
    publish: bool,
    deadline: Instant,
) -> Listener {
    let mut last: Option<std::io::Error> = None;
    let listener = loop {
        let res = match kind {
            TransportKind::Tcp => TcpListener::bind(addr).map(Listener::Tcp),
            TransportKind::Uds => bind_unix(Path::new(addr)),
            _ => unreachable!("bind_root on a non-socket transport"),
        };
        match res {
            Ok(l) => break l,
            Err(e) => {
                if Instant::now() >= deadline {
                    panic!(
                        "rank 0: could not bind rendezvous listener on {addr} over {kind}: \
                         {e} (another process holding it? stale HIPMCL_TCP_ROOT?)",
                    );
                }
                last = Some(e);
                std::thread::sleep(POLL * 10);
            }
        }
    };
    let _ = last;
    if publish {
        let dir = dir.expect("publishing the root address requires a session dir");
        let bound = match &listener {
            Listener::Tcp(l) => l.local_addr().expect("root local_addr").to_string(),
            #[cfg(unix)]
            Listener::Unix(_) => unreachable!("uds roots are never published via file"),
        };
        let tmp = dir.join("root_addr.tmp");
        std::fs::write(&tmp, &bound).expect("write root addr");
        std::fs::rename(tmp, dir.join("root_addr.txt")).expect("publish root addr");
    }
    listener
}

/// The address rank `rank` tells peers to dial.
fn advertised_addr(
    kind: TransportKind,
    listener: &Listener,
    root_stream: &Stream,
    cfg: &UniverseConfig,
    dir: Option<&Path>,
    rank: usize,
) -> String {
    match kind {
        TransportKind::Uds => {
            let dir = dir.expect("uds advertised_addr needs a session dir");
            dir.join(format!("sock_{rank}"))
                .to_string_lossy()
                .into_owned()
        }
        TransportKind::Tcp => {
            let port = match listener {
                Listener::Tcp(l) => l.local_addr().expect("peer local_addr").port(),
                #[cfg(unix)]
                Listener::Unix(_) => unreachable!("tcp advertise over unix listener"),
            };
            let bind = cfg
                .socket
                .bind
                .clone()
                .or_else(|| std::env::var("HIPMCL_TCP_BIND").ok());
            let host = match bind.as_deref().and_then(|b| b.rsplit_once(':')) {
                // An explicit non-wildcard bind host is also the dial-in
                // host (multi-homed machines).
                Some((h, _)) if h != "0.0.0.0" && h != "[::]" && h != "::" => h.to_string(),
                // Otherwise: the IP this host uses to reach the root is
                // the IP the cluster can route back to.
                _ => match root_stream.local_ip() {
                    Some(std::net::IpAddr::V6(ip)) => format!("[{ip}]"),
                    Some(ip) => ip.to_string(),
                    None => "127.0.0.1".into(),
                },
            };
            format!("{host}:{port}")
        }
        _ => unreachable!("advertised_addr on a non-socket transport"),
    }
}

/// Builds the fully-connected mesh for `rank` of `p` and wraps it in an
/// endpoint with one reader thread per peer.
fn connect_mesh(cfg: &UniverseConfig, rank: usize, p: usize, dir: Option<&Path>) -> SocketEndpoint {
    let kind = cfg.transport;
    let (tx, rx) = crossbeam_channel::unbounded::<Incoming>();
    let mut conns: Vec<Option<Stream>> = (0..p).map(|_| None).collect();
    if p > 1 {
        let deadline = Instant::now() + cfg.socket.dial_timeout;
        if rank == 0 {
            let addr = root_addr(kind, cfg, dir, rank, deadline);
            let publish = kind == TransportKind::Tcp && addr.ends_with(":0") && dir.is_some();
            let listener = bind_root(kind, &addr, dir, publish, deadline);
            let mut addrs: Vec<Option<String>> = (0..p).map(|_| None).collect();
            for _ in 1..p {
                let mut s = accept_deadline(&listener, rank, "a rank hello", deadline);
                let magic = read_word(&mut s).expect("hello magic");
                assert_eq!(
                    magic, HELLO_MAGIC,
                    "non-rank client dialed the rendezvous port"
                );
                let peer = read_word(&mut s).expect("hello rank") as usize;
                assert!(peer > 0 && peer < p, "hello from out-of-range rank {peer}");
                let addr = read_addr(&mut s).expect("hello addr");
                assert!(
                    conns[peer].is_none(),
                    "two processes both claim rank {peer}; check HIPMCL_TCP_RANK assignments"
                );
                addrs[peer] = Some(addr);
                conns[peer] = Some(s);
            }
            // Everyone reported in: send the address table to each peer.
            for conn in conns.iter_mut().skip(1) {
                let s = conn.as_mut().expect("all peers connected");
                write_words(s, &[HELLO_MAGIC, p as u64]).expect("table header");
                for (i, a) in addrs.iter().enumerate().skip(1) {
                    let a = a.as_ref().expect("all addrs known");
                    write_words(s, &[i as u64]).expect("table entry");
                    write_addr(s, a).expect("table entry addr");
                }
            }
        } else {
            // Bind our own listener before advertising it.
            let listener = match kind {
                TransportKind::Tcp => {
                    let bind = cfg
                        .socket
                        .bind
                        .clone()
                        .or_else(|| std::env::var("HIPMCL_TCP_BIND").ok())
                        .unwrap_or_else(|| "0.0.0.0:0".into());
                    Listener::Tcp(TcpListener::bind(&bind).unwrap_or_else(|e| {
                        panic!("rank {rank}: could not bind peer listener on {bind}: {e}")
                    }))
                }
                TransportKind::Uds => {
                    let dir = dir.expect("uds needs a session dir");
                    bind_unix(&dir.join(format!("sock_{rank}")))
                        .unwrap_or_else(|e| panic!("rank {rank}: bind unix listener: {e}"))
                }
                _ => unreachable!(),
            };
            let addr = root_addr(kind, cfg, dir, rank, deadline);
            let mut root = dial(kind, &addr, rank, deadline);
            let advert = advertised_addr(kind, &listener, &root, cfg, dir, rank);
            write_words(&mut root, &[HELLO_MAGIC, rank as u64]).expect("send hello");
            write_addr(&mut root, &advert).expect("send hello addr");
            // Address table back from the root.
            let magic = read_word(&mut root).expect("table magic");
            assert_eq!(magic, HELLO_MAGIC, "bad rendezvous reply from root");
            let table_p = read_word(&mut root).expect("table size") as usize;
            assert_eq!(
                table_p, p,
                "root thinks the universe has {table_p} ranks, this rank thinks {p}; \
                 HIPMCL_TCP_RANKS must agree everywhere"
            );
            let mut addrs: Vec<Option<String>> = (0..p).map(|_| None).collect();
            for _ in 1..p {
                let i = read_word(&mut root).expect("table entry rank") as usize;
                addrs[i] = Some(read_addr(&mut root).expect("table entry addr"));
            }
            conns[0] = Some(root);
            // Complete the mesh: dial lower ranks, accept higher ones.
            for (i, a) in addrs.iter().enumerate().take(rank).skip(1) {
                let a = a.as_ref().expect("table covers all peers");
                let mut s = dial(kind, a, rank, deadline);
                write_words(&mut s, &[HELLO_MAGIC, rank as u64]).expect("mesh hello");
                conns[i] = Some(s);
            }
            for _ in rank + 1..p {
                let mut s = accept_deadline(&listener, rank, "a higher-rank peer", deadline);
                let magic = read_word(&mut s).expect("mesh hello magic");
                assert_eq!(magic, HELLO_MAGIC, "non-rank client dialed a peer listener");
                let j = read_word(&mut s).expect("mesh hello rank") as usize;
                assert!(j > rank && j < p, "mesh hello from unexpected rank {j}");
                conns[j] = Some(s);
            }
        }
    }
    for (peer, s) in conns.iter().enumerate() {
        if let Some(s) = s {
            spawn_reader(s, peer, tx.clone());
        }
    }
    SocketEndpoint {
        kind,
        world_rank: rank,
        writers: conns.into_iter().map(|c| c.map(RefCell::new)).collect(),
        rx,
        _tx: tx,
        closed: RefCell::new(vec![None; p]),
    }
}

/// Dispatcher for a socket universe: parent orchestration, local child,
/// hand-launched rank, or in-process replay — decided by the environment
/// (see [`launch::child_identity`] and the module docs).
pub(crate) fn run_sockets<R, F>(cfg: &UniverseConfig, f: &F) -> Vec<R>
where
    R: WirePayload,
    F: Fn(Comm) -> R + Sync,
{
    assert!(cfg.ranks > 0, "need at least one rank");
    let ordinal = launch::next_ordinal();
    match launch::child_identity() {
        Some(id) if id.family == LaunchFamily::Socket && id.serves(ordinal) => {
            assert_eq!(
                id.ranks, cfg.ranks,
                "socket universe {ordinal} diverged between launcher and rank \
                 (launcher: {} ranks, rank: {} ranks); code before a socket universe \
                 must be deterministic",
                id.ranks, cfg.ranks
            );
            if id.universe.is_some() {
                local_child(cfg, f, &id)
            } else {
                standalone_rank(cfg, f, &id)
            }
        }
        Some(_) => run_threads(cfg, f),
        None => parent(cfg, f, ordinal),
    }
}

/// The local-launch parent: spawn `P` re-execs of ourselves, wait,
/// collect result files — the socket twin of the shm parent.
fn parent<R, F>(cfg: &UniverseConfig, _f: &F, ordinal: u64) -> Vec<R>
where
    R: WirePayload,
    F: Fn(Comm) -> R + Sync,
{
    let p = cfg.ranks;
    let dir = launch::create_session_dir("hipmcl-sock");
    let _guard = SessionGuard(dir.clone());

    let exe = std::env::current_exe().expect("current_exe for rank spawn");
    let args = launch::child_args();
    let children: Vec<_> = (0..p)
        .map(|rank| {
            std::process::Command::new(&exe)
                .args(&args)
                .env(TCP_ENV_DIR, &dir)
                .env(TCP_ENV_RANK, rank.to_string())
                .env(TCP_ENV_RANKS, p.to_string())
                .env(TCP_ENV_UNIVERSE, ordinal.to_string())
                .stdout(std::process::Stdio::null())
                .spawn()
                .unwrap_or_else(|e| panic!("spawn rank {rank}: {e}"))
        })
        .collect();

    let mut failures = Vec::new();
    for (rank, child) in children.into_iter().enumerate() {
        let mut child = child;
        let status = child.wait().expect("wait for rank");
        if !status.success() {
            failures.push(format!("rank {rank} exited with {status}"));
        }
    }
    assert!(
        failures.is_empty(),
        "{} universe {ordinal} failed: {} (peer diagnostics on the failing ranks' stderr)",
        cfg.transport,
        failures.join("; ")
    );

    launch::collect_results(&dir, p)
}

/// A parent-launched child: connect, run the closure, publish the result
/// file, exit.
fn local_child<R, F>(cfg: &UniverseConfig, f: &F, id: &ChildIdentity) -> !
where
    R: WirePayload,
    F: Fn(Comm) -> R + Sync,
{
    let dir = id
        .dir
        .clone()
        .expect("local socket child has a session dir");
    let endpoint = connect_mesh(cfg, id.rank, id.ranks, Some(&dir));
    let comm = Comm::new_world(id.rank, id.ranks, cfg.shared(), Box::new(endpoint));
    let result = f(comm);
    launch::write_result(&dir, id.rank, &result.encoded());
    std::process::exit(0);
}

/// A hand-launched (multi-host) rank: connect, run the closure, then
/// exchange the per-rank results over the same connections so every rank
/// returns the full rank-ordered `Vec<R>` and the program continues.
fn standalone_rank<R, F>(cfg: &UniverseConfig, f: &F, id: &ChildIdentity) -> Vec<R>
where
    R: WirePayload,
    F: Fn(Comm) -> R + Sync,
{
    let endpoint = connect_mesh(cfg, id.rank, id.ranks, id.dir.as_deref());
    let shared = cfg.shared();
    // The two communicators (universe body, result exchange) must share
    // one mailbox: a fast peer's result frame can arrive while this rank
    // is still inside `f`, and would be lost if the first communicator's
    // pending buffer died with it.
    let mailbox = Rc::new(Mailbox::new(Box::new(endpoint)));
    let comm = Comm::from_mailbox(
        id.rank,
        id.ranks,
        std::sync::Arc::clone(&shared),
        Rc::clone(&mailbox),
    );
    let result = f(comm);
    let comm = Comm::from_mailbox(id.rank, id.ranks, shared, mailbox);
    exchange_results(&comm, result)
}

/// Rank 0 gathers every rank's encoded result and redistributes the full
/// table; all ranks decode to the identical rank-ordered `Vec<R>`.
fn exchange_results<R: WirePayload>(comm: &Comm, mine: R) -> Vec<R> {
    let p = comm.size();
    if p == 1 {
        return vec![mine];
    }
    if comm.rank() == 0 {
        let mut all: Vec<Vec<u8>> = Vec::with_capacity(p);
        all.push(mine.encoded());
        for r in 1..p {
            all.push(comm.recv(r, RESULT_TAG));
        }
        for r in 1..p {
            comm.send(r, RESULT_TAG, all.clone());
        }
        decode_results(&all)
    } else {
        comm.send(0, RESULT_TAG, mine.encoded());
        let all: Vec<Vec<u8>> = comm.recv(0, RESULT_TAG);
        decode_results(&all)
    }
}

fn decode_results<R: WirePayload>(all: &[Vec<u8>]) -> Vec<R> {
    all.iter()
        .enumerate()
        .map(|(rank, b)| {
            R::decode_all(b).unwrap_or_else(|e| panic!("decode result of rank {rank}: {e}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TimeModel;
    use crate::collectives::{allgather, allreduce, barrier};
    use crate::machine::MachineModel;
    use crate::universe::Universe;

    fn sock_cfg(p: usize, kind: TransportKind) -> UniverseConfig {
        UniverseConfig::new(p, MachineModel::summit())
            .with_transport(kind)
            .with_recv_deadline(Some(Duration::from_secs(60)))
    }

    /// A connected endpoint pair over a loopback TCP socket, bypassing
    /// the rendezvous (unit-level plumbing tests).
    fn loopback_pair() -> (SocketEndpoint, SocketEndpoint) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = Stream::Tcp(TcpStream::connect(addr).unwrap());
        let b = Stream::Tcp(listener.accept().unwrap().0);
        let mk = |rank: usize, peer: usize, s: Stream| {
            let (tx, rx) = crossbeam_channel::unbounded::<Incoming>();
            spawn_reader(&s, peer, tx.clone());
            let mut writers: Vec<Option<RefCell<Stream>>> = (0..2).map(|_| None).collect();
            writers[peer] = Some(RefCell::new(s));
            SocketEndpoint {
                kind: TransportKind::Tcp,
                world_rank: rank,
                writers,
                rx,
                _tx: tx,
                closed: RefCell::new(vec![None; 2]),
            }
        };
        (mk(0, 1, a), mk(1, 0, b))
    }

    fn frame(src: usize, tag: u64, payload: Vec<u8>) -> Frame {
        Frame {
            header: FrameHeader {
                src_world: src,
                ctx: 0,
                tag,
                send_clock: 0.0,
                bytes: payload.len(),
            },
            payload: FramePayload::Bytes(payload),
        }
    }

    #[test]
    fn frames_roundtrip_over_a_real_socket() {
        let (a, b) = loopback_pair();
        a.send_frame(1, frame(0, 7, vec![1, 2, 3]));
        let f = b.recv_frame(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(f.header.tag, 7);
        match f.payload {
            FramePayload::Bytes(p) => assert_eq!(p, vec![1, 2, 3]),
            FramePayload::Typed(_) => panic!("socket frames are bytes"),
        }
        // And a large frame that spans many reads.
        let big: Vec<u8> = (0..300_000u32).map(|i| (i % 251) as u8).collect();
        b.send_frame(0, frame(1, 9, big.clone()));
        let f = a.recv_frame(Some(Duration::from_secs(5))).unwrap();
        match f.payload {
            FramePayload::Bytes(p) => assert_eq!(p, big),
            FramePayload::Typed(_) => panic!("socket frames are bytes"),
        }
    }

    #[test]
    fn dead_peer_surfaces_as_peer_closed_with_reason() {
        let (a, b) = loopback_pair();
        drop(a); // rank 0 "dies": write side shuts down, b's reader sees EOF
        match b.recv_frame(Some(Duration::from_secs(5))) {
            Err(RecvError::PeerClosed(0)) => {}
            other => panic!("expected PeerClosed(0), got {other:?}"),
        }
        let reason = b.closed_peer_info(0).expect("reason recorded");
        assert!(reason.contains("closed"), "got {reason:?}");
    }

    #[test]
    fn corrupt_length_prefix_closes_the_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        let s = Stream::Tcp(listener.accept().unwrap().0);
        let (tx, rx) = crossbeam_channel::unbounded::<Incoming>();
        spawn_reader(&s, 0, tx);
        // An absurd length prefix must be rejected, not allocated.
        raw.write_all(&u64::MAX.to_le_bytes()).unwrap();
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Incoming::Closed { peer: 0, reason } => {
                assert!(reason.contains("oversized"), "got {reason:?}")
            }
            _ => panic!("expected Closed"),
        }
    }

    #[test]
    fn misattributed_src_world_closes_the_connection() {
        let (a, b) = loopback_pair();
        // Endpoint `a` is world 0, but claims src_world 5.
        a.send_frame(1, frame(5, 7, vec![]));
        match b.recv_frame(Some(Duration::from_secs(5))) {
            Err(RecvError::PeerClosed(0)) => {}
            other => panic!("expected PeerClosed(0), got {other:?}"),
        }
        assert!(b.closed_peer_info(0).unwrap().contains("src_world"));
    }

    #[test]
    fn tcp_p2p_roundtrip() {
        let results = Universe::run_with(sock_cfg(2, TransportKind::Tcp), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.5f64, 2.5, -0.0]);
                0.0
            } else {
                let v: Vec<f64> = comm.recv(0, 7);
                assert_eq!(v[2].to_bits(), (-0.0f64).to_bits(), "bits survive the wire");
                v.iter().sum()
            }
        });
        assert_eq!(results, vec![0.0, 4.0]);
    }

    #[test]
    fn uds_p2p_roundtrip() {
        let results = Universe::run_with(sock_cfg(2, TransportKind::Uds), |comm| {
            if comm.rank() == 0 {
                let v: u64 = comm.recv(1, 3);
                v * 2
            } else {
                comm.send(0, 3, 21u64);
                0
            }
        });
        assert_eq!(results, vec![42, 0]);
    }

    #[test]
    fn tcp_collectives_and_clocks_match_in_process() {
        let body = |comm: Comm| {
            let mut comm = comm;
            comm.advance_clock(comm.rank() as f64 * 1e-3);
            let sum = allreduce(&comm, comm.rank() as u64, |a, b| a + b);
            let all: Vec<u64> = allgather(&comm, sum + comm.rank() as u64);
            barrier(&comm);
            let sub = comm.split((comm.rank() % 2) as u64, comm.rank() as u64);
            let subs: Vec<u64> = allgather(&sub, comm.rank() as u64);
            (all, subs, comm.now())
        };
        let tcp = Universe::run_with(sock_cfg(4, TransportKind::Tcp), body);
        let inp = Universe::run_with(UniverseConfig::new(4, MachineModel::summit()), body);
        assert_eq!(
            tcp, inp,
            "results and modeled clocks identical across transports"
        );
    }

    #[test]
    fn tcp_measured_time_reports_wall_seconds() {
        let cfg = sock_cfg(2, TransportKind::Tcp).with_time(TimeModel::Measured);
        let results = Universe::run_with(cfg, |comm| {
            if comm.rank() == 0 {
                std::thread::sleep(Duration::from_millis(5));
                comm.send(1, 0, vec![0u8; 1 << 16]);
            } else {
                let _: Vec<u8> = comm.recv(0, 0);
            }
            comm.stats()
        });
        assert!(results[1].modeled_comm_s > 0.0);
        assert!(
            results[1].measured_comm_s >= 0.004,
            "receiver measurably blocked, got {}",
            results[1].measured_comm_s
        );
    }

    #[test]
    fn sequential_socket_universes_replay_correctly() {
        // A uds universe then a tcp universe: the children of the second
        // must replay the first in-process (shared launch ordinals).
        let a = Universe::run_with(sock_cfg(2, TransportKind::Uds), |comm| {
            comm.rank() as u64 + 1
        });
        assert_eq!(a, vec![1, 2]);
        let b = Universe::run_with(sock_cfg(3, TransportKind::Tcp), |comm| {
            allreduce(&comm, comm.rank() as u64, |x, y| x + y)
        });
        assert_eq!(b, vec![3, 3, 3]);
    }

    #[test]
    fn single_rank_socket_universe() {
        let r = Universe::run_with(sock_cfg(1, TransportKind::Tcp), |comm| {
            assert_eq!(comm.size(), 1);
            comm.rank() as u64
        });
        assert_eq!(r, vec![0]);
    }

    #[test]
    fn killed_rank_fails_fast_with_diagnostics() {
        // Rank 0 dies mid-universe; rank 1 is blocked receiving from it.
        // The survivors must fail fast via PeerClosed — well inside the
        // 60 s recv deadline — and the parent must name the dead rank.
        let t0 = Instant::now();
        let caught = std::panic::catch_unwind(|| {
            let _ = Universe::run_with(sock_cfg(2, TransportKind::Tcp), |comm| {
                if comm.rank() == 0 {
                    // Simulated crash: no result file, sockets torn down.
                    std::process::exit(3);
                }
                let _: u64 = comm.recv(0, 99); // never sent
                0u64
            });
        })
        .unwrap_err();
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("rank 0 exited"),
            "parent names the dead rank, got {msg:?}"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "fail-fast, not deadline-wait: took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn standalone_multihost_mode_gathers_results_everywhere() {
        // Simulates `mpirun`-less multi-host launch on localhost: spawn 3
        // hand-launched ranks (HIPMCL_TCP_RANK/RANKS/ROOT, no session
        // dir, no universe ordinal) and check each got the full result
        // vector over the wire.
        if std::env::var(TCP_ENV_RANK).is_ok() {
            // We ARE one of the hand-launched ranks.
            let cfg =
                UniverseConfig::new(3, MachineModel::summit()).with_transport(TransportKind::Tcp);
            let v = Universe::run_with(cfg, |comm| comm.rank() as u64 * 3 + 1);
            assert_eq!(v, vec![1, 4, 7], "every rank sees the full gather");
            std::process::exit(0);
        }
        // Parent: reserve a root port by binding and dropping a listener.
        let root = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let exe = std::env::current_exe().unwrap();
        let args = launch::child_args();
        let children: Vec<_> = (0..3)
            .map(|rank: usize| {
                std::process::Command::new(&exe)
                    .args(&args)
                    .env(TCP_ENV_RANK, rank.to_string())
                    .env(TCP_ENV_RANKS, "3")
                    .env("HIPMCL_TCP_ROOT", &root)
                    .stdout(std::process::Stdio::null())
                    .spawn()
                    .unwrap()
            })
            .collect();
        for (rank, mut child) in children.into_iter().enumerate() {
            let status = child.wait().unwrap();
            assert!(status.success(), "standalone rank {rank}: {status}");
        }
    }
}
