//! Collective operations built from point-to-point messages over binomial
//! trees, the way a small MPI implements them. Because every hop charges
//! the α–β cost at the receiver, collective costs accumulate along the
//! tree's critical path: a broadcast of `b` bytes over `p` ranks costs
//! `≈ ⌈lg p⌉ · (α + βb)` in virtual time without any analytic shortcut.

use crate::comm::Comm;
use crate::packet::WirePayload;

/// Tag namespace for collectives (high bit set; user tags must stay below).
const COLL_BIT: u64 = 1 << 63;

fn coll_tag(comm: &Comm) -> u64 {
    COLL_BIT | comm.next_coll_seq()
}

/// Broadcast from `root`: every rank returns the value. Non-roots pass
/// their received value through, so `value` is consumed and returned.
pub fn bcast<T>(comm: &Comm, root: usize, value: Option<T>) -> T
where
    T: WirePayload + Clone,
{
    let p = comm.size();
    let tag = coll_tag(comm);
    if p == 1 {
        return value.expect("root must supply a value");
    }
    let rank = comm.rank();
    let relative = (rank + p - root) % p;

    let mut received: Option<T> = if relative == 0 {
        Some(value.expect("root must supply a value"))
    } else {
        None
    };

    // Receive phase: find the parent.
    let mut mask = 1usize;
    while mask < p {
        if relative & mask != 0 {
            let src = (rank + p - mask) % p;
            received = Some(comm.recv::<T>(src, tag));
            break;
        }
        mask <<= 1;
    }
    // Send phase: forward to children.
    let val = received.expect("bcast tree delivered no value");
    mask >>= 1;
    let mut m = if relative == 0 {
        // Root starts at the highest power of two below p.
        let mut top = 1usize;
        while top < p {
            top <<= 1;
        }
        top >> 1
    } else {
        mask
    };
    while m > 0 {
        if relative + m < p {
            let dst = (rank + m) % p;
            comm.send(dst, tag, val.clone());
        }
        m >>= 1;
    }
    val
}

/// Broadcast from `root` by root-sequential point-to-point sends — the
/// "gather-style" exchange of the hybrid comm policy ([`crate::machine::
/// CommMode::Gather`]). The root's NIC serializes the `p − 1` payloads:
/// each send advances the root's clock by the bandwidth term before the
/// next one departs, so the last receiver lands at `α + (p − 1) · βb`
/// past the root — matching
/// [`MachineModel::flat_bcast_time`](crate::machine::MachineModel::flat_bcast_time).
/// Cheaper than the binomial tree for small payloads or small `p`, where
/// the tree's `⌈lg p⌉` α-hops dominate.
pub fn flat_bcast<T>(comm: &Comm, root: usize, value: Option<T>) -> T
where
    T: WirePayload + Clone,
{
    let p = comm.size();
    let tag = coll_tag(comm);
    if p == 1 {
        return value.expect("root must supply a value");
    }
    if comm.rank() == root {
        let val = value.expect("root must supply a value");
        let bytes = val.wire_bytes();
        for dst in 0..p {
            if dst == root {
                continue;
            }
            comm.send(dst, tag, val.clone());
            // NIC occupancy: the next send cannot start until this
            // payload has left the root.
            comm.advance_clock(bytes as f64 * comm.model().beta);
        }
        val
    } else {
        comm.recv::<T>(root, tag)
    }
}

/// Reduction to `root` with operator `op` (must be associative and, for
/// determinism, commutative). Returns `Some(result)` on the root.
pub fn reduce<T, F>(comm: &Comm, root: usize, value: T, op: F) -> Option<T>
where
    T: WirePayload + Clone,
    F: Fn(T, T) -> T,
{
    let p = comm.size();
    let tag = coll_tag(comm);
    if p == 1 {
        return Some(value);
    }
    let rank = comm.rank();
    let relative = (rank + p - root) % p;
    let mut acc = value;
    let mut mask = 1usize;
    while mask < p {
        if relative & mask == 0 {
            let src_rel = relative | mask;
            if src_rel < p {
                let src = (src_rel + root) % p;
                let other = comm.recv::<T>(src, tag);
                acc = op(acc, other);
            }
        } else {
            let dst = ((relative - mask) + root) % p;
            comm.send(dst, tag, acc.clone());
            return None;
        }
        mask <<= 1;
    }
    Some(acc)
}

/// All-reduce: reduce to rank 0, then broadcast back.
pub fn allreduce<T, F>(comm: &Comm, value: T, op: F) -> T
where
    T: WirePayload + Clone,
    F: Fn(T, T) -> T,
{
    let reduced = reduce(comm, 0, value, op);
    bcast(comm, 0, reduced)
}

/// Gather to `root`: returns `Some(values_by_rank)` on the root. Linear
/// (root receives `p − 1` messages), which matches small-message
/// `MPI_Gather` behaviour and keeps ordering trivial.
pub fn gather<T>(comm: &Comm, root: usize, value: T) -> Option<Vec<T>>
where
    T: WirePayload + Clone,
{
    let p = comm.size();
    let tag = coll_tag(comm);
    if comm.rank() == root {
        let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
        out[root] = Some(value);
        for (src, slot) in out.iter_mut().enumerate() {
            if src != root {
                *slot = Some(comm.recv::<T>(src, tag));
            }
        }
        Some(out.into_iter().map(Option::unwrap).collect())
    } else {
        comm.send(root, tag, value);
        None
    }
}

/// All-gather: every rank returns the vector of all ranks' values.
pub fn allgather<T>(comm: &Comm, value: T) -> Vec<T>
where
    T: WirePayload + Clone,
{
    let gathered = gather(comm, 0, value);
    bcast(comm, 0, gathered)
}

/// Barrier: a zero-byte all-reduce. Synchronizes virtual clocks to the
/// latest rank plus the tree's latency cost — stragglers pull everyone.
pub fn barrier(comm: &Comm) {
    allreduce(comm, (), |_, _| ());
}

/// All-reduce specialization: elementwise sum of equal-length `f64`
/// vectors (used by distributed estimation).
pub fn allreduce_sum_vec(comm: &Comm, value: Vec<f64>) -> Vec<f64> {
    allreduce(comm, value, |mut a, b| {
        assert_eq!(a.len(), b.len(), "allreduce_sum_vec length mismatch");
        for (x, y) in a.iter_mut().zip(&b) {
            *x += y;
        }
        a
    })
}

/// All-reduce specialization: elementwise min of `f32` vectors (key
/// propagation in distributed Cohen estimation).
pub fn allreduce_min_vec_f32(comm: &Comm, value: Vec<f32>) -> Vec<f32> {
    allreduce(comm, value, |mut a, b| {
        assert_eq!(a.len(), b.len(), "allreduce_min_vec length mismatch");
        for (x, y) in a.iter_mut().zip(&b) {
            *x = x.min(*y);
        }
        a
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineModel;
    use crate::universe::Universe;

    #[test]
    fn bcast_from_every_root() {
        for p in [1usize, 2, 3, 4, 5, 8] {
            for root in 0..p {
                let results = Universe::run(p, MachineModel::summit(), |comm| {
                    let v = if comm.rank() == root {
                        Some(42u64 + root as u64)
                    } else {
                        None
                    };
                    bcast(&comm, root, v)
                });
                assert!(
                    results.iter().all(|&v| v == 42 + root as u64),
                    "p={p} root={root}"
                );
            }
        }
    }

    #[test]
    fn bcast_cost_scales_logarithmically() {
        let time_for = |p: usize| {
            let results = Universe::run(p, MachineModel::summit(), |comm| {
                let v = if comm.rank() == 0 {
                    Some(vec![0u8; 1 << 20])
                } else {
                    None
                };
                let _ = bcast(&comm, 0, v);
                comm.now()
            });
            results.into_iter().fold(0.0f64, f64::max)
        };
        let t2 = time_for(2);
        let t16 = time_for(16);
        // lg(16)/lg(2) = 4: tree depth quadruples the critical path.
        assert!((t16 / t2 - 4.0).abs() < 0.5, "t2={t2} t16={t16}");
    }

    #[test]
    fn flat_bcast_from_every_root() {
        for p in [1usize, 2, 3, 4, 5, 8] {
            for root in 0..p {
                let results = Universe::run(p, MachineModel::summit(), |comm| {
                    let v = if comm.rank() == root {
                        Some(7u64 + root as u64)
                    } else {
                        None
                    };
                    flat_bcast(&comm, root, v)
                });
                assert!(
                    results.iter().all(|&v| v == 7 + root as u64),
                    "p={p} root={root}"
                );
            }
        }
    }

    #[test]
    fn flat_bcast_cost_matches_model() {
        // The slowest receiver of a flat broadcast lands at the model's
        // closed form α + (p − 1)βb past the root's start.
        let p = 6;
        let payload = 1usize << 20;
        let m = MachineModel::summit();
        let want = m.flat_bcast_time(p, payload + 8); // Vec<u8> wire = len + 8
        let results = Universe::run(p, m, |comm| {
            let v = if comm.rank() == 0 {
                Some(vec![0u8; payload])
            } else {
                None
            };
            let _ = flat_bcast(&comm, 0, v);
            comm.now()
        });
        let t = results.into_iter().fold(0.0f64, f64::max);
        assert!(
            (t - want).abs() / want < 0.05,
            "flat bcast t={t} model={want}"
        );
    }

    #[test]
    fn flat_beats_tree_below_crossover_and_loses_above() {
        // Virtual-time confirmation of the machine-model crossover: at
        // p = 4 the modes swap winners around b* = α/β (≈ 69 KB on
        // Summit). Run both collectives on payloads a decade either side
        // and compare the realized critical paths.
        let time_of = |payload: usize, flat: bool| {
            let results = Universe::run(4, MachineModel::summit(), |comm| {
                let v = if comm.rank() == 0 {
                    Some(vec![0u8; payload])
                } else {
                    None
                };
                if flat {
                    let _ = flat_bcast(&comm, 0, v);
                } else {
                    let _ = bcast(&comm, 0, v);
                }
                comm.now()
            });
            results.into_iter().fold(0.0f64, f64::max)
        };
        let small = 4 << 10; // 4 KB << b*
        let large = 4 << 20; // 4 MB >> b*
        assert!(
            time_of(small, true) < time_of(small, false),
            "flat must win below the crossover"
        );
        assert!(
            time_of(large, false) < time_of(large, true),
            "tree must win above the crossover"
        );
    }

    #[test]
    fn reduce_sums_all_ranks() {
        for p in [1usize, 2, 3, 7, 8] {
            let results = Universe::run(p, MachineModel::summit(), |comm| {
                reduce(&comm, 0, comm.rank() as u64, |a, b| a + b)
            });
            let expect: u64 = (0..p as u64).sum();
            assert_eq!(results[0], Some(expect), "p={p}");
            for r in &results[1..] {
                assert_eq!(*r, None);
            }
        }
    }

    #[test]
    fn allreduce_max() {
        let results = Universe::run(6, MachineModel::summit(), |comm| {
            allreduce(&comm, comm.rank() as u64 * 3, u64::max)
        });
        assert!(results.iter().all(|&v| v == 15));
    }

    #[test]
    fn gather_preserves_rank_order() {
        let results = Universe::run(5, MachineModel::summit(), |comm| {
            gather(&comm, 2, (comm.rank() as u64) * 11)
        });
        assert_eq!(results[2], Some(vec![0, 11, 22, 33, 44]));
        assert_eq!(results[0], None);
    }

    #[test]
    fn allgather_everyone_sees_everything() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            allgather(&comm, comm.rank() as u64)
        });
        for r in results {
            assert_eq!(r, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            if comm.rank() == 3 {
                comm.advance_clock(5.0); // straggler
            }
            barrier(&comm);
            comm.now()
        });
        for &t in &results {
            assert!(
                t >= 5.0,
                "barrier must not complete before the straggler: {t}"
            );
        }
    }

    #[test]
    fn allreduce_sum_vec_elementwise() {
        let results = Universe::run(3, MachineModel::summit(), |comm| {
            let v = vec![comm.rank() as f64, 1.0];
            allreduce_sum_vec(&comm, v)
        });
        for r in results {
            assert_eq!(r, vec![3.0, 3.0]);
        }
    }

    #[test]
    fn allreduce_min_vec() {
        let results = Universe::run(3, MachineModel::summit(), |comm| {
            let v = vec![comm.rank() as f32 + 1.0, 10.0 - comm.rank() as f32];
            allreduce_min_vec_f32(&comm, v)
        });
        for r in results {
            assert_eq!(r, vec![1.0, 8.0]);
        }
    }

    #[test]
    fn collectives_can_follow_each_other() {
        // Distinct collective sequence numbers keep traffic separated.
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let a = allreduce(&comm, 1u64, |x, y| x + y);
            let b = allreduce(&comm, 10u64, |x, y| x + y);
            let c: Vec<u64> = allgather(&comm, comm.rank() as u64);
            (a, b, c)
        });
        for (a, b, c) in results {
            assert_eq!(a, 4);
            assert_eq!(b, 40);
            assert_eq!(c, vec![0, 1, 2, 3]);
        }
    }
}
