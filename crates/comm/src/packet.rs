//! Wire-level pieces of the simulated MPI: packets and payload sizing.
//!
//! Payloads move between ranks as `Box<dyn Any>` — no serialization is
//! performed (the "network" is shared memory), but every payload reports a
//! wire size so the virtual clock can charge realistic transfer costs.

use std::any::Any;

/// Reports how many bytes a value would occupy on a real interconnect.
///
/// Implemented for the primitives and containers the upper layers ship
/// around. `Arc<T>` reports the size of the pointee: broadcasting a shared
/// matrix still costs full transfers on a real network even if this
/// simulation moves only a pointer.
pub trait WireSize {
    /// Serialized size in bytes.
    fn wire_bytes(&self) -> usize;
}

macro_rules! impl_wire_primitive {
    ($($t:ty),*) => {
        $(impl WireSize for $t {
            fn wire_bytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_wire_primitive!(
    (),
    bool,
    u8,
    u16,
    u32,
    u64,
    usize,
    i8,
    i16,
    i32,
    i64,
    isize,
    f32,
    f64
);

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_bytes(&self) -> usize {
        // Length prefix + elements. For primitive T this collapses to the
        // obvious `8 + n * size_of::<T>()` without a per-element virtual
        // call in practice (monomorphized).
        8 + self.iter().map(WireSize::wire_bytes).sum::<usize>()
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_bytes(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_bytes)
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_bytes(&self) -> usize {
        self.0.wire_bytes() + self.1.wire_bytes()
    }
}

impl<A: WireSize, B: WireSize, C: WireSize> WireSize for (A, B, C) {
    fn wire_bytes(&self) -> usize {
        self.0.wire_bytes() + self.1.wire_bytes() + self.2.wire_bytes()
    }
}

impl<T: WireSize> WireSize for std::sync::Arc<T> {
    fn wire_bytes(&self) -> usize {
        self.as_ref().wire_bytes()
    }
}

impl<T: hipmcl_sparse::Value> WireSize for hipmcl_sparse::Csc<T> {
    fn wire_bytes(&self) -> usize {
        self.bytes()
    }
}

impl<T: hipmcl_sparse::Value> WireSize for hipmcl_sparse::Triples<T> {
    fn wire_bytes(&self) -> usize {
        self.bytes()
    }
}

impl<T: hipmcl_sparse::Value> WireSize for hipmcl_sparse::Dcsc<T> {
    fn wire_bytes(&self) -> usize {
        self.bytes()
    }
}

/// One in-flight message.
pub(crate) struct Packet {
    /// World rank of the sender.
    pub src_world: usize,
    /// Communicator context the message belongs to (world = 0; splits get
    /// derived ids), preventing cross-communicator tag collisions.
    pub ctx: u64,
    /// User or collective tag.
    pub tag: u64,
    /// Sender's virtual clock at send time.
    pub send_clock: f64,
    /// Modeled wire size.
    pub bytes: usize,
    /// The payload itself.
    pub payload: Box<dyn Any + Send>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn primitive_sizes() {
        assert_eq!(0u32.wire_bytes(), 4);
        assert_eq!(0.0f64.wire_bytes(), 8);
        assert_eq!(().wire_bytes(), 0);
    }

    #[test]
    fn vec_size_includes_length_prefix() {
        let v = vec![1u32, 2, 3];
        assert_eq!(v.wire_bytes(), 8 + 12);
        let empty: Vec<f64> = vec![];
        assert_eq!(empty.wire_bytes(), 8);
    }

    #[test]
    fn arc_reports_pointee_size() {
        let v = Arc::new(vec![0u64; 10]);
        assert_eq!(v.wire_bytes(), 8 + 80);
    }

    #[test]
    fn csc_reports_storage_size() {
        let m = hipmcl_sparse::Csc::<f64>::identity(4);
        assert_eq!(m.wire_bytes(), m.bytes());
        assert!(m.wire_bytes() > 0);
    }

    #[test]
    fn tuple_and_option() {
        assert_eq!((1u32, 2u64).wire_bytes(), 12);
        assert_eq!(Some(5u16).wire_bytes(), 3);
        assert_eq!(None::<u16>.wire_bytes(), 1);
    }
}
