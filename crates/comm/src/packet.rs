//! Payload contracts of the simulated MPI: modeled sizing and the
//! combined bound every message type satisfies.
//!
//! On the in-process transport payloads move as `Box<dyn Any>` — no
//! serialization — but every payload reports a [`WireSize`] so the
//! virtual clock can charge realistic transfer costs, and every payload
//! is [`WireEncode`]/[`WireDecode`] so the same call sites run unchanged
//! over byte-oriented transports (see [`crate::transport`]).

use hipmcl_sparse::wire::{WireDecode, WireEncode};
use std::any::Any;

/// Everything a message payload must satisfy: typed movement
/// (`Any + Send`), modeled sizing ([`WireSize`]) and byte movement
/// ([`WireEncode`] + [`WireDecode`]). Blanket-implemented — implement
/// the three component traits and this comes for free.
pub trait WirePayload: Any + Send + WireSize + WireEncode + WireDecode {}

impl<T: Any + Send + WireSize + WireEncode + WireDecode> WirePayload for T {}

/// Reports how many bytes a value would occupy on a real interconnect.
///
/// Implemented for the primitives and containers the upper layers ship
/// around. `Arc<T>` reports the size of the pointee: broadcasting a shared
/// matrix still costs full transfers on a real network even if this
/// simulation moves only a pointer.
pub trait WireSize {
    /// Serialized size in bytes.
    fn wire_bytes(&self) -> usize;
}

macro_rules! impl_wire_primitive {
    ($($t:ty),*) => {
        $(impl WireSize for $t {
            fn wire_bytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_wire_primitive!(
    (),
    bool,
    u8,
    u16,
    u32,
    u64,
    usize,
    i8,
    i16,
    i32,
    i64,
    isize,
    f32,
    f64
);

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_bytes(&self) -> usize {
        // Length prefix + elements. For primitive T this collapses to the
        // obvious `8 + n * size_of::<T>()` without a per-element virtual
        // call in practice (monomorphized).
        8 + self.iter().map(WireSize::wire_bytes).sum::<usize>()
    }
}

impl WireSize for String {
    fn wire_bytes(&self) -> usize {
        8 + self.len()
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_bytes(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_bytes)
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_bytes(&self) -> usize {
        self.0.wire_bytes() + self.1.wire_bytes()
    }
}

impl<A: WireSize, B: WireSize, C: WireSize> WireSize for (A, B, C) {
    fn wire_bytes(&self) -> usize {
        self.0.wire_bytes() + self.1.wire_bytes() + self.2.wire_bytes()
    }
}

impl<T: WireSize> WireSize for std::sync::Arc<T> {
    fn wire_bytes(&self) -> usize {
        self.as_ref().wire_bytes()
    }
}

impl<T: hipmcl_sparse::Value> WireSize for hipmcl_sparse::Csc<T> {
    fn wire_bytes(&self) -> usize {
        self.bytes()
    }
}

impl<T: hipmcl_sparse::Value> WireSize for hipmcl_sparse::Triples<T> {
    fn wire_bytes(&self) -> usize {
        self.bytes()
    }
}

impl<T: hipmcl_sparse::Value> WireSize for hipmcl_sparse::Dcsc<T> {
    fn wire_bytes(&self) -> usize {
        self.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn primitive_sizes() {
        assert_eq!(0u32.wire_bytes(), 4);
        assert_eq!(0.0f64.wire_bytes(), 8);
        assert_eq!(().wire_bytes(), 0);
    }

    #[test]
    fn vec_size_includes_length_prefix() {
        let v = vec![1u32, 2, 3];
        assert_eq!(v.wire_bytes(), 8 + 12);
        let empty: Vec<f64> = vec![];
        assert_eq!(empty.wire_bytes(), 8);
    }

    #[test]
    fn arc_reports_pointee_size() {
        let v = Arc::new(vec![0u64; 10]);
        assert_eq!(v.wire_bytes(), 8 + 80);
    }

    #[test]
    fn csc_reports_storage_size() {
        let m = hipmcl_sparse::Csc::<f64>::identity(4);
        assert_eq!(m.wire_bytes(), m.bytes());
        assert!(m.wire_bytes() > 0);
    }

    #[test]
    fn tuple_and_option() {
        assert_eq!((1u32, 2u64).wire_bytes(), 12);
        assert_eq!(Some(5u16).wire_bytes(), 3);
        assert_eq!(None::<u16>.wire_bytes(), 1);
    }
}
