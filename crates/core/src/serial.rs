//! Single-process reference MCL.
//!
//! Runs Algorithm 1 of the paper with the hybrid local SpGEMM (heap/hash
//! by `cf`), full pruning (cutoff, selection, recovery) and inflation.
//! This is the oracle the distributed driver is validated against, and a
//! practical way to cluster graphs that fit in one process.

use crate::config::MclConfig;
use hipmcl_sparse::colops;
use hipmcl_sparse::components::{clusters_from_labels, connected_components};
use hipmcl_sparse::wire::{WireDecode, WireEncode, WireError, WireReader};
use hipmcl_sparse::Csc;

/// Per-iteration trace entry of a serial run.
#[derive(Clone, Copy, Debug)]
pub struct IterTrace {
    /// `flops` of the expansion.
    pub flops: u64,
    /// `nnz` before pruning.
    pub nnz_expanded: u64,
    /// `nnz` after pruning.
    pub nnz_pruned: u64,
    /// Compression factor of the expansion.
    pub cf: f64,
    /// Chaos after inflation (over the active columns).
    pub chaos: f64,
    /// Columns still in the operand after this iteration's active-set
    /// step (always the full dimension when shrinking is off).
    pub active_cols: u64,
    /// Columns checkpointed into the frozen store so far.
    pub frozen_cols: u64,
    /// Modeled seconds of this iteration's active-set step (settle mask +
    /// freeze + reshard exchange), mean over ranks; `0.0` when shrinking
    /// is off or the step was skipped.
    pub reshard_time: f64,
    /// Modeled seconds of this iteration's expansion (SUMMA minus fused
    /// pruning), mean over ranks; `0.0` in serial runs.
    pub expansion_time: f64,
    /// Modeled seconds of this iteration's merge stage, mean over ranks;
    /// `0.0` in serial runs.
    pub merge_time: f64,
}

impl WireEncode for IterTrace {
    fn encode(&self, out: &mut Vec<u8>) {
        self.flops.encode(out);
        self.nnz_expanded.encode(out);
        self.nnz_pruned.encode(out);
        self.cf.encode(out);
        self.chaos.encode(out);
        self.active_cols.encode(out);
        self.frozen_cols.encode(out);
        self.reshard_time.encode(out);
        self.expansion_time.encode(out);
        self.merge_time.encode(out);
    }
}

impl WireDecode for IterTrace {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(IterTrace {
            flops: u64::decode(r)?,
            nnz_expanded: u64::decode(r)?,
            nnz_pruned: u64::decode(r)?,
            cf: f64::decode(r)?,
            chaos: f64::decode(r)?,
            active_cols: u64::decode(r)?,
            frozen_cols: u64::decode(r)?,
            reshard_time: f64::decode(r)?,
            expansion_time: f64::decode(r)?,
            merge_time: f64::decode(r)?,
        })
    }
}

/// Result of a serial MCL run.
#[derive(Clone, Debug)]
pub struct MclResult {
    /// Dense cluster labels per vertex (`0..k`).
    pub labels: Vec<u32>,
    /// Number of clusters.
    pub num_clusters: usize,
    /// Vertices of each cluster, sorted.
    pub clusters: Vec<Vec<u32>>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the chaos criterion was met (vs. the iteration cap).
    pub converged: bool,
    /// Per-iteration statistics.
    pub trace: Vec<IterTrace>,
}

/// Clusters `adjacency` with the Markov Cluster algorithm.
///
/// The input is interpreted as a weighted similarity graph; it is
/// symmetrized and self-looped according to `cfg`, made column stochastic,
/// then iterated until the chaos statistic drops below
/// `cfg.chaos_epsilon`.
pub fn cluster_serial(adjacency: &Csc<f64>, cfg: &MclConfig) -> MclResult {
    assert_eq!(
        adjacency.nrows(),
        adjacency.ncols(),
        "MCL needs a square matrix"
    );
    let mut a = prepare_matrix(adjacency, cfg);

    let mut trace = Vec::new();
    let mut converged = false;
    let mut iterations = 0;

    for _ in 0..cfg.max_iters {
        iterations += 1;
        // Expansion: B = A·A with the cf-selected kernel (§VI).
        let (b, analysis, _algo) = hipmcl_spgemm::hybrid::multiply_auto(&a, &a);
        // Pruning (threshold + selection + recovery).
        let (pruned, _stats) = colops::prune(&b, &cfg.prune);
        a = pruned;
        // Inflation (Hadamard power + renormalize).
        colops::inflate(&mut a, cfg.inflation);
        let chaos = colops::chaos(&a);
        trace.push(IterTrace {
            flops: analysis.flops,
            nnz_expanded: analysis.nnz_out,
            nnz_pruned: a.nnz() as u64,
            cf: analysis.cf(),
            chaos,
            // The serial driver never shrinks and has no modeled clock.
            active_cols: a.ncols() as u64,
            frozen_cols: 0,
            reshard_time: 0.0,
            expansion_time: 0.0,
            merge_time: 0.0,
        });
        if chaos < cfg.chaos_epsilon {
            converged = true;
            break;
        }
    }

    let (labels, k) = connected_components(&a);
    let clusters = clusters_from_labels(&labels, k);
    MclResult {
        labels,
        num_clusters: k,
        clusters,
        iterations,
        converged,
        trace,
    }
}

/// Symmetrize / self-loop / column-normalize the input per `cfg`.
pub fn prepare_matrix(adjacency: &Csc<f64>, cfg: &MclConfig) -> Csc<f64> {
    let mut a = if cfg.symmetrize {
        colops::symmetrize_max(adjacency)
    } else {
        adjacency.clone()
    };
    if cfg.add_self_loops {
        a = colops::add_self_loops(&a, 1.0);
    }
    colops::normalize_columns(&mut a);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmcl_sparse::{Idx, Triples};
    use rand::{Rng, SeedableRng};

    /// Planted-partition graph: `k` dense clusters of size `sz` with heavy
    /// intra-cluster weights plus light random inter-cluster noise.
    pub(crate) fn planted(k: usize, sz: usize, noise: usize, seed: u64) -> Csc<f64> {
        let n = k * sz;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut t = Triples::new(n, n);
        for c in 0..k {
            let base = c * sz;
            for i in 0..sz {
                for j in (i + 1)..sz {
                    t.push(
                        (base + i) as Idx,
                        (base + j) as Idx,
                        rng.gen_range(0.8..1.0),
                    );
                }
            }
        }
        for _ in 0..noise {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a / sz != b / sz {
                t.push(a as Idx, b as Idx, rng.gen_range(0.01..0.05));
            }
        }
        Csc::from_triples(&t)
    }

    #[test]
    fn recovers_planted_clusters() {
        let g = planted(4, 8, 20, 1);
        let result = cluster_serial(&g, &MclConfig::testing(16));
        assert!(result.converged, "must converge on an easy instance");
        assert_eq!(result.num_clusters, 4);
        // Every planted block must map to one cluster.
        for c in 0..4 {
            let label = result.labels[c * 8];
            for v in 0..8 {
                assert_eq!(result.labels[c * 8 + v], label, "block {c}");
            }
        }
    }

    #[test]
    fn two_disconnected_cliques_two_clusters() {
        let g = planted(2, 5, 0, 2);
        let result = cluster_serial(&g, &MclConfig::testing(10));
        assert_eq!(result.num_clusters, 2);
        assert!(result.converged);
    }

    #[test]
    fn identity_like_input_all_singletons() {
        let g = Csc::<f64>::identity(6);
        let result = cluster_serial(&g, &MclConfig::testing(4));
        assert_eq!(result.num_clusters, 6);
        assert_eq!(result.iterations, 1, "already converged after one step");
    }

    #[test]
    fn trace_records_iterations() {
        let g = planted(3, 6, 10, 3);
        let result = cluster_serial(&g, &MclConfig::testing(12));
        assert_eq!(result.trace.len(), result.iterations);
        for it in &result.trace {
            assert!(it.flops > 0);
            assert!(it.nnz_pruned <= it.nnz_expanded);
            assert!(it.cf >= 1.0);
        }
        // Chaos decreases towards convergence (not necessarily
        // monotonically, but last < first on an easy instance).
        let first = result.trace.first().unwrap().chaos;
        let last = result.trace.last().unwrap().chaos;
        assert!(last < first);
    }

    #[test]
    fn prepare_matrix_is_column_stochastic() {
        let g = planted(2, 4, 5, 4);
        let a = prepare_matrix(&g, &MclConfig::testing(8));
        for j in 0..a.ncols() {
            let s: f64 = a.col_vals(j).iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "col {j} sums to {s}");
        }
        // Self-loops present.
        for j in 0..a.ncols() {
            assert!(a.get(j, j).is_some(), "self-loop at {j}");
        }
    }

    #[test]
    fn labels_partition_vertices() {
        let g = planted(3, 5, 15, 5);
        let r = cluster_serial(&g, &MclConfig::testing(10));
        let total: usize = r.clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 15);
        assert_eq!(r.labels.len(), 15);
    }

    #[test]
    fn iteration_cap_respected() {
        let g = planted(2, 10, 40, 6);
        let mut cfg = MclConfig::testing(20);
        cfg.max_iters = 1;
        let r = cluster_serial(&g, &cfg);
        assert_eq!(r.iterations, 1);
        assert!(!r.converged);
    }

    #[test]
    fn higher_inflation_gives_no_fewer_clusters() {
        let g = planted(4, 6, 60, 7);
        let mut lo = MclConfig::testing(12);
        lo.inflation = 1.4;
        let mut hi = MclConfig::testing(12);
        hi.inflation = 4.0;
        let r_lo = cluster_serial(&g, &lo);
        let r_hi = cluster_serial(&g, &hi);
        assert!(
            r_hi.num_clusters >= r_lo.num_clusters,
            "inflation {} -> {} clusters vs inflation {} -> {}",
            lo.inflation,
            r_lo.num_clusters,
            hi.inflation,
            r_hi.num_clusters
        );
    }
}
