//! Clustering-quality metrics.
//!
//! The paper validates the optimized HipMCL by *identity* with the
//! original ("returns identical clusters to MCL up to minor floating
//! point discrepancies"); this module provides the standard external and
//! internal metrics a downstream user needs to evaluate a clustering —
//! F1 against a reference partition, pairwise precision/recall, and
//! weighted graph modularity.

use hipmcl_sparse::Csc;

/// Pairwise comparison counts between two partitions of the same vertex
/// set: agreements and disagreements over all vertex pairs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PairCounts {
    /// Pairs together in both partitions.
    pub together_both: u64,
    /// Pairs together in `predicted` only.
    pub together_pred_only: u64,
    /// Pairs together in `reference` only.
    pub together_ref_only: u64,
    /// Pairs separate in both.
    pub separate_both: u64,
}

/// Counts pair agreements between two label vectors (`O(n²)` — these
/// metrics are for validation-sized graphs).
pub fn pair_counts(predicted: &[u32], reference: &[u32]) -> PairCounts {
    assert_eq!(
        predicted.len(),
        reference.len(),
        "partitions must cover the same vertices"
    );
    let mut c = PairCounts::default();
    let n = predicted.len();
    for i in 0..n {
        for j in (i + 1)..n {
            let p = predicted[i] == predicted[j];
            let r = reference[i] == reference[j];
            match (p, r) {
                (true, true) => c.together_both += 1,
                (true, false) => c.together_pred_only += 1,
                (false, true) => c.together_ref_only += 1,
                (false, false) => c.separate_both += 1,
            }
        }
    }
    c
}

impl PairCounts {
    /// Pairwise precision: of pairs predicted together, the fraction
    /// together in the reference.
    pub fn precision(&self) -> f64 {
        let denom = self.together_both + self.together_pred_only;
        if denom == 0 {
            1.0
        } else {
            self.together_both as f64 / denom as f64
        }
    }

    /// Pairwise recall: of reference-together pairs, the fraction
    /// predicted together.
    pub fn recall(&self) -> f64 {
        let denom = self.together_both + self.together_ref_only;
        if denom == 0 {
            1.0
        } else {
            self.together_both as f64 / denom as f64
        }
    }

    /// Pairwise F1 (harmonic mean of precision and recall).
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Rand index: fraction of pairs on which the partitions agree.
    pub fn rand_index(&self) -> f64 {
        let total = self.together_both
            + self.together_pred_only
            + self.together_ref_only
            + self.separate_both;
        if total == 0 {
            1.0
        } else {
            (self.together_both + self.separate_both) as f64 / total as f64
        }
    }
}

/// Weighted Newman modularity of a partition on an undirected graph:
/// `Q = Σ_c (w_in(c)/W − (deg(c)/2W)²)` where `W` is the total edge
/// weight. The adjacency is expected symmetric (each undirected edge
/// stored twice); self-loops count once.
pub fn modularity(adjacency: &Csc<f64>, labels: &[u32]) -> f64 {
    assert_eq!(adjacency.nrows(), adjacency.ncols());
    assert_eq!(adjacency.ncols(), labels.len());
    let k = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut intra = vec![0.0f64; k]; // 2·w_in(c) (both directions)
    let mut degree = vec![0.0f64; k]; // Σ weighted degree of members
    let mut two_w = 0.0f64;
    for (r, c, v) in adjacency.iter() {
        two_w += v;
        degree[labels[c as usize] as usize] += v;
        if labels[r as usize] == labels[c as usize] {
            intra[labels[c as usize] as usize] += v;
        }
    }
    if two_w == 0.0 {
        return 0.0;
    }
    (0..k)
        .map(|c| intra[c] / two_w - (degree[c] / two_w).powi(2))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmcl_sparse::{Idx, Triples};

    #[test]
    fn identical_partitions_are_perfect() {
        let labels = vec![0, 0, 1, 1, 2];
        let c = pair_counts(&labels, &labels);
        assert_eq!(c.together_pred_only, 0);
        assert_eq!(c.together_ref_only, 0);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.rand_index(), 1.0);
    }

    #[test]
    fn over_merging_hurts_precision_not_recall() {
        let reference = vec![0, 0, 1, 1];
        let predicted = vec![0, 0, 0, 0]; // everything merged
        let c = pair_counts(&predicted, &reference);
        assert_eq!(c.recall(), 1.0);
        assert!(c.precision() < 1.0);
        assert!(c.f1() < 1.0);
    }

    #[test]
    fn over_splitting_hurts_recall_not_precision() {
        let reference = vec![0, 0, 0, 0];
        let predicted = vec![0, 1, 2, 3]; // everything split
        let c = pair_counts(&predicted, &reference);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 0.0);
    }

    #[test]
    fn label_names_do_not_matter() {
        let a = vec![0, 0, 1, 1];
        let b = vec![7, 7, 3, 3];
        assert_eq!(pair_counts(&a, &b).f1(), 1.0);
    }

    fn two_cliques() -> (Csc<f64>, Vec<u32>) {
        // Two 4-cliques joined by one weak edge. Weights vary per edge:
        // perfectly uniform weights put MCL at its degenerate
        // doubly-stochastic fixed point (chaos = 0 without separation),
        // a known property of symmetric inputs.
        let mut t = Triples::new(8, 8);
        let mut w = 0.7;
        let mut add = |a: usize, b: usize, w: f64| {
            t.push(a as Idx, b as Idx, w);
            t.push(b as Idx, a as Idx, w);
        };
        for base in [0usize, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    add(base + i, base + j, w);
                    w += 0.045; // 0.7 .. ~1.2, all distinct
                }
            }
        }
        add(3, 4, 0.05);
        (Csc::from_triples(&t), vec![0, 0, 0, 0, 1, 1, 1, 1])
    }

    #[test]
    fn modularity_prefers_the_natural_partition() {
        let (g, good) = two_cliques();
        let q_good = modularity(&g, &good);
        let q_merged = modularity(&g, &[0; 8]);
        let q_split = modularity(&g, &(0..8u32).collect::<Vec<_>>());
        assert!(q_good > q_merged, "{q_good} vs merged {q_merged}");
        assert!(q_good > q_split, "{q_good} vs split {q_split}");
        assert!(q_good > 0.3, "two cliques should score well: {q_good}");
    }

    #[test]
    fn modularity_of_empty_graph_is_zero() {
        let g = Csc::<f64>::zero(4, 4);
        assert_eq!(modularity(&g, &[0, 1, 2, 3]), 0.0);
    }

    #[test]
    fn mcl_partition_scores_high_on_planted_graph() {
        // End-to-end: MCL's output should beat a random partition on F1
        // against the planted truth and on modularity.
        let (g, truth) = two_cliques();
        let result = crate::serial::cluster_serial(&g, &crate::MclConfig::testing(8));
        let c = pair_counts(&result.labels, &truth);
        assert_eq!(c.f1(), 1.0, "MCL must recover two 4-cliques exactly");
        assert!(modularity(&g, &result.labels) > 0.3);
    }
}
