//! HipMCL core: the Markov Cluster algorithm pipeline.
//!
//! MCL (van Dongen 2000) simulates flow on a similarity graph: random
//! walks stay inside clusters, so iterating **expansion** (matrix
//! squaring — one random-walk step from every vertex), **pruning**
//! (sparsify, keep top-k per column) and **inflation** (Hadamard power,
//! strengthening intra-cluster flow) converges to a matrix whose
//! connected components are the clusters (Algorithm 1 of the paper).
//!
//! * [`config`] — the knobs shared by all drivers, including the
//!   paper-aligned presets ([`config::MclConfig::original_hipmcl`] /
//!   [`config::MclConfig::optimized`]).
//! * [`serial`] — single-process reference implementation (the oracle for
//!   every distributed test, and a perfectly good way to cluster graphs
//!   that fit one machine).
//! * [`dist`] — the distributed HipMCL driver: expansion via (Pipelined)
//!   Sparse SUMMA with fused per-phase pruning, distributed inflation and
//!   chaos, per-stage virtual-time instrumentation for every table and
//!   figure of the paper's evaluation.
//! * [`quality`] — clustering metrics (pairwise F1/precision/recall,
//!   Rand index, weighted modularity) for downstream validation.

pub mod config;
pub mod dist;
pub mod quality;
pub mod serial;

pub use config::MclConfig;
pub use dist::{cluster_distributed, DistMclReport};
pub use serial::{cluster_serial, MclResult};
