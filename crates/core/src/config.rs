//! MCL / HipMCL configuration.

use hipmcl_gpu::select::SelectionPolicy;
use hipmcl_sparse::colops::PruneParams;
use hipmcl_summa::active::ActiveSetPolicy;
use hipmcl_summa::estimate::{EstimatorKind, PhasePlanner};
use hipmcl_summa::executor::{ExecutorKind, StealPolicy};
use hipmcl_summa::merge::{MergeKernelPolicy, MergeStrategy};
use hipmcl_summa::spgemm::{CommPolicy, ConfigError, PhasePlan, SummaConfig};

/// Complete configuration of an MCL run.
#[derive(Clone, Copy, Debug)]
pub struct MclConfig {
    /// Inflation parameter (Hadamard power). The paper uses 2 everywhere.
    pub inflation: f64,
    /// Pruning policy applied after every expansion. Cutoff, selection
    /// and recovery are all honoured by both the serial and distributed
    /// drivers (and tested to agree); the presets ship with recovery
    /// disabled because the paper's evaluation parameters rarely trigger
    /// it and the harness calibration assumes the selection-only regime.
    pub prune: PruneParams,
    /// Add missing self-loops (weight = 1) before normalizing — MCL's
    /// standard aperiodicity fix.
    pub add_self_loops: bool,
    /// Symmetrize the input pattern with `max(a, aᵀ)` first (similarity
    /// graphs are logically undirected).
    pub symmetrize: bool,
    /// Stop when the chaos statistic falls below this.
    pub chaos_epsilon: f64,
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Distributed expansion settings (ignored by the serial driver).
    pub summa: SummaConfig,
    /// Convergence-aware active-set shrinking of the SUMMA operand
    /// (ignored by the serial driver). Every preset ships with
    /// [`ActiveSetPolicy::Off`]; opt in with [`ActiveSetPolicy::shrink`].
    pub active_set: ActiveSetPolicy,
}

impl Default for MclConfig {
    fn default() -> Self {
        Self::optimized(u64::MAX)
    }
}

impl MclConfig {
    /// Baseline configuration reproducing *original* HipMCL: CPU heap
    /// SpGEMM, exact symbolic memory estimation, multiway merge, bulk
    /// synchronous.
    pub fn original_hipmcl(per_rank_budget: u64) -> Self {
        Self {
            inflation: 2.0,
            prune: PruneParams {
                recover_num: 0,
                recover_pct: 0.0,
                ..PruneParams::default()
            },
            add_self_loops: true,
            symmetrize: true,
            chaos_epsilon: 1e-3,
            max_iters: 100,
            summa: SummaConfig::original_hipmcl(per_rank_budget),
            active_set: ActiveSetPolicy::Off,
        }
    }

    /// The paper's optimized HipMCL: GPU kernels, probabilistic/hybrid
    /// estimation, Pipelined Sparse SUMMA with binary merge.
    pub fn optimized(per_rank_budget: u64) -> Self {
        Self {
            summa: SummaConfig::optimized(per_rank_budget),
            ..Self::original_hipmcl(per_rank_budget)
        }
    }

    /// Optimized kernels without overlap (Fig. 1 middle bar).
    pub fn optimized_no_overlap(per_rank_budget: u64) -> Self {
        Self {
            summa: SummaConfig::optimized_no_overlap(per_rank_budget),
            ..Self::original_hipmcl(per_rank_budget)
        }
    }

    /// Optimized HipMCL on nodes without accelerators: CPU kernels run as
    /// asynchronous launches on the per-rank worker pool, keeping the
    /// §III broadcast/merge overlap.
    pub fn cpu_pipelined(per_rank_budget: u64) -> Self {
        Self {
            summa: SummaConfig::cpu_pipelined(per_rank_budget),
            ..Self::original_hipmcl(per_rank_budget)
        }
    }

    /// Small-graph testing preset: keep at most `select` entries per
    /// column, single fixed phase, deterministic seed.
    pub fn testing(select: usize) -> Self {
        Self {
            prune: PruneParams {
                cutoff: 1e-4,
                select,
                recover_num: 0,
                recover_pct: 0.0,
            },
            summa: SummaConfig {
                phases: PhasePlan::Fixed(1),
                planner: PhasePlanner::MemoryOnly,
                policy: SelectionPolicy::cpu_only(),
                merge: MergeStrategy::Multiway,
                merge_kernel: MergeKernelPolicy::Auto,
                pipelined: false,
                executor: ExecutorKind::Gpus,
                steal: StealPolicy::default(),
                comm: CommPolicy::Hybrid,
                seed: 42,
            },
            ..Self::original_hipmcl(u64::MAX)
        }
    }

    /// Overrides the estimator while keeping everything else.
    pub fn with_estimator(mut self, estimator: EstimatorKind, per_rank_budget: u64) -> Self {
        self.summa.phases = PhasePlan::Auto {
            estimator,
            per_rank_budget,
        };
        self
    }

    /// Overrides where local multiplications execute (devices, CPU worker
    /// pool, or a hybrid column split) while keeping everything else.
    pub fn with_executor(mut self, executor: ExecutorKind) -> Self {
        self.summa.executor = executor;
        self
    }

    /// Checks the configuration for values that would misbehave at run
    /// time — a fixed hybrid split fraction outside `[0, 1]`, a
    /// degenerate overlap-planner headroom, or an out-of-range active-set
    /// shrinking parameter — which is reported here (and
    /// by the drivers, which call this on entry) rather than silently
    /// clamped.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.summa.validate()?;
        self.active_set.validate().map_err(ConfigError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_summa_settings() {
        let orig = MclConfig::original_hipmcl(1 << 30);
        let opt = MclConfig::optimized(1 << 30);
        assert_eq!(orig.inflation, 2.0);
        assert!(!orig.summa.pipelined);
        assert!(opt.summa.pipelined);
        assert_eq!(opt.summa.merge, MergeStrategy::Binary);
        assert_eq!(orig.summa.merge, MergeStrategy::Multiway);
    }

    #[test]
    fn presets_ship_with_recovery_disabled() {
        let c = MclConfig::optimized(1);
        assert_eq!(c.prune.recover_num, 0);
    }

    #[test]
    fn testing_preset_bounds_columns() {
        let c = MclConfig::testing(8);
        assert_eq!(c.prune.select, 8);
        assert!(matches!(c.summa.phases, PhasePlan::Fixed(1)));
    }

    #[test]
    fn cpu_pipelined_preset_uses_worker_pool() {
        let c = MclConfig::cpu_pipelined(1 << 30);
        assert_eq!(c.summa.executor, ExecutorKind::CpuPool);
        assert!(c.summa.pipelined, "the pool exists to overlap");
        assert_eq!(c.summa.merge, MergeStrategy::Binary);
    }

    #[test]
    fn with_executor_overrides_only_the_executor() {
        let c = MclConfig::testing(8).with_executor(ExecutorKind::hybrid());
        assert!(matches!(c.summa.executor, ExecutorKind::Hybrid { .. }));
        assert!(matches!(c.summa.phases, PhasePlan::Fixed(1)));
    }

    #[test]
    fn hybrid_default_split_is_adaptive() {
        use hipmcl_summa::executor::SplitPolicy;
        assert_eq!(
            ExecutorKind::hybrid(),
            ExecutorKind::Hybrid {
                split: SplitPolicy::Adaptive
            }
        );
    }

    #[test]
    fn validate_rejects_out_of_range_fixed_split_at_both_bounds() {
        use hipmcl_summa::executor::SplitPolicy;
        let hybrid = |f| {
            MclConfig::testing(8).with_executor(ExecutorKind::Hybrid {
                split: SplitPolicy::Fixed(f),
            })
        };
        assert!(hybrid(0.0).validate().is_ok(), "0.0 is a legal share");
        assert!(hybrid(1.0).validate().is_ok(), "1.0 is a legal share");
        match hybrid(-0.01).validate().unwrap_err() {
            ConfigError::Split(e) => assert_eq!(e.fraction, -0.01),
            other => panic!("expected a split error, got {other:?}"),
        }
        match hybrid(1.01).validate().unwrap_err() {
            ConfigError::Split(e) => assert_eq!(e.fraction, 1.01),
            other => panic!("expected a split error, got {other:?}"),
        }
        assert!(MclConfig::optimized(1 << 30).validate().is_ok());
    }

    #[test]
    fn steal_policy_defaults_cost_aware_and_validates_everywhere() {
        // The optimized presets ship with cost-aware stealing on; the
        // original-HipMCL baseline keeps the legacy pinning. Both
        // variants pass the MclConfig validation chain.
        assert_eq!(StealPolicy::default(), StealPolicy::CostAware);
        assert_eq!(
            MclConfig::optimized(1 << 30).summa.steal,
            StealPolicy::CostAware
        );
        assert_eq!(
            MclConfig::original_hipmcl(1 << 30).summa.steal,
            StealPolicy::Off
        );
        for steal in StealPolicy::all() {
            let mut c = MclConfig::testing(8);
            c.summa.steal = steal;
            assert!(c.validate().is_ok(), "{steal:?}");
        }
    }

    #[test]
    fn active_set_defaults_off_everywhere_and_validates() {
        for c in [
            MclConfig::original_hipmcl(1 << 30),
            MclConfig::optimized(1 << 30),
            MclConfig::optimized_no_overlap(1 << 30),
            MclConfig::cpu_pipelined(1 << 30),
            MclConfig::testing(8),
        ] {
            assert_eq!(c.active_set, ActiveSetPolicy::Off);
            assert!(c.validate().is_ok());
        }
        let mut c = MclConfig::testing(8);
        c.active_set = ActiveSetPolicy::shrink();
        assert!(c.validate().is_ok());
        c.active_set = ActiveSetPolicy::Shrink {
            epsilon: f64::NAN,
            min_shrink_frac: 0.1,
            reshard_every: 1,
        };
        match c.validate().unwrap_err() {
            ConfigError::ActiveSet(e) => assert_eq!(e.field, "epsilon"),
            other => panic!("expected an active-set error, got {other:?}"),
        }
    }

    #[test]
    fn with_estimator_overrides_phases() {
        let c = MclConfig::testing(8).with_estimator(EstimatorKind::Probabilistic { r: 7 }, 1000);
        match c.summa.phases {
            PhasePlan::Auto {
                estimator,
                per_rank_budget,
            } => {
                assert_eq!(estimator, EstimatorKind::Probabilistic { r: 7 });
                assert_eq!(per_rank_budget, 1000);
            }
            _ => panic!("expected auto phases"),
        }
    }
}
