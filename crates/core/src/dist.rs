//! The distributed HipMCL driver.
//!
//! One MCL iteration on the `√P × √P` grid:
//!
//! 1. **Memory estimation** (§V) — inside the SUMMA phase planner,
//!    exact-symbolic or probabilistic per the config.
//! 2. **Expansion** `B = A·A` via (Pipelined) Sparse SUMMA, with pruning
//!    *fused into the phases*: each phase's merged column slab is pruned
//!    (cutoff + distributed top-k selection) before the next phase runs,
//!    so the unpruned matrix never exists at once (§II).
//! 3. **Inflation** — local Hadamard power, then column renormalization
//!    with sums reduced down the process columns.
//! 4. **Chaos** — distributed convergence statistic.
//!
//! When the loop converges, clusters are read off the connected
//! components of the final matrix. Results are validated against
//! [`crate::serial`] in the tests.

use crate::config::MclConfig;
use crate::serial::IterTrace;
use hipmcl_comm::collectives::{allreduce, allreduce_sum_vec};
use hipmcl_comm::{Comm, ProcGrid, WireDecode, WireEncode, WireError, WireReader};
use hipmcl_gpu::multi::MultiGpu;
use hipmcl_sparse::Csc;
use hipmcl_summa::active::{ActiveSet, ActiveSetPolicy};
use hipmcl_summa::estimate::MemoryEstimate;
use hipmcl_summa::spgemm::summa_spgemm_with;
use hipmcl_summa::topk::prune_local_slab;
use hipmcl_summa::DistMatrix;

/// Canonical stage order for reports (matches the paper's Fig. 1 legend).
/// `expansion` is the wall time of the whole SUMMA pipeline section
/// (broadcasts + kernels + merging + synchronization waits, excluding the
/// fused pruning) — the quantity Table II calls "overall". `reshard` is
/// the active-set step (settle mask + freeze + operand exchange); always
/// zero when [`ActiveSetPolicy::Off`].
pub const STAGES: [&str; 8] = [
    "local_spgemm",
    "mem_estimation",
    "summa_bcast",
    "merge",
    "pruning",
    "other",
    "expansion",
    "reshard",
];

/// Result of a distributed MCL run, identical on every rank.
#[derive(Clone, Debug)]
pub struct DistMclReport {
    /// Dense cluster labels per global vertex.
    pub labels: Vec<u32>,
    /// Number of clusters.
    pub num_clusters: usize,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the chaos criterion was met.
    pub converged: bool,
    /// Total modeled wall time: max over ranks of the final virtual clock.
    pub total_time: f64,
    /// Per-stage virtual time, *mean* over ranks, summed over iterations,
    /// ordered as [`STAGES`]. (Means, not maxima: with per-rank load
    /// imbalance, synchronization waits land in whichever stage follows
    /// the straggler, so per-rank maxima over-count; means keep the
    /// stages additive, matching how stage breakdowns are reported.)
    pub stage_times: Vec<(String, f64)>,
    /// Wall-clock counterpart of [`stage_times`](Self::stage_times):
    /// real host seconds per stage, mean over ranks, ordered as
    /// [`STAGES`]. Filled only when the universe runs under
    /// `TimeModel::Measured`; all durations are `0.0` under `Modeled`,
    /// which never reads the host clock.
    pub stage_times_measured: Vec<(String, f64)>,
    /// Mean over ranks of host idle time waiting on launch events
    /// (Table V).
    pub cpu_idle: f64,
    /// Mean over ranks of device/worker idle time, read off the
    /// executor's unified timelines (Table V's GPU column; the CPU
    /// worker pool's idle when no devices are configured).
    pub gpu_idle: f64,
    /// Per-iteration peak single-merge element count, max over ranks
    /// (Table III's peak-memory proxy).
    pub merge_peaks: Vec<u64>,
    /// Per-iteration memory estimates (when auto phases ran).
    pub estimates: Vec<Option<MemoryEstimate>>,
    /// Per-iteration algorithmic trace (global quantities).
    pub trace: Vec<IterTrace>,
    /// Columns still in the operand when the loop ended (the full
    /// dimension unless active-set shrinking removed some).
    pub active_cols: usize,
    /// Columns frozen out of the operand over the whole run.
    pub frozen_cols: usize,
    /// Total modeled seconds spent in the active-set step (settle mask +
    /// freeze + reshard exchange), mean over ranks.
    pub reshard_time: f64,
}

// The report is what a `process-shm` rank ships back to the parent, so
// it must be a full wire payload (the size hook just prices the encoded
// form — the report never travels through the modeled α–β collectives).
impl hipmcl_comm::WireSize for DistMclReport {
    fn wire_bytes(&self) -> usize {
        self.encoded().len()
    }
}

impl WireEncode for DistMclReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.labels.encode(out);
        self.num_clusters.encode(out);
        self.iterations.encode(out);
        self.converged.encode(out);
        self.total_time.encode(out);
        self.stage_times.encode(out);
        self.stage_times_measured.encode(out);
        self.cpu_idle.encode(out);
        self.gpu_idle.encode(out);
        self.merge_peaks.encode(out);
        self.estimates.encode(out);
        self.trace.encode(out);
        self.active_cols.encode(out);
        self.frozen_cols.encode(out);
        self.reshard_time.encode(out);
    }
}

impl WireDecode for DistMclReport {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(DistMclReport {
            labels: Vec::<u32>::decode(r)?,
            num_clusters: usize::decode(r)?,
            iterations: usize::decode(r)?,
            converged: bool::decode(r)?,
            total_time: f64::decode(r)?,
            stage_times: Vec::<(String, f64)>::decode(r)?,
            stage_times_measured: Vec::<(String, f64)>::decode(r)?,
            cpu_idle: f64::decode(r)?,
            gpu_idle: f64::decode(r)?,
            merge_peaks: Vec::<u64>::decode(r)?,
            estimates: Vec::<Option<MemoryEstimate>>::decode(r)?,
            trace: Vec::<IterTrace>::decode(r)?,
            active_cols: usize::decode(r)?,
            frozen_cols: usize::decode(r)?,
            reshard_time: f64::decode(r)?,
        })
    }
}

/// Runs distributed MCL on an input replicated at every rank (each rank
/// calls with the same `adjacency`, e.g. generated from a shared seed).
/// Preparation (symmetrize, self-loops, normalization) happens before
/// distribution. Collective over the grid.
pub fn cluster_distributed(
    grid: &ProcGrid,
    gpus: &mut MultiGpu,
    adjacency: &Csc<f64>,
    cfg: &MclConfig,
) -> DistMclReport {
    let prepared = crate::serial::prepare_matrix(adjacency, cfg);
    let a = DistMatrix::from_global(grid, &prepared.to_triples());
    cluster_distributed_from(grid, gpus, a, cfg)
}

/// Runs distributed MCL on an already-distributed, already column
/// stochastic matrix. Collective over the grid.
pub fn cluster_distributed_from(
    grid: &ProcGrid,
    gpus: &mut MultiGpu,
    mut a: DistMatrix,
    cfg: &MclConfig,
) -> DistMclReport {
    cfg.validate()
        .unwrap_or_else(|e| panic!("invalid MclConfig: {e}"));
    let comm = &grid.world;
    let mut stage = hipmcl_comm::StageTimers::new();
    let mut stage_measured = hipmcl_comm::StageTimers::new();
    let mut merge_peaks = Vec::new();
    let mut estimates = Vec::new();
    let mut trace = Vec::new();
    let mut cpu_idle = 0.0;
    let mut gpu_idle = 0.0;
    let mut converged = false;
    let mut iterations = 0;
    let mut active = ActiveSet::full(a.ncols_global);
    let mut since_reshard = 0usize;
    // Per-iteration local [expansion, merge, reshard] seconds, flattened;
    // averaged over ranks once after the loop (a single collective keeps
    // the modeled clock comparable between Off and Shrink runs).
    let mut iter_stage_local: Vec<f64> = Vec::new();

    for _ in 0..cfg.max_iters {
        iterations += 1;

        // Expansion with fused per-phase pruning.
        let mut prune_time = 0.0f64;
        let mut prune_measured = 0.0f64;
        let prune_params = cfg.prune;
        let t_expand = comm.now();
        let w_expand = comm.measured_now();
        let out = {
            let col_comm = &grid.col_comm;
            summa_spgemm_with(grid, gpus, &a, &a, &cfg.summa, |_ph, slab| {
                let t0 = col_comm.now();
                let w0 = col_comm.measured_now();
                let (pruned, _stats) = prune_local_slab(col_comm, &slab, &prune_params);
                // Charge the columnwise scan + selection work.
                col_comm.advance_clock(col_comm.model().elementwise_time(slab.nnz() as u64));
                prune_time += col_comm.now() - t0;
                prune_measured += col_comm.measured_now() - w0;
                pruned
            })
        };
        for (name, t) in out.timers.iter() {
            stage.add(name, t);
        }
        for (name, t) in out.timers_measured.iter() {
            stage_measured.add(name, t);
        }
        let it_expand = comm.now() - t_expand - prune_time;
        let it_merge = out.timers.get("merge");
        stage.add("pruning", prune_time);
        stage.add("expansion", it_expand);
        stage_measured.add("pruning", prune_measured);
        stage_measured.add(
            "expansion",
            (comm.measured_now() - w_expand - prune_measured).max(0.0),
        );
        cpu_idle += out.cpu_idle;
        gpu_idle += out.gpu_idle;
        merge_peaks.push(out.merge_stats.peak_merge_elems as u64);
        estimates.push(out.estimate);

        let mut nnz_pruned = out.c.nnz_global(grid);
        let flops = out.estimate.map_or(0, |e| e.flops);
        let nnz_expanded = out
            .estimate
            .map_or(nnz_pruned, |e| e.nnz_estimate.max(0.0) as u64);
        a = out.c;

        // Inflation + chaos (distributed, per column).
        let t0 = comm.now();
        let w0 = comm.measured_now();
        let (col_chaos, chaos) = dist_inflate_and_chaos_cols(grid, &mut a.local, cfg.inflation);
        stage.add("other", comm.now() - t0);
        stage_measured.add("other", comm.measured_now() - w0);

        // Active-set step: settle, freeze, reshard. Skipped entirely when
        // the loop is about to stop (the full convergence check below
        // subsumes per-column settlement).
        let mut it_reshard = 0.0f64;
        if let ActiveSetPolicy::Shrink {
            epsilon,
            min_shrink_frac,
            reshard_every,
        } = cfg.active_set
        {
            since_reshard += 1;
            if chaos >= cfg.chaos_epsilon && since_reshard >= reshard_every {
                let t0 = comm.now();
                let w0 = comm.measured_now();
                let settled = active.settled_columns(grid, &a, &col_chaos, epsilon);
                let n_settle = settled.iter().filter(|&&s| s).count();
                let n_cur = a.ncols_global;
                // min_shrink_frac suppresses the reshard for small
                // batches: the settled columns simply stay active and are
                // retried at the next settle point. Shrinking to an empty
                // operand is likewise refused.
                if n_settle > 0
                    && n_settle < n_cur
                    && (n_settle as f64) >= min_shrink_frac * n_cur as f64
                {
                    a = active.shrink(grid, &a, &settled);
                    nnz_pruned = a.nnz_global(grid);
                    since_reshard = 0;
                }
                it_reshard = comm.now() - t0;
                stage.add("reshard", it_reshard);
                stage_measured.add("reshard", (comm.measured_now() - w0).max(0.0));
            }
        }
        iter_stage_local.extend([it_expand, it_merge, it_reshard]);

        trace.push(IterTrace {
            flops,
            nnz_expanded,
            nnz_pruned,
            cf: if nnz_expanded == 0 {
                1.0
            } else {
                flops as f64 / nnz_expanded as f64
            },
            chaos,
            active_cols: a.ncols_global as u64,
            frozen_cols: active.frozen_cols() as u64,
            // Rank means filled in after the loop.
            reshard_time: 0.0,
            expansion_time: 0.0,
            merge_time: 0.0,
        });
        if chaos < cfg.chaos_epsilon {
            converged = true;
            break;
        }
    }

    // Rank means of the per-iteration stage seconds (one collective for
    // the whole run; every rank ran the same number of iterations).
    let p_f = grid.size() as f64;
    let iter_stage_mean = allreduce_sum_vec(&grid.world, iter_stage_local);
    for (i, tr) in trace.iter_mut().enumerate() {
        tr.expansion_time = iter_stage_mean[3 * i] / p_f;
        tr.merge_time = iter_stage_mean[3 * i + 1] / p_f;
        tr.reshard_time = iter_stage_mean[3 * i + 2] / p_f;
    }

    // Cluster extraction: scatter the active results back through the
    // index map and union with the frozen store (the identity path while
    // nothing is frozen — bit-identical to plain gathered components).
    let (labels, num_clusters) = active.final_components(grid, &a);

    // Aggregate instrumentation across ranks (mean per stage).
    let my_stage_vec: Vec<f64> = STAGES.iter().map(|s| stage.get(s)).collect();
    let mean_stage = allreduce_sum_vec(&grid.world, my_stage_vec);
    let stage_times: Vec<(String, f64)> = STAGES
        .iter()
        .zip(&mean_stage)
        .map(|(s, &t)| (s.to_string(), t / grid.size() as f64))
        .collect();
    let my_measured_vec: Vec<f64> = STAGES.iter().map(|s| stage_measured.get(s)).collect();
    let mean_measured = allreduce_sum_vec(&grid.world, my_measured_vec);
    let stage_times_measured: Vec<(String, f64)> = STAGES
        .iter()
        .zip(&mean_measured)
        .map(|(s, &t)| (s.to_string(), t / grid.size() as f64))
        .collect();
    let total_time = allreduce(&grid.world, comm.now(), f64::max);
    let p = grid.size() as f64;
    let idle = allreduce_sum_vec(&grid.world, vec![cpu_idle, gpu_idle]);
    let merge_peaks = {
        let local: Vec<f64> = merge_peaks.iter().map(|&x| x as f64).collect();
        let reduced = allreduce(&grid.world, local, |mut x, y| {
            for (a, b) in x.iter_mut().zip(&y) {
                *a = a.max(*b);
            }
            x
        });
        reduced.into_iter().map(|x| x as u64).collect()
    };

    DistMclReport {
        labels,
        num_clusters,
        iterations,
        converged,
        total_time,
        stage_times,
        stage_times_measured,
        cpu_idle: idle[0] / p,
        gpu_idle: idle[1] / p,
        merge_peaks,
        estimates,
        reshard_time: trace.iter().map(|t| t.reshard_time).sum(),
        active_cols: active.active_cols(),
        frozen_cols: active.frozen_cols(),
        trace,
    }
}

/// Inflation (Hadamard power) with distributed column renormalization,
/// followed by the distributed chaos statistic. Returns this rank's
/// per-column chaos vector (one entry per local panel column, identical
/// across the ranks of a process column because it is computed from the
/// column-reduced max and sum of squares) and the global chaos — the max
/// over all columns. The per-column vector is what active-set shrinking
/// feeds to [`ActiveSet::settled_columns`].
pub fn dist_inflate_and_chaos_cols(
    grid: &ProcGrid,
    m: &mut Csc<f64>,
    power: f64,
) -> (Vec<f64>, f64) {
    let col_comm = &grid.col_comm;
    let model = col_comm.model().clone();

    // Hadamard power, local.
    for v in &mut m.vals {
        *v = v.powf(power);
    }
    // Column sums reduced down the process column.
    let local_sums: Vec<f64> = (0..m.ncols()).map(|j| m.col_vals(j).iter().sum()).collect();
    let sums = allreduce_sum_vec(col_comm, local_sums);
    for (j, &s) in sums.iter().enumerate() {
        if s > 0.0 {
            let inv = 1.0 / s;
            for v in m.col_vals_mut(j) {
                *v *= inv;
            }
        }
    }
    col_comm.advance_clock(model.elementwise_time(2 * m.nnz() as u64));

    // Chaos: per-column max and sum of squares, combined down the column.
    let mut maxes: Vec<f64> = vec![0.0; m.ncols()];
    let mut ssq: Vec<f64> = vec![0.0; m.ncols()];
    for j in 0..m.ncols() {
        for &v in m.col_vals(j) {
            maxes[j] = maxes[j].max(v);
            ssq[j] += v * v;
        }
    }
    let gmax = allreduce(col_comm, maxes, |mut x, y| {
        for (a, b) in x.iter_mut().zip(&y) {
            *a = a.max(*b);
        }
        x
    });
    let gssq = allreduce_sum_vec(col_comm, ssq);
    let col_chaos: Vec<f64> = gmax
        .iter()
        .zip(&gssq)
        .map(|(&mx, &s)| if mx > 0.0 { mx - s } else { 0.0 })
        .collect();
    // The world allreduce folds from 0.0, the chaos identity: a column of
    // a stochastic matrix has `max ≥ Σv²` (since `Σv = 1`), so per-column
    // chaos is nonnegative, and a rank whose panel owns zero columns (a
    // degenerate grid with `side > ncols`) contributes exactly 0.0 — no
    // uninitialized or −∞ local can poison the max.
    let local_chaos = col_chaos.iter().copied().fold(0.0f64, f64::max);
    let chaos = allreduce(&grid.world, local_chaos, f64::max);
    (col_chaos, chaos)
}

/// [`dist_inflate_and_chaos_cols`] when only the global chaos is wanted.
pub fn dist_inflate_and_chaos(grid: &ProcGrid, m: &mut Csc<f64>, power: f64) -> f64 {
    dist_inflate_and_chaos_cols(grid, m, power).1
}

/// Distributed column normalization (used to prepare an already
/// distributed matrix): divides each column by its global sum.
pub fn dist_normalize(grid: &ProcGrid, m: &mut Csc<f64>) {
    let col_comm = &grid.col_comm;
    let local_sums: Vec<f64> = (0..m.ncols()).map(|j| m.col_vals(j).iter().sum()).collect();
    let sums = allreduce_sum_vec(col_comm, local_sums);
    for (j, &s) in sums.iter().enumerate() {
        if s > 0.0 {
            let inv = 1.0 / s;
            for v in m.col_vals_mut(j) {
                *v *= inv;
            }
        }
    }
}

/// Convenience for reports: returns `(name, seconds)` for stages plus the
/// overall time, like the paper's Fig. 1 stacked bars.
pub fn stage_summary(report: &DistMclReport) -> Vec<(String, f64)> {
    let mut rows = report.stage_times.clone();
    rows.push(("overall".to_string(), report.total_time));
    rows
}

/// Suppresses "unused" for `Comm` kept in the public signature docs.
#[allow(dead_code)]
fn _comm_marker(_c: &Comm) {}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmcl_comm::{MachineModel, Universe};
    use hipmcl_sparse::{Idx, Triples};
    use rand::{Rng, SeedableRng};

    fn planted(k: usize, sz: usize, noise: usize, seed: u64) -> Csc<f64> {
        let n = k * sz;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut t = Triples::new(n, n);
        for c in 0..k {
            let base = c * sz;
            for i in 0..sz {
                for j in (i + 1)..sz {
                    t.push(
                        (base + i) as Idx,
                        (base + j) as Idx,
                        rng.gen_range(0.8..1.0),
                    );
                }
            }
        }
        for _ in 0..noise {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a / sz != b / sz {
                t.push(a as Idx, b as Idx, rng.gen_range(0.01..0.05));
            }
        }
        Csc::from_triples(&t)
    }

    fn same_partition(a: &[u32], b: &[u32]) -> bool {
        if a.len() != b.len() {
            return false;
        }
        for i in 0..a.len() {
            for j in (i + 1)..a.len() {
                if (a[i] == a[j]) != (b[i] == b[j]) {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn distributed_matches_serial_clusters() {
        let g = planted(4, 6, 15, 11);
        let cfg = MclConfig::testing(12);
        let serial = crate::serial::cluster_serial(&g, &cfg);
        for p in [1usize, 4, 9] {
            let results = Universe::run(p, MachineModel::summit(), |comm| {
                let grid = ProcGrid::new(comm);
                let mut gpus = MultiGpu::summit_node(grid.world.model());
                let g = planted(4, 6, 15, 11);
                cluster_distributed(&grid, &mut gpus, &g, &MclConfig::testing(12))
            });
            for r in &results {
                assert_eq!(r.num_clusters, serial.num_clusters, "p={p}");
                assert!(same_partition(&r.labels, &serial.labels), "p={p}");
                assert_eq!(r.iterations, serial.iterations, "p={p}");
                assert!(r.converged);
            }
        }
    }

    #[test]
    fn optimized_config_matches_original_clusters() {
        let run = |use_opt: bool| {
            let results = Universe::run(4, MachineModel::summit(), move |comm| {
                let grid = ProcGrid::new(comm);
                let mut gpus = MultiGpu::summit_node(grid.world.model());
                let g = planted(3, 7, 12, 13);
                let mut cfg = if use_opt {
                    MclConfig::optimized(u64::MAX)
                } else {
                    MclConfig::original_hipmcl(u64::MAX)
                };
                cfg.prune = hipmcl_sparse::colops::PruneParams {
                    cutoff: 1e-4,
                    select: 14,
                    recover_num: 0,
                    recover_pct: 0.0,
                };
                cluster_distributed(&grid, &mut gpus, &g, &cfg)
            });
            results.into_iter().next().unwrap()
        };
        let orig = run(false);
        let opt = run(true);
        assert_eq!(orig.num_clusters, opt.num_clusters);
        assert!(same_partition(&orig.labels, &opt.labels));
        assert_eq!(orig.num_clusters, 3);
    }

    #[test]
    fn every_executor_choice_matches_serial_clusters() {
        use hipmcl_summa::executor::ExecutorKind;
        let g = planted(3, 6, 10, 29);
        let cfg = MclConfig::testing(12);
        let serial = crate::serial::cluster_serial(&g, &cfg);
        for exec in [
            ExecutorKind::Gpus,
            ExecutorKind::CpuPool,
            ExecutorKind::hybrid(),
        ] {
            let results = Universe::run(4, MachineModel::summit(), move |comm| {
                let grid = ProcGrid::new(comm);
                let mut gpus = MultiGpu::summit_node(grid.world.model());
                let g = planted(3, 6, 10, 29);
                let cfg = MclConfig::testing(12).with_executor(exec);
                cluster_distributed(&grid, &mut gpus, &g, &cfg)
            });
            for r in &results {
                assert_eq!(r.num_clusters, serial.num_clusters, "{exec:?}");
                assert!(same_partition(&r.labels, &serial.labels), "{exec:?}");
                assert!(r.cpu_idle >= 0.0 && r.gpu_idle >= 0.0, "{exec:?}");
            }
        }
    }

    #[test]
    fn optimized_is_faster_than_original_in_model_time() {
        // Dense planted graph: expansion dominates, GPUs + overlap win.
        let run = |use_opt: bool| {
            let results = Universe::run(4, MachineModel::summit(), move |comm| {
                let grid = ProcGrid::new(comm);
                let mut gpus = MultiGpu::summit_node(grid.world.model());
                let g = planted(4, 40, 600, 17);
                let mut cfg = if use_opt {
                    MclConfig::optimized(u64::MAX)
                } else {
                    MclConfig::original_hipmcl(u64::MAX)
                };
                cfg.prune.select = 80;
                cfg.max_iters = 4;
                cluster_distributed(&grid, &mut gpus, &g, &cfg).total_time
            });
            results[0]
        };
        let t_orig = run(false);
        let t_opt = run(true);
        assert!(
            t_opt < t_orig,
            "optimized ({t_opt}) must beat original ({t_orig})"
        );
    }

    #[test]
    fn report_contains_all_stages() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let g = planted(2, 6, 5, 19);
            cluster_distributed(&grid, &mut gpus, &g, &MclConfig::testing(12))
        });
        let r = &results[0];
        let names: Vec<&str> = r.stage_times.iter().map(|(n, _)| n.as_str()).collect();
        for s in STAGES {
            assert!(names.contains(&s), "missing stage {s}");
        }
        assert!(r.total_time > 0.0);
        assert_eq!(r.trace.len(), r.iterations);
        assert_eq!(r.merge_peaks.len(), r.iterations);
        // Reports identical across ranks.
        for other in &results[1..] {
            assert_eq!(other.num_clusters, r.num_clusters);
            assert_eq!(other.total_time, r.total_time);
        }
    }

    #[test]
    fn dist_normalize_makes_global_columns_stochastic() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let g = planted(2, 5, 8, 23);
            let mut dm = DistMatrix::from_global(&grid, &g.to_triples());
            dist_normalize(&grid, &mut dm.local);
            let local_sums: Vec<f64> = (0..dm.local.ncols())
                .map(|j| dm.local.col_vals(j).iter().sum())
                .collect();
            let sums = allreduce_sum_vec(&grid.col_comm, local_sums);
            sums.iter().all(|&s| s == 0.0 || (s - 1.0).abs() < 1e-9)
        });
        assert!(results.iter().all(|&ok| ok));
    }

    #[test]
    fn chaos_not_poisoned_by_empty_local_panels() {
        // n = 2 on a 3×3 grid: even_chunk(2, 3, ·) = {1, 1, 0}, so the
        // third grid row/column owns zero rows/columns. The empty panels
        // must contribute the fold identity (0.0) to the world max — the
        // regression this pins is an uninitialized/−∞ local leaking in.
        let mut t = Triples::new(2, 2);
        t.push(0, 0, 0.9);
        t.push(1, 0, 0.1);
        t.push(0, 1, 0.2);
        t.push(1, 1, 0.8);
        let reference = Universe::run(1, MachineModel::summit(), {
            let t = t.clone();
            move |comm| {
                let grid = ProcGrid::new(comm);
                let mut local = DistMatrix::from_global(&grid, &t).local;
                dist_inflate_and_chaos(&grid, &mut local, 2.0)
            }
        })[0];
        assert!(reference.is_finite() && reference > 0.0);
        let results = Universe::run(9, MachineModel::summit(), move |comm| {
            let grid = ProcGrid::new(comm);
            let mut local = DistMatrix::from_global(&grid, &t.clone()).local;
            let (cols, chaos) = dist_inflate_and_chaos_cols(&grid, &mut local, 2.0);
            // Empty panels report an empty chaos vector, never NaN/−∞.
            assert_eq!(cols.len(), local.ncols());
            assert!(cols.iter().all(|c| c.is_finite() && *c >= 0.0));
            chaos
        });
        for &c in &results {
            assert_eq!(c, reference, "degenerate grid must match 1-rank chaos");
        }
    }

    #[test]
    fn shrinking_preserves_serial_clusters() {
        let g = planted(4, 6, 15, 11);
        let cfg = MclConfig::testing(12);
        let serial = crate::serial::cluster_serial(&g, &cfg);
        for p in [1usize, 4, 9] {
            let results = Universe::run(p, MachineModel::summit(), |comm| {
                let grid = ProcGrid::new(comm);
                let mut gpus = MultiGpu::summit_node(grid.world.model());
                let g = planted(4, 6, 15, 11);
                let mut cfg = MclConfig::testing(12);
                cfg.active_set = hipmcl_summa::ActiveSetPolicy::shrink();
                cluster_distributed(&grid, &mut gpus, &g, &cfg)
            });
            for r in &results {
                assert_eq!(r.num_clusters, serial.num_clusters, "p={p}");
                assert!(same_partition(&r.labels, &serial.labels), "p={p}");
                assert!(r.converged);
                // The trace exposes the shrink trajectory: active never
                // grows, active + frozen always covers the graph.
                let n = g.ncols() as u64;
                let mut prev = n;
                for it in &r.trace {
                    assert!(it.active_cols <= prev);
                    assert_eq!(it.active_cols + it.frozen_cols, n);
                    prev = it.active_cols;
                }
                assert_eq!(r.active_cols + r.frozen_cols, g.ncols());
            }
        }
    }

    #[test]
    fn shrink_with_zero_epsilon_is_bit_identical_to_off() {
        let run = |policy: hipmcl_summa::ActiveSetPolicy| {
            let results = Universe::run(4, MachineModel::summit(), move |comm| {
                let grid = ProcGrid::new(comm);
                let mut gpus = MultiGpu::summit_node(grid.world.model());
                let g = planted(3, 7, 12, 13);
                let mut cfg = MclConfig::testing(12);
                cfg.active_set = policy;
                cluster_distributed(&grid, &mut gpus, &g, &cfg)
            });
            results.into_iter().next().unwrap()
        };
        let off = run(hipmcl_summa::ActiveSetPolicy::Off);
        let zero = run(hipmcl_summa::ActiveSetPolicy::Shrink {
            epsilon: 0.0,
            min_shrink_frac: 0.0,
            reshard_every: 1,
        });
        assert_eq!(off.labels, zero.labels);
        assert_eq!(off.iterations, zero.iterations);
        assert_eq!(zero.frozen_cols, 0);
    }

    #[test]
    fn iter_trace_wire_round_trip_and_old_bytes_rejected() {
        let it = IterTrace {
            flops: 123,
            nnz_expanded: 99,
            nnz_pruned: 70,
            cf: 1.76,
            chaos: 0.25,
            active_cols: 40,
            frozen_cols: 8,
            reshard_time: 0.125,
            expansion_time: 1.5,
            merge_time: 0.5,
        };
        let bytes = it.encoded();
        let back = IterTrace::decode_all(&bytes).unwrap();
        assert_eq!(back.encoded(), bytes);
        assert_eq!(back.active_cols, 40);
        assert_eq!(back.frozen_cols, 8);
        assert_eq!(back.reshard_time.to_bits(), 0.125f64.to_bits());
        // Pre-active-set bytes (flops..chaos only) no longer decode: the
        // reader runs out before the new fields and must error, not
        // fabricate defaults.
        let mut old = Vec::new();
        it.flops.encode(&mut old);
        it.nnz_expanded.encode(&mut old);
        it.nnz_pruned.encode(&mut old);
        it.cf.encode(&mut old);
        it.chaos.encode(&mut old);
        assert!(IterTrace::decode_all(&old).is_err());
    }

    #[test]
    fn report_wire_round_trip_and_old_bytes_rejected() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let g = planted(2, 6, 5, 19);
            cluster_distributed(&grid, &mut gpus, &g, &MclConfig::testing(12))
        });
        let r = &results[0];
        let bytes = r.encoded();
        let back = DistMclReport::decode_all(&bytes).unwrap();
        assert_eq!(back.encoded(), bytes);
        assert_eq!(back.active_cols, r.active_cols);
        assert_eq!(back.frozen_cols, r.frozen_cols);
        // A buffer without the trailing active-set fields (the pre-shrink
        // report layout) is rejected as truncated.
        let old = &bytes[..bytes.len() - 3 * 8];
        assert!(DistMclReport::decode_all(old).is_err());
    }

    #[test]
    fn chaos_zero_on_converged_matrix() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let idm = DistMatrix::from_global(&grid, &Csc::<f64>::identity(8).to_triples());
            let mut local = idm.local.clone();
            dist_inflate_and_chaos(&grid, &mut local, 2.0)
        });
        assert!(results.iter().all(|&c| c == 0.0));
    }
}
