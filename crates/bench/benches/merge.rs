//! Criterion microbenchmark: multiway vs binary merging of SUMMA
//! intermediate products (§IV), plus the five per-merge kernels
//! (heap, pairwise, hash, BRMerge, SpAdd) on one k-way merge.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use hipmcl_comm::{MachineModel, MergeKernel};
use hipmcl_sparse::Csc;
use hipmcl_spgemm::testutil::random_csc;
use hipmcl_summa::merge::{kway_merge, merge_algo, MergeKernelPolicy, StackMerger};

const SHAPE: (usize, usize) = (2000, 2000);

fn slabs(k: usize) -> Vec<Csc<f64>> {
    (0..k)
        .map(|i| random_csc(SHAPE.0, SHAPE.1, 40_000, i as u64))
        .collect()
}

fn merging(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge");
    group.sample_size(10);
    for k in [4usize, 8, 16] {
        let mats = slabs(k);
        group.bench_with_input(BenchmarkId::new("multiway", k), &mats, |b, mats| {
            b.iter(|| kway_merge(mats, SHAPE))
        });
        // The merger consumes its inputs; clone them in setup so the
        // measurement covers merging only (comparable to multiway).
        // "binary-legacy" pins the pre-arena behavior (pairwise merges
        // that rematerialize a CSC block each time, fresh merger per
        // iteration); "binary-arena" is today's Auto — BRMerge k-cursor
        // merges into recycled arena slack, with the merger (and so its arena)
        // persisting across iterations like the pipeline's per-lane
        // pool does across phases.
        group.bench_with_input(BenchmarkId::new("binary-legacy", k), &mats, |b, mats| {
            b.iter_batched(
                || mats.to_vec(),
                |mats| {
                    let mut bm = StackMerger::new(
                        MachineModel::summit(),
                        MergeKernelPolicy::Fixed(MergeKernel::Pairwise),
                        SHAPE,
                    );
                    for m in mats {
                        bm.push(m);
                    }
                    bm.finish()
                },
                BatchSize::LargeInput,
            )
        });
        let mut bm = StackMerger::new(MachineModel::summit(), MergeKernelPolicy::Auto, SHAPE);
        group.bench_with_input(BenchmarkId::new("binary-arena", k), &mats, |b, mats| {
            b.iter_batched(
                || mats.to_vec(),
                |mats| {
                    for m in mats {
                        bm.push(m);
                    }
                    bm.finish()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_kernel");
    group.sample_size(10);
    let mats = slabs(8);
    for kernel in MergeKernel::all() {
        group.bench_with_input(BenchmarkId::new(kernel.name(), 8), &mats, |b, mats| {
            b.iter(|| merge_algo(kernel).merge(mats, SHAPE))
        });
    }
    group.finish();
}

criterion_group!(benches, merging, kernels);
criterion_main!(benches);
