//! Criterion microbenchmark: multiway vs binary merging of SUMMA
//! intermediate products (§IV).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use hipmcl_comm::MachineModel;
use hipmcl_sparse::Csc;
use hipmcl_spgemm::testutil::random_csc;
use hipmcl_summa::merge::{kway_merge, BinaryMerger};

fn slabs(k: usize) -> Vec<Csc<f64>> {
    (0..k)
        .map(|i| random_csc(2000, 2000, 40_000, i as u64))
        .collect()
}

fn merging(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge");
    group.sample_size(10);
    for k in [4usize, 8, 16] {
        let mats = slabs(k);
        group.bench_with_input(BenchmarkId::new("multiway", k), &mats, |b, mats| {
            b.iter(|| kway_merge(mats))
        });
        group.bench_with_input(BenchmarkId::new("binary", k), &mats, |b, mats| {
            // The merger consumes its inputs; clone them in setup so the
            // measurement covers merging only (comparable to multiway).
            b.iter_batched(
                || mats.to_vec(),
                |mats| {
                    let mut bm = BinaryMerger::new(MachineModel::summit());
                    let mut now = 0.0;
                    for m in mats {
                        now = bm.push(m, 0.0, now);
                    }
                    bm.finish(now).0
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, merging);
criterion_main!(benches);
