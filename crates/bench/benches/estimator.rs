//! Criterion microbenchmark: Cohen probabilistic nnz estimation vs exact
//! symbolic SpGEMM (§V) — the wall-clock counterpart of Fig. 6's bottom
//! row.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hipmcl_spgemm::testutil::random_csc;
use hipmcl_spgemm::CohenEstimator;

fn estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator");
    group.sample_size(10);
    for (label, n, nnz) in [("low_cf", 3000usize, 12_000usize), ("high_cf", 800, 64_000)] {
        let a = random_csc(n, n, nnz, 9);
        group.bench_with_input(BenchmarkId::new("exact-symbolic", label), &a, |b, a| {
            b.iter(|| hipmcl_spgemm::symbolic::output_nnz(a, a))
        });
        for r in [3usize, 10] {
            group.bench_with_input(
                BenchmarkId::new(format!("cohen-r{r}"), label),
                &a,
                |b, a| {
                    let est = CohenEstimator::new(r, 7);
                    b.iter(|| est.estimate_total(a, a))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, estimation);
criterion_main!(benches);
