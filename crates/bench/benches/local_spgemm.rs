//! Criterion microbenchmark: the CPU SpGEMM accumulators (heap / hash /
//! SPA) and the GPU-library kernel analogues across density regimes —
//! the measured counterpart of the §VI selection recipe.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hipmcl_comm::GpuLib;
use hipmcl_spgemm::testutil::random_csc;

fn local_spgemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_spgemm");
    group.sample_size(10);
    // (label, n, nnz): sparse -> low cf, dense -> high cf.
    let cases = [
        ("sparse_cf~1", 2000usize, 8_000usize),
        ("medium_cf", 1000, 30_000),
        ("dense_cf", 600, 60_000),
    ];
    for (label, n, nnz) in cases {
        let a = random_csc(n, n, nnz, 42);
        group.bench_with_input(BenchmarkId::new("cpu-heap", label), &a, |b, a| {
            b.iter(|| hipmcl_spgemm::heap::multiply(a, a))
        });
        group.bench_with_input(BenchmarkId::new("cpu-hash", label), &a, |b, a| {
            b.iter(|| hipmcl_spgemm::hash::multiply(a, a))
        });
        group.bench_with_input(BenchmarkId::new("cpu-spa", label), &a, |b, a| {
            b.iter(|| hipmcl_spgemm::spa::multiply(a, a))
        });
        for lib in GpuLib::all() {
            group.bench_with_input(BenchmarkId::new(lib.name(), label), &a, |b, a| {
                b.iter(|| hipmcl_gpu::libs::multiply_csc(a, a, lib))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, local_spgemm);
criterion_main!(benches);
