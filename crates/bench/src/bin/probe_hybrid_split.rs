//! **Hybrid split ablation** — sweeps the hybrid executor's
//! [`SplitPolicy`] over a multi-iteration MCL run and reports idle times
//! and the realized per-stage GPU shares. The stage mix is heterogeneous
//! (density and `cf` shift every iteration as expansion and pruning
//! fight), so a static fraction leaves one side idle: the model-derived
//! and adaptive policies should cut total hybrid idle (CPU + GPU off the
//! unified timelines) versus the legacy fixed 0.85.

use hipmcl_bench::*;
use hipmcl_summa::executor::{SplitPolicy, DEFAULT_GPU_FRACTION};
use hipmcl_workloads::Dataset;

fn ranks() -> usize {
    std::env::var("HIPMCL_MAX_RANKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

fn frac_stats(fracs: &[f64]) -> (f64, f64, f64) {
    if fracs.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
    let min = fracs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = fracs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (mean, min, max)
}

fn main() {
    println!("Hybrid split ablation: idle time and realized GPU shares per policy\n");
    let policies: [(&str, SplitPolicy); 5] = [
        ("fixed-0.50", SplitPolicy::Fixed(0.5)),
        ("fixed-0.85", SplitPolicy::Fixed(DEFAULT_GPU_FRACTION)),
        ("fixed-1.00", SplitPolicy::Fixed(1.0)),
        ("model", SplitPolicy::ModelDerived),
        ("adaptive", SplitPolicy::Adaptive),
    ];
    let p = ranks();
    let iters = 6;

    let headers = [
        "network",
        "policy",
        "CPU idle",
        "GPU idle",
        "total idle",
        "total",
        "stages",
        "f mean",
        "f min",
        "f max",
    ];
    let mut rows = Vec::new();
    for d in [Dataset::Archaea, Dataset::Isom100_3] {
        for (label, split) in policies {
            eprintln!("running {} with {} on {} nodes ...", d.name(), label, p);
            let r = run_hybrid_split_probe(p, d, split, iters);
            let (mean, min, max) = frac_stats(&r.fractions);
            rows.push(vec![
                d.name().to_string(),
                label.to_string(),
                fmt_time(r.cpu_idle),
                fmt_time(r.gpu_idle),
                fmt_time(r.total_idle()),
                fmt_time(r.total_time),
                r.fractions.len().to_string(),
                format!("{mean:.3}"),
                format!("{min:.3}"),
                format!("{max:.3}"),
            ]);
        }
    }

    print_table(&headers, &rows);
    let csv = write_csv("probe_hybrid_split", &headers, &rows);
    println!("\ncsv: {}", csv.display());
    print_paper_note(&[
        "No direct paper table: this probes the split policies behind",
        "ExecutorKind::Hybrid (ROADMAP's CPU+GPU item). Expected shape:",
        "fixed-0.85 overloads the GPUs on low-cf stages (pool idles) and",
        "starves them elsewhere; model/adaptive track each stage's cf, so",
        "total idle (CPU + GPU) stays at or below every fixed split, with",
        "adaptive's f drifting stage to stage as expansion densifies.",
    ]);
}
