//! **Table IV** — end-to-end runtimes of original vs optimized HipMCL on
//! the large networks. Paper (Summit): isom100-1 3.34 h → 16.2 min on
//! 100 nodes (12.4×); isom100 22.6 min @ 529 / 14.1 min @ 1024 nodes;
//! metaclust50 1.04 h @ 729 nodes.
//!
//! Node counts follow the paper where the host allows; the environment
//! variable `HIPMCL_MAX_RANKS` (default 256) caps the simulated rank
//! count — capped entries are run at the largest square ≤ the cap and
//! labelled accordingly.

use hipmcl_bench::*;
use hipmcl_core::MclConfig;
use hipmcl_workloads::Dataset;

fn max_ranks() -> usize {
    std::env::var("HIPMCL_MAX_RANKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

/// Largest perfect square ≤ min(want, cap).
fn clamp_square(want: usize) -> usize {
    let cap = want.min(max_ranks());
    let side = (cap as f64).sqrt() as usize;
    (side * side).max(1)
}

fn main() {
    let budget = 4u64 << 30;

    println!("Table IV: end-to-end modeled runtimes, original vs optimized HipMCL\n");
    let headers = ["network", "nodes", "original", "optimized", "speedup"];
    let mut rows = Vec::new();

    let runs: [(Dataset, usize, bool); 4] = [
        (Dataset::Isom100_1, 100, true), // paper compares both on 100 nodes
        (Dataset::Isom100, 529, false),
        (Dataset::Isom100, 1024, false),
        (Dataset::Metaclust50, 729, false),
    ];

    for (d, want_nodes, run_original) in runs {
        let nodes = clamp_square(want_nodes);
        let label = if nodes == want_nodes {
            nodes.to_string()
        } else {
            format!("{nodes} (paper: {want_nodes})")
        };
        eprintln!("running {} on {} nodes ...", d.name(), nodes);
        let orig = bench_mcl_config_for(d, MclConfig::original_hipmcl(budget));
        let opt = bench_mcl_config_for(d, MclConfig::optimized(budget));
        let t_opt = run_scattered(nodes, d, &opt).total_time;
        let (t_orig_s, speedup) = if run_original {
            let t_orig = run_scattered(nodes, d, &orig).total_time;
            (fmt_time(t_orig), format!("{:.1}x", t_orig / t_opt))
        } else {
            // The paper did not run original HipMCL on these either ("an
            // extraordinary amount of compute hours").
            ("-".to_string(), "-".to_string())
        };
        rows.push(vec![
            d.name().to_string(),
            label,
            t_orig_s,
            fmt_time(t_opt),
            speedup,
        ]);
    }

    print_table(&headers, &rows);
    let csv = write_csv("table4_large_runs", &headers, &rows);
    println!("\ncsv: {}", csv.display());
    print_paper_note(&[
        "Table IV: isom100-1 100 nodes: 3.34h original vs 16.2m optimized",
        "(12.4x). isom100: 22.6m @529, 14.1m @1024 nodes. metaclust50:",
        "1.04h @729 nodes. Expected shape: order-of-magnitude speedup on",
        "isom100-1; the denser isom100 family benefits more than the",
        "sparser metaclust50 (higher cf -> better GPU utilization).",
    ]);
}
