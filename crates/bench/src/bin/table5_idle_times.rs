//! **Table V** — CPU and GPU idle times in the Pipelined Sparse SUMMA as
//! the node count grows. Paper: CPU idle > GPU idle (the CPU waits while
//! the GPU multiplies) and both shrink with node count; the gap is wider
//! on the denser isom100-1 than on metaclust50.

use hipmcl_bench::*;
use hipmcl_core::MclConfig;
use hipmcl_workloads::Dataset;

fn max_ranks() -> usize {
    std::env::var("HIPMCL_MAX_RANKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(400)
}

fn main() {
    println!("Table V: mean per-rank CPU and GPU idle time in Pipelined SUMMA\n");
    let sweeps: [(Dataset, &[usize]); 2] = [
        (Dataset::Isom100_1, &[100, 144, 196, 289, 400]),
        (Dataset::Metaclust50, &[256, 361, 529, 729]),
    ];

    let headers = ["network", "nodes", "CPU idle", "GPU idle", "CPU/GPU"];
    let mut rows = Vec::new();
    for (d, nodes_list) in sweeps {
        let cfg = bench_mcl_config_for(d, MclConfig::optimized(4 << 30));
        for &p in nodes_list.iter().filter(|&&n| n <= max_ranks()) {
            eprintln!("running {} on {} nodes ...", d.name(), p);
            let r = run_scattered(p, d, &cfg);
            rows.push(vec![
                d.name().to_string(),
                p.to_string(),
                fmt_time(r.cpu_idle),
                fmt_time(r.gpu_idle),
                format!("{:.1}", r.cpu_idle / r.gpu_idle.max(1e-12)),
            ]);
        }
    }

    print_table(&headers, &rows);
    let csv = write_csv("table5_idle_times", &headers, &rows);
    println!("\ncsv: {}", csv.display());
    print_paper_note(&[
        "Table V: isom100-1 100 nodes: CPU 178s / GPU 26.5s idle, falling",
        "to 50.8s / 23.3s at 400; metaclust50 256 nodes: 18.1m / 18.8m,",
        "falling to 10.3m / 6.6m at 729. Expected shape: CPU idle above",
        "GPU idle on the denser isom100-1 (compute-bound kernels keep the",
        "host waiting), both decreasing with node count.",
    ]);
}
