//! **Table III + §VII-C** — binary merge vs multiway merge: peak memory
//! (largest single-merge element count) per MCL iteration, and total
//! merge runtime. Paper: binary merge is only 3–4 % slower in merge work
//! but needs 15–25 % less peak memory, and (unlike multiway) its runtime
//! hides behind the GPU.

use hipmcl_bench::*;
use hipmcl_core::MclConfig;
use hipmcl_summa::merge::MergeStrategy;
use hipmcl_workloads::Dataset;

fn main() {
    let nodes = 16;

    println!(
        "Table III: peak single-merge elements per MCL iteration ({} nodes)\n",
        nodes
    );

    let headers = ["network", "iter", "mway", "binary", "impr."];
    let mut rows = Vec::new();
    let mut runtime_rows = Vec::new();

    for d in Dataset::medium() {
        eprintln!("running {} ...", d.name());
        let base = bench_mcl_config_for(d, MclConfig::optimized(4 << 30));
        let mut multiway = base;
        multiway.summa.merge = MergeStrategy::Multiway;
        multiway.summa.pipelined = false; // multiway cannot overlap (§IV)
        let binary = base; // optimized preset = binary + pipelined
        let rm = run_scattered(nodes, d, &multiway);
        let rb = run_scattered(nodes, d, &binary);
        let iters = rm.merge_peaks.len().min(rb.merge_peaks.len()).min(10);
        for i in 0..iters {
            let m = rm.merge_peaks[i];
            let b = rb.merge_peaks[i];
            let impr = if m == 0 {
                0.0
            } else {
                100.0 * (m as f64 - b as f64) / m as f64
            };
            rows.push(vec![
                d.name().to_string(),
                (i + 1).to_string(),
                m.to_string(),
                b.to_string(),
                format!("{impr:.0}%"),
            ]);
        }

        // §VII-C: total merge runtime comparison.
        let tm = rm.stage_times.iter().find(|(n, _)| n == "merge").unwrap().1;
        let tb = rb.stage_times.iter().find(|(n, _)| n == "merge").unwrap().1;
        runtime_rows.push(vec![
            d.name().to_string(),
            format!("{tm:.4}"),
            format!("{tb:.4}"),
            format!("{:+.0}%", 100.0 * (tb - tm) / tm.max(1e-12)),
        ]);
    }

    print_table(&headers, &rows);
    write_csv("table3_merge_memory", &headers, &rows);

    println!("\n§VII-C: total merge runtime (modeled seconds):");
    let rt_headers = ["network", "multiway", "binary", "binary slower by"];
    print_table(&rt_headers, &runtime_rows);
    write_csv("table3_merge_runtime", &rt_headers, &runtime_rows);

    print_paper_note(&[
        "Table III: binary merge peak memory 15-25% below multiway, all",
        "networks, first 10 iterations (the improvement shrinks in late,",
        "nearly-converged iterations).",
        "§VII-C: binary merge total runtime only 3-4% above multiway — the",
        "lg lg k factor — and that cost is hidden by the overlap anyway.",
    ]);
}
