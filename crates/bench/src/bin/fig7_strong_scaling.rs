//! **Figure 7** — strong scaling of the optimized HipMCL: overall time
//! vs node count for isom100-1 (100→400 nodes) and metaclust50 (256→724
//! nodes), with the ideal-scaling line. Paper efficiencies: 49 %
//! (isom100-1) and 57 % (metaclust50).
//!
//! `HIPMCL_MAX_RANKS` (default 400) caps the simulated rank count.

use hipmcl_bench::*;
use hipmcl_core::MclConfig;
use hipmcl_workloads::Dataset;

fn max_ranks() -> usize {
    std::env::var("HIPMCL_MAX_RANKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(400)
}

fn main() {
    println!("Fig. 7: strong scaling of optimized HipMCL (modeled seconds)\n");
    let sweeps: [(Dataset, &[usize]); 2] = [
        (Dataset::Isom100_1, &[100, 144, 196, 289, 400]),
        (Dataset::Metaclust50, &[256, 361, 529, 729]),
    ];

    for (d, nodes_list) in sweeps {
        let nodes: Vec<usize> = nodes_list
            .iter()
            .copied()
            .filter(|&n| n <= max_ranks())
            .collect();
        if nodes.len() < 2 {
            println!("({}: skipped — raise HIPMCL_MAX_RANKS)\n", d.name());
            continue;
        }
        let cfg = bench_mcl_config_for(d, MclConfig::optimized(4 << 30));
        println!("{} (scaled 1/{}):", d.name(), bench_reduction(d));
        let headers = ["nodes", "time", "ideal", "speedup", "efficiency"];
        let mut rows = Vec::new();
        let mut base: Option<(usize, f64)> = None;
        for &p in &nodes {
            eprintln!("running {} on {} nodes ...", d.name(), p);
            let t = run_scattered(p, d, &cfg).total_time;
            let (p0, t0) = *base.get_or_insert((p, t));
            let ideal = t0 * p0 as f64 / p as f64;
            let speedup = t0 / t;
            rows.push(vec![
                p.to_string(),
                format!("{t:.4}"),
                format!("{ideal:.4}"),
                format!("{speedup:.2}"),
                format!("{:.0}%", 100.0 * speedup / (p as f64 / p0 as f64)),
            ]);
        }
        print_table(&headers, &rows);
        write_csv(&format!("fig7_{}", d.name()), &headers, &rows);
        println!();
    }

    print_paper_note(&[
        "Fig. 7: efficiency 49% for isom100-1 (100->400 nodes) and 57% for",
        "metaclust50 (256->724). Expected shape: sublinear but substantial",
        "scaling; the gap to ideal comes from broadcast latency, the final",
        "merge, and memory estimation (Fig. 8 decomposes it).",
    ]);
}
