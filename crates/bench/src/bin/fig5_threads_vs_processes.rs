//! **Figure 5** — managing a node's resources with threads vs processes
//! (§III-A / §VII-B): 16 nodes driven as 16 ranks × (40 threads, 4 GPUs)
//! versus 64 ranks × (10 threads, 1 GPU), per-stage times on eukarya and
//! isom100-3. Paper: thread-based wins every stage except pruning
//! (13–50 % faster), pruning is ~24 % faster process-based.

use hipmcl_bench::*;
use hipmcl_comm::{MachineModel, Universe};
use hipmcl_core::dist::STAGES;
use hipmcl_core::MclConfig;
use hipmcl_workloads::Dataset;

fn run(d: Dataset, ranks: usize, model: MachineModel, cfg: &MclConfig) -> Vec<(String, f64)> {
    let cfg = *cfg;
    let reports = Universe::run(ranks, model, move |comm| run_scattered_on(comm, d, &cfg));
    reports[0].stage_times.clone()
}

fn main() {
    // The paper uses 4 GPUs per node in both settings (perfect-square rank
    // counts force it): thread-based = 16 ranks of a 4-GPU/40-thread node,
    // process-based = 64 ranks of a 1-GPU/10-thread quarter node.
    let mut thread_model = MachineModel::summit_bench();
    thread_model.gpus = 4;
    thread_model.gpu_node_rate *= 4.0 / 6.0;
    let mut process_model = MachineModel::summit_ranks_per_node(4);
    process_model.alpha = thread_model.alpha;
    process_model.link_alpha = thread_model.link_alpha;
    process_model.gpus = 1;
    process_model.gpu_node_rate = thread_model.gpu_node_rate / 4.0;

    for d in [Dataset::Eukarya, Dataset::Isom100_3] {
        eprintln!("running {} ...", d.name());
        let cfg = bench_mcl_config_for(d, MclConfig::optimized(4 << 30));
        let t = run(d, 16, thread_model.clone(), &cfg);
        let p = run(d, 64, process_model.clone(), &cfg);
        println!("\nFig. 5 — {} (16 nodes, modeled seconds):", d.name());
        let headers = ["stage", "process-based", "thread-based", "thread wins by"];
        let mut rows = Vec::new();
        for s in STAGES {
            let tt = t.iter().find(|(n, _)| n == s).map_or(0.0, |(_, x)| *x);
            let pt = p.iter().find(|(n, _)| n == s).map_or(0.0, |(_, x)| *x);
            if tt == 0.0 && pt == 0.0 {
                continue;
            }
            rows.push(vec![
                s.to_string(),
                format!("{pt:.3}"),
                format!("{tt:.3}"),
                format!("{:+.0}%", 100.0 * (pt - tt) / pt.max(1e-12)),
            ]);
        }
        print_table(&headers, &rows);
        write_csv(&format!("fig5_{}", d.name()), &headers, &rows);
    }

    print_paper_note(&[
        "Fig. 5 (isom100-3): thread-based faster by 13% (SpGEMM), 23%",
        "(estimation), 19% (bcast), 50% (merge); process-based faster by",
        "24% in pruning. Expected shape: thread-based wins the comm-heavy",
        "stages (fewer ranks -> shallower trees, bigger messages), while",
        "pruning — pure local compute — favours the lower thread-overhead",
        "process setting.",
    ]);
}
