//! **Comm-policy ablation** — sweeps the per-stage communication policy
//! over multi-iteration MCL runs on the two reference networks, reporting
//! the modeled panel-communication cost and how many stage panels crossed
//! from the binomial-tree broadcast to flat point-to-point sends.
//!
//! The point of the sweep: the tree broadcast pays `⌈lg p⌉` latency terms
//! per panel, which dominates for the small panels SUMMA moves on sparse
//! inputs; `CommPolicy::Hybrid` prices both modes per panel with the
//! machine model (after tree-broadcasting an 8-byte size header so every
//! rank agrees) and takes the argmin, so the modeled comm sum can only
//! tie or beat the all-broadcast baseline. Payloads never change, so the
//! clustering is identical under both policies.

use hipmcl_bench::*;
use hipmcl_summa::spgemm::CommPolicy;
use hipmcl_workloads::Dataset;

fn ranks() -> usize {
    // 9 ranks (a 3×3 grid) by default: the smallest grid on which the
    // two modes' modeled costs differ (on 2×2 subcommunicators one tree
    // round and one flat copy cost the same).
    std::env::var("HIPMCL_MAX_RANKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(9)
}

fn main() {
    println!("Comm-policy ablation: modeled panel comm per workload x policy\n");
    let p = ranks();
    let iters = 3;

    let headers = [
        "network",
        "policy",
        "panels",
        "flat",
        "modeled comm",
        "all-bcast",
        "saved",
        "total",
    ];
    let mut rows = Vec::new();
    for d in [Dataset::Archaea, Dataset::Isom100_3] {
        for policy in [CommPolicy::Broadcast, CommPolicy::Hybrid] {
            eprintln!(
                "running {} with comm={} on {} ranks ...",
                d.name(),
                policy.name(),
                p
            );
            let r = run_comm_policy_probe(p, d, policy, iters);
            let saved = r.modeled_comm_broadcast - r.modeled_comm;
            rows.push(vec![
                d.name().to_string(),
                policy.name().to_string(),
                r.total_panels.to_string(),
                r.gather_panels.to_string(),
                fmt_time(r.modeled_comm),
                fmt_time(r.modeled_comm_broadcast),
                format!(
                    "{:.1}%",
                    100.0 * saved / r.modeled_comm_broadcast.max(1e-30)
                ),
                fmt_time(r.total_time),
            ]);
        }
    }
    print_table(&headers, &rows);
    let csv = write_csv("probe_comm_policy", &headers, &rows);
    println!("\nwrote {}", csv.display());
    print_paper_note(&[
        "the paper's SUMMA uses CombBLAS tree broadcasts throughout (§III);",
        "the hybrid policy is this reproduction's per-stage refinement: panels",
        "below the flat/tree crossover (b* = α/β at p=4) go point-to-point,",
        "so modeled comm time can only tie or beat the all-broadcast baseline.",
    ]);
}
