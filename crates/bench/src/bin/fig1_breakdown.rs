//! **Figure 1** — per-stage running time of HipMCL vs the optimized
//! HipMCL (with and without overlap) on an isom100-1-like network at the
//! 100-node Summit model. The paper's stacked-bar chart becomes a table
//! of the same stacks, plus the headline speedup (paper: 12.4×).

use hipmcl_bench::*;
use hipmcl_core::dist::STAGES;
use hipmcl_core::MclConfig;
use hipmcl_workloads::Dataset;

fn main() {
    let nodes = 100; // 10x10 grid, like the paper's isom100-1 run
    let dataset = Dataset::Isom100_1;
    let budget = 4u64 << 30;

    println!(
        "Fig. 1: stage breakdown on {} (scaled 1/{}), {} simulated Summit nodes\n",
        dataset.name(),
        bench_reduction(dataset),
        nodes
    );

    let configs: [(&str, MclConfig); 3] = [
        (
            "HipMCL",
            bench_mcl_config_for(dataset, MclConfig::original_hipmcl(budget)),
        ),
        (
            "Optimized",
            bench_mcl_config_for(dataset, MclConfig::optimized_no_overlap(budget)),
        ),
        (
            "Optimized+overlap",
            bench_mcl_config_for(dataset, MclConfig::optimized(budget)),
        ),
    ];

    let mut rows = Vec::new();
    let mut totals = Vec::new();
    let mut reports = Vec::new();
    for (name, cfg) in &configs {
        eprintln!("running {name} ...");
        let r = run_scattered(nodes, dataset, cfg);
        totals.push(r.total_time);
        let mut row = vec![name.to_string()];
        for s in STAGES {
            let t = r
                .stage_times
                .iter()
                .find(|(n, _)| n == s)
                .map_or(0.0, |(_, t)| *t);
            row.push(format!("{:.3}", t));
        }
        row.push(format!("{:.3}", r.total_time));
        rows.push(row);
        reports.push(r);
    }

    let headers: Vec<&str> = std::iter::once("configuration")
        .chain(STAGES)
        .chain(std::iter::once("overall"))
        .collect();
    print_table(&headers, &rows);

    let speedup = totals[0] / totals[2];
    println!("\nspeedup (HipMCL -> Optimized+overlap): {:.1}x", speedup);
    println!(
        "iterations: {} / {} / {} (identical clustering: {})",
        reports[0].iterations,
        reports[1].iterations,
        reports[2].iterations,
        reports[0].num_clusters == reports[2].num_clusters
    );

    let csv = write_csv("fig1_breakdown", &headers, &rows);
    println!("csv: {}", csv.display());
    print_paper_note(&[
        "Fig. 1: original HipMCL ~199 min dominated by local SpGEMM + memory",
        "estimation (~90% combined); optimized with overlap 12.4x faster.",
        "Expected shape here: same two stages dominate the first bar; the",
        "optimized bars cut SpGEMM (GPU) and estimation (probabilistic), and",
        "overlap further hides bcast+merge.",
    ]);
}
