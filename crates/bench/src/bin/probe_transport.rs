//! **Transport ablation** — runs the identical Archaea MCL workload over
//! every (transport × time model) arm and proves the tentpole claim of
//! the transport/time split: *what* the pipeline computes is a property
//! of the algorithm, not of how frames move or how time is charged.
//!
//! Checks, per rank count (4 and 9, capped by `HIPMCL_MAX_RANKS`):
//!
//! * cluster labels are **bit-identical** across `InProcess`,
//!   `ProcessShm` (the feature-gated OS-process/shared-memory-ring
//!   backend) and `Tcp` (the always-built socket backend on localhost),
//!   and across `Modeled`/`Measured` time;
//! * the modeled total time and iteration count are exactly equal on
//!   every arm (the modeled clock stays authoritative under `Measured`);
//! * under `Measured`, the report carries a non-trivial wall-clock
//!   stage breakdown next to the modeled one, which is printed as a
//!   modeled-vs-measured table per stage;
//! * before any arm runs, a **kill-one-rank** check: a 2-rank TCP
//!   universe whose rank 0 dies mid-iteration must fail fast with
//!   rank/tag/peer diagnostics ("peer rank died …"), not hang out the
//!   receive deadline.
//!
//! The `ProcessShm` arms exist only when the crate is built with
//! `--features process-shm`; without it the probe runs the in-process
//! and socket arms and says so. Results land in
//! `results/probe_transport.csv`.

use hipmcl_bench::*;
use hipmcl_comm::{MachineModel, TimeModel, TransportKind, Universe, UniverseConfig};
use hipmcl_core::dist::DistMclReport;
use hipmcl_core::MclConfig;
use hipmcl_workloads::Dataset;

fn max_ranks() -> usize {
    std::env::var("HIPMCL_MAX_RANKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX)
        .max(1)
}

fn panic_message(cause: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = cause.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = cause.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Fail-fast check: kill rank 0 of a 2-rank TCP universe and require the
/// survivor to die with rank/tag/peer diagnostics instead of hanging out
/// the receive deadline.
///
/// This runs *first* so the check owns launch ordinal 0 in every process
/// of the tree. Children spawned for later socket/shm arms re-enter
/// `main` and replay this ordinal in-process, where the closure
/// early-returns (the replay transport is `InProcess`, not `Tcp`). The
/// kill check's own surviving rank catches the "peer rank died" panic,
/// verifies the diagnostics, and exits cleanly, so the parent's failure
/// report names exactly the rank that was killed.
fn kill_one_rank_check() {
    use std::time::{Duration, Instant};

    if max_ranks() < 2 {
        println!("note: HIPMCL_MAX_RANKS < 2; kill-one-rank check skipped\n");
        return;
    }
    // The two child processes of the real TCP kill universe see
    // HIPMCL_TCP_UNIVERSE=0; children of later arms see a later ordinal
    // (or the shm env) and take the replay path above.
    let is_kill_child = std::env::var("HIPMCL_TCP_RANK").is_ok()
        && std::env::var("HIPMCL_TCP_UNIVERSE").as_deref() == Ok("0");
    let in_any_child =
        std::env::var("HIPMCL_TCP_RANK").is_ok() || std::env::var("HIPMCL_SHM_RANK").is_ok();
    let t0 = Instant::now();
    let ucfg = UniverseConfig::new(2, MachineModel::summit_bench())
        .with_transport(TransportKind::Tcp)
        .with_time(TimeModel::Modeled);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        Universe::run_with(ucfg, |comm| {
            if comm.transport() != TransportKind::Tcp {
                // In-process replay inside a child spawned for a later
                // arm: nothing to kill, nothing to check.
                return 0u64;
            }
            if comm.rank() == 0 {
                // Die without ceremony, as a crashed remote rank would.
                std::process::exit(3);
            }
            // The survivor blocks on the dead peer; the transport must
            // turn the closed connection into diagnostics, not a hang.
            let _: u64 = comm.recv(0, 99);
            unreachable!("recv from a dead peer returned data");
        });
    }));
    match outcome {
        Err(cause) => {
            // `&*cause`: downcast the payload, not the Box around it.
            let msg = panic_message(&*cause);
            if is_kill_child {
                // We are the surviving rank: our recv just died. Check
                // the diagnostics name the tag (99 = 0x63) and exit 0 so
                // the parent's failure list holds only the killed rank.
                if msg.contains("peer rank died") && msg.contains("tag 0x63") {
                    std::process::exit(0);
                }
                eprintln!("kill check: survivor died without rank/tag/peer diagnostics: {msg}");
                std::process::exit(5);
            }
            // Parent: the universe failed and named the killed rank.
            assert!(
                msg.contains("rank 0 exited") && msg.contains("3"),
                "kill check: expected 'rank 0 exited ... 3' in: {msg}"
            );
            assert!(
                !msg.contains("rank 1 exited"),
                "kill check: the survivor should have exited cleanly, got: {msg}"
            );
            let elapsed = t0.elapsed();
            assert!(
                elapsed < Duration::from_secs(25),
                "kill check: took {elapsed:?}; must fail well before the 30 s recv deadline"
            );
            println!(
                "kill-one-rank check: TCP universe failed fast with diagnostics ({elapsed:.2?})\n"
            );
        }
        Ok(()) => {
            if is_kill_child {
                eprintln!("kill check: child ran to completion instead of dying/exiting");
                std::process::exit(5);
            }
            assert!(in_any_child, "kill check did not detect the dead rank");
            // A later-arm child replayed the ordinal in-process: fine.
        }
    }
}

/// One (transport, time) arm of the ablation. The universe config is the
/// only thing that varies — the rank body is byte-for-byte the same.
fn run_arm(p: usize, transport: TransportKind, time: TimeModel, cfg: &MclConfig) -> DistMclReport {
    let cfg = *cfg;
    let ucfg = UniverseConfig::new(p, MachineModel::summit_bench())
        .with_transport(transport)
        .with_time(time);
    let reports = Universe::run_with(ucfg, move |comm| {
        run_scattered_on(comm, Dataset::Archaea, &cfg)
    });
    reports.into_iter().next().unwrap()
}

fn main() {
    println!("Transport ablation: archaea MCL across (transport x time) arms\n");
    kill_one_rank_check();
    let shm_built = cfg!(feature = "process-shm");
    if !shm_built {
        println!("note: built without --features process-shm; ProcessShm arms skipped\n");
    }
    let mut arms: Vec<(TransportKind, TimeModel)> = vec![
        (TransportKind::InProcess, TimeModel::Modeled),
        (TransportKind::InProcess, TimeModel::Measured),
    ];
    if shm_built {
        arms.push((TransportKind::ProcessShm, TimeModel::Modeled));
        arms.push((TransportKind::ProcessShm, TimeModel::Measured));
    }
    // The socket backend is pure std and always built.
    arms.push((TransportKind::Tcp, TimeModel::Modeled));
    arms.push((TransportKind::Tcp, TimeModel::Measured));

    let headers = [
        "ranks",
        "transport",
        "time",
        "clusters",
        "iters",
        "modeled_total_s",
        "measured_stage_s",
        "labels_match",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();

    for p in [4usize, 9].into_iter().filter(|&p| p <= max_ranks()) {
        let cfg = bench_mcl_config_for(Dataset::Archaea, MclConfig::optimized(4 << 30));
        println!("== {p} ranks");
        let mut baseline: Option<DistMclReport> = None;
        for &(transport, time) in &arms {
            let r = run_arm(p, transport, time, &cfg);
            let measured_total: f64 = r.stage_times_measured.iter().map(|(_, t)| t).sum();
            let labels_match = match &baseline {
                None => {
                    baseline = Some(r.clone());
                    true
                }
                Some(b) => {
                    // The tentpole guarantee: transports and time models
                    // change observability, never results. Labels must be
                    // bit-identical and the modeled clock untouched.
                    assert_eq!(
                        b.labels,
                        r.labels,
                        "{p} ranks: labels diverged on ({}, {})",
                        transport.name(),
                        time.name()
                    );
                    assert_eq!(
                        b.iterations,
                        r.iterations,
                        "{p} ranks: iteration count diverged on ({}, {})",
                        transport.name(),
                        time.name()
                    );
                    assert_eq!(
                        b.total_time.to_bits(),
                        r.total_time.to_bits(),
                        "{p} ranks: modeled total time diverged on ({}, {})",
                        transport.name(),
                        time.name()
                    );
                    true
                }
            };
            println!(
                "   {:<12} {:<9} clusters {:<6} iters {:<3} modeled {:>10} measured {:>10}",
                transport.name(),
                time.name(),
                r.num_clusters,
                r.iterations,
                fmt_time(r.total_time),
                fmt_time(measured_total),
            );
            if time.is_measured() {
                println!("      {:<16} {:>12} {:>12}", "stage", "modeled", "measured");
                for ((name, modeled), (_, measured)) in
                    r.stage_times.iter().zip(&r.stage_times_measured)
                {
                    println!(
                        "      {:<16} {:>12} {:>12}",
                        name,
                        fmt_time(*modeled),
                        fmt_time(*measured)
                    );
                }
            }
            rows.push(vec![
                p.to_string(),
                transport.name().to_string(),
                time.name().to_string(),
                r.num_clusters.to_string(),
                r.iterations.to_string(),
                format!("{:.6}", r.total_time),
                format!("{measured_total:.6}"),
                labels_match.to_string(),
            ]);
        }
        println!();
    }

    let csv = write_csv("probe_transport", &headers, &rows);
    println!("all arms bit-identical; wrote {}", csv.display());
}
