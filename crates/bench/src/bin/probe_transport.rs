//! **Transport ablation** — runs the identical Archaea MCL workload over
//! every (transport × time model) arm and proves the tentpole claim of
//! the transport/time split: *what* the pipeline computes is a property
//! of the algorithm, not of how frames move or how time is charged.
//!
//! Checks, per rank count (4 and 9, capped by `HIPMCL_MAX_RANKS`):
//!
//! * cluster labels are **bit-identical** across `InProcess` and
//!   `ProcessShm` (the feature-gated OS-process/shared-memory-ring
//!   backend) and across `Modeled`/`Measured` time;
//! * the modeled total time and iteration count are exactly equal on
//!   every arm (the modeled clock stays authoritative under `Measured`);
//! * under `Measured`, the report carries a non-trivial wall-clock
//!   stage breakdown next to the modeled one, which is printed as a
//!   modeled-vs-measured table per stage.
//!
//! The `ProcessShm` arms exist only when the crate is built with
//! `--features process-shm`; without it the probe runs the in-process
//! arms and says so. Results land in `results/probe_transport.csv`.

use hipmcl_bench::*;
use hipmcl_comm::{MachineModel, TimeModel, TransportKind, Universe, UniverseConfig};
use hipmcl_core::dist::DistMclReport;
use hipmcl_core::MclConfig;
use hipmcl_workloads::Dataset;

fn max_ranks() -> usize {
    std::env::var("HIPMCL_MAX_RANKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX)
        .max(1)
}

/// One (transport, time) arm of the ablation. The universe config is the
/// only thing that varies — the rank body is byte-for-byte the same.
fn run_arm(p: usize, transport: TransportKind, time: TimeModel, cfg: &MclConfig) -> DistMclReport {
    let cfg = *cfg;
    let ucfg = UniverseConfig::new(p, MachineModel::summit_bench())
        .with_transport(transport)
        .with_time(time);
    let reports = Universe::run_with(ucfg, move |comm| {
        run_scattered_on(comm, Dataset::Archaea, &cfg)
    });
    reports.into_iter().next().unwrap()
}

fn main() {
    println!("Transport ablation: archaea MCL across (transport x time) arms\n");
    let shm_built = cfg!(feature = "process-shm");
    if !shm_built {
        println!("note: built without --features process-shm; ProcessShm arms skipped\n");
    }
    let mut arms: Vec<(TransportKind, TimeModel)> = vec![
        (TransportKind::InProcess, TimeModel::Modeled),
        (TransportKind::InProcess, TimeModel::Measured),
    ];
    if shm_built {
        arms.push((TransportKind::ProcessShm, TimeModel::Modeled));
        arms.push((TransportKind::ProcessShm, TimeModel::Measured));
    }

    let headers = [
        "ranks",
        "transport",
        "time",
        "clusters",
        "iters",
        "modeled_total_s",
        "measured_stage_s",
        "labels_match",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();

    for p in [4usize, 9].into_iter().filter(|&p| p <= max_ranks()) {
        let cfg = bench_mcl_config_for(Dataset::Archaea, MclConfig::optimized(4 << 30));
        println!("== {p} ranks");
        let mut baseline: Option<DistMclReport> = None;
        for &(transport, time) in &arms {
            let r = run_arm(p, transport, time, &cfg);
            let measured_total: f64 = r.stage_times_measured.iter().map(|(_, t)| t).sum();
            let labels_match = match &baseline {
                None => {
                    baseline = Some(r.clone());
                    true
                }
                Some(b) => {
                    // The tentpole guarantee: transports and time models
                    // change observability, never results. Labels must be
                    // bit-identical and the modeled clock untouched.
                    assert_eq!(
                        b.labels,
                        r.labels,
                        "{p} ranks: labels diverged on ({}, {})",
                        transport.name(),
                        time.name()
                    );
                    assert_eq!(
                        b.iterations,
                        r.iterations,
                        "{p} ranks: iteration count diverged on ({}, {})",
                        transport.name(),
                        time.name()
                    );
                    assert_eq!(
                        b.total_time.to_bits(),
                        r.total_time.to_bits(),
                        "{p} ranks: modeled total time diverged on ({}, {})",
                        transport.name(),
                        time.name()
                    );
                    true
                }
            };
            println!(
                "   {:<12} {:<9} clusters {:<6} iters {:<3} modeled {:>10} measured {:>10}",
                transport.name(),
                time.name(),
                r.num_clusters,
                r.iterations,
                fmt_time(r.total_time),
                fmt_time(measured_total),
            );
            if time.is_measured() {
                println!("      {:<16} {:>12} {:>12}", "stage", "modeled", "measured");
                for ((name, modeled), (_, measured)) in
                    r.stage_times.iter().zip(&r.stage_times_measured)
                {
                    println!(
                        "      {:<16} {:>12} {:>12}",
                        name,
                        fmt_time(*modeled),
                        fmt_time(*measured)
                    );
                }
            }
            rows.push(vec![
                p.to_string(),
                transport.name().to_string(),
                time.name().to_string(),
                r.num_clusters.to_string(),
                r.iterations.to_string(),
                format!("{:.6}", r.total_time),
                format!("{measured_total:.6}"),
                labels_match.to_string(),
            ]);
        }
        println!();
    }

    let csv = write_csv("probe_transport", &headers, &rows);
    println!("all arms bit-identical; wrote {}", csv.display());
}
