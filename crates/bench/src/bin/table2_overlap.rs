//! **Table II** — overlap efficiency of the Pipelined Sparse SUMMA: the
//! individual times of GPU SpGEMM (incl. transfers), broadcasts, and
//! binary merge vs the actual overall time, on three networks at
//! 16/36/64 nodes. Paper: the overall ends up only 15–20 % above the
//! SpGEMM time because the CPU work hides behind the GPU.

use hipmcl_bench::*;
use hipmcl_core::MclConfig;
use hipmcl_workloads::Dataset;

fn main() {
    println!("Table II: overlap efficiency (modeled seconds, full MCL run)\n");
    println!(
        "(components measured in an unoverlapped run, 'overall' in the\n\
         pipelined run — the paper's methodology, §VII-B)\n"
    );
    let headers = [
        "network",
        "nodes",
        "SpGEMM",
        "bcast",
        "merge",
        "overall",
        "over-SpGEMM",
    ];
    let mut rows = Vec::new();

    for d in Dataset::medium() {
        let pipelined = bench_mcl_config_for(d, MclConfig::optimized(4 << 30));
        let mut isolated = pipelined;
        isolated.summa.pipelined = false;
        for nodes in [16usize, 36, 64] {
            eprintln!("running {} on {} nodes ...", d.name(), nodes);
            // Components, unoverlapped (each stage's cost visible).
            let ri = run_scattered(nodes, d, &isolated);
            let get = |r: &hipmcl_core::dist::DistMclReport, s: &str| {
                r.stage_times
                    .iter()
                    .find(|(n, _)| n == s)
                    .map_or(0.0, |(_, t)| *t)
            };
            let spgemm = get(&ri, "local_spgemm");
            let bcast = get(&ri, "summa_bcast");
            let merge = get(&ri, "merge");
            // Overall, with overlap: the wall time of the SUMMA pipeline
            // section itself (Table II isolates exactly these stages).
            let rp = run_scattered(nodes, d, &pipelined);
            let overall = get(&rp, "expansion");
            rows.push(vec![
                d.name().to_string(),
                nodes.to_string(),
                format!("{spgemm:.4}"),
                format!("{bcast:.4}"),
                format!("{merge:.4}"),
                format!("{overall:.4}"),
                format!("{:+.0}%", 100.0 * (overall - spgemm) / spgemm),
            ]);
        }
    }

    print_table(&headers, &rows);
    let csv = write_csv("table2_overlap", &headers, &rows);
    println!("\ncsv: {}", csv.display());
    print_paper_note(&[
        "Table II: e.g. archaea@16: SpGEMM 14.6, bcast 3.4, merge 3.1,",
        "overall 17.2 — overall is 15-20% above SpGEMM alone because bcast",
        "and merge hide behind the GPU except the first bcast / final merge.",
        "Expected shape: overall < SpGEMM + bcast + merge, within ~10-30%",
        "of SpGEMM.",
    ]);
}
