//! **Merge-gap ablation** — measures, in real wall-clock, how much the
//! binary (Algorithm 2) merge schedule costs over one k-way merge of the
//! same SUMMA stage products, before and after the arena accumulators:
//!
//! * *k-way heap* — original HipMCL's cursor heap, the pre-PR baseline.
//! * *k-way spadd* — Hussain-style parallel SpAdd (arXiv:2112.10223)
//!   through a persistent [`hipmcl_summa::merge::MergeArena`]; what
//!   `MergeKernelPolicy::Auto` now picks at fan-in ≥ 6.
//! * *binary legacy* — the Algorithm 2 stack with `Fixed(Pairwise)`,
//!   which is what the old `Auto` table ran at fan-in 2: every two-way
//!   merge allocated and materialized a fresh CSC block.
//! * *binary arena* — the same stack under the new `Auto`:
//!   BRMerge-style single-pass k-cursor merges (arXiv:2206.06611)
//!   appending into recycled arena slack.
//!
//! EXPERIMENTS.md's criterion numbers put the legacy binary schedule at
//! ~1.6× one k-way merge (the paper's CombBLAS version pays only
//! +3–4%); the acceptance bar for this probe is the arena stack landing
//! at ≤ 1.2× on Archaea and Isom100_3. All four configurations merge the
//! *same* stage products and the probe asserts their outputs are
//! bit-identical before timing is reported.

use hipmcl_bench::*;
use hipmcl_workloads::Dataset;

fn fan_ins() -> Vec<usize> {
    let cap: usize = std::env::var("HIPMCL_MAX_RANKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    [4usize, 8]
        .into_iter()
        .filter(|&k| k <= cap.max(4))
        .collect()
}

fn main() {
    println!("Merge-gap ablation: binary stack vs k-way merge, real wall-clock\n");
    let reps = 5;
    let headers = [
        "network",
        "k",
        "in elems",
        "out nnz",
        "kway heap",
        "kway spadd",
        "binary legacy",
        "binary arena",
        "legacy ratio",
        "arena ratio",
    ];
    let mut rows = Vec::new();
    for d in [Dataset::Archaea, Dataset::Isom100_3] {
        for k in fan_ins() {
            eprintln!("running {} at fan-in {k} ({reps} reps) ...", d.name());
            let r = run_merge_gap_probe(d, k, reps);
            rows.push(vec![
                d.name().to_string(),
                r.k.to_string(),
                r.total_in_elems.to_string(),
                r.out_nnz.to_string(),
                fmt_time(r.t_kway_heap),
                fmt_time(r.t_kway_spadd),
                fmt_time(r.t_binary_legacy),
                fmt_time(r.t_binary_arena),
                format!("{:.2}", r.legacy_ratio()),
                format!("{:.2}", r.arena_ratio()),
            ]);
        }
    }

    print_table(&headers, &rows);
    let csv = write_csv("probe_merge_gap", &headers, &rows);
    println!("\ncsv: {}", csv.display());
    print_paper_note(&[
        "§IV measures binary merging slightly slower than multiway in",
        "isolation, worth it because it hides behind the GPU and caps",
        "peak memory. Our legacy stack paid ~1.6x one k-way merge because",
        "each two-way merge rematerialized a CSC block; the BRMerge/SpAdd",
        "arena accumulators are expected to bring the binary stack to",
        "<= 1.2x the k-way baseline (arena ratio column) while staying",
        "bit-identical to every other kernel.",
    ]);
}
