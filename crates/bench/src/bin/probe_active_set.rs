//! **Active-set ablation** — runs the Archaea and Isom100_3 MCL
//! workloads with [`ActiveSetPolicy::Off`] and with convergence-aware
//! shrinking ([`ActiveSetPolicy::shrink`]) and proves the tentpole claim:
//!
//! * cluster labels are **bit-identical** to the full run — freezing a
//!   column only when both its chaos and its feedback row mass are below
//!   `epsilon` never changes the connected components;
//! * the modeled expansion + merge cost of the *late* iterations
//!   collapses: the probe asserts the summed expansion + merge time over
//!   the final third of the iterations is strictly lower with shrinking
//!   on (at every rank count where a shrink engaged);
//! * the per-iteration trace prints the shrink trajectory — active
//!   columns, frozen columns, operand nnz, expansion+merge seconds and
//!   the reshard overhead that bought them.
//!
//! Rank counts 4 and 9, capped by `HIPMCL_MAX_RANKS`. Results land in
//! `results/probe_active_set.csv`.

use hipmcl_bench::*;
use hipmcl_core::dist::DistMclReport;
use hipmcl_summa::ActiveSetPolicy;
use hipmcl_workloads::Dataset;

fn max_ranks() -> usize {
    std::env::var("HIPMCL_MAX_RANKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX)
        .max(1)
}

fn policy_name(p: &ActiveSetPolicy) -> &'static str {
    match p {
        ActiveSetPolicy::Off => "off",
        ActiveSetPolicy::Shrink { .. } => "shrink",
    }
}

fn main() {
    println!("Active-set ablation: freeze settled columns out of the SUMMA operand\n");
    let headers = [
        "dataset",
        "ranks",
        "policy",
        "iter",
        "active_cols",
        "frozen_cols",
        "nnz",
        "expand_merge_s",
        "reshard_s",
        "final_third_s",
        "labels_match",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();

    for d in [Dataset::Archaea, Dataset::Isom100_3] {
        for p in [4usize, 9].into_iter().filter(|&p| p <= max_ranks()) {
            println!("== {} at {p} ranks", d.name());
            let mut baseline: Option<DistMclReport> = None;
            for policy in [ActiveSetPolicy::Off, ActiveSetPolicy::shrink()] {
                let r = run_active_set_probe(p, d, policy);
                let tail = final_third_expand_merge(&r);
                let labels_match = match &baseline {
                    None => {
                        baseline = Some(r.clone());
                        true
                    }
                    Some(b) => {
                        assert_eq!(
                            b.labels,
                            r.labels,
                            "{} at {p} ranks: shrinking changed the clusters",
                            d.name()
                        );
                        true
                    }
                };
                println!(
                    "   {:<7} iters {:<3} clusters {:<5} frozen {:>5}/{:<5} final-third expand+merge {:>10} reshard total {:>10}",
                    policy_name(&policy),
                    r.iterations,
                    r.num_clusters,
                    r.frozen_cols,
                    r.frozen_cols + r.active_cols,
                    fmt_time(tail),
                    fmt_time(r.reshard_time),
                );
                for (i, it) in r.trace.iter().enumerate() {
                    rows.push(vec![
                        d.name().to_string(),
                        p.to_string(),
                        policy_name(&policy).to_string(),
                        (i + 1).to_string(),
                        it.active_cols.to_string(),
                        it.frozen_cols.to_string(),
                        it.nnz_pruned.to_string(),
                        format!("{:.9}", it.expansion_time + it.merge_time),
                        format!("{:.9}", it.reshard_time),
                        format!("{tail:.9}"),
                        labels_match.to_string(),
                    ]);
                }
                if let Some(b) = &baseline {
                    if policy.is_on() && r.frozen_cols > 0 {
                        let full = final_third_expand_merge(b);
                        assert!(
                            tail < full,
                            "{} at {p} ranks: shrinking must beat Off in the final third \
                             ({tail} vs {full})",
                            d.name()
                        );
                        println!(
                            "   late-iteration expansion+merge: {} -> {} ({:.1}% of full)",
                            fmt_time(full),
                            fmt_time(tail),
                            100.0 * tail / full
                        );
                    }
                }
            }
            println!();
        }
    }

    let csv = write_csv("probe_active_set", &headers, &rows);
    print_paper_note(&[
        "the paper reports chaos dropping monotonically while late iterations",
        "still pay full SpGEMM cost (Fig. 2 trend); the active set converts",
        "per-column convergence into operand shrinkage, so the tail collapses",
        "without changing the clusters.",
    ]);
    println!("labels bit-identical on every arm; wrote {}", csv.display());
}
