//! **Figure 6** — probabilistic memory-requirement estimation: relative
//! error (top row) and cumulative runtime vs the exact symbolic scheme
//! (bottom row), per MCL iteration, for r ∈ {3, 5, 7, 10} keys, on the
//! three medium networks. Paper: a handful of keys lands within ~10 % of
//! exact (worse in the early, high-variance iterations), and the
//! probabilistic scheme is much faster while `cf` is large, with exact
//! catching up in the late sparse iterations.

use hipmcl_bench::*;
use hipmcl_comm::{MachineModel, SpgemmKernel};
use hipmcl_core::MclConfig;
use hipmcl_sparse::colops;
use hipmcl_spgemm::estimate::relative_error;
use hipmcl_spgemm::CohenEstimator;
use hipmcl_workloads::Dataset;

fn main() {
    let model = MachineModel::summit();
    let rs = [3usize, 5, 7, 10];

    for d in Dataset::medium() {
        eprintln!("running {} ...", d.name());
        let mut cfg = bench_mcl_config_for(d, MclConfig::optimized(u64::MAX));
        cfg.max_iters = 20;
        let mut a = bench_graph(d, &cfg);

        println!("\nFig. 6 — {} (scaled 1/{}):", d.name(), bench_reduction(d));
        let headers = [
            "iter",
            "exact nnz",
            "err r=3",
            "err r=5",
            "err r=7",
            "err r=10",
            "cf",
        ];
        let mut rows = Vec::new();
        let mut cum_exact = 0.0f64;
        let mut cum_prob = [0.0f64; 4];

        for iter in 1..=cfg.max_iters {
            let flops = hipmcl_spgemm::flops(&a, &a);
            let exact = hipmcl_spgemm::symbolic::output_nnz(&a, &a);
            let cf = flops as f64 / exact.max(1) as f64;
            cum_exact += model.spgemm_time(SpgemmKernel::CpuHash, flops, cf);

            let mut row = vec![iter.to_string(), exact.to_string()];
            for (i, &r) in rs.iter().enumerate() {
                // Average over a few seeds, as the paper averages over the
                // nodes' local estimates.
                let mut err_sum = 0.0;
                const SEEDS: u64 = 4;
                for s in 0..SEEDS {
                    let est = CohenEstimator::new(r, 1000 * s + iter as u64);
                    err_sum += relative_error(est.estimate_total(&a, &a), exact as f64);
                    if s == 0 {
                        cum_prob[i] += model.estimate_time(est.op_count(&a, &a));
                    }
                }
                row.push(format!("{:.1}%", 100.0 * err_sum / SEEDS as f64));
            }
            row.push(format!("{cf:.1}"));
            rows.push(row);

            // Advance the MCL iteration.
            let b = hipmcl_spgemm::hash::multiply(&a, &a);
            let (c, _) = colops::prune(&b, &cfg.prune);
            a = c;
            colops::inflate(&mut a, cfg.inflation);
            if colops::chaos(&a) < cfg.chaos_epsilon {
                break;
            }
        }

        print_table(&headers, &rows);
        write_csv(&format!("fig6_error_{}", d.name()), &headers, &rows);

        println!("\ncumulative runtime (modeled seconds):");
        let rt_headers = ["scheme", "cumulative time"];
        let mut rt_rows = vec![vec!["exact".to_string(), format!("{cum_exact:.4}")]];
        for (i, &r) in rs.iter().enumerate() {
            rt_rows.push(vec![format!("r = {r}"), format!("{:.4}", cum_prob[i])]);
        }
        print_table(&rt_headers, &rt_rows);
        write_csv(&format!("fig6_runtime_{}", d.name()), &rt_headers, &rt_rows);
    }

    print_paper_note(&[
        "Fig. 6 top: relative error within ~10% with a few keys; worst in",
        "early iterations (higher column-degree variance); more keys help.",
        "Fig. 6 bottom: probabilistic is ~5-10x cheaper cumulatively; its",
        "cost is flops-independent (r·(nnzA+nnzB)), so the gap is widest",
        "while cf is large and closes in the sparse late iterations —",
        "hence the paper's hybrid rule (exact when cf is small).",
    ]);
}
