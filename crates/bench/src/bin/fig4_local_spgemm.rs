//! **Figure 4** — total time spent in local SpGEMM across an MCL run for
//! each kernel: `cpu-hash`, `rmerge2`, `bhsparse`, `nsparse`, and the
//! `hybrid` selection, on the three medium networks (archaea, eukarya,
//! isom100-3). Bars become a table of modeled seconds plus speedup over
//! `cpu-hash` (paper: rmerge2 ≈1.1×, bhsparse ≈2.3–2.6×, nsparse
//! ≈2.7–3.3×, hybrid best overall).

use hipmcl_bench::*;
use hipmcl_comm::{GpuLib, MachineModel, SpgemmKernel};
use hipmcl_core::MclConfig;
use hipmcl_sparse::colops;
use hipmcl_sparse::Csc;
use hipmcl_workloads::Dataset;

/// The MCL iterates (the `A` of each expansion) of a serial run.
fn mcl_iterates(graph: &Csc<f64>, cfg: &MclConfig) -> Vec<Csc<f64>> {
    let mut a = graph.clone();
    let mut iterates = vec![a.clone()];
    for _ in 0..cfg.max_iters {
        let b = hipmcl_spgemm::hash::multiply(&a, &a);
        let (c, _) = colops::prune(&b, &cfg.prune);
        a = c;
        colops::inflate(&mut a, cfg.inflation);
        if colops::chaos(&a) < cfg.chaos_epsilon {
            break;
        }
        iterates.push(a.clone());
    }
    iterates
}

/// Modeled node time for one expansion with a fixed kernel.
fn kernel_time(model: &MachineModel, k: SpgemmKernel, flops: u64, cf: f64) -> f64 {
    model.spgemm_time(k, flops, cf)
}

fn main() {
    let model = MachineModel::summit();

    let kernels: Vec<(&str, SpgemmKernel)> = vec![
        ("cpu-hash", SpgemmKernel::CpuHash),
        ("rmerge2", SpgemmKernel::Gpu(GpuLib::Rmerge2)),
        ("bhsparse", SpgemmKernel::Gpu(GpuLib::Bhsparse)),
        ("nsparse", SpgemmKernel::Gpu(GpuLib::Nsparse)),
    ];

    println!("Fig. 4: modeled per-node local SpGEMM time over a full MCL run\n");
    let headers = [
        "network",
        "cpu-hash",
        "rmerge2",
        "bhsparse",
        "nsparse",
        "hybrid",
        "best-speedup",
    ];
    let mut rows = Vec::new();

    for d in Dataset::medium() {
        eprintln!("running {} ...", d.name());
        let cfg = bench_mcl_config_for(d, MclConfig::optimized(u64::MAX));
        let graph = bench_graph(d, &cfg);
        let iterates = mcl_iterates(&graph, &cfg);

        let mut totals = vec![0.0f64; kernels.len()];
        let mut hybrid_total = 0.0f64;
        for a in &iterates {
            // Verify all kernels agree on this iterate while measuring
            // the real product's flops/cf for the model.
            let flops = hipmcl_spgemm::flops(a, a);
            let c = hipmcl_spgemm::hash::multiply(a, a);
            for lib in GpuLib::all() {
                let g = hipmcl_gpu::libs::multiply_csc(a, a, lib);
                assert_eq!(g.nnz(), c.nnz(), "{} disagreed", lib.name());
            }
            let cf = if c.nnz() == 0 {
                1.0
            } else {
                flops as f64 / c.nnz() as f64
            };
            for (i, (_, k)) in kernels.iter().enumerate() {
                totals[i] += kernel_time(&model, *k, flops, cf);
            }
            // Hybrid: per-instance best of the four (the paper's recipe
            // selects by flops and cf; with exact cf that is the minimum).
            hybrid_total += kernels
                .iter()
                .map(|(_, k)| kernel_time(&model, *k, flops, cf))
                .fold(f64::INFINITY, f64::min);
        }

        let base = totals[0]; // cpu-hash
        let best = totals.iter().copied().fold(hybrid_total, f64::min);
        let mut row = vec![d.name().to_string()];
        for t in &totals {
            row.push(format!("{:.3}", t));
        }
        row.push(format!("{hybrid_total:.3}"));
        row.push(format!("{:.1}x", base / best));
        rows.push(row);
    }

    print_table(&headers, &rows);
    let csv = write_csv("fig4_local_spgemm", &headers, &rows);
    println!("\ncsv: {}", csv.display());
    print_paper_note(&[
        "Fig. 4: vs cpu-hash — rmerge2 up to 1.1x, bhsparse up to 2.6x,",
        "nsparse up to 3.3x; hybrid slightly beats nsparse (3.0-3.3x).",
        "Expected shape: same ordering, nsparse ~3x, hybrid >= nsparse.",
    ]);
}
