//! Diagnostic: verifies the pipelined-SUMMA timeline invariants on a
//! small random instance — host wall time must cover the device
//! quiescence point, which must cover the accumulated kernel time.
//! Not a paper experiment; used to sanity-check the harness itself.

fn main() {
    use hipmcl_comm::*;
    use hipmcl_gpu::multi::MultiGpu;
    use hipmcl_gpu::select::SelectionPolicy;
    use hipmcl_sparse::{Csc, Idx, Triples};
    use hipmcl_summa::merge::MergeStrategy;
    use hipmcl_summa::spgemm::*;
    use hipmcl_summa::DistMatrix;
    use rand::{Rng, SeedableRng};

    let results = Universe::run(4, MachineModel::summit_bench(), |comm| {
        let grid = ProcGrid::new(comm);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let n = 400;
        let mut t = Triples::new(n, n);
        for _ in 0..n * 100 {
            t.push(
                rng.gen_range(0..n) as Idx,
                rng.gen_range(0..n) as Idx,
                rng.gen_range(0.5..1.5),
            );
        }
        t.sum_duplicates();
        let g = Csc::from_triples(&t);
        let a = DistMatrix::from_global(&grid, &g.to_triples());
        let mut gpus = MultiGpu::summit_node(grid.world.model());
        let cfg = SummaConfig {
            phases: PhasePlan::Fixed(1),
            planner: hipmcl_summa::PhasePlanner::MemoryOnly,
            policy: SelectionPolicy::always_gpu(),
            merge: MergeStrategy::Binary,
            merge_kernel: hipmcl_summa::MergeKernelPolicy::Auto,
            pipelined: true,
            executor: hipmcl_summa::ExecutorKind::Gpus,
            steal: hipmcl_summa::executor::StealPolicy::default(),
            comm: CommPolicy::Hybrid,
            seed: 1,
        };
        let t0 = grid.world.now();
        let out = summa_spgemm(&grid, &mut gpus, &a, &a, &cfg);
        let host = grid.world.now() - t0;
        let quiescent = gpus
            .devices
            .iter()
            .map(|d| d.quiescent_at())
            .fold(0.0f64, f64::max);
        (
            host,
            quiescent,
            out.timers.get("local_spgemm"),
            out.timers.get("summa_bcast"),
        )
    });
    for (i, (h, q, sp, bc)) in results.iter().enumerate() {
        println!(
            "rank {i}: host_wall={h:.6} dev_quiescent={q:.6} spgemm_timer={sp:.6} bcast={bc:.6}"
        );
    }
}
