//! Ablation studies for the design choices DESIGN.md calls out — not a
//! paper table, but the measurements behind several of its design
//! arguments:
//!
//! 1. **Merge-at-push strategy** (§IV): Algorithm 2's heap merge of the
//!    stack tail vs the "immediate" alternative (merge every incoming
//!    list with the running result — `O(n·k²)` total) vs deferring all
//!    merging (multiway). Work counted in merged elements.
//! 2. **DCSC vs CSC broadcast payloads** (§III-B): bytes a SUMMA stage
//!    moves for hypersparse blocks at growing grid sizes.
//! 3. **Phased vs unphased SUMMA** (§III): the broadcast-volume price of
//!    limiting memory with `h` phases (one operand re-broadcast `h`×).
//! 4. **Transpose trick** (§III-B): CSC→CSR conversion cost avoided by
//!    computing `Cᵀ = Bᵀ·Aᵀ` (measured as real conversion wall time).

use hipmcl_bench::*;
use hipmcl_comm::MachineModel;
use hipmcl_core::MclConfig;
use hipmcl_sparse::{Csc, Csr, Dcsc};
use hipmcl_spgemm::testutil::random_csc;
use hipmcl_workloads::Dataset;
use std::time::Instant;

fn main() {
    ablation_merge_strategies();
    ablation_dcsc_payloads();
    ablation_phases();
    ablation_transpose_trick();
}

/// 1. Merging work: multiway vs Algorithm 2 vs immediate two-way merges.
fn ablation_merge_strategies() {
    println!("Ablation 1 — merge scheduling (elements passing through merges)\n");
    let headers = ["k lists", "multiway", "binary (Alg.2)", "immediate 2-way"];
    let mut rows = Vec::new();
    for k in [4usize, 8, 16, 32] {
        let slabs: Vec<Csc<f64>> = (0..k)
            .map(|i| random_csc(500, 500, 5_000, 77 + i as u64))
            .collect();
        let n: usize = slabs.iter().map(Csc::nnz).sum::<usize>() / k;

        // Multiway: every element passes through one k-way merge.
        let multiway = k * n;

        // Binary (Algorithm 2): measured from the merger's stats.
        let mut bm = hipmcl_summa::merge::StackMerger::new(
            MachineModel::summit(),
            hipmcl_summa::merge::MergeKernelPolicy::Auto,
            (500, 500),
        );
        for s in &slabs {
            bm.push(s.clone());
        }
        let _ = bm.finish();
        let binary = bm.stats().total_merged_elems;

        // Immediate: merge each arrival with the running result. With
        // disjoint lists this is n·(k(k+1)/2 − 1) (§IV's analysis); here
        // measured with the real (overlapping) lists.
        let mut acc = slabs[0].clone();
        let mut immediate = 0u64;
        for s in &slabs[1..] {
            immediate += (acc.nnz() + s.nnz()) as u64;
            acc = acc.add_elementwise(s);
        }

        rows.push(vec![
            k.to_string(),
            multiway.to_string(),
            binary.to_string(),
            immediate.to_string(),
        ]);
    }
    print_table(&headers, &rows);
    write_csv("ablation_merge", &headers, &rows);
    println!(
        "\n(§IV: binary merge pays ~lg lg k over multiway; the immediate\n\
         scheme's quadratic re-scanning is why the paper rejects it)\n"
    );
}

/// 2. DCSC vs CSC broadcast payload bytes for 2D blocks.
fn ablation_dcsc_payloads() {
    println!("Ablation 2 — broadcast payload: DCSC vs CSC bytes per block\n");
    // Hypersparsity needs nnz/P < ncols/√P, i.e. √P > average degree —
    // the regime of very large grids or very sparse matrices. A degree-2
    // graph (e.g. a converged, near-diagonal MCL iterate) shows the
    // crossover at laptop-sized grids; the dense bench blocks show where
    // plain CSC stays fine.
    let sparse = Csc::from_triples(&hipmcl_workloads::er::generate_er_symmetric(
        20_000, 20_000, 9,
    ));
    let cfg = bench_mcl_config_for(Dataset::Archaea, MclConfig::optimized(u64::MAX));
    let dense = bench_graph(Dataset::Archaea, &cfg);
    let headers = [
        "matrix",
        "grid",
        "block nnz",
        "block cols",
        "CSC B",
        "DCSC B",
        "saving",
    ];
    let mut rows = Vec::new();
    for (name, g) in [("degree-2", &sparse), ("archaea-mini", &dense)] {
        for side in [4usize, 16, 32] {
            let blocks = hipmcl_sparse::convert::split_2d_csc(g, side, side);
            let (mut csc_b, mut dcsc_b, mut nnz) = (0usize, 0usize, 0usize);
            for b in &blocks {
                csc_b += b.bytes();
                dcsc_b += Dcsc::from_csc(b).bytes();
                nnz += b.nnz();
            }
            let nb = blocks.len();
            rows.push(vec![
                name.to_string(),
                format!("{side}x{side}"),
                (nnz / nb).to_string(),
                (g.ncols() / side).to_string(),
                (csc_b / nb).to_string(),
                (dcsc_b / nb).to_string(),
                format!(
                    "{:.0}%",
                    100.0 * (csc_b as f64 - dcsc_b as f64) / csc_b as f64
                ),
            ]);
        }
    }
    print_table(&headers, &rows);
    write_csv("ablation_dcsc", &headers, &rows);
    println!(
        "\n(hypersparsity needs nnz/P < ncols/√P: DCSC wins on the sparse\n\
         matrix at large grids and loses nothing meaningful elsewhere —\n\
         Buluç & Gilbert 2008)\n"
    );
}

/// 3. Phased SUMMA: broadcast volume vs phase count.
fn ablation_phases() {
    println!("Ablation 3 — phased SUMMA: A re-broadcast per phase\n");
    let cfg = bench_mcl_config_for(Dataset::Eukarya, MclConfig::optimized(u64::MAX));
    let g = bench_graph(Dataset::Eukarya, &cfg);
    let side = 4usize;
    let blocks = hipmcl_sparse::convert::split_2d_csc(&g, side, side);
    let a_bytes: usize = blocks.iter().map(|b| Dcsc::from_csc(b).bytes()).sum();
    let headers = ["phases", "A bcast volume", "B bcast volume", "total vs h=1"];
    let mut rows = Vec::new();
    for h in [1usize, 2, 4, 8] {
        // Per SUMMA semantics: every phase re-broadcasts all of A's
        // blocks down their rows; B is broadcast once in total (sliced).
        let a_vol = a_bytes * h * side;
        let b_vol = a_bytes * side; // A ≈ B here (squaring)
        rows.push(vec![
            h.to_string(),
            a_vol.to_string(),
            b_vol.to_string(),
            format!(
                "{:.2}x",
                (a_vol + b_vol) as f64 / (a_bytes * 2 * side) as f64
            ),
        ]);
    }
    print_table(&headers, &rows);
    write_csv("ablation_phases", &headers, &rows);
    println!(
        "\n(§III: phases cap memory at the price of re-broadcasting one\n\
         operand — why the estimator must not over-estimate phases)\n"
    );
}

/// 4. The §III-B transpose trick: measured cost of the avoided conversion.
fn ablation_transpose_trick() {
    println!("Ablation 4 — CSC->CSR conversion avoided by the transpose trick\n");
    let headers = ["n", "nnz", "explicit CSC->CSR", "transpose reinterpret"];
    let mut rows = Vec::new();
    for (n, nnz) in [
        (2_000usize, 100_000usize),
        (8_000, 400_000),
        (20_000, 1_000_000),
    ] {
        let a = random_csc(n, n, nnz, 5);
        let t0 = Instant::now();
        let explicit = Csr::from_csc(&a); // real transpose work
        let t_explicit = t0.elapsed().as_secs_f64();
        let owned = a.clone(); // ownership transfer outside the timing
        let t0 = Instant::now();
        let reinterp = Csr::from_csc_transpose(owned); // pointer moves
        let t_reinterp = t0.elapsed().as_secs_f64();
        assert_eq!(explicit.nnz(), reinterp.nnz());
        rows.push(vec![
            n.to_string(),
            a.nnz().to_string(),
            format!("{:.3} ms", t_explicit * 1e3),
            format!("{:.3} ms", t_reinterp * 1e3),
        ]);
    }
    print_table(&headers, &rows);
    write_csv("ablation_transpose", &headers, &rows);
    println!(
        "\n(computing Cᵀ = Bᵀ·Aᵀ on CSR kernels makes the conversion a\n\
         reinterpretation — §III-B)\n"
    );
}
