//! **Figure 8** — per-stage strong scaling of the optimized HipMCL:
//! speedup of each stage (local SpGEMM, memory estimation, SUMMA
//! broadcast, merging, pruning) relative to the smallest node count.
//! Paper: compute stages scale well; memory estimation, broadcast and
//! merging are the scalability bottlenecks (estimation reaching 2.5× the
//! broadcast time at 400 nodes on isom100-1).

use hipmcl_bench::*;
use hipmcl_core::dist::STAGES;
use hipmcl_core::MclConfig;
use hipmcl_workloads::Dataset;

fn max_ranks() -> usize {
    std::env::var("HIPMCL_MAX_RANKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(400)
}

fn main() {
    println!("Fig. 8: per-stage strong scaling (speedup vs smallest node count)\n");
    let sweeps: [(Dataset, &[usize]); 2] = [
        (Dataset::Isom100_1, &[100, 196, 400]),
        (Dataset::Metaclust50, &[256, 361, 529]),
    ];

    for (d, nodes_list) in sweeps {
        let nodes: Vec<usize> = nodes_list
            .iter()
            .copied()
            .filter(|&n| n <= max_ranks())
            .collect();
        if nodes.len() < 2 {
            println!("({}: skipped — raise HIPMCL_MAX_RANKS)\n", d.name());
            continue;
        }
        let cfg = bench_mcl_config_for(d, MclConfig::optimized(4 << 30));
        println!("{}:", d.name());
        let mut per_node: Vec<Vec<f64>> = Vec::new();
        for &p in &nodes {
            eprintln!("running {} on {} nodes ...", d.name(), p);
            let r = run_scattered(p, d, &cfg);
            per_node.push(
                STAGES
                    .iter()
                    .map(|s| {
                        r.stage_times
                            .iter()
                            .find(|(n, _)| n == s)
                            .map_or(0.0, |(_, t)| *t)
                    })
                    .collect(),
            );
        }

        let mut headers: Vec<String> = vec!["stage".into()];
        headers.extend(nodes.iter().map(|p| format!("{p} nodes")));
        headers.push("time@max nodes".into());
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut rows = Vec::new();
        for (si, s) in STAGES.iter().enumerate() {
            let base = per_node[0][si];
            if base <= 0.0 {
                continue;
            }
            let mut row = vec![s.to_string()];
            for node_stages in per_node.iter().take(nodes.len()) {
                row.push(format!("{:.2}x", base / node_stages[si].max(1e-12)));
            }
            row.push(format!("{:.4}s", per_node[nodes.len() - 1][si]));
            rows.push(row);
        }
        print_table(&header_refs, &rows);
        write_csv(&format!("fig8_{}", d.name()), &header_refs, &rows);

        // The paper's bottleneck callout: estimation vs broadcast at scale.
        let last = &per_node[nodes.len() - 1];
        let est = last[STAGES.iter().position(|&s| s == "mem_estimation").unwrap()];
        let bc = last[STAGES.iter().position(|&s| s == "summa_bcast").unwrap()];
        println!(
            "memory estimation / SUMMA broadcast at {} nodes: {:.2}x\n",
            nodes[nodes.len() - 1],
            est / bc.max(1e-12)
        );
    }

    print_paper_note(&[
        "Fig. 8: local SpGEMM and pruning scale near-linearly; merging,",
        "broadcast and especially memory estimation scale poorly (paper:",
        "estimation = 2.5x broadcast time at 400 nodes on isom100-1, 1.5x",
        "at 729 on metaclust50) — motivating the future GPU/pipelined",
        "estimation the paper's conclusion sketches.",
    ]);
}
