//! Diagnostic: per-iteration density/flops trace of a bench dataset run
//! plus precise stage totals — used to calibrate the harness workloads.

use hipmcl_bench::*;
use hipmcl_core::MclConfig;
use hipmcl_workloads::Dataset;

fn main() {
    let d = match std::env::args().nth(1).as_deref() {
        Some("metaclust50") => Dataset::Metaclust50,
        Some("archaea") => Dataset::Archaea,
        _ => Dataset::Isom100_1,
    };
    let nodes: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    for (name, cfg) in [
        (
            "original",
            bench_mcl_config_for(d, MclConfig::original_hipmcl(4 << 30)),
        ),
        (
            "optimized",
            bench_mcl_config_for(d, MclConfig::optimized(4 << 30)),
        ),
    ] {
        let r = run_scattered(nodes, d, &cfg);
        println!(
            "== {name}: total {:.6}s, iters {}, clusters {}",
            r.total_time, r.iterations, r.num_clusters
        );
        for (s, t) in &r.stage_times {
            println!("   {s:<16} {t:.6}");
        }
        println!("   cpu_idle {:.6}  gpu_idle {:.6}", r.cpu_idle, r.gpu_idle);
        println!("   iter  flops        nnz_pruned   cf");
        for (i, it) in r.trace.iter().enumerate() {
            println!(
                "   {:<5} {:<12} {:<12} {:.1}",
                i + 1,
                it.flops,
                it.nnz_pruned,
                it.cf
            );
        }
    }
}
