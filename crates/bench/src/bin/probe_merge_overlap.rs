//! **Merge/phase-overlap ablation** — sweeps the per-merge kernel policy
//! and the phase planner over a multi-iteration MCL run with a
//! constrained per-rank memory budget, reporting the unified-timeline
//! idle decomposition (host, device, merge lanes), the peak merge
//! working set, and the phase counts the planner picked.
//!
//! The point of the sweep: merging is now an executor task on per-socket
//! merge lanes, so its idle is observable on the same timelines as the
//! kernels, and the overlap-aware planner can trade a little re-broadcast
//! (more phases) for smaller, earlier merges — without ever dropping
//! below the memory floor the budget dictates.

use hipmcl_bench::*;
use hipmcl_comm::MergeKernel;
use hipmcl_summa::estimate::PhasePlanner;
use hipmcl_summa::merge::MergeKernelPolicy;
use hipmcl_workloads::Dataset;

fn ranks() -> usize {
    std::env::var("HIPMCL_MAX_RANKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

fn phase_span(phases: &[usize]) -> String {
    let min = phases.iter().min().copied().unwrap_or(0);
    let max = phases.iter().max().copied().unwrap_or(0);
    if min == max {
        min.to_string()
    } else {
        format!("{min}-{max}")
    }
}

fn main() {
    println!("Merge/phase-overlap ablation: idle decomposition per kernel x planner\n");
    let kernels: [(&str, MergeKernelPolicy); 4] = [
        ("heap", MergeKernelPolicy::Fixed(MergeKernel::Heap)),
        ("pairwise", MergeKernelPolicy::Fixed(MergeKernel::Pairwise)),
        ("hash", MergeKernelPolicy::Fixed(MergeKernel::Hash)),
        ("auto", MergeKernelPolicy::Auto),
    ];
    let planners: [(&str, PhasePlanner); 2] = [
        ("memory", PhasePlanner::MemoryOnly),
        (
            "overlap",
            PhasePlanner::OverlapAware {
                max_extra_phases: 4,
            },
        ),
    ];
    let p = ranks();
    let iters = 3;
    let budget = 3u64 << 20;

    let headers = [
        "network",
        "kernel",
        "planner",
        "phases",
        "merges",
        "CPU idle",
        "dev idle",
        "lane idle",
        "total idle",
        "peak elems",
        "total",
    ];
    let mut rows = Vec::new();
    for d in [Dataset::Archaea, Dataset::Isom100_3] {
        for (klabel, kernel) in kernels {
            for (plabel, planner) in planners {
                eprintln!(
                    "running {} with kernel={} planner={} on {} ranks ...",
                    d.name(),
                    klabel,
                    plabel,
                    p
                );
                let r = run_merge_overlap_probe(p, d, kernel, planner, budget, iters);
                rows.push(vec![
                    d.name().to_string(),
                    klabel.to_string(),
                    plabel.to_string(),
                    phase_span(&r.phases),
                    r.merge_ops.to_string(),
                    fmt_time(r.cpu_idle),
                    fmt_time(r.gpu_idle),
                    fmt_time(r.merge_lane_idle),
                    fmt_time(r.total_idle()),
                    r.peak_merge_elems.to_string(),
                    fmt_time(r.total_time),
                ]);
            }
        }
    }

    print_table(&headers, &rows);
    let csv = write_csv("probe_merge_overlap", &headers, &rows);
    println!("\ncsv: {}", csv.display());
    print_paper_note(&[
        "No direct paper table: this probes merging as an executor task",
        "(§IV merge schedules x the cf-style kernel-selection rule) and",
        "the bi-objective phase planner on top of §III's memory planning.",
        "Expected shape: auto tracks the best fixed kernel per workload;",
        "the overlap planner never drops below the memory floor, and where",
        "it adds phases, total idle (host + device + merge lanes) falls.",
    ]);
}
