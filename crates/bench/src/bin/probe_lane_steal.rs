//! **Merge-lane steal ablation** — sweeps the lane steal policy over
//! multi-iteration MCL runs on the two reference networks plus a
//! synthetic skewed stack, reporting the unified-timeline idle
//! decomposition and how many merges actually moved off their pinned
//! lane.
//!
//! The point of the sweep: merges land on per-socket lanes, and the
//! legacy placement (`StealPolicy::Off`) pins each to the least-busy
//! lane at submission — blind to where its inputs live and to the idle
//! gap it opens. `CostAware` placement charges the cross-socket penalty
//! for remote inputs explicitly and takes a steal only when the modeled
//! steal-time beats waiting, so lane idle can only shrink. Results are
//! bit-identical either way — stealing moves *when and where* a merge
//! runs on the virtual clock, never its operands.

use hipmcl_bench::*;
use hipmcl_summa::executor::StealPolicy;
use hipmcl_summa::merge::MergeKernelPolicy;
use hipmcl_workloads::Dataset;

fn ranks() -> usize {
    // 9 ranks (a 3x3 grid) by default: three stages per phase give the
    // binary merge cadence accumulated merges with lane-homed inputs,
    // which is where the two policies can disagree.
    std::env::var("HIPMCL_MAX_RANKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(9)
}

fn main() {
    println!("Merge-lane steal ablation: idle decomposition per workload x steal policy\n");
    let p = ranks();
    let iters = 3;
    let budget = 3u64 << 20;

    let headers = [
        "network",
        "steal",
        "merges",
        "stolen",
        "CPU idle",
        "dev idle",
        "lane idle",
        "total idle",
        "total",
    ];
    let mut rows = Vec::new();
    for w in [
        LaneWorkload::Net(Dataset::Archaea),
        LaneWorkload::Net(Dataset::Isom100_3),
        LaneWorkload::SkewedStack,
    ] {
        for steal in StealPolicy::all() {
            eprintln!(
                "running {} with steal={} on {} ranks ...",
                w.name(),
                steal.name(),
                p
            );
            let r = run_lane_steal_probe(p, w, MergeKernelPolicy::Auto, steal, budget, iters);
            rows.push(vec![
                w.name().to_string(),
                steal.name().to_string(),
                r.merge_ops.to_string(),
                r.stolen_merges.to_string(),
                fmt_time(r.cpu_idle),
                fmt_time(r.gpu_idle),
                fmt_time(r.merge_lane_idle),
                fmt_time(r.total_idle()),
                fmt_time(r.total_time),
            ]);
        }
    }

    print_table(&headers, &rows);
    let csv = write_csv("probe_lane_steal", &headers, &rows);
    println!("\ncsv: {}", csv.display());
    print_paper_note(&[
        "No direct paper table: this probes work-stealing across the",
        "per-socket merge lanes that §IV's merge-as-a-task refactor",
        "introduced, priced with the machine model's cross-socket",
        "penalty. Expected shape: cost-aware stealing never increases",
        "merge-lane idle, strictly reduces it on the skewed stack, and",
        "cluster labels are bit-identical across policies (the",
        "cluster-equality gates in hipmcl-bench prove this).",
    ]);
}
