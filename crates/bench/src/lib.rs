//! Shared infrastructure for the experiment harness binaries.
//!
//! Each `src/bin/*.rs` regenerates one table or figure of the paper's
//! evaluation (see DESIGN.md's per-experiment index). This library holds
//! what they share: scaled workload selection, the memory-frugal
//! scatter-based distributed MCL runner, and table/CSV output.
//!
//! All reported times are **modeled Summit times** from the virtual
//! clocks (see `hipmcl-comm`); absolute values are not expected to match
//! the paper's, but the *shape* — who wins, by what factor, where the
//! crossovers sit — is.

use hipmcl_comm::collectives::{allreduce, allreduce_sum_vec};
use hipmcl_comm::ProcGrid;
use hipmcl_core::dist::{cluster_distributed_from, dist_inflate_and_chaos, DistMclReport};
use hipmcl_core::MclConfig;
use hipmcl_gpu::multi::MultiGpu;
use hipmcl_sparse::Csc;
use hipmcl_summa::estimate::{PhaseDecision, PhasePlanner};
use hipmcl_summa::executor::{ExecutorKind, SplitPolicy, StealPolicy};
use hipmcl_summa::merge::MergeKernelPolicy;
use hipmcl_summa::spgemm::CommPolicy;
use hipmcl_summa::topk::prune_local_slab;
use hipmcl_summa::DistMatrix;
use hipmcl_workloads::Dataset;
use std::io::Write;

/// Extra shrink factor from the environment (`HIPMCL_BENCH_SCALE`,
/// default 1): multiply to make every harness run that much smaller.
pub fn extra_scale() -> u64 {
    std::env::var("HIPMCL_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Reduction factor used for each paper network in the harness, chosen so
/// a full MCL run stays in seconds on a laptop-class host while keeping
/// the per-column density (and hence `cf`) regime of the original.
pub fn bench_reduction(d: Dataset) -> u64 {
    let base = match d {
        Dataset::Archaea => 2_000,
        Dataset::Eukarya => 3_000,
        Dataset::Isom100_3 => 7_000,
        Dataset::Isom100_1 => 20_000,
        Dataset::Isom100 => 23_000,
        Dataset::Metaclust50 => 300_000,
    };
    base * extra_scale()
}

/// Generates the scaled bench instance of a paper network as a prepared
/// (symmetrized, self-looped, normalized) adjacency matrix.
pub fn bench_graph(d: Dataset, cfg: &MclConfig) -> Csc<f64> {
    let net = d.instance(bench_reduction(d));
    let adj = Csc::from_triples(&net.graph);
    hipmcl_core::serial::prepare_matrix(&adj, cfg)
}

/// Per-dataset selection parameter (MCL `-S`). The paper uses ~1100 at
/// full scale; what the optimizations respond to is the *column density*
/// `d` this produces (`flops/bytes ∝ d`), so the dense isom family keeps
/// a high selection even at reduced scale, while metaclust50 — whose
/// full-scale average degree is only ~97 — stays sparse, reproducing the
/// paper's observation that it benefits less from GPUs.
pub fn bench_select(d: Dataset) -> usize {
    match d {
        Dataset::Metaclust50 => 100,
        Dataset::Isom100_1 | Dataset::Isom100 => 400,
        _ => 300,
    }
}

/// MCL settings for the harness: selection scaled to the shrunken
/// networks (the paper uses ~1000 at full scale).
pub fn bench_mcl_config_for(d: Dataset, mut base: MclConfig) -> MclConfig {
    base.prune.select = bench_select(d);
    base.max_iters = 12;
    base
}

/// [`bench_mcl_config_for`] with the default (dense) selection.
pub fn bench_mcl_config(mut base: MclConfig) -> MclConfig {
    base.prune.select = 300;
    base.max_iters = 12;
    base
}

/// Runs distributed MCL with rank-0-only workload generation (the graph
/// is scattered, not replicated — essential when simulating hundreds of
/// ranks on one host). Dispatches through [`hipmcl_comm::Universe::run_dist`],
/// so `HIPMCL_TRANSPORT` / `HIPMCL_TIME` select the transport and time
/// model without code changes.
pub fn run_scattered(p: usize, d: Dataset, cfg: &MclConfig) -> DistMclReport {
    let cfg = *cfg;
    let reports = hipmcl_comm::Universe::run_dist(
        p,
        hipmcl_comm::MachineModel::summit_bench(),
        move |comm| run_scattered_on(comm, d, &cfg),
    );
    reports.into_iter().next().unwrap()
}

/// Rank body of [`run_scattered`], reusable by binaries that need custom
/// machine models.
pub fn run_scattered_on(comm: hipmcl_comm::Comm, d: Dataset, cfg: &MclConfig) -> DistMclReport {
    let grid = ProcGrid::new(comm);
    let mut gpus = MultiGpu::summit_node(grid.world.model());
    let global = if grid.world.rank() == 0 {
        Some(bench_graph(d, cfg).to_triples())
    } else {
        None
    };
    let a = DistMatrix::scatter_from_root(&grid, global.as_ref());
    // Clock starts after setup: distribution is not part of any measured
    // stage in the paper either.
    grid.world.reset_instrumentation();
    cluster_distributed_from(&grid, &mut gpus, a, cfg)
}

/// One split policy's outcome in the hybrid split ablation
/// (`probe_hybrid_split`).
#[derive(Clone, Debug)]
pub struct SplitProbeReport {
    /// Mean over ranks of host idle time, summed over iterations.
    pub cpu_idle: f64,
    /// Mean over ranks of device + worker-pool idle time (the unified
    /// hybrid timelines), summed over iterations.
    pub gpu_idle: f64,
    /// Max over ranks of the final virtual clock.
    pub total_time: f64,
    /// Rank 0's realized GPU share per hybrid submission, in submission
    /// order across all iterations.
    pub fractions: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
}

impl SplitProbeReport {
    /// The quantity the ablation compares: CPU idle + GPU idle off the
    /// unified timelines.
    pub fn total_idle(&self) -> f64 {
        self.cpu_idle + self.gpu_idle
    }
}

/// Runs a multi-iteration distributed MCL expansion loop with the hybrid
/// executor under the given split policy and reports idle times and the
/// realized per-stage GPU shares. This is the MCL loop of
/// `hipmcl_core::dist` run through [`hipmcl_summa::spgemm::summa_spgemm_with`]
/// directly, so the per-submission `hybrid_fractions` stay observable —
/// the stage mix (density and `cf` change every iteration as expansion
/// and pruning fight) is exactly the heterogeneous sequence a static
/// split handles badly.
pub fn run_hybrid_split_probe(
    p: usize,
    d: Dataset,
    split: SplitPolicy,
    max_iters: usize,
) -> SplitProbeReport {
    let results =
        hipmcl_comm::Universe::run(p, hipmcl_comm::MachineModel::summit_bench(), move |comm| {
            let grid = ProcGrid::new(comm);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let mut cfg = bench_mcl_config_for(d, MclConfig::optimized(4 << 30));
            cfg.summa.executor = ExecutorKind::Hybrid { split };
            cfg.max_iters = max_iters;
            let global = (grid.world.rank() == 0).then(|| bench_graph(d, &cfg).to_triples());
            let mut a = DistMatrix::scatter_from_root(&grid, global.as_ref());
            grid.world.reset_instrumentation();

            let mut cpu_idle = 0.0f64;
            let mut gpu_idle = 0.0f64;
            let mut fractions = Vec::new();
            let mut iterations = 0usize;
            for _ in 0..cfg.max_iters {
                iterations += 1;
                let prune_params = cfg.prune;
                let out = {
                    let col_comm = &grid.col_comm;
                    hipmcl_summa::spgemm::summa_spgemm_with(
                        &grid,
                        &mut gpus,
                        &a,
                        &a,
                        &cfg.summa,
                        |_, slab| {
                            let (pruned, _stats) = prune_local_slab(col_comm, &slab, &prune_params);
                            col_comm.advance_clock(
                                col_comm.model().elementwise_time(slab.nnz() as u64),
                            );
                            pruned
                        },
                    )
                };
                cpu_idle += out.cpu_idle;
                gpu_idle += out.gpu_idle;
                fractions.extend_from_slice(&out.hybrid_fractions);
                a = out.c;
                let chaos = dist_inflate_and_chaos(&grid, &mut a.local, cfg.inflation);
                if chaos < cfg.chaos_epsilon {
                    break;
                }
            }

            let idle = allreduce_sum_vec(&grid.world, vec![cpu_idle, gpu_idle]);
            let total_time = allreduce(&grid.world, grid.world.now(), f64::max);
            SplitProbeReport {
                cpu_idle: idle[0] / p as f64,
                gpu_idle: idle[1] / p as f64,
                total_time,
                fractions,
                iterations,
            }
        });
    results.into_iter().next().unwrap()
}

/// One configuration's outcome in the merge/phase-overlap ablation
/// (`probe_merge_overlap`).
#[derive(Clone, Debug)]
pub struct MergeProbeReport {
    /// Mean over ranks of host idle time, summed over iterations.
    pub cpu_idle: f64,
    /// Mean over ranks of device/pool idle time, summed over iterations.
    pub gpu_idle: f64,
    /// Mean over ranks of merge-lane idle time, summed over iterations.
    pub merge_lane_idle: f64,
    /// Max over ranks of the peak merge working set (elements), over all
    /// iterations — the Table III memory proxy.
    pub peak_merge_elems: u64,
    /// Phases executed per iteration (rank 0's view).
    pub phases: Vec<usize>,
    /// Merge operations submitted, summed over iterations (rank 0).
    pub merge_ops: u64,
    /// Planner decisions per iteration (rank 0), present only under the
    /// overlap-aware planner.
    pub decisions: Vec<PhaseDecision>,
    /// Max over ranks of the final virtual clock.
    pub total_time: f64,
    /// Iterations executed.
    pub iterations: usize,
}

impl MergeProbeReport {
    /// The quantity the phase-planner gate compares: host idle plus
    /// device idle plus merge-lane idle — total pipeline idle off the
    /// unified timelines.
    pub fn total_idle(&self) -> f64 {
        self.cpu_idle + self.gpu_idle + self.merge_lane_idle
    }
}

/// Runs a multi-iteration distributed MCL expansion loop under the given
/// phase planner and merge-kernel policy, reporting the unified-timeline
/// idle decomposition, the peak merge working set, and the planner's
/// scored decisions. The per-rank memory budget is deliberately small so
/// `plan_phases` lands above one phase and the overlap-aware planner has
/// real headroom to search. Runs on the CPU-pipelined preset: with the
/// worker pool's slower kernels the broadcasts hide under compute, which
/// is the regime where trading re-broadcast for smaller merges pays.
pub fn run_merge_overlap_probe(
    p: usize,
    d: Dataset,
    kernel: MergeKernelPolicy,
    planner: PhasePlanner,
    per_rank_budget: u64,
    max_iters: usize,
) -> MergeProbeReport {
    let results =
        hipmcl_comm::Universe::run(p, hipmcl_comm::MachineModel::summit_bench(), move |comm| {
            let grid = ProcGrid::new(comm);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let mut cfg = bench_mcl_config_for(d, MclConfig::cpu_pipelined(per_rank_budget));
            cfg.summa.merge_kernel = kernel;
            cfg.summa.planner = planner;
            cfg.max_iters = max_iters;
            let global = (grid.world.rank() == 0).then(|| bench_graph(d, &cfg).to_triples());
            let mut a = DistMatrix::scatter_from_root(&grid, global.as_ref());
            grid.world.reset_instrumentation();

            let mut cpu_idle = 0.0f64;
            let mut gpu_idle = 0.0f64;
            let mut lane_idle = 0.0f64;
            let mut peak = 0u64;
            let mut merge_ops = 0u64;
            let mut phases = Vec::new();
            let mut decisions = Vec::new();
            let mut iterations = 0usize;
            for _ in 0..cfg.max_iters {
                iterations += 1;
                let prune_params = cfg.prune;
                let out = {
                    let col_comm = &grid.col_comm;
                    hipmcl_summa::spgemm::summa_spgemm_with(
                        &grid,
                        &mut gpus,
                        &a,
                        &a,
                        &cfg.summa,
                        |_, slab| {
                            let (pruned, _stats) = prune_local_slab(col_comm, &slab, &prune_params);
                            col_comm.advance_clock(
                                col_comm.model().elementwise_time(slab.nnz() as u64),
                            );
                            pruned
                        },
                    )
                };
                cpu_idle += out.cpu_idle;
                gpu_idle += out.gpu_idle;
                lane_idle += out.merge_lane_idle;
                peak = peak.max(out.merge_stats.peak_merge_elems as u64);
                merge_ops += out.merge_stats.merge_ops as u64;
                phases.push(out.phases);
                decisions.extend(out.planner_decision.clone());
                a = out.c;
                let chaos = dist_inflate_and_chaos(&grid, &mut a.local, cfg.inflation);
                if chaos < cfg.chaos_epsilon {
                    break;
                }
            }

            let idle = allreduce_sum_vec(&grid.world, vec![cpu_idle, gpu_idle, lane_idle]);
            let peak = allreduce(&grid.world, peak as f64, f64::max) as u64;
            let total_time = allreduce(&grid.world, grid.world.now(), f64::max);
            MergeProbeReport {
                cpu_idle: idle[0] / p as f64,
                gpu_idle: idle[1] / p as f64,
                merge_lane_idle: idle[2] / p as f64,
                peak_merge_elems: peak,
                phases,
                merge_ops,
                decisions,
                total_time,
                iterations,
            }
        });
    results.into_iter().next().unwrap()
}

/// One comm policy's outcome in the broadcast/gather ablation
/// (`probe_comm_policy`).
#[derive(Clone, Debug)]
pub struct CommPolicyReport {
    /// Sum over ranks and iterations of the modeled comm time of the
    /// panels as actually moved (each panel priced at its chosen mode).
    pub modeled_comm: f64,
    /// Same panels, all priced as tree broadcasts — the
    /// [`CommPolicy::Broadcast`] baseline.
    pub modeled_comm_broadcast: f64,
    /// Stage panels that went out as flat point-to-point sends, summed
    /// over ranks and iterations (0 under `Broadcast`).
    pub gather_panels: u64,
    /// Stage panels moved in total, summed over ranks and iterations.
    pub total_panels: u64,
    /// Max over ranks of the final virtual clock.
    pub total_time: f64,
    /// Iterations executed.
    pub iterations: usize,
}

/// Runs a multi-iteration distributed MCL expansion loop under the given
/// comm policy, reporting the modeled per-panel communication costs and
/// how many panels crossed to flat sends. Same loop shape as the other
/// probes; only how stage panels travel varies with `policy` — payloads
/// never change, so the product (and the clustering) is identical under
/// both policies.
///
/// Unlike the other probes this one runs on the *unscaled* Summit model:
/// `summit_bench` shrinks `α` by four orders of magnitude to match the
/// shrunken instances, which erases the latency term the broadcast/gather
/// trade-off is about. With the real `α/β` the shrunken panels sit in the
/// latency-dominated regime — exactly where hypersparse stage panels land
/// at the paper's rank counts.
pub fn run_comm_policy_probe(
    p: usize,
    d: Dataset,
    policy: CommPolicy,
    max_iters: usize,
) -> CommPolicyReport {
    let results = hipmcl_comm::Universe::run(p, hipmcl_comm::MachineModel::summit(), move |comm| {
        let grid = ProcGrid::new(comm);
        let mut gpus = MultiGpu::summit_node(grid.world.model());
        let mut cfg = bench_mcl_config_for(d, MclConfig::optimized(4 << 30));
        cfg.summa.comm = policy;
        cfg.max_iters = max_iters;
        let global = (grid.world.rank() == 0).then(|| bench_graph(d, &cfg).to_triples());
        let mut a = DistMatrix::scatter_from_root(&grid, global.as_ref());
        grid.world.reset_instrumentation();

        let mut modeled = 0.0f64;
        let mut modeled_bcast = 0.0f64;
        let mut gather_panels = 0u64;
        let mut total_panels = 0u64;
        let mut iterations = 0usize;
        for _ in 0..cfg.max_iters {
            iterations += 1;
            let prune_params = cfg.prune;
            let out = {
                let col_comm = &grid.col_comm;
                hipmcl_summa::spgemm::summa_spgemm_with(
                    &grid,
                    &mut gpus,
                    &a,
                    &a,
                    &cfg.summa,
                    |_, slab| {
                        let (pruned, _stats) = prune_local_slab(col_comm, &slab, &prune_params);
                        col_comm
                            .advance_clock(col_comm.model().elementwise_time(slab.nnz() as u64));
                        pruned
                    },
                )
            };
            modeled += out.modeled_comm_time();
            modeled_bcast += out.modeled_comm_time_broadcast();
            gather_panels += out
                .comm_choices
                .iter()
                .filter(|c| c.mode == hipmcl_comm::CommMode::Gather)
                .count() as u64;
            total_panels += out.comm_choices.len() as u64;
            a = out.c;
            let chaos = dist_inflate_and_chaos(&grid, &mut a.local, cfg.inflation);
            if chaos < cfg.chaos_epsilon {
                break;
            }
        }

        let sums = allreduce_sum_vec(
            &grid.world,
            vec![
                modeled,
                modeled_bcast,
                gather_panels as f64,
                total_panels as f64,
            ],
        );
        let total_time = allreduce(&grid.world, grid.world.now(), f64::max);
        CommPolicyReport {
            modeled_comm: sums[0],
            modeled_comm_broadcast: sums[1],
            gather_panels: sums[2] as u64,
            total_panels: sums[3] as u64,
            total_time,
            iterations,
        }
    });
    results.into_iter().next().unwrap()
}

/// Workload fed to the lane-steal probe (`probe_lane_steal`): a scaled
/// paper network, or a synthetic hub-heavy graph whose merge durations
/// are wildly uneven — the regime where submission-time lane pinning
/// keeps opening idle gaps that a cost-aware steal can fill.
#[derive(Clone, Copy, Debug)]
pub enum LaneWorkload {
    /// A scaled paper network (see [`bench_reduction`]).
    Net(Dataset),
    /// Synthetic skewed stack: a handful of super-dense hub columns on a
    /// sparse background. Expansion turns the hubs into a few huge merge
    /// tasks among many tiny ones, so one lane backs up while the other
    /// runs dry between submissions.
    SkewedStack,
}

impl LaneWorkload {
    /// Label used in tables and CSV rows.
    pub fn name(self) -> &'static str {
        match self {
            LaneWorkload::Net(d) => d.name(),
            LaneWorkload::SkewedStack => "skewed-stack",
        }
    }

    /// Prepared (symmetrized, self-looped, normalized) adjacency matrix.
    pub fn graph(self, cfg: &MclConfig) -> Csc<f64> {
        match self {
            LaneWorkload::Net(d) => bench_graph(d, cfg),
            LaneWorkload::SkewedStack => {
                use rand::{Rng, SeedableRng};
                let n = 600usize;
                let mut rng = rand::rngs::SmallRng::seed_from_u64(23);
                let mut t = hipmcl_sparse::Triples::new(n, n);
                for j in 0..n {
                    let deg = if j < 8 { n / 2 } else { 3 };
                    for _ in 0..deg {
                        t.push(
                            rng.gen_range(0..n) as hipmcl_sparse::Idx,
                            j as hipmcl_sparse::Idx,
                            rng.gen_range(0.5..1.5),
                        );
                    }
                }
                t.sum_duplicates();
                hipmcl_core::serial::prepare_matrix(&Csc::from_triples(&t), cfg)
            }
        }
    }

    /// Selection parameter matching [`bench_select`] for networks.
    pub fn select(self) -> usize {
        match self {
            LaneWorkload::Net(d) => bench_select(d),
            LaneWorkload::SkewedStack => 300,
        }
    }
}

/// One steal policy's outcome in the lane-steal ablation
/// (`probe_lane_steal`).
#[derive(Clone, Debug)]
pub struct LaneStealReport {
    /// Mean over ranks of host idle time, summed over iterations.
    pub cpu_idle: f64,
    /// Mean over ranks of device/pool idle time, summed over iterations.
    pub gpu_idle: f64,
    /// Mean over ranks of merge-lane idle time, summed over iterations.
    pub merge_lane_idle: f64,
    /// Merge operations submitted, summed over iterations (rank 0).
    pub merge_ops: u64,
    /// Merges that ran on a lane other than their pinned origin, summed
    /// over ranks and iterations (always 0 under [`StealPolicy::Off`]).
    pub stolen_merges: u64,
    /// Max over ranks of the final virtual clock.
    pub total_time: f64,
    /// Iterations executed.
    pub iterations: usize,
}

impl LaneStealReport {
    /// Total pipeline idle off the unified timelines.
    pub fn total_idle(&self) -> f64 {
        self.cpu_idle + self.gpu_idle + self.merge_lane_idle
    }
}

/// Runs a multi-iteration distributed MCL expansion loop under the given
/// merge-lane steal policy, reporting the idle decomposition and how many
/// merges actually moved off their pinned lane. Same loop shape as
/// [`run_merge_overlap_probe`] (CPU-pipelined preset, constrained budget
/// so several phases produce a real merge cadence); only the placement of
/// merges on the per-socket lanes varies with `steal` — operands never
/// change, which is what the cluster-equality gate checks.
pub fn run_lane_steal_probe(
    p: usize,
    w: LaneWorkload,
    kernel: MergeKernelPolicy,
    steal: StealPolicy,
    per_rank_budget: u64,
    max_iters: usize,
) -> LaneStealReport {
    let results =
        hipmcl_comm::Universe::run(p, hipmcl_comm::MachineModel::summit_bench(), move |comm| {
            let grid = ProcGrid::new(comm);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let mut cfg = MclConfig::cpu_pipelined(per_rank_budget);
            cfg.prune.select = w.select();
            cfg.max_iters = max_iters;
            cfg.summa.merge_kernel = kernel;
            cfg.summa.steal = steal;
            let global = (grid.world.rank() == 0).then(|| w.graph(&cfg).to_triples());
            let mut a = DistMatrix::scatter_from_root(&grid, global.as_ref());
            grid.world.reset_instrumentation();

            let mut cpu_idle = 0.0f64;
            let mut gpu_idle = 0.0f64;
            let mut lane_idle = 0.0f64;
            let mut merge_ops = 0u64;
            let mut stolen = 0u64;
            let mut iterations = 0usize;
            for _ in 0..cfg.max_iters {
                iterations += 1;
                let prune_params = cfg.prune;
                let out = {
                    let col_comm = &grid.col_comm;
                    hipmcl_summa::spgemm::summa_spgemm_with(
                        &grid,
                        &mut gpus,
                        &a,
                        &a,
                        &cfg.summa,
                        |_, slab| {
                            let (pruned, _stats) = prune_local_slab(col_comm, &slab, &prune_params);
                            col_comm.advance_clock(
                                col_comm.model().elementwise_time(slab.nnz() as u64),
                            );
                            pruned
                        },
                    )
                };
                cpu_idle += out.cpu_idle;
                gpu_idle += out.gpu_idle;
                lane_idle += out.merge_lane_idle;
                merge_ops += out.merge_stats.merge_ops as u64;
                stolen += out.merge_spans.iter().filter(|s| s.stolen).count() as u64;
                a = out.c;
                let chaos = dist_inflate_and_chaos(&grid, &mut a.local, cfg.inflation);
                if chaos < cfg.chaos_epsilon {
                    break;
                }
            }

            let idle = allreduce_sum_vec(&grid.world, vec![cpu_idle, gpu_idle, lane_idle]);
            let stolen = allreduce(&grid.world, stolen, |x, y| x + y);
            let total_time = allreduce(&grid.world, grid.world.now(), f64::max);
            LaneStealReport {
                cpu_idle: idle[0] / p as f64,
                gpu_idle: idle[1] / p as f64,
                merge_lane_idle: idle[2] / p as f64,
                merge_ops,
                stolen_merges: stolen,
                total_time,
                iterations,
            }
        });
    results.into_iter().next().unwrap()
}

/// One (network, fan-in) row of the merge-gap ablation
/// (`probe_merge_gap`): **real wall-clock** times, not virtual-clock
/// model times. This is the one probe that measures the merge kernels as
/// host code — the gap it tracks is the host-side accumulator gap the
/// BRMerge/SpAdd rewrite closes, which the Summit model cannot observe.
#[derive(Clone, Debug)]
pub struct MergeGapReport {
    /// Stage fan-in: how many overlapping SUMMA stage products merge.
    pub k: usize,
    /// Total input elements across the `k` stage products.
    pub total_in_elems: u64,
    /// Output nonzeros — identical across every configuration: kernels
    /// are bit-identical within a schedule, and the two schedules agree
    /// on sparsity structure exactly (asserted inside the probe).
    pub out_nnz: u64,
    /// Best-of-reps wall time of one k-way heap merge (original HipMCL's
    /// accumulator — the pre-PR `kway_merge` baseline).
    pub t_kway_heap: f64,
    /// Best-of-reps wall time of one k-way Hussain-style SpAdd merge
    /// through a persistent [`MergeArena`](hipmcl_summa::merge::MergeArena)
    /// (what `Auto` now picks at this fan-in).
    pub t_kway_spadd: f64,
    /// Best-of-reps wall time of the binary (Algorithm 2) stack under
    /// `Fixed(Pairwise)` — the pre-arena behavior, where every two-way
    /// merge allocated and materialized a fresh CSC block.
    pub t_binary_legacy: f64,
    /// Best-of-reps wall time of the binary stack under `Auto` — BRMerge
    /// folds into recycled arena slack (the merger persists across reps,
    /// modeling the pipeline's [`hipmcl_summa::merge::ArenaPool`] living
    /// across phases).
    pub t_binary_arena: f64,
    /// Elements of slab capacity the persistent arena retained at the
    /// end — bounded by twice its peak request (the no-leak invariant).
    pub arena_capacity_elems: usize,
    /// Largest single buffer request the arena ever served.
    pub arena_peak_request: usize,
}

impl MergeGapReport {
    /// The k-way baseline the engine actually runs: the faster of the
    /// heap and SpAdd k-way merges.
    pub fn t_kway(&self) -> f64 {
        self.t_kway_heap.min(self.t_kway_spadd)
    }

    /// Binary-vs-k-way gap before this PR: pairwise rematerializing
    /// stack over the k-way baseline (the ~1.6× EXPERIMENTS.md cites).
    pub fn legacy_ratio(&self) -> f64 {
        self.t_binary_legacy / self.t_kway()
    }

    /// Binary-vs-k-way gap after: arena-backed BRMerge stack over the
    /// same k-way baseline. The acceptance bar is ≤ 1.2.
    pub fn arena_ratio(&self) -> f64 {
        self.t_binary_arena / self.t_kway()
    }
}

/// Builds `k` genuine overlapping stage products of the scaled network's
/// expansion, exactly as Sparse SUMMA produces them: stage `i`
/// contributes `A(:, J_i) · A(J_i, :)`, so the products share output
/// support and sum to `A²`. Returned with the common output shape.
pub fn merge_gap_stage_products(d: Dataset, k: usize) -> (Vec<Csc<f64>>, (usize, usize)) {
    let cfg = bench_mcl_config_for(d, MclConfig::cpu_pipelined(3 << 20));
    let a = bench_graph(d, &cfg);
    let n = a.ncols();
    let at = a.transposed();
    let slabs = (0..k)
        .map(|i| {
            let cols = n * i / k..n * (i + 1) / k;
            let a_stage = a.column_slice(cols.clone());
            let b_stage = at.column_slice(cols).transposed();
            hipmcl_spgemm::hash::multiply(&a_stage, &b_stage)
        })
        .collect();
    (slabs, (n, n))
}

/// Asserts two merged results have identical sparsity structure and
/// values equal up to f64 roundoff — the cross-schedule guarantee (the
/// binary tree associates sums differently than one k-way pass; within
/// a schedule, kernels are bit-identical and checked with `==`).
fn assert_pattern_eq_values_close(a: &Csc<f64>, b: &Csc<f64>) {
    assert_eq!(a.colptr, b.colptr, "cross-schedule sparsity diverged");
    assert_eq!(a.rowidx, b.rowidx, "cross-schedule sparsity diverged");
    for (x, y) in a.vals.iter().zip(&b.vals) {
        let tol = 1e-12 * x.abs().max(y.abs()).max(1.0);
        assert!(
            (x - y).abs() <= tol,
            "cross-schedule value {x} vs {y} beyond roundoff"
        );
    }
}

/// Measures the real-time merge gap on one network at one fan-in: k-way
/// heap and k-way arena SpAdd against the binary stack in its legacy
/// (pairwise, rematerializing) and arena (`Auto`, BRMerge-into-slack)
/// forms. Each configuration merges the *same* stage products; the probe
/// asserts outputs are bit-identical within each schedule and
/// pattern-identical (values equal to roundoff) across schedules before
/// reporting times (best of `reps`).
pub fn run_merge_gap_probe(d: Dataset, k: usize, reps: usize) -> MergeGapReport {
    use hipmcl_comm::{MachineModel, MergeKernel};
    use hipmcl_sparse::PlusTimes;
    use hipmcl_summa::merge::{merge_algo, spadd_into, ColsRef, MergeArena, StackMerger};

    let (slabs, shape) = merge_gap_stage_products(d, k);
    let total_in_elems: u64 = slabs.iter().map(|m| m.nnz() as u64).sum();
    let reps = reps.max(1);

    let best_of = |mut f: Box<dyn FnMut() -> Csc<f64> + '_>| {
        let mut best = f64::INFINITY;
        let mut out = None;
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            let c = f();
            best = best.min(t0.elapsed().as_secs_f64());
            out = Some(c);
        }
        (best, out.unwrap())
    };

    let (t_kway_heap, c_heap) = best_of(Box::new(|| {
        merge_algo(MergeKernel::Heap).merge(&slabs, shape)
    }));

    // k-way SpAdd through a persistent arena: after the first rep the
    // epoch-stamped SPAs and the output slab come back from the free
    // list, which is exactly how the pipeline runs it across phases.
    let refs: Vec<ColsRef<'_, f64>> = slabs.iter().map(ColsRef::of).collect();
    let mut arena: MergeArena<f64> = MergeArena::new();
    let (t_kway_spadd, c_spadd) = best_of(Box::new(|| {
        let buf = spadd_into(PlusTimes::<f64>::new(), &refs, shape, &mut arena);
        let c = buf.to_csc();
        arena.release(buf);
        c
    }));

    // Binary stacks: pushes consume their inputs, so clone outside the
    // timed region. The legacy form rebuilds the merger every rep (it
    // kept no reusable state); the arena form keeps one merger alive so
    // its arena stays warm, as the pipeline's per-lane pool does. The
    // two forms' reps are interleaved so that, when the probe runs
    // inside a parallel test harness, CPU contention windows hit both
    // sides of the comparison instead of skewing one.
    let mut bm = StackMerger::new(MachineModel::summit(), MergeKernelPolicy::Auto, shape);
    let mut t_binary_legacy = f64::INFINITY;
    let mut t_binary_arena = f64::INFINITY;
    let mut c_legacy = None;
    let mut c_arena = None;
    for _ in 0..reps {
        let mats = slabs.clone();
        let mut lm = StackMerger::new(
            MachineModel::summit(),
            MergeKernelPolicy::Fixed(MergeKernel::Pairwise),
            shape,
        );
        let t0 = std::time::Instant::now();
        for m in mats {
            lm.push(m);
        }
        let c = lm.finish();
        t_binary_legacy = t_binary_legacy.min(t0.elapsed().as_secs_f64());
        c_legacy = Some(c);

        let mats = slabs.clone();
        let t0 = std::time::Instant::now();
        for m in mats {
            bm.push(m);
        }
        let c = bm.finish();
        t_binary_arena = t_binary_arena.min(t0.elapsed().as_secs_f64());
        c_arena = Some(c);
    }
    bm.arena().assert_no_capacity_leak();

    let (c_legacy, c_arena) = (c_legacy.unwrap(), c_arena.unwrap());
    // Bit-identity is a *kernel* contract: on the same merge inputs any
    // kernel produces the same bits. Across the two schedules the merge
    // *tree* differs (Algorithm 2 folds e.g. (s1..4 + s5..6) + s7 + s8),
    // so coincident f64 sums associate differently — pattern-identical,
    // equal to roundoff.
    assert_eq!(c_heap, c_spadd, "k-way SpAdd diverged from k-way heap");
    assert_eq!(
        c_legacy, c_arena,
        "binary arena kernels diverged from binary pairwise"
    );
    assert_pattern_eq_values_close(&c_heap, &c_legacy);

    MergeGapReport {
        k,
        total_in_elems,
        out_nnz: c_heap.nnz() as u64,
        t_kway_heap,
        t_kway_spadd,
        t_binary_legacy,
        t_binary_arena,
        arena_capacity_elems: bm.arena().capacity_elems(),
        arena_peak_request: bm.arena().peak_request(),
    }
}

/// Prints an aligned table: `headers` then rows of strings.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i.min(widths.len() - 1)]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Writes rows as CSV under `results/` (created on demand); returns the
/// path written.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> std::path::PathBuf {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results/");
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", headers.join(",")).unwrap();
    for row in rows {
        writeln!(f, "{}", row.join(",")).unwrap();
    }
    path
}

/// Formats seconds scaled to a friendly unit.
pub fn fmt_time(s: f64) -> String {
    if s >= 60.0 {
        format!("{:.2} min", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.2} µs", s * 1e6)
    }
}

/// Runs the scattered MCL workload for `d` with the given active-set
/// policy on the fully optimized bench configuration — one arm of the
/// `probe_active_set` ablation.
pub fn run_active_set_probe(
    p: usize,
    d: Dataset,
    policy: hipmcl_summa::ActiveSetPolicy,
) -> DistMclReport {
    let mut cfg = bench_mcl_config_for(d, MclConfig::optimized(4 << 30));
    cfg.active_set = policy;
    run_scattered(p, d, &cfg)
}

/// Summed modeled expansion + merge seconds over the final third of the
/// iterations — the tail where active-set shrinking should collapse the
/// expansion cost (the `probe_active_set` acceptance quantity).
pub fn final_third_expand_merge(r: &DistMclReport) -> f64 {
    let n = r.trace.len();
    let start = n - n.div_ceil(3);
    r.trace[start..]
        .iter()
        .map(|t| t.expansion_time + t.merge_time)
        .sum()
}

/// Paper-vs-measured footer used by every harness binary.
pub fn print_paper_note(lines: &[&str]) {
    println!();
    println!("paper reference:");
    for l in lines {
        println!("  {l}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_time_units() {
        assert_eq!(fmt_time(120.0), "2.00 min");
        assert_eq!(fmt_time(2.5), "2.50 s");
        assert_eq!(fmt_time(0.0025), "2.50 ms");
        assert_eq!(fmt_time(2.5e-6), "2.50 µs");
    }

    #[test]
    fn reductions_cover_all_datasets() {
        for d in Dataset::medium().into_iter().chain(Dataset::large()) {
            assert!(bench_reduction(d) > 0);
            let cfg = d.config(bench_reduction(d));
            assert!(cfg.n >= 64, "{} instance too small", d.name());
            assert!(
                cfg.n <= 20_000,
                "{} instance too large for the harness",
                d.name()
            );
        }
    }

    #[test]
    fn scattered_run_works_small() {
        let mut cfg = bench_mcl_config(MclConfig::optimized(u64::MAX));
        cfg.max_iters = 2;
        let r = run_scattered(4, Dataset::Archaea, &cfg);
        assert!(r.total_time > 0.0);
        assert!(r.iterations <= 2);
    }

    #[test]
    fn overlap_planner_idle_no_worse_than_memory_only() {
        // The probe_merge_overlap acceptance check: with a constrained
        // per-rank budget (so the memory floor sits above one phase), the
        // overlap-aware planner must (a) never pick fewer phases than the
        // memory floor — same peak-memory guarantee — and (b) end the run
        // with total pipeline idle (host + device + merge lanes) no worse
        // than the memory-only plan on both reference workloads, strictly
        // better in the planner's own objective where it deviates.
        let budget = 3 << 20;
        let iters = 3;
        let mut deviated = false;
        for d in [Dataset::Archaea, Dataset::Isom100_3] {
            let mem = run_merge_overlap_probe(
                4,
                d,
                MergeKernelPolicy::Auto,
                PhasePlanner::MemoryOnly,
                budget,
                iters,
            );
            let ovl = run_merge_overlap_probe(
                4,
                d,
                MergeKernelPolicy::Auto,
                PhasePlanner::OverlapAware {
                    max_extra_phases: 4,
                },
                budget,
                iters,
            );
            assert_eq!(mem.iterations, ovl.iterations);
            assert!(mem.decisions.is_empty(), "memory-only records no decision");
            assert_eq!(ovl.decisions.len(), ovl.iterations);
            for (dec, mem_phases) in ovl.decisions.iter().zip(&mem.phases) {
                assert_eq!(dec.memory_floor, *mem_phases, "same floor both ways");
                assert!(dec.phases >= dec.memory_floor, "never below the floor");
                let score_of = |h: usize| {
                    dec.scores
                        .iter()
                        .find(|(hh, _)| *hh == h)
                        .map(|(_, s)| *s)
                        .unwrap()
                };
                if dec.phases != dec.memory_floor {
                    deviated = true;
                    assert!(
                        score_of(dec.phases) < score_of(dec.memory_floor),
                        "deviating from the floor must strictly reduce modeled idle"
                    );
                }
            }
            assert!(
                ovl.total_idle() <= mem.total_idle() * (1.0 + 1e-9),
                "{}: overlap-aware idle {} must be <= memory-only idle {}",
                d.name(),
                ovl.total_idle(),
                mem.total_idle()
            );
        }
        assert!(
            deviated,
            "the budget should leave the planner real headroom on at least one workload"
        );
    }

    #[test]
    fn merge_kernel_choice_preserves_clusters() {
        // Satellite of the merge-task refactor: the per-merge kernel is a
        // performance choice only — all four policies must produce the
        // same clustering on the archaea workload end-to-end.
        use hipmcl_comm::MergeKernel;
        let run = |kernel: MergeKernelPolicy| {
            let mut cfg = bench_mcl_config(MclConfig::optimized(u64::MAX));
            cfg.summa.merge_kernel = kernel;
            cfg.max_iters = 3;
            run_scattered(4, Dataset::Archaea, &cfg)
        };
        let auto = run(MergeKernelPolicy::Auto);
        for kernel in MergeKernel::all() {
            let fixed = run(MergeKernelPolicy::Fixed(kernel));
            assert_eq!(auto.labels, fixed.labels, "{} diverged", kernel.name());
            assert_eq!(auto.num_clusters, fixed.num_clusters);
        }
    }

    #[test]
    fn cost_aware_steal_lane_idle_no_worse_than_pinning() {
        // The probe_lane_steal acceptance check: cost-aware stealing must
        // end the run with total merge-lane idle no worse than the legacy
        // submission-time pinning on both reference workloads, and
        // strictly lower on the skewed stack (whose uneven merges are the
        // regime stealing exists for). Merge counts must agree exactly:
        // stealing moves merges between lanes, never adds or drops one.
        // 9 ranks (a 3x3 grid): with three stages per phase the binary
        // merge cadence produces accumulated merges whose inputs are
        // homed on a lane, which is what gives the two policies room to
        // disagree — on a 2x2 grid every merge joins two home-less kernel
        // slabs and placement is forced.
        let budget = 3 << 20;
        let iters = 3;
        for w in [
            LaneWorkload::Net(Dataset::Archaea),
            LaneWorkload::Net(Dataset::Isom100_3),
            LaneWorkload::SkewedStack,
        ] {
            let off = run_lane_steal_probe(
                9,
                w,
                MergeKernelPolicy::Auto,
                StealPolicy::Off,
                budget,
                iters,
            );
            let on = run_lane_steal_probe(
                9,
                w,
                MergeKernelPolicy::Auto,
                StealPolicy::CostAware,
                budget,
                iters,
            );
            assert_eq!(off.iterations, on.iterations, "{}", w.name());
            assert_eq!(off.merge_ops, on.merge_ops, "{}", w.name());
            assert_eq!(off.stolen_merges, 0, "pinning never steals");
            assert!(
                on.merge_lane_idle <= off.merge_lane_idle * (1.0 + 1e-9),
                "{}: cost-aware lane idle {} must be <= pinned lane idle {}",
                w.name(),
                on.merge_lane_idle,
                off.merge_lane_idle
            );
            if matches!(w, LaneWorkload::SkewedStack) {
                assert!(
                    on.stolen_merges > 0,
                    "the skewed stack must trigger actual steals"
                );
                assert!(
                    on.merge_lane_idle < off.merge_lane_idle,
                    "skewed stack: cost-aware lane idle {} must be strictly below pinned {}",
                    on.merge_lane_idle,
                    off.merge_lane_idle
                );
            }
        }
    }

    #[test]
    fn steal_policy_preserves_clusters_across_merge_kernels() {
        // Stealing only moves *when and where* a merge runs on the
        // virtual clock, never its operands: cluster labels must be
        // bit-identical across both steal policies and every merge-kernel
        // policy.
        use hipmcl_comm::MergeKernel;
        let run = |steal: StealPolicy, kernel: MergeKernelPolicy| {
            let mut cfg = bench_mcl_config(MclConfig::optimized(u64::MAX));
            cfg.summa.steal = steal;
            cfg.summa.merge_kernel = kernel;
            cfg.max_iters = 3;
            run_scattered(4, Dataset::Archaea, &cfg)
        };
        let reference = run(StealPolicy::Off, MergeKernelPolicy::Auto);
        for steal in StealPolicy::all() {
            let mut kernels = vec![MergeKernelPolicy::Auto];
            kernels.extend(MergeKernel::all().into_iter().map(MergeKernelPolicy::Fixed));
            for kernel in kernels {
                let r = run(steal, kernel);
                assert_eq!(
                    reference.labels, r.labels,
                    "labels diverged under {steal:?} / {kernel:?}"
                );
                assert_eq!(reference.num_clusters, r.num_clusters);
            }
        }
    }

    #[test]
    fn hybrid_comm_modeled_time_no_worse_than_broadcast() {
        // The probe_comm_policy acceptance check: on both reference
        // workloads, the Hybrid policy's modeled comm time must not
        // exceed the all-broadcast baseline — per panel it takes the
        // model's argmin, so the sum can only tie or win — and on a 3×3
        // grid (α + 2βb flat vs 2α + 2βb tree) it must actually move
        // panels to flat sends and strictly win. Payloads are unchanged,
        // so both policies moved exactly the same panels.
        let iters = 3;
        for d in [Dataset::Archaea, Dataset::Isom100_3] {
            let bcast = run_comm_policy_probe(9, d, CommPolicy::Broadcast, iters);
            let hybrid = run_comm_policy_probe(9, d, CommPolicy::Hybrid, iters);
            assert_eq!(bcast.iterations, hybrid.iterations, "{}", d.name());
            assert_eq!(bcast.total_panels, hybrid.total_panels, "{}", d.name());
            assert_eq!(bcast.gather_panels, 0, "broadcast never sends flat");
            // Identical panels → identical all-tree baseline.
            assert!(
                (bcast.modeled_comm - hybrid.modeled_comm_broadcast).abs()
                    < 1e-9 * bcast.modeled_comm.max(1.0),
                "{}: baselines diverged {} vs {}",
                d.name(),
                bcast.modeled_comm,
                hybrid.modeled_comm_broadcast
            );
            assert!(
                hybrid.modeled_comm <= bcast.modeled_comm * (1.0 + 1e-9),
                "{}: hybrid modeled comm {} must be <= broadcast {}",
                d.name(),
                hybrid.modeled_comm,
                bcast.modeled_comm
            );
            assert!(hybrid.gather_panels > 0, "{}", d.name());
            assert!(
                hybrid.modeled_comm < bcast.modeled_comm,
                "{}: with panels on flat sends the win must be strict",
                d.name()
            );
        }
    }

    #[test]
    fn comm_policy_preserves_clusters() {
        // How a panel travels never changes what arrives: cluster labels
        // must be bit-identical under both comm policies.
        let run = |policy: CommPolicy| {
            let mut cfg = bench_mcl_config(MclConfig::optimized(u64::MAX));
            cfg.summa.comm = policy;
            cfg.max_iters = 3;
            run_scattered(4, Dataset::Archaea, &cfg)
        };
        let bcast = run(CommPolicy::Broadcast);
        let hybrid = run(CommPolicy::Hybrid);
        assert_eq!(bcast.labels, hybrid.labels);
        assert_eq!(bcast.num_clusters, hybrid.num_clusters);
        assert_eq!(bcast.iterations, hybrid.iterations);
    }

    #[test]
    fn active_set_shrinks_the_tail_without_changing_clusters() {
        // The probe_active_set acceptance check: on Archaea at 9 ranks
        // the dual settle criterion (chaos AND feedback row mass below
        // epsilon) must leave the cluster labels bit-identical, and the
        // summed modeled expansion + merge time over the final third of
        // the iterations must be strictly lower with shrinking on — the
        // frozen columns stop paying SpGEMM cost.
        use hipmcl_summa::ActiveSetPolicy;
        let off = run_active_set_probe(9, Dataset::Archaea, ActiveSetPolicy::Off);
        let on = run_active_set_probe(9, Dataset::Archaea, ActiveSetPolicy::shrink());
        assert_eq!(off.labels, on.labels, "shrinking changed the clusters");
        assert_eq!(off.num_clusters, on.num_clusters);
        assert!(on.frozen_cols > 0, "the workload must actually shrink");
        assert_eq!(on.frozen_cols + on.active_cols, off.active_cols);
        let full = final_third_expand_merge(&off);
        let shrunk = final_third_expand_merge(&on);
        assert!(
            shrunk < full,
            "final-third expansion+merge must strictly win: {shrunk} vs {full}"
        );
        // The trace accounts for every column on every iteration.
        for it in &on.trace {
            assert_eq!(
                it.active_cols + it.frozen_cols,
                off.active_cols as u64,
                "active + frozen must partition the columns"
            );
        }
    }

    #[test]
    fn adaptive_split_idle_no_worse_than_fixed() {
        // The probe_hybrid_split acceptance check: on a multi-iteration
        // MCL run whose stage densities vary (expansion densifies, pruning
        // thins), the adaptive policy's total hybrid idle time — CPU idle
        // plus device+pool idle off the unified timelines — must not
        // exceed the legacy fixed-0.85 split's.
        let iters = 4;
        let fixed = run_hybrid_split_probe(4, Dataset::Archaea, SplitPolicy::Fixed(0.85), iters);
        let adaptive = run_hybrid_split_probe(4, Dataset::Archaea, SplitPolicy::Adaptive, iters);
        assert!(!fixed.fractions.is_empty());
        assert!(fixed.fractions.iter().all(|&f| (f - 0.85).abs() < 0.05));
        assert!(!adaptive.fractions.is_empty());
        assert!(adaptive.fractions.iter().all(|&f| (0.0..=1.0).contains(&f)));
        assert!(
            adaptive.total_idle() <= fixed.total_idle() * (1.0 + 1e-9),
            "adaptive idle {} must be <= fixed-0.85 idle {}",
            adaptive.total_idle(),
            fixed.total_idle()
        );
    }

    #[test]
    fn merge_gap_arena_stack_not_slower_than_legacy() {
        // The probe_merge_gap acceptance check, in its robust in-test
        // form: the arena-backed binary stack (Auto → BRMerge into
        // recycled slack) must not lose to the legacy rematerializing
        // pairwise stack on the same stage products. The committed CSV
        // additionally holds the absolute arena_ratio ≤ 1.2 bar; here we
        // gate on the relative comparison, which is stable across hosts.
        // Bit-identity of all four configurations is asserted inside
        // run_merge_gap_probe itself.
        let r = run_merge_gap_probe(Dataset::Archaea, 4, 5);
        assert!(r.out_nnz > 0);
        assert!(r.total_in_elems >= r.out_nnz);
        // Standalone the arena stack measures ~0.85× legacy here; the
        // 15% allowance absorbs scheduler noise from the parallel test
        // harness on small hosts (reps are interleaved inside the probe
        // for the same reason).
        assert!(
            r.t_binary_arena <= r.t_binary_legacy * 1.15,
            "arena binary stack {}s must not exceed legacy binary stack {}s by >15%",
            r.t_binary_arena,
            r.t_binary_legacy
        );
        // The persistent arena obeys the no-leak bound: retained slab
        // capacity stays within twice its peak request.
        assert!(r.arena_peak_request > 0);
        assert!(r.arena_capacity_elems <= 2 * r.arena_peak_request);
    }

    #[test]
    fn merge_peak_elems_is_schedule_not_kernel_determined() {
        // The peak merge working set is a property of the binary
        // *schedule* (how many slabs coexist), not of which accumulator
        // runs each merge — so Auto (BRMerge/SpAdd arena kernels) must
        // report exactly the peak that the heap kernel does on the same
        // run. Guards against the arena staging buffers ever leaking
        // into the memory accounting.
        let planner = PhasePlanner::MemoryOnly;
        let budget = 3u64 << 20;
        let heap = run_merge_overlap_probe(
            4,
            Dataset::Archaea,
            MergeKernelPolicy::Fixed(hipmcl_comm::MergeKernel::Heap),
            planner,
            budget,
            2,
        );
        let auto = run_merge_overlap_probe(
            4,
            Dataset::Archaea,
            MergeKernelPolicy::Auto,
            planner,
            budget,
            2,
        );
        assert_eq!(heap.peak_merge_elems, auto.peak_merge_elems);
        assert_eq!(heap.merge_ops, auto.merge_ops);
        assert_eq!(heap.phases, auto.phases);
    }
}
