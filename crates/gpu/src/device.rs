//! The virtual-timeline device.
//!
//! A [`Device`] models one V100: a FIFO kernel queue (one kernel at a
//! time, like a saturating SpGEMM grid), a copy engine for H2D/D2H
//! transfers that runs concurrently with kernels, and 16 GB of tracked
//! memory. All methods take and return *virtual timestamps* (seconds on
//! the owning rank's clock); the caller (Pipelined Sparse SUMMA) threads
//! its host clock through and overlaps against the returned events.
//!
//! The accounting deliberately mirrors §III's timeline (Fig. 2):
//!
//! * `h2d` blocks the *host* until the transfer completes — "the CPU only
//!   needs to wait for the transfer of the input matrices".
//! * `launch` never blocks the host; it returns an [`Event`] whose
//!   timestamp is when the kernel will have finished.
//! * `d2h` starts when both the kernel's event and the host are ready.
//! * GPU idle time (Table V) accumulates whenever the kernel queue starts
//!   a kernel later than it became free.

use hipmcl_comm::{GpuLib, MachineModel, SpgemmKernel, Timeline};

pub use hipmcl_comm::Event;

/// Errors surfaced by the device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceError {
    /// An allocation would exceed device memory.
    OutOfMemory {
        /// Bytes requested by the failing allocation.
        requested: usize,
        /// Bytes still free.
        free: usize,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::OutOfMemory { requested, free } => {
                write!(
                    f,
                    "device out of memory: requested {requested} B, free {free} B"
                )
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// One simulated GPU.
#[derive(Clone, Debug)]
pub struct Device {
    model: MachineModel,
    mem_capacity: usize,
    mem_used: usize,
    peak_mem: usize,
    /// Kernel queue: one kernel at a time, gaps between kernels are the
    /// Table V "GPU idle" quantity.
    kernel_queue: Timeline,
    /// Copy engine, concurrent with the kernel queue.
    copy_engine: Timeline,
}

/// Default V100 memory capacity (16 GB, Summit's variant).
pub const V100_MEMORY: usize = 16 * 1024 * 1024 * 1024;

impl Device {
    /// Creates a device with the given memory capacity.
    pub fn new(model: MachineModel, mem_capacity: usize) -> Self {
        Self {
            model,
            mem_capacity,
            mem_used: 0,
            peak_mem: 0,
            kernel_queue: Timeline::new(),
            copy_engine: Timeline::new(),
        }
    }

    /// A V100-sized device.
    pub fn v100(model: MachineModel) -> Self {
        Self::new(model, V100_MEMORY)
    }

    /// Allocates `bytes` of device memory.
    pub fn alloc(&mut self, bytes: usize) -> Result<(), DeviceError> {
        let free = self.mem_capacity - self.mem_used;
        if bytes > free {
            return Err(DeviceError::OutOfMemory {
                requested: bytes,
                free,
            });
        }
        self.mem_used += bytes;
        self.peak_mem = self.peak_mem.max(self.mem_used);
        Ok(())
    }

    /// Frees `bytes` of device memory.
    pub fn free(&mut self, bytes: usize) {
        debug_assert!(bytes <= self.mem_used, "freeing more than allocated");
        self.mem_used = self.mem_used.saturating_sub(bytes);
    }

    /// Bytes currently allocated.
    pub fn mem_used(&self) -> usize {
        self.mem_used
    }

    /// High-water mark of allocations.
    pub fn peak_mem(&self) -> usize {
        self.peak_mem
    }

    /// Host→device transfer of `bytes`, starting when both the host
    /// (`host_now`) and the copy engine are ready. Allocates the bytes.
    /// Returns the completion time — which is also when the *host*
    /// regains control (synchronous transfer, as in the paper's pipeline).
    pub fn h2d(&mut self, host_now: f64, bytes: usize) -> Result<f64, DeviceError> {
        self.alloc(bytes)?;
        Ok(self
            .copy_engine
            .submit(host_now, self.model.link_time(bytes))
            .at)
    }

    /// Launches an SpGEMM kernel that may start at `ready` (typically the
    /// input transfer's completion). Does not block the host. The returned
    /// event carries the kernel's completion time.
    pub fn launch_spgemm(&mut self, ready: f64, lib: GpuLib, flops: u64, cf: f64) -> Event {
        // Duration for a single device: the model's Gpu kernel time is for
        // a full rank (all `gpus` devices); scale back to one device.
        let rate = self.model.gpu_spgemm_rate(lib, cf);
        let dur = self.model.link_alpha + flops as f64 / rate;
        self.kernel_queue.submit(ready, dur)
    }

    /// Generic kernel occupying the queue for `dur` seconds from `ready`.
    pub fn launch_generic(&mut self, ready: f64, dur: f64) -> Event {
        self.kernel_queue.submit(ready, dur)
    }

    /// Device→host transfer of `bytes`, gated on `after` (the producing
    /// kernel's event) and the host (`host_now`). Returns completion time;
    /// the caller frees the buffers explicitly.
    pub fn d2h(&mut self, host_now: f64, after: Event, bytes: usize) -> f64 {
        self.copy_engine
            .submit(host_now.max(after.at), self.model.link_time(bytes))
            .at
    }

    /// Accumulated kernel-queue idle time (gaps between kernels) — the
    /// "GPU idle time" column of Table V.
    pub fn idle_time(&self) -> f64 {
        self.kernel_queue.idle_time()
    }

    /// Number of kernels launched.
    pub fn kernels_launched(&self) -> usize {
        self.kernel_queue.jobs()
    }

    /// Time at which the device finishes everything currently queued.
    pub fn quiescent_at(&self) -> f64 {
        self.kernel_queue
            .busy_until()
            .max(self.copy_engine.busy_until())
    }

    /// The machine model this device was built with.
    pub fn model(&self) -> &MachineModel {
        &self.model
    }

    /// Resets timeline and idle accounting, keeping memory state.
    pub fn reset_timeline(&mut self) {
        self.kernel_queue.reset();
        self.copy_engine.reset();
    }
}

/// Reports the modeled duration of a local SpGEMM on the CPU, for the
/// selection logic and for CPU-fallback paths (kept here so callers use
/// one entry point for both targets).
pub fn cpu_spgemm_duration(model: &MachineModel, kernel: SpgemmKernel, flops: u64, cf: f64) -> f64 {
    model.spgemm_time(kernel, flops, cf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::new(MachineModel::summit(), 1 << 20) // 1 MiB toy device
    }

    #[test]
    fn alloc_free_tracks_peak() {
        let mut d = dev();
        d.alloc(1000).unwrap();
        d.alloc(2000).unwrap();
        assert_eq!(d.mem_used(), 3000);
        d.free(1000);
        assert_eq!(d.mem_used(), 2000);
        assert_eq!(d.peak_mem(), 3000);
    }

    #[test]
    fn alloc_over_capacity_errors() {
        let mut d = dev();
        let err = d.alloc(2 << 20).unwrap_err();
        match err {
            DeviceError::OutOfMemory { requested, free } => {
                assert_eq!(requested, 2 << 20);
                assert_eq!(free, 1 << 20);
            }
        }
    }

    #[test]
    fn h2d_blocks_host_for_transfer_only() {
        let mut d = dev();
        let done = d.h2d(1.0, 1000).unwrap();
        let expect = 1.0 + d.model().link_time(1000);
        assert!((done - expect).abs() < 1e-12);
        assert_eq!(d.mem_used(), 1000);
    }

    #[test]
    fn kernels_queue_fifo() {
        let mut d = dev();
        let e1 = d.launch_spgemm(0.0, GpuLib::Nsparse, 1_000_000, 50.0);
        // Second kernel ready immediately but must wait for the first.
        let e2 = d.launch_spgemm(0.0, GpuLib::Nsparse, 1_000_000, 50.0);
        assert!(e2.at > e1.at);
        assert!(
            (e2.at - 2.0 * e1.at).abs() < 1e-9,
            "equal kernels, back to back"
        );
        assert_eq!(d.idle_time(), 0.0, "no gap between kernels");
    }

    #[test]
    fn idle_time_accumulates_gaps() {
        let mut d = dev();
        let e1 = d.launch_generic(0.0, 1.0);
        assert_eq!(e1.at, 1.0);
        let e2 = d.launch_generic(3.0, 1.0); // 2 s gap
        assert_eq!(e2.at, 4.0);
        assert!((d.idle_time() - 2.0).abs() < 1e-12);
        assert_eq!(d.kernels_launched(), 2);
    }

    #[test]
    fn d2h_waits_for_kernel_and_host() {
        let mut d = dev();
        let ev = d.launch_generic(0.0, 5.0);
        let done = d.d2h(1.0, ev, 1000);
        assert!(done >= 5.0 + d.model().link_time(1000) - 1e-12);
        // Host later than kernel: host gates.
        let ev2 = d.launch_generic(5.0, 0.1);
        let done2 = d.d2h(100.0, ev2, 10);
        assert!(done2 >= 100.0);
    }

    #[test]
    fn copy_engine_serializes_transfers() {
        let mut d = dev();
        let t1 = d.h2d(0.0, 100_000).unwrap();
        let t2 = d.h2d(0.0, 100_000).unwrap();
        assert!(t2 > t1, "second transfer queues behind the first");
    }

    #[test]
    fn h2d_oom_is_an_error_not_a_panic() {
        let mut d = dev();
        let err = d.h2d(0.0, 2 << 20).unwrap_err(); // bigger than the device
        assert!(matches!(err, DeviceError::OutOfMemory { .. }));
        // The failed transfer must not occupy the copy engine or leak
        // memory — callers degrade to a CPU kernel and carry on.
        assert_eq!(d.mem_used(), 0);
        assert_eq!(d.quiescent_at(), 0.0);
    }

    #[test]
    fn transfers_overlap_kernels() {
        let mut d = dev();
        let ev = d.launch_generic(0.0, 10.0); // long kernel
        let t = d.h2d(0.0, 1000).unwrap(); // copy engine is free
        assert!(t < ev.at, "copy engine must not wait for the kernel queue");
    }

    #[test]
    fn reset_timeline_keeps_memory() {
        let mut d = dev();
        d.alloc(500).unwrap();
        d.launch_generic(0.0, 1.0);
        d.reset_timeline();
        assert_eq!(d.mem_used(), 500);
        assert_eq!(d.idle_time(), 0.0);
        assert_eq!(d.quiescent_at(), 0.0);
    }
}
