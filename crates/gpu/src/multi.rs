//! Multi-GPU management on a node (§III-A).
//!
//! HipMCL keeps one MPI rank per node and drives all GPUs from it
//! (the "thread-based" setting that wins in Fig. 5). The local
//! `C = A · B` is split by *copying `A` to every device and dividing the
//! columns of `B` evenly* — each GPU computes a column slab of `C`, so
//! assembling the final output is a trivial horizontal concatenation.
//!
//! Virtual-time semantics per §III: the host blocks until the *input
//! transfers* complete (all devices, which transfer in parallel over their
//! own links), kernels run asynchronously, and the output slabs come back
//! with D2H transfers gated on each device's kernel event.

use crate::device::{Device, DeviceError};
use hipmcl_comm::{GpuLib, MachineModel};
use hipmcl_sparse::util::even_chunk;
use hipmcl_sparse::{Csc, PlusTimes, Semiring, Value};

/// The set of devices owned by one rank.
pub struct MultiGpu {
    /// The devices, all built from the same machine model.
    pub devices: Vec<Device>,
}

/// Outcome of one multi-GPU local multiplication.
#[derive(Debug)]
pub struct LaunchResult<T: Value = f64> {
    /// The (real, verified) product `A · B`.
    pub c: Csc<T>,
    /// Virtual time at which all input transfers completed — the host may
    /// proceed (to the next SUMMA broadcast) from this moment.
    pub inputs_transferred_at: f64,
    /// Virtual time at which the full output has landed back on the host —
    /// merging may start from this moment.
    pub output_ready_at: f64,
    /// Total flops of the multiplication.
    pub flops: u64,
    /// Compression factor realized by the multiplication.
    pub cf: f64,
}

impl MultiGpu {
    /// Creates `n` devices with the given per-device memory capacity.
    pub fn new(model: MachineModel, n: usize, mem_per_device: usize) -> Self {
        Self {
            devices: (0..n)
                .map(|_| Device::new(model.clone(), mem_per_device))
                .collect(),
        }
    }

    /// Creates the Summit configuration: `model.gpus` V100s.
    pub fn summit_node(model: &MachineModel) -> Self {
        Self::new(model.clone(), model.gpus, crate::device::V100_MEMORY)
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// `true` if the rank has no devices (CPU-only configuration).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Total GPU idle time across devices (Table V's GPU column).
    pub fn total_idle(&self) -> f64 {
        self.devices.iter().map(Device::idle_time).sum()
    }

    /// Resets all device timelines.
    pub fn reset_timelines(&mut self) {
        for d in &mut self.devices {
            d.reset_timeline();
        }
    }

    /// Runs `C = A · B` split across all devices, starting at host virtual
    /// time `host_now`, in the given semiring. See module docs for the
    /// timeline semantics.
    ///
    /// Fails with [`DeviceError::OutOfMemory`] if any device cannot hold
    /// its inputs plus its output slab — callers fall back to the CPU
    /// kernel or to more SUMMA phases.
    pub fn multiply_in<S: Semiring>(
        &mut self,
        s: S,
        host_now: f64,
        a: &Csc<S::Elem>,
        b: &Csc<S::Elem>,
        lib: GpuLib,
    ) -> Result<LaunchResult<S::Elem>, DeviceError> {
        assert!(!self.is_empty(), "no devices on this rank");
        let g = self.devices.len();
        let n = b.ncols();

        let mut slabs: Vec<Csc<S::Elem>> = Vec::with_capacity(g);
        let mut inputs_done = host_now;
        let mut outputs_done = host_now;
        let mut total_flops = 0u64;
        let mut total_out = 0u64;

        for (d, dev) in self.devices.iter_mut().enumerate() {
            let cols = even_chunk(n, g, d);
            let b_slab = b.column_slice(cols);
            let flops = hipmcl_spgemm::flops(a, &b_slab);

            // Input transfer: A + the B slab. Devices transfer in parallel
            // (independent links); each starts when the host initiates.
            let in_bytes = a.bytes() + b_slab.bytes();
            let t_in = dev.h2d(host_now, in_bytes)?;
            inputs_done = inputs_done.max(t_in);

            // Real kernel execution (host-side, verified), modeled duration.
            let c_slab = crate::libs::multiply_csc_in(s, a, &b_slab, lib);
            let cf = if c_slab.nnz() == 0 {
                1.0
            } else {
                flops as f64 / c_slab.nnz() as f64
            };
            let out_bytes = c_slab.bytes();
            dev.alloc(out_bytes)?;
            let ev = dev.launch_spgemm(t_in, lib, flops, cf);

            // Output transfer back, then the device buffers are freed
            // (§III: GPU memory holds a single multiplication at a time).
            let t_out = dev.d2h(t_in, ev, out_bytes);
            dev.free(in_bytes + out_bytes);
            outputs_done = outputs_done.max(t_out);

            total_flops += flops;
            total_out += c_slab.nnz() as u64;
            slabs.push(c_slab);
        }

        let c = Csc::hcat(&slabs);
        let cf = if total_out == 0 {
            1.0
        } else {
            total_flops as f64 / total_out as f64
        };
        Ok(LaunchResult {
            c,
            inputs_transferred_at: inputs_done,
            output_ready_at: outputs_done,
            flops: total_flops,
            cf,
        })
    }

    /// [`MultiGpu::multiply_in`] with the plus-times semiring.
    pub fn multiply<T: Value>(
        &mut self,
        host_now: f64,
        a: &Csc<T>,
        b: &Csc<T>,
        lib: GpuLib,
    ) -> Result<LaunchResult<T>, DeviceError>
    where
        PlusTimes<T>: Semiring<Elem = T>,
    {
        self.multiply_in(PlusTimes::new(), host_now, a, b, lib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmcl_spgemm::testutil::random_csc;

    fn multi(n: usize) -> MultiGpu {
        MultiGpu::new(MachineModel::summit(), n, 1 << 30)
    }

    #[test]
    fn result_matches_cpu_kernel_any_device_count() {
        let a = random_csc(30, 30, 250, 21);
        let want = hipmcl_spgemm::hash::multiply(&a, &a);
        for g in [1usize, 2, 3, 6] {
            let mut m = multi(g);
            let r = m.multiply(0.0, &a, &a, GpuLib::Nsparse).unwrap();
            assert!(r.c.max_abs_diff(&want) < 1e-9, "g={g}");
            assert_eq!(r.c.nnz(), want.nnz(), "g={g}");
        }
    }

    #[test]
    fn timeline_ordering() {
        let a = random_csc(20, 20, 150, 22);
        let mut m = multi(2);
        let r = m.multiply(1.0, &a, &a, GpuLib::Nsparse).unwrap();
        assert!(r.inputs_transferred_at > 1.0);
        assert!(r.output_ready_at > r.inputs_transferred_at);
        assert!(r.flops > 0);
        assert!(r.cf >= 1.0);
    }

    #[test]
    fn device_memory_freed_after_multiply() {
        let a = random_csc(20, 20, 100, 23);
        let mut m = multi(3);
        m.multiply(0.0, &a, &a, GpuLib::Rmerge2).unwrap();
        for d in &m.devices {
            assert_eq!(d.mem_used(), 0, "buffers must be freed");
            assert!(d.peak_mem() > 0, "something was staged");
        }
    }

    #[test]
    fn oom_on_tiny_device() {
        let a = random_csc(100, 100, 4000, 24);
        let mut m = MultiGpu::new(MachineModel::summit(), 1, 64); // 64 bytes
        let err = m.multiply(0.0, &a, &a, GpuLib::Nsparse).unwrap_err();
        matches!(err, DeviceError::OutOfMemory { .. });
    }

    #[test]
    fn more_devices_finish_sooner() {
        let a = random_csc(200, 200, 8000, 25);
        let t = |g: usize| {
            let mut m = multi(g);
            m.multiply(0.0, &a, &a, GpuLib::Nsparse)
                .unwrap()
                .output_ready_at
        };
        assert!(t(6) < t(1), "6 GPUs should beat 1");
    }

    #[test]
    fn summit_node_has_six_devices() {
        let m = MultiGpu::summit_node(&MachineModel::summit());
        assert_eq!(m.len(), 6);
    }
}
