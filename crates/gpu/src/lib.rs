//! Simulated accelerator for `hipmcl-rs`.
//!
//! The paper offloads HipMCL's local SpGEMM to NVIDIA V100s through three
//! CUDA libraries (`bhsparse`, `nsparse`, `rmerge2`). This reproduction has
//! no GPUs, so the crate provides (DESIGN.md substitution table):
//!
//! * [`device::Device`] — a virtual-timeline device: 16 GB tracked memory,
//!   a FIFO kernel queue and a copy engine, H2D/D2H transfers charged at
//!   NVLink rates. Kernels *execute for real* (on the host, inline) while
//!   their *duration* comes from the machine model; the returned event
//!   timestamps are what the Pipelined Sparse SUMMA overlaps against. The
//!   key property of §III is preserved: the host blocks only for the
//!   transfer, never for the kernel.
//! * [`libs`] — real Rust re-implementations of the three libraries'
//!   algorithmic cores, all row-parallel over CSR like their CUDA
//!   originals: expand–sort–compress (`bhsparse`), binned hash
//!   accumulation (`nsparse`), iterative row merging (`rmerge2`).
//! * [`multi`] — multi-GPU work splitting (§III-A): copy A to every
//!   device, split B's columns evenly, concatenate the partial outputs.
//! * [`select`] — the paper's kernel-selection recipe: `flops` decides
//!   CPU vs GPU, `cf` picks the library.
//!
//! The §III-B storage-format observation is honoured throughout: CSC
//! operands are handed to the CSR kernels as their transposes
//! (`Cᵀ = Bᵀ·Aᵀ`), so no physical format conversion ever happens.

pub mod device;
pub mod libs;
pub mod multi;
pub mod select;

pub use device::{Device, DeviceError, Event};
pub use select::{select_kernel, SelectionPolicy};
