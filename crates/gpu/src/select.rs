//! The paper's kernel-selection recipe (§III, §VI, Fig. 4's `hybrid`).
//!
//! Two metrics drive the choice: `flops` decides *where* (a multiplication
//! too small to saturate a GPU's threads stays on the CPU), `cf` decides
//! *which* kernel. On the GPU, `nsparse` wins at large `cf` and `rmerge2`
//! at small `cf`; on the CPU, hash beats heap above a small `cf`
//! crossover.

use hipmcl_comm::{GpuLib, SpgemmKernel};
use hipmcl_spgemm::MultAnalysis;

/// Tunable thresholds of the hybrid selection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SelectionPolicy {
    /// Below this many flops the GPU cannot be saturated — stay on CPU.
    /// (A V100 runs 5120 CUDA cores; the default asks for ~200 products
    /// per core before offloading.)
    pub gpu_flops_threshold: u64,
    /// `cf` at which `nsparse` overtakes `rmerge2` on the GPU.
    pub gpu_cf_crossover: f64,
    /// `cf` at which hash overtakes heap on the CPU.
    pub cpu_cf_crossover: f64,
}

impl Default for SelectionPolicy {
    fn default() -> Self {
        Self {
            gpu_flops_threshold: 1_000_000,
            gpu_cf_crossover: 2.0,
            cpu_cf_crossover: hipmcl_spgemm::hybrid::HEAP_HASH_CF_CROSSOVER,
        }
    }
}

impl SelectionPolicy {
    /// A policy that offloads everything possible to the GPU — used by the
    /// scaled-down experiments whose absolute flops are far below Summit
    /// saturation sizes.
    pub fn always_gpu() -> Self {
        Self {
            gpu_flops_threshold: 0,
            ..Self::default()
        }
    }

    /// A CPU-only policy (optimized HipMCL on nodes without accelerators):
    /// heap/hash chosen by `cf` (§VI).
    pub fn cpu_only() -> Self {
        Self {
            gpu_flops_threshold: u64::MAX,
            ..Self::default()
        }
    }

    /// Original HipMCL's policy: always the heap kernel on the CPU — hash
    /// accumulation *is* one of the paper's optimizations, so the baseline
    /// must not use it.
    pub fn original_heap() -> Self {
        Self {
            gpu_flops_threshold: u64::MAX,
            cpu_cf_crossover: f64::INFINITY,
            ..Self::default()
        }
    }
}

/// Picks the kernel for a multiplication with the given analysis.
pub fn select_kernel(
    analysis: &MultAnalysis,
    policy: &SelectionPolicy,
    gpus_available: usize,
) -> SpgemmKernel {
    let cf = analysis.cf();
    if gpus_available == 0 || analysis.flops < policy.gpu_flops_threshold {
        if cf < policy.cpu_cf_crossover {
            SpgemmKernel::CpuHeap
        } else {
            SpgemmKernel::CpuHash
        }
    } else if cf < policy.gpu_cf_crossover {
        SpgemmKernel::Gpu(GpuLib::Rmerge2)
    } else {
        SpgemmKernel::Gpu(GpuLib::Nsparse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analysis(flops: u64, nnz: u64) -> MultAnalysis {
        MultAnalysis {
            flops,
            nnz_out: nnz,
        }
    }

    #[test]
    fn small_multiplications_stay_on_cpu() {
        let p = SelectionPolicy::default();
        let k = select_kernel(&analysis(1000, 10), &p, 6);
        assert!(matches!(k, SpgemmKernel::CpuHash));
    }

    #[test]
    fn tiny_cf_on_cpu_uses_heap() {
        let p = SelectionPolicy::default();
        let k = select_kernel(&analysis(1000, 900), &p, 6);
        assert_eq!(k, SpgemmKernel::CpuHeap);
    }

    #[test]
    fn big_high_cf_goes_to_nsparse() {
        let p = SelectionPolicy::default();
        let k = select_kernel(&analysis(100_000_000, 1_000_000), &p, 6);
        assert_eq!(k, SpgemmKernel::Gpu(GpuLib::Nsparse));
    }

    #[test]
    fn big_low_cf_goes_to_rmerge2() {
        let p = SelectionPolicy::default();
        let k = select_kernel(&analysis(100_000_000, 90_000_000), &p, 6);
        assert_eq!(k, SpgemmKernel::Gpu(GpuLib::Rmerge2));
    }

    #[test]
    fn no_gpus_means_cpu_regardless_of_size() {
        let p = SelectionPolicy::default();
        let k = select_kernel(&analysis(100_000_000, 1_000_000), &p, 0);
        assert_eq!(k, SpgemmKernel::CpuHash);
    }

    #[test]
    fn policy_presets() {
        let a = analysis(100, 10);
        assert!(matches!(
            select_kernel(&a, &SelectionPolicy::always_gpu(), 6),
            SpgemmKernel::Gpu(_)
        ));
        assert!(matches!(
            select_kernel(&a, &SelectionPolicy::cpu_only(), 6),
            SpgemmKernel::CpuHash | SpgemmKernel::CpuHeap
        ));
    }
}
