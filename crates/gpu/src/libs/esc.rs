//! `bhsparse` analogue: expand–sort–compress (ESC) SpGEMM
//! (Liu & Vinter, IPDPS 2014; Dalton/Olson/Bell, ACM TOMS 2015).
//!
//! Phase 1 *expands* every nontrivial product `a_ik · b_kj` of an output
//! row into an explicit `(col, val)` list (size = the row's flops); phase 2
//! *sorts* the list by column; phase 3 *compresses* runs of equal columns
//! by summation. On a GPU the three phases map onto massively parallel
//! primitives (scans, bitonic/radix sorts); here each output row runs the
//! three phases in a rayon task, with the expansion buffer reused per
//! worker. Work per row is `O(flops · lg flops)` — the sort makes ESC the
//! most memory-hungry and (at high `cf`) slowest of the three libraries,
//! matching its mid-pack showing in the paper's Fig. 4.

use super::{build_csr_from_rows, RowOut};
use hipmcl_sparse::{Csr, Idx, PlusTimes, Semiring, Value};
use rayon::prelude::*;

/// Multiplies `C = A · B` (CSR) with expand–sort–compress rows, in the
/// given semiring.
pub fn multiply_in<S: Semiring>(s: S, a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem> {
    let rows: Vec<RowOut<S::Elem>> = (0..a.nrows())
        .into_par_iter()
        .map_with(Vec::<(Idx, S::Elem)>::new(), |expand_buf, i| {
            expand_row(s, a, b, i, expand_buf);
            sort_compress(s, expand_buf)
        })
        .collect();
    build_csr_from_rows(a.nrows(), b.ncols(), rows)
}

/// [`multiply_in`] with the plus-times semiring.
pub fn multiply<T: Value>(a: &Csr<T>, b: &Csr<T>) -> Csr<T>
where
    PlusTimes<T>: Semiring<Elem = T>,
{
    multiply_in(PlusTimes::new(), a, b)
}

/// Expansion: materializes all products contributing to output row `i`.
fn expand_row<S: Semiring>(
    _s: S,
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    i: usize,
    buf: &mut Vec<(Idx, S::Elem)>,
) {
    buf.clear();
    let (acols, avals) = (a.row_cols(i), a.row_vals(i));
    for (idx, &k) in acols.iter().enumerate() {
        let av = avals[idx];
        let k = k as usize;
        let (bcols, bvals) = (b.row_cols(k), b.row_vals(k));
        for (bi, &c) in bcols.iter().enumerate() {
            buf.push((c, S::mul(av, bvals[bi])));
        }
    }
}

/// Sort + compress: orders products by column and combines duplicate runs
/// with the semiring's addition.
fn sort_compress<S: Semiring>(_s: S, buf: &mut [(Idx, S::Elem)]) -> RowOut<S::Elem> {
    buf.sort_unstable_by_key(|&(c, _)| c);
    let mut cols: Vec<Idx> = Vec::new();
    let mut vals: Vec<S::Elem> = Vec::new();
    for &(c, v) in buf.iter() {
        if cols.last() == Some(&c) {
            let last = vals.last_mut().unwrap();
            *last = S::add(*last, v);
        } else {
            cols.push(c);
            vals.push(v);
        }
    }
    (cols, vals)
}

/// Peak expansion memory of the multiplication: the largest per-row flops
/// times the entry size — what bhsparse must stage per workgroup.
pub fn expansion_bytes<T: Value>(a: &Csr<T>, b: &Csr<T>) -> usize {
    super::row_flops(a, b)
        .iter()
        .map(|&f| f as usize * std::mem::size_of::<(Idx, T)>())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{random_csr, reference_csr};
    use super::*;

    #[test]
    fn sort_compress_sums_runs() {
        let mut buf = vec![(3u32, 1.0), (1, 2.0), (3, 0.5), (1, 1.0)];
        let (cols, vals) = sort_compress(PlusTimes::<f64>::new(), &mut buf);
        assert_eq!(cols, vec![1, 3]);
        assert_eq!(vals, vec![3.0, 1.5]);
    }

    #[test]
    fn sort_compress_empty() {
        let mut buf: Vec<(Idx, f64)> = Vec::new();
        let (cols, vals) = sort_compress(PlusTimes::<f64>::new(), &mut buf);
        assert!(cols.is_empty() && vals.is_empty());
    }

    #[test]
    fn expand_row_materializes_flops() {
        let a = random_csr(8, 8, 24, 1);
        let mut buf = Vec::new();
        for i in 0..8 {
            expand_row(PlusTimes::<f64>::new(), &a, &a, i, &mut buf);
            let flops: usize = a.row_cols(i).iter().map(|&k| a.row_nnz(k as usize)).sum();
            assert_eq!(buf.len(), flops, "row {i}");
        }
    }

    #[test]
    fn matches_reference() {
        let a = random_csr(15, 12, 60, 4);
        let b = random_csr(12, 10, 50, 5);
        let got = multiply(&a, &b);
        let want = reference_csr(&a, &b);
        got.assert_valid();
        assert_eq!(got.rowptr, want.rowptr);
        assert_eq!(got.colidx, want.colidx);
    }

    #[test]
    fn expansion_bytes_positive_when_work_exists() {
        let a = random_csr(10, 10, 40, 9);
        assert!(expansion_bytes(&a, &a) > 0);
        let z = Csr::<f64>::zero(3, 3);
        assert_eq!(expansion_bytes(&z, &z), 0);
    }
}
