//! `nsparse` analogue: binned hash-accumulation SpGEMM
//! (Nagasaka, Nukada, Matsuoka — ICPP 2017).
//!
//! nsparse's distinguishing moves are (1) grouping output rows into *bins*
//! by their flops so each bin runs a kernel with an appropriately sized
//! shared-memory hash table, and (2) accumulating products into that table
//! in `O(1)` per product. Both are reproduced: rows are binned by
//! `ceil(lg flops)` and each bin is processed as one parallel batch with
//! tables sized for the bin's upper bound. High-`cf` multiplications are
//! where the table pays off — every product after the first hit is a pure
//! accumulate — which is why nsparse dominates Fig. 4 at MCL densities.

use super::{build_csr_from_rows, row_flops, RowOut};
use hipmcl_sparse::{Csr, Idx, PlusTimes, Semiring, Value};
use rayon::prelude::*;

const EMPTY: Idx = Idx::MAX;

/// Open-addressing table sized per bin, reused across a worker's rows.
#[derive(Clone)]
struct RowTable<T> {
    keys: Vec<Idx>,
    vals: Vec<T>,
    touched: Vec<u32>,
    mask: usize,
}

impl<T: Value> RowTable<T> {
    fn with_capacity(n: usize) -> Self {
        let size = (2 * n.max(1)).next_power_of_two();
        Self {
            keys: vec![EMPTY; size],
            // Placeholder: slots are written before first read.
            vals: vec![T::default(); size],
            touched: Vec::new(),
            mask: size - 1,
        }
    }

    #[inline]
    fn upsert<S: Semiring<Elem = T>>(&mut self, _sr: S, key: Idx, val: T) {
        let mut s = ((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask;
        loop {
            let k = self.keys[s];
            if k == key {
                self.vals[s] = S::add(self.vals[s], val);
                return;
            }
            if k == EMPTY {
                self.keys[s] = key;
                self.vals[s] = val;
                self.touched.push(s as u32);
                return;
            }
            s = (s + 1) & self.mask;
        }
    }

    fn drain_sorted(&mut self) -> RowOut<T> {
        let mut pairs: Vec<(Idx, T)> = self
            .touched
            .iter()
            .map(|&s| (self.keys[s as usize], self.vals[s as usize]))
            .collect();
        pairs.sort_unstable_by_key(|&(c, _)| c);
        for &s in &self.touched {
            self.keys[s as usize] = EMPTY;
        }
        self.touched.clear();
        (
            pairs.iter().map(|&(c, _)| c).collect(),
            pairs.iter().map(|&(_, v)| v).collect(),
        )
    }
}

/// Assigns each row to a bin by `ceil(lg flops)`; bin `b` holds rows with
/// `flops ∈ (2^(b−1), 2^b]` (bin 0: flops ≤ 1). Returns `bins[b] = rows`.
pub(crate) fn bin_rows(flops: &[u64]) -> Vec<Vec<u32>> {
    let mut bins: Vec<Vec<u32>> = Vec::new();
    for (i, &f) in flops.iter().enumerate() {
        let b = if f <= 1 {
            0
        } else {
            (64 - (f - 1).leading_zeros()) as usize
        };
        if bins.len() <= b {
            bins.resize_with(b + 1, Vec::new);
        }
        bins[b].push(i as u32);
    }
    bins
}

/// Multiplies `C = A · B` (CSR) with binned hash accumulation, in the
/// given semiring.
pub fn multiply_in<S: Semiring>(sr: S, a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem> {
    let flops = row_flops(a, b);
    let bins = bin_rows(&flops);

    let mut rows: Vec<RowOut<S::Elem>> = vec![(Vec::new(), Vec::new()); a.nrows()];
    for (bin_id, bin) in bins.iter().enumerate() {
        if bin.is_empty() {
            continue;
        }
        let cap = 1usize << bin_id; // flops upper bound for the bin
        let outputs: Vec<(u32, RowOut<S::Elem>)> = bin
            .par_iter()
            .map_with(RowTable::with_capacity(cap), |table, &i| {
                let i = i as usize;
                let (acols, avals) = (a.row_cols(i), a.row_vals(i));
                for (idx, &k) in acols.iter().enumerate() {
                    let av = avals[idx];
                    let k = k as usize;
                    let (bcols, bvals) = (b.row_cols(k), b.row_vals(k));
                    for (bi, &c) in bcols.iter().enumerate() {
                        table.upsert(sr, c, S::mul(av, bvals[bi]));
                    }
                }
                (i as u32, table.drain_sorted())
            })
            .collect();
        for (i, out) in outputs {
            rows[i as usize] = out;
        }
    }
    build_csr_from_rows(a.nrows(), b.ncols(), rows)
}

/// [`multiply_in`] with the plus-times semiring.
pub fn multiply<T: Value>(a: &Csr<T>, b: &Csr<T>) -> Csr<T>
where
    PlusTimes<T>: Semiring<Elem = T>,
{
    multiply_in(PlusTimes::new(), a, b)
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{random_csr, reference_csr};
    use super::*;

    #[test]
    fn bin_rows_by_flops_magnitude() {
        let bins = bin_rows(&[0, 1, 2, 3, 4, 9, 1024]);
        assert_eq!(bins[0], vec![0, 1]); // flops <= 1
        assert_eq!(bins[1], vec![2]); // 2
        assert_eq!(bins[2], vec![3, 4]); // 3..4
        assert_eq!(bins[4], vec![5]); // 9 -> bin 4 (<=16)
        assert_eq!(bins[10], vec![6]); // 1024 -> bin 10
    }

    #[test]
    fn row_table_accumulates_and_sorts() {
        let pt = PlusTimes::<f64>::new();
        let mut t = RowTable::with_capacity(4);
        t.upsert(pt, 9, 1.0);
        t.upsert(pt, 2, 3.0);
        t.upsert(pt, 9, 1.5);
        let (cols, vals) = t.drain_sorted();
        assert_eq!(cols, vec![2, 9]);
        assert_eq!(vals, vec![3.0, 2.5]);
        // Reusable after drain.
        t.upsert(pt, 5, 1.0);
        let (cols2, _) = t.drain_sorted();
        assert_eq!(cols2, vec![5]);
    }

    #[test]
    fn matches_reference() {
        let a = random_csr(18, 14, 90, 6);
        let b = random_csr(14, 16, 80, 7);
        let got = multiply(&a, &b);
        let want = reference_csr(&a, &b);
        got.assert_valid();
        assert_eq!(got.rowptr, want.rowptr);
        assert_eq!(got.colidx, want.colidx);
    }

    #[test]
    fn dense_square_matches() {
        let a = random_csr(12, 12, 144, 8);
        let got = multiply(&a, &a);
        let want = reference_csr(&a, &a);
        let diff: f64 = got
            .vals
            .iter()
            .zip(&want.vals)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-9);
    }
}
