//! `rmerge2` analogue: SpGEMM by iterative row merging
//! (Gremse, Küpper, Naumann — SIAM J. Sci. Comput. 2018).
//!
//! Each output row `C_{i*} = Σ_k a_ik · B_{k*}` is formed by repeatedly
//! merging *pairs* of sorted scaled rows — a balanced binary merge tree —
//! instead of accumulating into a table. Merging is branch-predictable and
//! memory-lean (rmerge2's selling point: "memory-efficient"), but the tree
//! revisits elements `lg(nnz(A_{i*}))` times, so its advantage fades as
//! `cf` grows; the paper measures it at ~1.1× `cpu-hash` overall and best
//! among the GPU libraries only at small `cf`.

use super::{build_csr_from_rows, RowOut};
use hipmcl_sparse::{Csr, PlusTimes, Semiring, Value};
use rayon::prelude::*;

/// Multiplies `C = A · B` (CSR) by per-row binary merge trees, in the
/// given semiring.
pub fn multiply_in<S: Semiring>(s: S, a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem> {
    let rows: Vec<RowOut<S::Elem>> = (0..a.nrows())
        .into_par_iter()
        .map(|i| merge_row(s, a, b, i))
        .collect();
    build_csr_from_rows(a.nrows(), b.ncols(), rows)
}

/// [`multiply_in`] with the plus-times semiring.
pub fn multiply<T: Value>(a: &Csr<T>, b: &Csr<T>) -> Csr<T>
where
    PlusTimes<T>: Semiring<Elem = T>,
{
    multiply_in(PlusTimes::new(), a, b)
}

/// Builds output row `i` by a balanced tree of two-way merges.
fn merge_row<S: Semiring>(s: S, a: &Csr<S::Elem>, b: &Csr<S::Elem>, i: usize) -> RowOut<S::Elem> {
    let (acols, avals) = (a.row_cols(i), a.row_vals(i));
    // Leaves: the selected B rows, scaled by the A entry.
    let mut lists: Vec<RowOut<S::Elem>> = acols
        .iter()
        .zip(avals)
        .map(|(&k, &av)| {
            let k = k as usize;
            let cols = b.row_cols(k).to_vec();
            let vals = b.row_vals(k).iter().map(|&v| S::mul(av, v)).collect();
            (cols, vals)
        })
        .filter(|(c, _): &RowOut<S::Elem>| !c.is_empty())
        .collect();

    // Balanced reduction: merge adjacent pairs until one list remains.
    while lists.len() > 1 {
        let mut next = Vec::with_capacity(lists.len().div_ceil(2));
        let mut it = lists.into_iter();
        while let Some(first) = it.next() {
            match it.next() {
                Some(second) => next.push(merge_two(s, &first, &second)),
                None => next.push(first),
            }
        }
        lists = next;
    }
    lists.pop().unwrap_or_default()
}

/// Two-way merge of sorted `(cols, vals)` runs, combining equal columns
/// with the semiring's addition.
pub(crate) fn merge_two<S: Semiring>(
    _s: S,
    x: &RowOut<S::Elem>,
    y: &RowOut<S::Elem>,
) -> RowOut<S::Elem> {
    let (xc, xv) = x;
    let (yc, yv) = y;
    let mut cols = Vec::with_capacity(xc.len() + yc.len());
    let mut vals = Vec::with_capacity(xc.len() + yc.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < xc.len() || j < yc.len() {
        let take_x = j >= yc.len() || (i < xc.len() && xc[i] < yc[j]);
        let take_both = i < xc.len() && j < yc.len() && xc[i] == yc[j];
        if take_both {
            cols.push(xc[i]);
            vals.push(S::add(xv[i], yv[j]));
            i += 1;
            j += 1;
        } else if take_x {
            cols.push(xc[i]);
            vals.push(xv[i]);
            i += 1;
        } else {
            cols.push(yc[j]);
            vals.push(yv[j]);
            j += 1;
        }
    }
    (cols, vals)
}

/// Total number of element visits across the merge trees — the quantity
/// that explains rmerge2's `lg` overhead relative to hash accumulation.
pub fn merge_work<T: Value>(a: &Csr<T>, b: &Csr<T>) -> u64 {
    (0..a.nrows())
        .into_par_iter()
        .map(|i| {
            let lists = a.row_cols(i).len().max(1);
            let flops: u64 = a
                .row_cols(i)
                .iter()
                .map(|&k| b.row_nnz(k as usize) as u64)
                .sum();
            flops * (lists as f64).log2().ceil().max(1.0) as u64
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{random_csr, reference_csr};
    use super::*;
    type R = RowOut<f64>;

    #[test]
    fn merge_two_disjoint() {
        let x: R = (vec![1, 5], vec![1.0, 2.0]);
        let y: R = (vec![2, 9], vec![3.0, 4.0]);
        let (c, v) = merge_two(PlusTimes::<f64>::new(), &x, &y);
        assert_eq!(c, vec![1, 2, 5, 9]);
        assert_eq!(v, vec![1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn merge_two_overlapping_sums() {
        let x: R = (vec![1, 3], vec![1.0, 1.0]);
        let y: R = (vec![1, 3], vec![0.5, 0.25]);
        let (c, v) = merge_two(PlusTimes::<f64>::new(), &x, &y);
        assert_eq!(c, vec![1, 3]);
        assert_eq!(v, vec![1.5, 1.25]);
    }

    #[test]
    fn merge_two_with_empty() {
        let x: R = (vec![], vec![]);
        let y: R = (vec![7], vec![1.0]);
        assert_eq!(
            merge_two(PlusTimes::<f64>::new(), &x, &y),
            (vec![7], vec![1.0])
        );
    }

    #[test]
    fn matches_reference() {
        let a = random_csr(16, 13, 70, 10);
        let b = random_csr(13, 17, 65, 11);
        let got = multiply(&a, &b);
        let want = reference_csr(&a, &b);
        got.assert_valid();
        assert_eq!(got.rowptr, want.rowptr);
        assert_eq!(got.colidx, want.colidx);
        let diff: f64 = got
            .vals
            .iter()
            .zip(&want.vals)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-9);
    }

    #[test]
    fn merge_work_exceeds_flops_for_wide_rows() {
        let a = random_csr(20, 20, 200, 12);
        let flops: u64 = super::super::row_flops(&a, &a).iter().sum();
        assert!(merge_work(&a, &a) >= flops);
    }

    #[test]
    fn single_entry_rows() {
        // A = diagonal: C = scaled B rows, exercised via the identity.
        let b = random_csr(6, 6, 18, 13);
        let i = Csr::from_csc(&hipmcl_sparse::Csc::identity(6));
        let got = multiply(&i, &b);
        assert_eq!(got.rowptr, b.rowptr);
        assert_eq!(got.colidx, b.colidx);
    }
}
