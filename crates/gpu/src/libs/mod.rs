//! Rust re-implementations of the three GPU SpGEMM libraries' algorithmic
//! cores (§III). All are row-parallel over CSR, like their CUDA originals:
//!
//! * [`esc`] — `bhsparse` (Liu & Vinter 2014): expand–sort–compress.
//! * [`hashgpu`] — `nsparse` (Nagasaka et al. 2017): rows binned by flops,
//!   per-row hash accumulation.
//! * [`rowmerge`] — `rmerge2` (Gremse et al. 2018): iterative pairwise
//!   merging of scaled rows.
//!
//! [`multiply_csc`] adapts any of them to HipMCL's CSC world through the
//! §III-B transpose trick (`Cᵀ = Bᵀ·Aᵀ`), with zero format conversion.

pub mod esc;
pub mod hashgpu;
pub mod rowmerge;

use hipmcl_comm::GpuLib;
use hipmcl_sparse::csc::counts_to_colptr;
use hipmcl_sparse::{Csc, Csr, Idx, PlusTimes, Semiring, Value};

/// A materialized output row: `(cols, vals)`, sorted by column.
pub(crate) type RowOut<T> = (Vec<Idx>, Vec<T>);

/// Assembles per-row outputs into a CSR matrix.
pub(crate) fn build_csr_from_rows<T: Value>(
    nrows: usize,
    ncols: usize,
    rows: Vec<RowOut<T>>,
) -> Csr<T> {
    debug_assert_eq!(rows.len(), nrows);
    let counts: Vec<usize> = rows.iter().map(|(c, _)| c.len()).collect();
    let rowptr = counts_to_colptr(&counts);
    let nnz = rowptr[nrows];
    let mut colidx = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for (c, v) in rows {
        colidx.extend_from_slice(&c);
        vals.extend_from_slice(&v);
    }
    Csr::from_parts(nrows, ncols, rowptr, colidx, vals)
}

/// Per-row flops of `A·B` in CSR orientation:
/// `flops(i) = Σ_{k ∈ A_{i*}} nnz(B_{k*})`.
pub(crate) fn row_flops<T: Value>(a: &Csr<T>, b: &Csr<T>) -> Vec<u64> {
    use rayon::prelude::*;
    (0..a.nrows())
        .into_par_iter()
        .map(|i| {
            a.row_cols(i)
                .iter()
                .map(|&k| b.row_nnz(k as usize) as u64)
                .sum()
        })
        .collect()
}

/// Multiplies CSR matrices with the chosen library analogue, in the given
/// semiring.
pub fn multiply_csr_in<S: Semiring>(
    s: S,
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    lib: GpuLib,
) -> Csr<S::Elem> {
    assert_eq!(a.ncols(), b.nrows(), "inner dimensions must agree");
    match lib {
        GpuLib::Bhsparse => esc::multiply_in(s, a, b),
        GpuLib::Nsparse => hashgpu::multiply_in(s, a, b),
        GpuLib::Rmerge2 => rowmerge::multiply_in(s, a, b),
    }
}

/// [`multiply_csr_in`] with the plus-times semiring.
pub fn multiply_csr<T: Value>(a: &Csr<T>, b: &Csr<T>, lib: GpuLib) -> Csr<T>
where
    PlusTimes<T>: Semiring<Elem = T>,
{
    multiply_csr_in(PlusTimes::new(), a, b, lib)
}

/// Multiplies CSC matrices on a "GPU" kernel without format conversion:
/// a CSC matrix *is* its transpose in CSR, so `C = A·B` (all CSC) is
/// computed as `Cᵀ = Bᵀ·Aᵀ` (all CSR) and reinterpreted back (§III-B).
pub fn multiply_csc_in<S: Semiring>(
    s: S,
    a: &Csc<S::Elem>,
    b: &Csc<S::Elem>,
    lib: GpuLib,
) -> Csc<S::Elem> {
    let at = Csr::from_csc_transpose(a.clone()); // Aᵀ in CSR, zero work
    let bt = Csr::from_csc_transpose(b.clone()); // Bᵀ in CSR
    let ct = multiply_csr_in(s, &bt, &at, lib); // Cᵀ = Bᵀ·Aᵀ
    ct.into_csc_transpose()
}

/// [`multiply_csc_in`] with the plus-times semiring.
pub fn multiply_csc<T: Value>(a: &Csc<T>, b: &Csc<T>, lib: GpuLib) -> Csc<T>
where
    PlusTimes<T>: Semiring<Elem = T>,
{
    multiply_csc_in(PlusTimes::new(), a, b, lib)
}

#[cfg(test)]
pub(crate) mod testutil {
    use hipmcl_sparse::{Csc, Csr, Idx, Triples};
    use rand::{Rng, SeedableRng};

    pub fn random_csr(m: usize, n: usize, nnz: usize, seed: u64) -> Csr<f64> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut t = Triples::new(m, n);
        for _ in 0..nnz {
            t.push(
                rng.gen_range(0..m) as Idx,
                rng.gen_range(0..n) as Idx,
                rng.gen_range(0.5..1.5),
            );
        }
        Csr::from_csc(&Csc::from_triples(&t))
    }

    /// Reference product via the (already validated) CPU hash kernel.
    pub fn reference_csr(a: &Csr<f64>, b: &Csr<f64>) -> Csr<f64> {
        let c = hipmcl_spgemm::hash::multiply(&a.to_csc(), &b.to_csc());
        Csr::from_csc(&c)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{random_csr, reference_csr};
    use super::*;
    use hipmcl_spgemm::testutil::random_csc;

    #[test]
    fn row_flops_counts() {
        let a = random_csr(10, 10, 30, 1);
        let f = row_flops(&a, &a);
        assert_eq!(f.len(), 10);
        let manual: u64 = (0..10)
            .map(|i| {
                a.row_cols(i)
                    .iter()
                    .map(|&k| a.row_nnz(k as usize) as u64)
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(f.iter().sum::<u64>(), manual);
    }

    #[test]
    fn all_libs_match_reference_csr() {
        let a = random_csr(20, 15, 80, 2);
        let b = random_csr(15, 18, 70, 3);
        let want = reference_csr(&a, &b);
        for lib in GpuLib::all() {
            let got = multiply_csr(&a, &b, lib);
            got.assert_valid();
            assert_eq!(got.rowptr, want.rowptr, "{} pattern", lib.name());
            assert_eq!(got.colidx, want.colidx, "{} pattern", lib.name());
            let diff: f64 = got
                .vals
                .iter()
                .zip(&want.vals)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max);
            assert!(diff < 1e-9, "{} values", lib.name());
        }
    }

    #[test]
    fn csc_wrapper_matches_cpu_kernel() {
        let a = random_csc(25, 25, 200, 7);
        let want = hipmcl_spgemm::hash::multiply(&a, &a);
        for lib in GpuLib::all() {
            let got = multiply_csc(&a, &a, lib);
            got.assert_valid();
            assert!(got.max_abs_diff(&want) < 1e-9, "{}", lib.name());
            assert_eq!(got.nnz(), want.nnz(), "{}", lib.name());
        }
    }

    #[test]
    fn empty_product_all_libs() {
        let a = Csr::<f64>::zero(4, 4);
        for lib in GpuLib::all() {
            assert_eq!(multiply_csr(&a, &a, lib).nnz(), 0);
        }
    }

    #[test]
    fn build_csr_from_rows_assembles() {
        let rows = vec![
            (vec![1, 3], vec![1.0, 2.0]),
            (vec![], vec![]),
            (vec![0], vec![5.0]),
        ];
        let m = build_csr_from_rows(3, 4, rows);
        m.assert_valid();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row_cols(0), &[1, 3]);
        assert_eq!(m.row_vals(2), &[5.0]);
    }
}
