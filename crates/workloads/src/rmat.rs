//! R-MAT recursive matrix generator (Chakrabarti, Zhan, Faloutsos 2004)
//! with Graph500 default probabilities — the standard skewed-degree
//! stress workload for distributed graph kernels.

use hipmcl_sparse::{Idx, Triples};
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// R-MAT quadrant probabilities. Graph500 uses `(0.57, 0.19, 0.19, 0.05)`.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges per vertex.
    pub edge_factor: usize,
    /// RNG seed.
    pub seed: u64,
}

impl RmatParams {
    /// Graph500 defaults at the given scale.
    pub fn graph500(scale: u32, edge_factor: usize, seed: u64) -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            scale,
            edge_factor,
            seed,
        }
    }
}

/// Generates an R-MAT graph with uniform `[0.5, 1)` weights; duplicate
/// edges collapse by summation (heavier multi-edges, as in Graph500
/// similarity uses). Self-loops are dropped.
pub fn generate_rmat(p: &RmatParams) -> Triples<f64> {
    let n = 1usize << p.scale;
    let m = n * p.edge_factor;
    let d = p.a + p.b + p.c;
    assert!(d < 1.0, "quadrant probabilities must leave room for d");

    let edges: Vec<(Idx, Idx, f64)> = (0..m)
        .into_par_iter()
        .filter_map(|e| {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(
                p.seed ^ (e as u64).wrapping_mul(0x9E3779B97F4A7C15),
            );
            let (mut r, mut c) = (0usize, 0usize);
            for level in (0..p.scale).rev() {
                let bit = 1usize << level;
                let u: f64 = rng.gen();
                if u < p.a {
                    // top-left: nothing
                } else if u < p.a + p.b {
                    c |= bit;
                } else if u < p.a + p.b + p.c {
                    r |= bit;
                } else {
                    r |= bit;
                    c |= bit;
                }
            }
            if r == c {
                None
            } else {
                Some((r as Idx, c as Idx, rng.gen_range(0.5..1.0)))
            }
        })
        .collect();

    let mut t = Triples::with_capacity(n, n, edges.len());
    for (r, c, v) in edges {
        t.push(r, c, v);
    }
    t.sum_duplicates();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_bounds() {
        let p = RmatParams::graph500(8, 8, 3);
        let a = generate_rmat(&p);
        let b = generate_rmat(&p);
        assert_eq!(a, b);
        assert_eq!(a.nrows(), 256);
        for (r, c, _) in a.iter() {
            assert!(r < 256 && c < 256);
            assert_ne!(r, c, "no self-loops");
        }
    }

    #[test]
    fn skewed_degrees() {
        let p = RmatParams::graph500(10, 16, 5);
        let t = generate_rmat(&p);
        let m = hipmcl_sparse::Csc::from_triples(&t);
        let mut degs: Vec<usize> = (0..m.ncols()).map(|j| m.col_nnz(j)).collect();
        degs.sort_unstable();
        let max = *degs.last().unwrap();
        let median = degs[degs.len() / 2];
        assert!(
            max > 8 * median.max(1),
            "R-MAT should be skewed: max {max}, median {median}"
        );
    }

    #[test]
    fn edge_count_in_expected_range() {
        let p = RmatParams::graph500(9, 8, 7);
        let t = generate_rmat(&p);
        let target = 512 * 8;
        assert!(t.nnz() > target / 2 && t.nnz() <= target, "nnz {}", t.nnz());
    }
}
