//! Weighted-digraph generator and serial all-pairs shortest-path
//! reference for the min-plus SUMMA workload.
//!
//! The distributed computation squares the adjacency matrix under the
//! min-plus semiring: with `D_0 = A` (diagonal 0, edge weights off the
//! diagonal, `+∞` implicit elsewhere), `D_{k+1} = D_k ⊗.min D_k` doubles
//! the hop horizon, so `⌈lg n⌉` squarings converge to the all-pairs
//! distance matrix. The reference here is plain per-source Bellman–Ford.
//!
//! Weights are small *integers stored as `f64`*, so every path sum is
//! exact in floating point regardless of association order — hop-doubling
//! groups additions differently from edge-by-edge relaxation, and the two
//! must still agree bit for bit.

use hipmcl_sparse::{Csc, Idx, MinPlus, Triples};
use rand::{Rng, SeedableRng};

/// Generates a weighted digraph for shortest paths: `m` random arcs with
/// integer weights in `1..=9` (stored as `f64`), plus an explicit `0.0`
/// diagonal (distance zero to self — required for hop-doubling, since the
/// min-plus implicit zero is `+∞`). Duplicate arcs keep the minimum
/// weight. Deterministic in `seed`.
pub fn generate_apsp_digraph(n: usize, m: usize, seed: u64) -> Triples<f64> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut t = Triples::with_capacity(n, n, m + n);
    for _ in 0..m {
        let r = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        if r != c {
            t.push(r as Idx, c as Idx, rng.gen_range(1..=9) as f64);
        }
    }
    for i in 0..n {
        t.push(i as Idx, i as Idx, 0.0);
    }
    t.sum_duplicates_in(MinPlus);
    t
}

/// Serial all-pairs shortest paths by per-source Bellman–Ford relaxation.
/// Returns the distance matrix as min-plus CSC: finite distances only
/// (`+∞` — unreachable — is the semiring's implicit zero and is absent),
/// including the explicit `0.0` self-distances.
pub fn bellman_ford_apsp(g: &Triples<f64>) -> Csc<f64> {
    let n = g.nrows();
    assert_eq!(n, g.ncols(), "APSP needs a square adjacency matrix");
    let arcs: Vec<(usize, usize, f64)> = g
        .iter()
        .map(|(r, c, w)| (r as usize, c as usize, w))
        .collect();
    let mut dist = Triples::new(n, n);
    for src in 0..n {
        let mut d = vec![f64::INFINITY; n];
        d[src] = 0.0;
        // At most n−1 relaxation rounds; stop early once stable.
        for _ in 1..n.max(2) {
            let mut changed = false;
            for &(u, v, w) in &arcs {
                let cand = d[u] + w;
                if cand < d[v] {
                    d[v] = cand;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for (v, &dv) in d.iter().enumerate() {
            if dv.is_finite() {
                dist.push(src as Idx, v as Idx, dv);
            }
        }
    }
    Csc::from_triples_in(MinPlus, &dist)
}

/// Serial hop-doubling reference: squares the matrix under min-plus until
/// a fixed point, mirroring what the distributed pipeline does. Converges
/// in at most `⌈lg n⌉` squarings.
pub fn min_plus_closure(g: &Triples<f64>) -> Csc<f64> {
    let mut d = Csc::from_triples_in(MinPlus, g);
    let mut hops = 1usize;
    while hops < g.nrows().max(1) {
        let next = hipmcl_spgemm::hash::multiply_in(MinPlus, &d, &d);
        if next == d {
            break;
        }
        d = next;
        hops *= 2;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_with_zero_diagonal() {
        let a = generate_apsp_digraph(50, 200, 1);
        assert_eq!(a, generate_apsp_digraph(50, 200, 1));
        let m = Csc::from_triples_in(MinPlus, &a);
        for i in 0..50 {
            assert_eq!(m.get(i, i), Some(0.0), "diagonal must be explicit 0");
        }
    }

    #[test]
    fn duplicate_arcs_keep_the_minimum() {
        let mut t = Triples::new(3, 3);
        t.push(0, 1, 7.0);
        t.push(0, 1, 3.0);
        t.sum_duplicates_in(MinPlus);
        assert_eq!(t.iter().next().unwrap(), (0, 1, 3.0));
    }

    #[test]
    fn bellman_ford_on_a_line_graph() {
        // 0 →(2) 1 →(3) 2, so d(0,2) = 5 and nothing reaches 0.
        let mut t = Triples::new(3, 3);
        t.push(0, 1, 2.0);
        t.push(1, 2, 3.0);
        for i in 0..3 {
            t.push(i, i, 0.0);
        }
        let d = bellman_ford_apsp(&t);
        assert_eq!(d.get(0, 1), Some(2.0));
        assert_eq!(d.get(0, 2), Some(5.0));
        assert_eq!(d.get(2, 0), None, "2 must not reach 0");
        assert_eq!(d.get(1, 1), Some(0.0));
    }

    #[test]
    fn hop_doubling_matches_bellman_ford_bit_for_bit() {
        for seed in [1u64, 5, 11] {
            let g = generate_apsp_digraph(40, 160, seed);
            assert_eq!(min_plus_closure(&g), bellman_ford_apsp(&g), "seed={seed}");
        }
    }

    #[test]
    fn shorter_two_hop_path_beats_direct_arc() {
        // Direct 0→2 costs 9; via 1 costs 2+3=5.
        let mut t = Triples::new(3, 3);
        t.push(0, 2, 9.0);
        t.push(0, 1, 2.0);
        t.push(1, 2, 3.0);
        for i in 0..3 {
            t.push(i, i, 0.0);
        }
        let d = bellman_ford_apsp(&t);
        assert_eq!(d.get(0, 2), Some(5.0));
    }
}
