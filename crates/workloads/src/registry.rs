//! Registry of the paper's evaluation networks (Table I) as scaled
//! synthetic instances.
//!
//! | network      | proteins | connections | avg degree |
//! |--------------|----------|-------------|-----------:|
//! | archaea      | 1.64 M   | 205 M       | ~125 |
//! | eukarya      | 3.24 M   | 360 M       | ~111 |
//! | isom100-3    | 8.75 M   | 1.06 B      | ~121 |
//! | isom100-1    | 35 M     | 17 B        | ~486 |
//! | isom100      | 70 M     | 68 B        | ~971 |
//! | metaclust50  | 383 M    | 37 B        | ~97  |
//!
//! `instance(scale)` shrinks the vertex count by `scale` while keeping
//! the average degree capped to the shrunken size — preserving the
//! per-column density regime (and hence the SpGEMM `cf` behaviour) that
//! the paper's optimizations target. Seeds are fixed per network so every
//! bench and every rank regenerates identical graphs.

use crate::protein::{generate_protein_net, ProteinNet, ProteinNetConfig};

/// The six networks of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Archaeal proteins from IMG isolate genomes.
    Archaea,
    /// Eukaryotic proteins from IMG isolate genomes.
    Eukarya,
    /// 1/8 induced subgraph of isom100.
    Isom100_3,
    /// 1/2 induced subgraph of isom100.
    Isom100_1,
    /// All isolate-genome proteins.
    Isom100,
    /// Metaclust50 metagenome proteins.
    Metaclust50,
}

impl Dataset {
    /// Paper name of the network.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Archaea => "archaea",
            Dataset::Eukarya => "eukarya",
            Dataset::Isom100_3 => "isom100-3",
            Dataset::Isom100_1 => "isom100-1",
            Dataset::Isom100 => "isom100",
            Dataset::Metaclust50 => "metaclust50",
        }
    }

    /// The paper's (proteins, connections) for this network.
    pub fn paper_size(self) -> (u64, u64) {
        match self {
            Dataset::Archaea => (1_644_227, 204_784_551),
            Dataset::Eukarya => (3_243_106, 359_744_161),
            Dataset::Isom100_3 => (8_745_542, 1_058_120_062),
            Dataset::Isom100_1 => (35_000_000, 17_000_000_000),
            Dataset::Isom100 => (70_000_000, 68_000_000_000),
            Dataset::Metaclust50 => (383_000_000, 37_000_000_000),
        }
    }

    /// Average degree of the paper's network.
    pub fn paper_avg_degree(self) -> f64 {
        let (n, m) = self.paper_size();
        m as f64 / n as f64
    }

    /// The three medium-scale validation networks (Table I, top half).
    pub fn medium() -> [Dataset; 3] {
        [Dataset::Archaea, Dataset::Eukarya, Dataset::Isom100_3]
    }

    /// The three large-scale networks (Table I, bottom half).
    pub fn large() -> [Dataset; 3] {
        [Dataset::Isom100_1, Dataset::Isom100, Dataset::Metaclust50]
    }

    /// Generator configuration at reduction factor `scale` (vertices are
    /// `paper_n / scale`). The degree is kept at the paper's value but
    /// capped so tiny instances stay generable.
    pub fn config(self, scale: u64) -> ProteinNetConfig {
        let (paper_n, _) = self.paper_size();
        let n = ((paper_n / scale.max(1)) as usize).max(64);
        let avg_degree = self.paper_avg_degree().min(n as f64 / 4.0);
        let seed = 0xDA7A_0000
            + match self {
                Dataset::Archaea => 1,
                Dataset::Eukarya => 2,
                Dataset::Isom100_3 => 3,
                Dataset::Isom100_1 => 4,
                Dataset::Isom100 => 5,
                Dataset::Metaclust50 => 6,
            };
        // Family sizes scale with the degree: the sustained per-column
        // density of an MCL run (what drives flops and cf, hence every
        // optimization in the paper) tracks the protein-family size, so
        // a dense network like isom100 must plant large families even at
        // reduced scale.
        let min_cluster = ((avg_degree / 3.0) as usize).clamp(8, n / 2);
        let max_cluster = ((avg_degree * 2.0) as usize).clamp(16, n / 2);
        ProteinNetConfig {
            n,
            avg_degree,
            cluster_alpha: 1.8,
            min_cluster,
            max_cluster,
            noise_frac: 0.05,
            seed,
        }
    }

    /// Generates the scaled instance.
    pub fn instance(self, scale: u64) -> ProteinNet {
        generate_protein_net(&self.config(scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_sizes_match_table1() {
        assert_eq!(Dataset::Archaea.name(), "archaea");
        assert_eq!(Dataset::Archaea.paper_size().0, 1_644_227);
        assert!((Dataset::Archaea.paper_avg_degree() - 124.5).abs() < 1.0);
        assert!((Dataset::Isom100.paper_avg_degree() - 971.4).abs() < 1.0);
    }

    #[test]
    fn scaled_instances_shrink_with_scale() {
        let big = Dataset::Archaea.config(1000);
        let small = Dataset::Archaea.config(10_000);
        assert!(big.n > small.n);
        assert_eq!(big.n, 1_644);
    }

    #[test]
    fn degree_capped_for_tiny_instances() {
        let cfg = Dataset::Isom100.config(1_000_000); // 70 vertices -> min 64
        assert!(cfg.avg_degree <= cfg.n as f64 / 4.0);
    }

    #[test]
    fn instance_is_deterministic_per_dataset() {
        let a = Dataset::Eukarya.instance(20_000);
        let b = Dataset::Eukarya.instance(20_000);
        assert_eq!(a.graph, b.graph);
        let c = Dataset::Archaea.instance(20_000);
        assert_ne!(a.graph.nnz(), 0);
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn medium_and_large_partition_the_six() {
        let mut all: Vec<&str> = Dataset::medium()
            .iter()
            .chain(Dataset::large().iter())
            .map(|d| d.name())
            .collect();
        all.sort();
        assert_eq!(
            all,
            vec![
                "archaea",
                "eukarya",
                "isom100",
                "isom100-1",
                "isom100-3",
                "metaclust50"
            ]
        );
    }
}
