//! Planted-partition protein-similarity network generator.
//!
//! Protein similarity graphs (the paper's archaea/eukarya/isom100 family)
//! have a characteristic shape: protein families form dense, high-weight
//! near-cliques of widely varying size (power-law-ish), connected by a
//! thin web of low-weight spurious similarities. MCL's job is to recover
//! the families. This generator plants exactly that structure, so cluster
//! recovery is checkable and the SpGEMM density regimes (the quantity the
//! paper's optimizations care about) match the real workloads.

use hipmcl_sparse::{Idx, Triples};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Configuration of a planted protein-similarity network.
#[derive(Clone, Copy, Debug)]
pub struct ProteinNetConfig {
    /// Number of vertices (proteins).
    pub n: usize,
    /// Target average degree (connections per protein), counting both
    /// directions of each undirected edge once.
    pub avg_degree: f64,
    /// Power-law exponent for cluster (protein family) sizes; ~1.5–2.5.
    pub cluster_alpha: f64,
    /// Smallest family size.
    pub min_cluster: usize,
    /// Largest family size.
    pub max_cluster: usize,
    /// Fraction of edge endpoints that are inter-cluster noise.
    pub noise_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProteinNetConfig {
    fn default() -> Self {
        Self {
            n: 10_000,
            avg_degree: 60.0,
            cluster_alpha: 1.8,
            min_cluster: 8,
            max_cluster: 2_000,
            noise_frac: 0.05,
            seed: 1,
        }
    }
}

/// Generated network plus its ground-truth planted partition.
#[derive(Clone, Debug)]
pub struct ProteinNet {
    /// Symmetric weighted adjacency (both directions stored).
    pub graph: Triples<f64>,
    /// Planted cluster id per vertex.
    pub truth: Vec<u32>,
    /// Number of planted clusters.
    pub num_clusters: usize,
}

/// Draws cluster sizes from a truncated power law until they cover `n`.
pub fn cluster_sizes(cfg: &ProteinNetConfig) -> Vec<usize> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(cfg.seed ^ 0xC1u64);
    let mut sizes = Vec::new();
    let mut total = 0usize;
    let (lo, hi) = (cfg.min_cluster as f64, cfg.max_cluster as f64);
    let a = 1.0 - cfg.cluster_alpha; // CDF inversion exponent
    while total < cfg.n {
        let u: f64 = rng.gen();
        // Inverse-CDF sample of a truncated power law on [lo, hi].
        let s = if a.abs() < 1e-9 {
            lo * (hi / lo).powf(u)
        } else {
            (lo.powf(a) + u * (hi.powf(a) - lo.powf(a))).powf(1.0 / a)
        };
        let mut s = s.round().max(1.0) as usize;
        if total + s > cfg.n {
            s = cfg.n - total;
        }
        sizes.push(s);
        total += s;
    }
    sizes
}

/// Generates the network. Deterministic in `cfg.seed`; intra-cluster
/// edges are generated cluster-parallel with rayon.
pub fn generate_protein_net(cfg: &ProteinNetConfig) -> ProteinNet {
    let sizes = cluster_sizes(cfg);
    let mut starts = Vec::with_capacity(sizes.len());
    let mut acc = 0usize;
    for &s in &sizes {
        starts.push(acc);
        acc += s;
    }
    debug_assert_eq!(acc, cfg.n);

    let mut truth = vec![0u32; cfg.n];
    for (c, (&start, &size)) in starts.iter().zip(&sizes).enumerate() {
        for t in &mut truth[start..start + size] {
            *t = c as u32;
        }
    }

    // Intra-cluster edges: per-vertex target degree inside the family.
    let intra_degree = cfg.avg_degree * (1.0 - cfg.noise_frac);
    let per_cluster: Vec<Triples<f64>> = starts
        .par_iter()
        .zip(&sizes)
        .enumerate()
        .map(|(c, (&start, &size))| {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(
                cfg.seed ^ (c as u64).wrapping_mul(0x9E3779B97F4A7C15),
            );
            let mut t = Triples::new(cfg.n, cfg.n);
            if size <= 1 {
                return t;
            }
            // Each vertex picks ~intra_degree/2 partners inside the family
            // (undirected, stored both ways); small families become
            // near-cliques.
            let picks = ((intra_degree / 2.0).ceil() as usize).min(size - 1);
            for v in 0..size {
                // BTreeSet: deterministic iteration order (seed-stable).
                let mut chosen = std::collections::BTreeSet::new();
                while chosen.len() < picks {
                    let u = rng.gen_range(0..size);
                    if u != v {
                        chosen.insert(u);
                    }
                }
                for u in chosen {
                    let w = rng.gen_range(0.6..1.0);
                    let (gv, gu) = ((start + v) as Idx, (start + u) as Idx);
                    t.push(gv, gu, w);
                    t.push(gu, gv, w);
                }
            }
            t
        })
        .collect();

    // Inter-cluster noise: low-weight random pairs.
    let mut graph = Triples::with_capacity(
        cfg.n,
        cfg.n,
        per_cluster.iter().map(Triples::nnz).sum::<usize>() + 16,
    );
    for t in per_cluster {
        graph.rows.extend_from_slice(&t.rows);
        graph.cols.extend_from_slice(&t.cols);
        graph.vals.extend_from_slice(&t.vals);
    }
    let noise_edges = (cfg.n as f64 * cfg.avg_degree * cfg.noise_frac / 2.0) as usize;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(cfg.seed ^ 0x0153E);
    for _ in 0..noise_edges {
        let a = rng.gen_range(0..cfg.n);
        let b = rng.gen_range(0..cfg.n);
        if a == b || truth[a] == truth[b] {
            continue;
        }
        let w = rng.gen_range(0.05..0.2);
        graph.push(a as Idx, b as Idx, w);
        graph.push(b as Idx, a as Idx, w);
    }

    // Randomly permute vertex ids. Families generated as contiguous index
    // ranges would make the diagonal blocks of a 2D distribution carry
    // almost all the work; HipMCL's inputs arrive randomly labelled (and
    // production runs permute for load balance), so the generator ships
    // the permuted graph.
    let mut perm: Vec<Idx> = (0..cfg.n as Idx).collect();
    let mut prng = rand::rngs::SmallRng::seed_from_u64(cfg.seed ^ 0xBEEF);
    perm.shuffle(&mut prng);
    for r in &mut graph.rows {
        *r = perm[*r as usize];
    }
    for c in &mut graph.cols {
        *c = perm[*c as usize];
    }
    let mut permuted_truth = vec![0u32; cfg.n];
    for (v, &p) in perm.iter().enumerate() {
        permuted_truth[p as usize] = truth[v];
    }
    graph.sum_duplicates();

    ProteinNet {
        graph,
        truth: permuted_truth,
        num_clusters: sizes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ProteinNetConfig {
        ProteinNetConfig {
            n: 400,
            avg_degree: 12.0,
            cluster_alpha: 1.8,
            min_cluster: 5,
            max_cluster: 60,
            noise_frac: 0.08,
            seed: 7,
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_protein_net(&small_cfg());
        let b = generate_protein_net(&small_cfg());
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.truth, b.truth);
        let c = generate_protein_net(&ProteinNetConfig {
            seed: 8,
            ..small_cfg()
        });
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn cluster_sizes_cover_n_within_bounds() {
        let cfg = small_cfg();
        let sizes = cluster_sizes(&cfg);
        assert_eq!(sizes.iter().sum::<usize>(), cfg.n);
        // All but the (possibly truncated) last respect min_cluster.
        for &s in &sizes[..sizes.len() - 1] {
            assert!(s >= 1 && s <= cfg.max_cluster);
        }
    }

    #[test]
    fn graph_is_symmetric() {
        let net = generate_protein_net(&small_cfg());
        let m = hipmcl_sparse::Csc::from_triples(&net.graph);
        assert_eq!(m.transposed(), m);
    }

    #[test]
    fn average_degree_roughly_matches() {
        let cfg = ProteinNetConfig {
            n: 2000,
            avg_degree: 30.0,
            ..small_cfg()
        };
        let net = generate_protein_net(&cfg);
        let avg = net.graph.nnz() as f64 / cfg.n as f64;
        assert!(
            avg > 0.5 * cfg.avg_degree && avg < 2.0 * cfg.avg_degree,
            "avg degree {avg} vs target {}",
            cfg.avg_degree
        );
    }

    #[test]
    fn intra_weights_dominate_inter() {
        let net = generate_protein_net(&small_cfg());
        let mut intra_min = f64::INFINITY;
        let mut inter_max = 0.0f64;
        for (r, c, v) in net.graph.iter() {
            if net.truth[r as usize] == net.truth[c as usize] {
                intra_min = intra_min.min(v);
            } else {
                inter_max = inter_max.max(v);
            }
        }
        assert!(
            intra_min > inter_max,
            "intra {intra_min} vs inter {inter_max}"
        );
    }

    #[test]
    fn truth_labels_cover_all_clusters() {
        let net = generate_protein_net(&small_cfg());
        let mut seen = vec![false; net.num_clusters];
        for &l in &net.truth {
            seen[l as usize] = true;
        }
        assert!(
            seen.into_iter().all(|b| b),
            "every planted cluster has members"
        );
    }

    #[test]
    fn permutation_spreads_families_across_index_space() {
        // The first half of the index range must contain members of many
        // different families (contiguous layout would give few).
        let net = generate_protein_net(&small_cfg());
        let distinct: std::collections::BTreeSet<u32> =
            net.truth[..net.truth.len() / 2].iter().copied().collect();
        assert!(distinct.len() > net.num_clusters / 2);
    }

    #[test]
    fn mcl_recovers_planted_families() {
        // End-to-end sanity: serial MCL on a small instance recovers the
        // planted partition (possibly merging nothing, splitting nothing).
        let cfg = ProteinNetConfig {
            n: 120,
            avg_degree: 16.0,
            min_cluster: 10,
            max_cluster: 24,
            noise_frac: 0.03,
            ..small_cfg()
        };
        let net = generate_protein_net(&cfg);
        let m = hipmcl_sparse::Csc::from_triples(&net.graph);
        let result = hipmcl_core::cluster_serial(&m, &hipmcl_core::MclConfig::testing(24));
        // The truncated final family can be tiny and noise-attached, so
        // compare partitions over vertices in full-sized families only.
        let full: Vec<usize> = (0..cfg.n)
            .filter(|&v| {
                let c = net.truth[v];
                net.truth.iter().filter(|&&x| x == c).count() >= cfg.min_cluster
            })
            .collect();
        for (ai, &i) in full.iter().enumerate() {
            for &j in &full[ai + 1..] {
                assert_eq!(
                    result.labels[i] == result.labels[j],
                    net.truth[i] == net.truth[j],
                    "vertices {i},{j}"
                );
            }
        }
    }
}
