//! Workload generators for `hipmcl-rs`.
//!
//! The paper evaluates on protein-similarity networks from the IMG
//! database (archaea, eukarya, the isom100 family) and Metaclust50 —
//! none of which can ship with this reproduction. This crate provides
//! (per the DESIGN.md substitution table):
//!
//! * [`protein`] — a planted-partition "protein similarity" generator:
//!   power-law cluster sizes, dense high-weight intra-cluster blocks,
//!   sparse low-weight inter-cluster noise. This is the workload family
//!   whose density regime (hundreds to ~1000 nonzeros per column after
//!   selection, large SpGEMM compression factors) drives every
//!   experiment in the paper.
//! * [`rmat`] — R-MAT (Graph500 parameters) for skewed-degree stress
//!   tests.
//! * [`er`] — Erdős–Rényi `G(n, m)` for unstructured baselines.
//! * [`registry`] — the paper's six networks (Table I) mapped to scaled
//!   synthetic instances with matched average degree, one constructor per
//!   network, so benches can say `Dataset::Archaea.instance(scale)`.
//! * [`apsp`] — weighted digraphs plus a Bellman–Ford all-pairs
//!   shortest-path reference for the **min-plus** SUMMA workload.
//! * [`reach`] — digraphs plus a BFS transitive-closure reference for the
//!   **boolean** SUMMA workload.
//!
//! All generators are deterministic in their seed; the matrix-market
//! generators are rayon-parallel.

pub mod apsp;
pub mod er;
pub mod protein;
pub mod reach;
pub mod registry;
pub mod rmat;
pub mod stats;

pub use apsp::{bellman_ford_apsp, generate_apsp_digraph};
pub use protein::{generate_protein_net, ProteinNetConfig};
pub use reach::{bfs_closure, generate_reach_digraph};
pub use registry::Dataset;
