//! Workload generators for `hipmcl-rs`.
//!
//! The paper evaluates on protein-similarity networks from the IMG
//! database (archaea, eukarya, the isom100 family) and Metaclust50 —
//! none of which can ship with this reproduction. This crate provides
//! (per the DESIGN.md substitution table):
//!
//! * [`protein`] — a planted-partition "protein similarity" generator:
//!   power-law cluster sizes, dense high-weight intra-cluster blocks,
//!   sparse low-weight inter-cluster noise. This is the workload family
//!   whose density regime (hundreds to ~1000 nonzeros per column after
//!   selection, large SpGEMM compression factors) drives every
//!   experiment in the paper.
//! * [`rmat`] — R-MAT (Graph500 parameters) for skewed-degree stress
//!   tests.
//! * [`er`] — Erdős–Rényi `G(n, m)` for unstructured baselines.
//! * [`registry`] — the paper's six networks (Table I) mapped to scaled
//!   synthetic instances with matched average degree, one constructor per
//!   network, so benches can say `Dataset::Archaea.instance(scale)`.
//!
//! All generators are deterministic in their seed and rayon-parallel.

pub mod er;
pub mod protein;
pub mod registry;
pub mod rmat;
pub mod stats;

pub use protein::{generate_protein_net, ProteinNetConfig};
pub use registry::Dataset;
