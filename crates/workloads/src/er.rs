//! Erdős–Rényi `G(n, m)` generator — the unstructured baseline.

use hipmcl_sparse::{Idx, Triples};
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Generates `G(n, m)` with uniform `[0.1, 1)` weights, no self-loops,
/// duplicates collapsed. Deterministic in `seed`.
pub fn generate_er(n: usize, m: usize, seed: u64) -> Triples<f64> {
    let edges: Vec<(Idx, Idx, f64)> = (0..m)
        .into_par_iter()
        .filter_map(|e| {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(
                seed ^ (e as u64).wrapping_mul(0x9E3779B97F4A7C15),
            );
            let r = rng.gen_range(0..n);
            let c = rng.gen_range(0..n);
            (r != c).then(|| (r as Idx, c as Idx, rng.gen_range(0.1..1.0)))
        })
        .collect();
    let mut t = Triples::with_capacity(n, n, edges.len());
    for (r, c, v) in edges {
        t.push(r, c, v);
    }
    t.sum_duplicates();
    t
}

/// Symmetric variant: each sampled pair is stored in both directions.
pub fn generate_er_symmetric(n: usize, m: usize, seed: u64) -> Triples<f64> {
    let base = generate_er(n, m, seed);
    let mut t = Triples::with_capacity(n, n, base.nnz() * 2);
    for (r, c, v) in base.iter() {
        t.push(r, c, v);
        t.push(c, r, v);
    }
    t.sum_duplicates();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_near_target_size() {
        let a = generate_er(500, 3000, 1);
        assert_eq!(a, generate_er(500, 3000, 1));
        assert!(a.nnz() > 2500 && a.nnz() <= 3000, "nnz {}", a.nnz());
    }

    #[test]
    fn no_self_loops() {
        let a = generate_er(100, 1000, 2);
        assert!(a.iter().all(|(r, c, _)| r != c));
    }

    #[test]
    fn symmetric_variant_is_symmetric() {
        let a = generate_er_symmetric(80, 400, 3);
        let m = hipmcl_sparse::Csc::from_triples(&a);
        assert_eq!(m.transposed(), m);
    }
}
