//! Graph statistics used by the benches' workload descriptions.

use hipmcl_sparse::{Csc, Value};

/// Summary statistics of a graph / sparse matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStats {
    /// Vertex count (columns).
    pub n: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Mean column degree.
    pub avg_degree: f64,
    /// Maximum column degree.
    pub max_degree: usize,
    /// Fraction of empty columns.
    pub empty_cols: f64,
}

/// Computes [`GraphStats`] for a CSC matrix.
pub fn graph_stats<T: Value>(m: &Csc<T>) -> GraphStats {
    let n = m.ncols();
    let mut max_degree = 0usize;
    let mut empty = 0usize;
    for j in 0..n {
        let d = m.col_nnz(j);
        max_degree = max_degree.max(d);
        if d == 0 {
            empty += 1;
        }
    }
    GraphStats {
        n,
        nnz: m.nnz(),
        avg_degree: if n == 0 {
            0.0
        } else {
            m.nnz() as f64 / n as f64
        },
        max_degree,
        empty_cols: if n == 0 { 0.0 } else { empty as f64 / n as f64 },
    }
}

/// Degree histogram in powers of two: `hist[k]` counts columns with
/// degree in `[2^k, 2^(k+1))`; `hist[0]` includes degree 0 and 1.
pub fn degree_histogram<T: Value>(m: &Csc<T>) -> Vec<usize> {
    let mut hist = Vec::new();
    for j in 0..m.ncols() {
        let d = m.col_nnz(j);
        let bucket = if d <= 1 {
            0
        } else {
            (usize::BITS - (d - 1).leading_zeros()) as usize
        };
        if hist.len() <= bucket {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmcl_sparse::Triples;

    #[test]
    fn stats_of_identity() {
        let m = Csc::<f64>::identity(10);
        let s = graph_stats(&m);
        assert_eq!(s.n, 10);
        assert_eq!(s.nnz, 10);
        assert_eq!(s.avg_degree, 1.0);
        assert_eq!(s.max_degree, 1);
        assert_eq!(s.empty_cols, 0.0);
    }

    #[test]
    fn empty_columns_counted() {
        let mut t = Triples::new(4, 4);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        let s = graph_stats(&Csc::from_triples(&t));
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.empty_cols, 0.75);
    }

    #[test]
    fn histogram_buckets() {
        let mut t = Triples::new(8, 3);
        t.push(0, 0, 1.0); // degree 1 -> bucket 0
        for i in 0..3 {
            t.push(i, 1, 1.0); // degree 3 -> bucket 2
        }
        for i in 0..8 {
            t.push(i, 2, 1.0); // degree 8 -> bucket 3
        }
        let h = degree_histogram(&Csc::from_triples(&t));
        assert_eq!(h, vec![1, 0, 1, 1]);
    }
}
