//! Digraph generator and serial transitive-closure reference for the
//! boolean SUMMA workload.
//!
//! The distributed computation squares the reflexive adjacency matrix
//! under the boolean semiring (`⊕` = or, `⊗` = and): with `R_0 = A ∨ I`,
//! `R_{k+1} = R_k ∧.∨ R_k` doubles the reachable hop horizon, so
//! `⌈lg n⌉` squarings converge to the transitive closure. The reference
//! here is a plain breadth-first search from every vertex.

use hipmcl_sparse::{Boolean, Csc, Idx, Triples};
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Generates a random digraph for reachability: `m` random arcs plus the
/// full diagonal (reflexivity — required for hop-doubling, which otherwise
/// loses short paths when squaring). Deterministic in `seed`.
pub fn generate_reach_digraph(n: usize, m: usize, seed: u64) -> Triples<bool> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut t = Triples::with_capacity(n, n, m + n);
    for _ in 0..m {
        let r = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        if r != c {
            t.push(r as Idx, c as Idx, true);
        }
    }
    for i in 0..n {
        t.push(i as Idx, i as Idx, true);
    }
    t.sum_duplicates_in(Boolean);
    t
}

/// Serial transitive closure by BFS from every source. Returns the
/// closure as boolean CSC: `(i, j)` present iff `j` is reachable from `i`
/// (every vertex reaches itself through the reflexive diagonal).
pub fn bfs_closure(g: &Triples<bool>) -> Csc<bool> {
    let n = g.nrows();
    assert_eq!(n, g.ncols(), "closure needs a square adjacency matrix");
    let mut adj = vec![Vec::new(); n];
    for (r, c, v) in g.iter() {
        if v {
            adj[r as usize].push(c as usize);
        }
    }
    let mut closure = Triples::new(n, n);
    let mut seen = vec![usize::MAX; n]; // seen[v] == src marks this BFS
    let mut queue = VecDeque::new();
    for src in 0..n {
        seen[src] = src;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            closure.push(src as Idx, u as Idx, true);
            for &v in &adj[u] {
                if seen[v] != src {
                    seen[v] = src;
                    queue.push_back(v);
                }
            }
        }
    }
    Csc::from_triples_in(Boolean, &closure)
}

/// Serial hop-doubling reference: squares the matrix under the boolean
/// semiring until a fixed point, mirroring the distributed pipeline.
pub fn boolean_closure(g: &Triples<bool>) -> Csc<bool> {
    let mut r = Csc::from_triples_in(Boolean, g);
    let mut hops = 1usize;
    while hops < g.nrows().max(1) {
        let next = hipmcl_spgemm::hash::multiply_in(Boolean, &r, &r);
        if next == r {
            break;
        }
        r = next;
        hops *= 2;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_reflexive() {
        let a = generate_reach_digraph(60, 200, 1);
        assert_eq!(a, generate_reach_digraph(60, 200, 1));
        let m = Csc::from_triples_in(Boolean, &a);
        for i in 0..60 {
            assert_eq!(m.get(i, i), Some(true));
        }
    }

    #[test]
    fn bfs_closure_on_a_line_graph() {
        // 0 → 1 → 2: row 0 reaches everything, row 2 only itself.
        let mut t = Triples::new(3, 3);
        t.push(0, 1, true);
        t.push(1, 2, true);
        for i in 0..3 {
            t.push(i, i, true);
        }
        let c = bfs_closure(&t);
        assert_eq!(c.get(0, 2), Some(true));
        assert_eq!(c.get(2, 0), None);
        assert_eq!(c.nnz(), 6); // 3 + 2 + 1
    }

    #[test]
    fn hop_doubling_matches_bfs_closure() {
        for seed in [2u64, 7, 13] {
            let g = generate_reach_digraph(45, 140, seed);
            assert_eq!(boolean_closure(&g), bfs_closure(&g), "seed={seed}");
        }
    }
}
