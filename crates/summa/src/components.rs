//! Cluster extraction from the converged distributed matrix.
//!
//! When MCL converges, the matrix is a disjoint union of near-star graphs
//! and is tiny relative to any earlier iterate. Two extraction paths:
//!
//! * [`gathered_components`] — gather to rank 0, sequential union-find,
//!   broadcast labels. Cheap because the converged matrix is small; this
//!   is the default the driver uses.
//! * [`label_propagation_components`] — a fully distributed min-label
//!   propagation (HipMCL itself uses a distributed connected-components
//!   algorithm, LACC): every vertex repeatedly adopts the smallest label
//!   in its closed neighbourhood, implemented with the 2D distribution's
//!   row/column collectives, until a global fixed point. Kept as the
//!   scalable path and validated against union-find.

use crate::distmat::DistMatrix;
use hipmcl_comm::collectives::{allreduce, allreduce_sum_vec, bcast};
use hipmcl_comm::ProcGrid;
use hipmcl_sparse::components::{clusters_from_labels, connected_components};

/// Gather-based components. Returns `(labels, k)` replicated on all ranks;
/// labels are dense in `0..k` over global vertex ids.
pub fn gathered_components(grid: &ProcGrid, m: &DistMatrix) -> (Vec<u32>, usize) {
    let gathered = m.gather_to_root(grid);
    let payload = gathered.map(|g| {
        let (labels, k) = connected_components(&g);
        (labels, k as u64)
    });
    let (labels, k) = bcast(&grid.world, 0, payload);
    (labels, k as usize)
}

/// Distributed min-label propagation. Each round:
/// `label[v] ← min(label[v], min over undirected neighbours u of label[u])`,
/// evaluated through the 2D block distribution (each block contributes
/// candidate updates for its row range and column range), followed by a
/// global elementwise-min combine; stop when no label changed anywhere.
///
/// Converges in `O(diameter)` rounds — fine for the star-like converged
/// MCL matrices it is used on.
pub fn label_propagation_components(grid: &ProcGrid, m: &DistMatrix) -> (Vec<u32>, usize) {
    let n = m.nrows_global;
    assert_eq!(n, m.ncols_global, "components need a square matrix");
    let row_range = m.row_range(grid);
    let col_range = m.col_range(grid);

    // Labels replicated on every rank (f64 for the vector allreduce; the
    // values are small integers so this is exact).
    let mut labels: Vec<f64> = (0..n).map(|v| v as f64).collect();
    loop {
        // Candidate updates from this block: edge (i, j) lets i and j
        // adopt each other's label.
        let mut proposal = labels.clone();
        for j in 0..m.local.ncols() {
            let gj = col_range.start + j;
            for &i in m.local.col_rows(j) {
                let gi = row_range.start + i as usize;
                let min = proposal[gi].min(proposal[gj]);
                proposal[gi] = min;
                proposal[gj] = min;
            }
        }
        // Elementwise min across ranks: encode min as a sum-free reduce by
        // negating (allreduce_sum_vec is the only vector reduce; use the
        // generic allreduce with an explicit min combine instead).
        let combined = hipmcl_comm::collectives::allreduce(&grid.world, proposal, |mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x = x.min(*y);
            }
            a
        });
        let changed = combined.iter().zip(&labels).filter(|(a, b)| a != b).count() as f64;
        labels = combined;
        let changed_total = allreduce(&grid.world, changed, |a, b| a + b);
        if changed_total == 0.0 {
            break;
        }
    }

    // Compact representatives to dense labels 0..k (deterministic).
    let mut map = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(n);
    for &l in &labels {
        let next = map.len() as u32;
        let id = *map.entry(l.to_bits()).or_insert(next);
        out.push(id);
    }
    (out, map.len())
}

/// Groups global vertex ids by label (see
/// [`hipmcl_sparse::components::clusters_from_labels`]).
pub fn clusters(labels: &[u32], k: usize) -> Vec<Vec<u32>> {
    clusters_from_labels(labels, k)
}

/// Histogram of cluster sizes — the headline statistic biologists read
/// off an MCL run.
pub fn cluster_size_histogram(labels: &[u32], k: usize) -> Vec<usize> {
    let mut sizes = vec![0usize; k];
    for &l in labels {
        sizes[l as usize] += 1;
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

/// Silences the "unused import" for allreduce_sum_vec kept for API
/// stability of this module.
#[allow(dead_code)]
fn _keep(v: Vec<f64>, grid: &ProcGrid) -> Vec<f64> {
    allreduce_sum_vec(&grid.world, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmcl_comm::{MachineModel, Universe};
    use hipmcl_sparse::{Csc, Idx, Triples};

    /// Two triangles plus an isolated vertex (7 vertices, 3 components).
    fn two_triangles() -> Triples<f64> {
        let mut t = Triples::new(7, 7);
        for &(a, b) in &[(0u32, 1u32), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            t.push(a as Idx, b as Idx, 1.0);
        }
        t
    }

    #[test]
    fn gathered_components_match_serial() {
        let serial = connected_components(&Csc::from_triples(&two_triangles()));
        for p in [1usize, 4] {
            let results = Universe::run(p, MachineModel::summit(), |comm| {
                let grid = ProcGrid::new(comm);
                let m = DistMatrix::from_global(&grid, &two_triangles());
                gathered_components(&grid, &m)
            });
            for (labels, k) in &results {
                assert_eq!(*k, serial.1, "p={p}");
                assert_eq!(labels, &serial.0, "p={p}");
            }
        }
    }

    #[test]
    fn label_propagation_matches_union_find() {
        for p in [1usize, 4, 9] {
            let results = Universe::run(p, MachineModel::summit(), |comm| {
                let grid = ProcGrid::new(comm);
                let m = DistMatrix::from_global(&grid, &two_triangles());
                let lp = label_propagation_components(&grid, &m);
                let uf = gathered_components(&grid, &m);
                (lp, uf)
            });
            for ((lp_labels, lp_k), (uf_labels, uf_k)) in results {
                assert_eq!(lp_k, uf_k, "p={p}");
                // Same partition (labels may permute): compare pairwise.
                for a in 0..lp_labels.len() {
                    for b in 0..lp_labels.len() {
                        assert_eq!(
                            lp_labels[a] == lp_labels[b],
                            uf_labels[a] == uf_labels[b],
                            "p={p} vertices {a},{b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn histogram_sorted_descending() {
        let labels = vec![0, 0, 1, 0, 2, 2];
        let h = cluster_size_histogram(&labels, 3);
        assert_eq!(h, vec![3, 2, 1]);
    }

    #[test]
    fn clusters_round_trip() {
        let labels = vec![1, 0, 1];
        let c = clusters(&labels, 2);
        assert_eq!(c[0], vec![1]);
        assert_eq!(c[1], vec![0, 2]);
    }
}
