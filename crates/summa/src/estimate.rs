//! Distributed memory-requirement estimation (§V).
//!
//! Before each MCL iteration HipMCL must know how large the *unpruned*
//! expanded matrix will be, to pick the number of SUMMA phases `h` that
//! keeps every process inside its memory budget. Two estimators:
//!
//! * **Exact symbolic SUMMA** (original HipMCL): replays the whole SUMMA
//!   stage structure, computing output structure without values. Cost is
//!   `O(flops)` — nearly as expensive as the numeric multiplication, which
//!   is why Fig. 1 shows memory estimation consuming ~½ of the original
//!   runtime.
//! * **Probabilistic** (the paper's contribution): the distributed form of
//!   Cohen's min-key sketch. Keys are drawn *deterministically from global
//!   row ids*, so the first layer needs no communication; propagation
//!   through each operand is local per block followed by a min-allreduce
//!   along the process column; the two propagations are stitched together
//!   by a single transpose-pair exchange. Cost is
//!   `O(r·(nnz A + nnz B)/P)` per rank plus two thin collectives —
//!   independent of `flops`, hence the Fig. 6 runtime win at high `cf`.
//!
//! The hybrid rule (§VII-D, last paragraph): when the estimated `cf` is
//! below a threshold the exact scheme is actually cheaper, so use it.

use crate::distmat::DistMatrix;
use hipmcl_comm::collectives::{allreduce, allreduce_min_vec_f32};
use hipmcl_comm::{
    Comm, ProcGrid, SpgemmKernel, WireDecode, WireEncode, WireError, WireReader, WireSize,
};
use hipmcl_sparse::{Csc, PlusTimes, Semiring, Value};
use rand::SeedableRng;
use rand_distr::Distribution;

/// Which estimator to run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EstimatorKind {
    /// Exact symbolic SUMMA (original HipMCL).
    ExactSymbolic,
    /// Cohen sketch with `r` keys per vertex.
    Probabilistic {
        /// Keys per vertex (paper sweeps r ∈ {3, 5, 7, 10}).
        r: usize,
    },
    /// Probabilistic first; fall back to exact when estimated `cf` is
    /// below `cf_threshold`.
    Hybrid {
        /// Keys per vertex for the probabilistic pass.
        r: usize,
        /// `cf` below which the exact scheme is cheaper and is rerun.
        cf_threshold: f64,
    },
    /// The paper's stated future work (§VIII): the Cohen sketch with its
    /// key propagation offloaded to the GPUs. Identical estimates; the
    /// key-op compute is charged at the device rate plus the H2D staging
    /// of the operand structures.
    ProbabilisticGpu {
        /// Keys per vertex.
        r: usize,
    },
}

/// Result of a memory estimation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryEstimate {
    /// Estimated global `nnz(A·B)` before pruning.
    pub nnz_estimate: f64,
    /// Estimated bytes of the unpruned output, CSC, summed over ranks.
    pub bytes_estimate: u64,
    /// `flops(A·B)` (exact — cheap to compute).
    pub flops: u64,
    /// Virtual seconds this rank spent estimating.
    pub time: f64,
    /// Name of the scheme that produced the estimate.
    pub scheme: &'static str,
}

/// Every scheme name a [`MemoryEstimate`] can carry — the decode side
/// interns against this list so `scheme` stays `&'static str` across a
/// process boundary.
const SCHEME_NAMES: [&str; 4] = [
    "exact-symbolic",
    "probabilistic",
    "probabilistic-gpu",
    "x", // test fixtures
];

impl WireEncode for MemoryEstimate {
    fn encode(&self, out: &mut Vec<u8>) {
        self.nnz_estimate.encode(out);
        self.bytes_estimate.encode(out);
        self.flops.encode(out);
        self.time.encode(out);
        self.scheme.encode(out);
    }
}

impl WireDecode for MemoryEstimate {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let nnz_estimate = f64::decode(r)?;
        let bytes_estimate = u64::decode(r)?;
        let flops = u64::decode(r)?;
        let time = f64::decode(r)?;
        let name = String::decode(r)?;
        let scheme = SCHEME_NAMES
            .iter()
            .copied()
            .find(|s| *s == name)
            .ok_or(WireError {
                what: "unknown MemoryEstimate scheme name",
                pos: r.pos(),
            })?;
        Ok(MemoryEstimate {
            nnz_estimate,
            bytes_estimate,
            flops,
            time,
            scheme,
        })
    }
}

/// Exact `flops(A·B)` for 2D-distributed operands: each rank needs the
/// global column counts of `A`, obtained with one allreduce, then counts
/// locally against its `B` block. Purely structural, so it holds in any
/// semiring.
pub fn distributed_flops<T: Value>(grid: &ProcGrid, a: &DistMatrix<T>, b: &DistMatrix<T>) -> u64 {
    distributed_flops_with_counts(grid, a, b).0
}

/// [`distributed_flops`] plus the replicated global per-column nnz vector
/// of `A` it is computed from (indexed by global column id). The counts
/// double as the raw material for the sketch clamp's per-column output
/// bounds, so the probabilistic estimator reuses them instead of paying
/// the allreduce twice.
pub fn distributed_flops_with_counts<T: Value>(
    grid: &ProcGrid,
    a: &DistMatrix<T>,
    b: &DistMatrix<T>,
) -> (u64, Vec<f64>) {
    // Global nnz per column of A: local counts summed down process columns
    // then shared along rows. We allreduce the full-length vector for
    // simplicity (cost charged through the collective's real bytes).
    let mut counts = vec![0.0f64; a.ncols_global];
    let col_range = a.col_range(grid);
    for (local_j, global_j) in col_range.enumerate() {
        counts[global_j] = a.local.col_nnz(local_j) as f64;
    }
    let counts = hipmcl_comm::collectives::allreduce_sum_vec(&grid.world, counts);

    // Each B-block column selects A columns by *global* row id.
    let row_range = b.row_range(grid);
    let mut local_flops = 0u64;
    for j in 0..b.local.ncols() {
        for &k in b.local.col_rows(j) {
            local_flops += counts[row_range.start + k as usize] as u64;
        }
    }
    let flops = allreduce(&grid.world, local_flops, |x, y| x + y);
    (flops, counts)
}

/// Runs the requested estimator under plus-times `f64` (the MCL path).
/// Collective over the grid. Returns an identical estimate on every rank.
pub fn estimate_memory(
    grid: &ProcGrid,
    a: &DistMatrix,
    b: &DistMatrix,
    kind: EstimatorKind,
    seed: u64,
) -> MemoryEstimate {
    estimate_memory_in(PlusTimes::<f64>::new(), grid, a, b, kind, seed)
}

/// Runs the requested estimator for operands in semiring `s`. The
/// estimators are structural — the sketch never touches values, and the
/// exact scheme multiplies in `s` only to discover the output pattern —
/// so the same schemes price min-plus or boolean SUMMA phases too.
pub fn estimate_memory_in<S: Semiring>(
    s: S,
    grid: &ProcGrid,
    a: &DistMatrix<S::Elem>,
    b: &DistMatrix<S::Elem>,
    kind: EstimatorKind,
    seed: u64,
) -> MemoryEstimate {
    match kind {
        EstimatorKind::ExactSymbolic => exact_symbolic_in(s, grid, a, b),
        EstimatorKind::Probabilistic { r } => probabilistic(grid, a, b, r, seed, false),
        EstimatorKind::ProbabilisticGpu { r } => probabilistic(grid, a, b, r, seed, true),
        EstimatorKind::Hybrid { r, cf_threshold } => {
            let prob = probabilistic(grid, a, b, r, seed, false);
            let cf_est = if prob.nnz_estimate > 0.0 {
                prob.flops as f64 / prob.nnz_estimate
            } else {
                1.0
            };
            if cf_est < cf_threshold {
                let mut exact = exact_symbolic_in(s, grid, a, b);
                exact.time += prob.time; // the probabilistic probe was paid too
                exact
            } else {
                prob
            }
        }
    }
}

/// Pattern-only broadcast payload: structure bytes, no values (what a
/// symbolic SUMMA actually moves).
#[derive(Clone)]
struct PatternBlock<T: Value>(std::sync::Arc<Csc<T>>);

impl<T: Value> WireSize for PatternBlock<T> {
    fn wire_bytes(&self) -> usize {
        self.0.rowidx.len() * std::mem::size_of::<hipmcl_sparse::Idx>()
            + self.0.colptr.len() * std::mem::size_of::<usize>()
    }
}

// The byte transport ships the full block (values included): the stage's
// symbolic product runs through the semiring, so dropping values could
// change exact-zero cancellation and break bit-identity across
// transports. The *modeled* cost above stays structure-only — that is
// what a dedicated symbolic SUMMA would move.
impl<T: Value> WireEncode for PatternBlock<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl<T: Value> WireDecode for PatternBlock<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(PatternBlock(std::sync::Arc::new(Csc::decode(r)?)))
    }
}

/// Exact symbolic SUMMA: replays the stage loop, broadcasting block
/// *structures* and computing per-stage symbolic products, then merges the
/// patterns to the exact output nnz.
fn exact_symbolic_in<S: Semiring>(
    s: S,
    grid: &ProcGrid,
    a: &DistMatrix<S::Elem>,
    b: &DistMatrix<S::Elem>,
) -> MemoryEstimate {
    let t0 = grid.world.now();
    let side = grid.side;
    let mut stage_patterns: Vec<Csc<f64>> = Vec::with_capacity(side);
    let mut flops_total = 0u64;

    for k in 0..side {
        // Broadcast A_{i,k} along rows and B_{k,j} along columns.
        let a_blk = bcast_pattern(&grid.row_comm, k, &a.local, grid.col == k);
        let b_blk = bcast_pattern(&grid.col_comm, k, &b.local, grid.row == k);

        let flops = hipmcl_spgemm::flops(&a_blk, &b_blk);
        flops_total += flops;
        // Real symbolic pass; pattern materialized (values=1) so stage
        // patterns can be union-merged exactly whatever the semiring.
        let pattern = hipmcl_spgemm::hash::multiply_in(s, &a_blk, &b_blk).map_values(|_| 1.0f64);
        let cf = if pattern.nnz() == 0 {
            1.0
        } else {
            flops as f64 / pattern.nnz() as f64
        };
        grid.world.advance_clock(
            grid.world
                .model()
                .spgemm_time(SpgemmKernel::CpuHash, flops, cf),
        );
        stage_patterns.push(pattern);
    }

    // Union of stage patterns = exact local output structure.
    let merged = crate::merge::kway_merge(&stage_patterns, (a.local.nrows(), b.local.ncols()));
    let merged_elems: usize = stage_patterns.iter().map(|p| p.nnz()).sum();
    grid.world.advance_clock(
        grid.world
            .model()
            .merge_time(merged_elems as u64, side.max(2)),
    );

    let local_nnz = merged.nnz() as u64;
    let global_nnz = allreduce(&grid.world, local_nnz, |x, y| x + y);
    let flops = allreduce(&grid.world, flops_total, |x, y| x + y);
    MemoryEstimate {
        nnz_estimate: global_nnz as f64,
        bytes_estimate: hipmcl_spgemm::symbolic::csc_bytes(global_nnz, b.ncols_global as u64),
        flops,
        time: grid.world.now() - t0,
        scheme: "exact-symbolic",
    }
}

/// Broadcasts a block's pattern within `comm` from `root`; `is_root` says
/// whether this rank supplies `local`.
fn bcast_pattern<T: Value>(comm: &Comm, root: usize, local: &Csc<T>, is_root: bool) -> Csc<T> {
    let payload = if is_root {
        Some(PatternBlock(std::sync::Arc::new(local.clone())))
    } else {
        None
    };
    let blk = hipmcl_comm::collectives::bcast(comm, root, payload);
    blk.0.as_ref().clone()
}

/// Distributed Cohen estimation. Requires square operands distributed on
/// the same grid with `nrows_global == ncols_global` (the MCL case), so
/// that row and column ranges coincide for the transpose exchange.
///
/// Every per-column estimate is clamped into its provable bracket
/// `[max_k nnz(A_{*k}), Σ_k nnz(A_{*k})]` over `k ∈ B_{*j}` — the output
/// column is a union of those A-columns, so it has at least as many rows
/// as the largest and at most as many as their disjoint sum (= the
/// column's flops). A pathological key draw can otherwise report an
/// estimate above the exact flops or below the largest contributing
/// column, and with `r = 1` the raw formula degenerates to 0 everywhere;
/// the clamp keeps both inside the bracket (at `r = 1` the estimator *is*
/// the per-column lower bound). The bounds are global quantities, so
/// clamping preserves grid-invariance.
fn probabilistic<T: Value>(
    grid: &ProcGrid,
    a: &DistMatrix<T>,
    b: &DistMatrix<T>,
    r: usize,
    seed: u64,
    on_gpu: bool,
) -> MemoryEstimate {
    assert!(r >= 1, "need at least one key");
    assert_eq!(
        a.nrows_global, a.ncols_global,
        "distributed Cohen estimation assumes square operands (MCL matrices)"
    );
    let t0 = grid.world.now();
    let (flops, a_col_nnz) = distributed_flops_with_counts(grid, a, b);

    // Layer 1: keys for this block's global rows, drawn deterministically
    // from (seed, global row id) — identical across ranks, zero comm.
    let row_range = a.row_range(grid);
    let row_keys = draw_keys_range(row_range.clone(), r, seed);

    // Propagate through A: per local column, min over present rows.
    let col_range = a.col_range(grid);
    let mut mid_partial = vec![f32::INFINITY; col_range.len() * r];
    propagate_block(&a.local, &row_keys, &mut mid_partial, r);
    // Combine partial mins down the process column.
    let mid_keys = allreduce_min_vec_f32(&grid.col_comm, mid_partial);

    // Transpose exchange: this rank holds mid keys for its *column* range
    // but needs them for its *row* range (B's rows). The grid transpose
    // partner holds exactly those.
    let my_rows_mid: Vec<f32> = if grid.row == grid.col {
        mid_keys.clone()
    } else {
        const TAG: u64 = 0xC0E7;
        let partner = grid.rank_of(grid.col, grid.row);
        grid.world.send(partner, TAG, mid_keys.clone());
        grid.world.recv::<Vec<f32>>(partner, TAG)
    };

    // Propagate through B.
    let out_range = b.col_range(grid);
    let mut out_partial = vec![f32::INFINITY; out_range.len() * r];
    propagate_block(&b.local, &my_rows_mid, &mut out_partial, r);
    let out_keys = allreduce_min_vec_f32(&grid.col_comm, out_partial);

    // Charge the sketch's compute: r·(nnz A + nnz B) local key ops. On
    // the GPU path (§VIII future work) the key propagation runs at the
    // aggregate device key-op rate after staging the operand structures
    // over the link; the collectives above are unchanged.
    let ops = r as u64 * (a.local.nnz() as u64 + b.local.nnz() as u64);
    let model = grid.world.model();
    if on_gpu && model.gpus > 0 {
        let structure_bytes =
            (a.local.nnz() + b.local.nnz()) * std::mem::size_of::<hipmcl_sparse::Idx>();
        // Device key-op rate: scale the CPU estimate rate by the same
        // GPU:CPU throughput ratio the SpGEMM kernels enjoy at high cf.
        let gpu_ratio =
            model.gpu_node_rate / (model.core_spgemm_rate * 40.0 / (1.0 + 0.007 * 40.0));
        let gpu_time = model.link_time(structure_bytes) + model.estimate_time(ops) / gpu_ratio;
        grid.world.advance_clock(gpu_time);
    } else {
        grid.world.advance_clock(model.estimate_time(ops));
    }

    // Provable per-column bracket for `nnz(C_{*j})`: the column is the
    // union of the A-columns selected by `B_{*j}`, so it holds at least
    // `max_k nnz(A_{*k})` rows and at most `Σ_k nnz(A_{*k})` (= the
    // column's exact flops). Partials over this rank's B rows combine
    // along the process column exactly like the key propagation; the
    // resulting bounds are global, so the clamp below cannot break
    // grid-invariance. `a_col_nnz` holds integer counts, so the sums are
    // exact and `lo ≤ hi` holds without float slack.
    let b_rows = b.row_range(grid);
    let mut lo_partial = vec![0.0f64; out_range.len()];
    let mut hi_partial = vec![0.0f64; out_range.len()];
    for j in 0..b.local.ncols() {
        for &k in b.local.col_rows(j) {
            let c = a_col_nnz[b_rows.start + k as usize];
            lo_partial[j] = lo_partial[j].max(c);
            hi_partial[j] += c;
        }
    }
    let hi = hipmcl_comm::collectives::allreduce_sum_vec(&grid.col_comm, hi_partial);
    let lo = allreduce(&grid.col_comm, lo_partial, |mut x, y| {
        for (l, other) in x.iter_mut().zip(&y) {
            *l = l.max(*other);
        }
        x
    });

    // Per-column estimates for this rank's slab, clamped into the bracket;
    // identical across the process column, so divide the global sum by
    // `side`.
    let slab_total: f64 = (0..out_range.len())
        .map(|j| {
            let keys = &out_keys[j * r..(j + 1) * r];
            let raw = if keys.iter().any(|k| k.is_infinite()) {
                0.0
            } else {
                let sum: f64 = keys.iter().map(|&k| k as f64).sum();
                if sum <= 0.0 {
                    0.0
                } else {
                    (r as f64 - 1.0) / sum
                }
            };
            raw.clamp(lo[j], hi[j])
        })
        .sum();
    let total = allreduce(&grid.world, slab_total, |x, y| x + y) / grid.side as f64;

    MemoryEstimate {
        nnz_estimate: total,
        bytes_estimate: hipmcl_spgemm::symbolic::csc_bytes(
            total.max(0.0) as u64,
            b.ncols_global as u64,
        ),
        flops,
        time: grid.world.now() - t0,
        scheme: if on_gpu {
            "probabilistic-gpu"
        } else {
            "probabilistic"
        },
    }
}

/// Keys for global vertex ids in `range`: `r` per vertex, deterministic in
/// `(seed, id)` so every rank agrees without communication.
fn draw_keys_range(range: std::ops::Range<usize>, r: usize, seed: u64) -> Vec<f32> {
    let mut keys = Vec::with_capacity(range.len() * r);
    for id in range {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(
            seed ^ (id as u64).wrapping_mul(0x9E3779B97F4A7C15),
        );
        for _ in 0..r {
            let e: f64 = rand_distr::Exp1.sample(&mut rng);
            keys.push(e as f32);
        }
    }
    keys
}

/// `out[j·r + t] = min(out[j·r + t], min over rows i of col j of keys[i·r + t])`.
fn propagate_block<T: Value>(m: &Csc<T>, row_keys: &[f32], out: &mut [f32], r: usize) {
    debug_assert_eq!(row_keys.len(), m.nrows() * r);
    debug_assert_eq!(out.len(), m.ncols() * r);
    for j in 0..m.ncols() {
        for &i in m.col_rows(j) {
            let src = &row_keys[i as usize * r..(i as usize + 1) * r];
            let dst = &mut out[j * r..(j + 1) * r];
            for t in 0..r {
                if src[t] < dst[t] {
                    dst[t] = src[t];
                }
            }
        }
    }
}

/// Phase planning: the number of SUMMA phases `h` needed so the unpruned
/// output slab fits each rank's memory budget (§V).
pub fn plan_phases(estimate: &MemoryEstimate, ranks: usize, per_rank_budget_bytes: u64) -> usize {
    let per_rank = estimate.bytes_estimate / ranks as u64;
    (per_rank.div_ceil(per_rank_budget_bytes.max(1)) as usize).max(1)
}

/// How `Auto` phase planning picks the phase count `h`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PhasePlanner {
    /// The memory floor alone: the smallest `h` whose unpruned output
    /// slab fits each rank's budget ([`plan_phases`], §V — the original
    /// HipMCL rule).
    #[default]
    MemoryOnly,
    /// Bi-objective: memory first, then overlap. Every candidate
    /// `h ∈ [h_min, h_min + max_extra_phases]` already satisfies the
    /// memory budget (slabs only shrink as `h` grows); among them the
    /// planner picks the one minimizing the *modeled pipeline idle* of a
    /// mini-simulation of the phase's broadcast/kernel/merge event
    /// structure ([`modeled_pipeline_idle`]).
    OverlapAware {
        /// How many phases past the memory floor the search may consider
        /// (validated to `1..=64` by `SummaConfig::validate`).
        max_extra_phases: usize,
    },
}

/// What the phase planner decided, kept for observability in
/// `SummaOutput`.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseDecision {
    /// The phase count the run uses.
    pub phases: usize,
    /// The memory floor `h_min` ([`plan_phases`]); `phases ≥ memory_floor`
    /// always, so the chosen plan never exceeds the memory-only plan's
    /// per-rank budget.
    pub memory_floor: usize,
    /// `(candidate h, modeled pipeline idle)` for every candidate scored
    /// (empty for [`PhasePlanner::MemoryOnly`]).
    pub scores: Vec<(usize, f64)>,
}

/// Per-rank workload shape fed to the overlap model, extracted from the
/// operands by the SUMMA driver before phases are fixed.
#[derive(Clone, Copy, Debug)]
pub struct OverlapInputs {
    /// Grid side `√P`.
    pub side: usize,
    /// This multiplication's flops per rank.
    pub flops_per_rank: u64,
    /// Wire bytes of the local `A` block (re-broadcast every phase).
    pub bytes_a: usize,
    /// Wire bytes of the local `B` block (split across phases).
    pub bytes_b: usize,
    /// Estimated compression factor of the product.
    pub cf: f64,
    /// The kernel the selector is expected to pick for the stages.
    pub kernel: SpgemmKernel,
    /// Whether the scheduler runs pipelined: if so, each phase's closing
    /// merge drains one phase late (its tail overlaps the next phase's
    /// broadcasts); bulk synchronous blocks the host at every phase end.
    pub pipelined: bool,
}

/// Models one rank's pipeline idle for a candidate phase count `h`: a
/// mini-simulation replaying the event structure of `pipeline::run` —
/// the host issues the per-stage `A`/`B` broadcasts (a `⌈lg √P⌉`-hop
/// tree each), the device timeline takes the kernels, and the merge lane
/// runs Algorithm 2's merge cadence with the model-selected kernel per
/// merge; the host blocks on each phase's final merge — one phase late
/// when pipelined, mirroring the scheduler's deferred drain. Returns the
/// summed idle of the three actors against the makespan — the quantity
/// [`PhasePlanner::OverlapAware`] minimizes.
///
/// The tension: more phases re-broadcast `A` once per phase (host busy
/// grows `∝ h`, and with it the makespan once broadcasts stop hiding
/// under kernels), but under the pipelined drain only the *last* phase's
/// closing merge stalls the end of the run, and that tail shrinks
/// `∝ 1/h` — so in kernel-bound regimes the modeled idle falls with `h`
/// before the broadcast cost catches up, and the minimum is genuinely
/// interior.
pub fn modeled_pipeline_idle(
    model: &hipmcl_comm::MachineModel,
    inputs: &OverlapInputs,
    h: usize,
) -> f64 {
    use crate::merge::{algorithm2_merge_count, select_merge_kernel};
    use hipmcl_comm::Timeline;

    let side = inputs.side.max(1);
    let hops = (side as f64).log2().ceil();
    let t_bcast_a = hops * model.p2p_time(inputs.bytes_a);
    let t_bcast_b = hops * model.p2p_time(inputs.bytes_b / h.max(1));
    let stage_flops = inputs.flops_per_rank / (h.max(1) as u64 * side as u64);
    let cf = inputs.cf.max(1.0);
    let dur_kernel = model.spgemm_time(inputs.kernel, stage_flops, cf);
    let slab_elems = ((stage_flops as f64 / cf) as u64).max(1);
    let merge_rate = |kernel, elems, ways| {
        if model.sockets > 1 {
            model.socket_merge_time_with(kernel, elems, ways)
        } else {
            model.merge_time_with(kernel, elems, ways)
        }
    };

    let mut host = 0.0f64;
    let mut host_busy = 0.0f64;
    let mut device = Timeline::new();
    let mut device_busy = 0.0f64;
    let mut lane = Timeline::new();
    let mut lane_busy = 0.0f64;
    let mut sealed_ready: Option<f64> = None;

    for _ in 0..h {
        let mut stack: Vec<(u64, f64)> = Vec::new();
        let merge_all = |stack: &mut Vec<(u64, f64)>, count: usize, lane: &mut Timeline| {
            let tail: Vec<(u64, f64)> = stack.split_off(stack.len() - count);
            let elems: u64 = tail.iter().map(|&(e, _)| e).sum();
            let ready = tail.iter().map(|&(_, r)| r).fold(0.0, f64::max);
            let kernel = select_merge_kernel(model, elems, count);
            let dur = merge_rate(kernel, elems, count);
            let done = lane.submit(ready, dur);
            stack.push((elems, done.at));
            dur
        };
        for k in 0..side {
            host += t_bcast_a + t_bcast_b;
            host_busy += t_bcast_a + t_bcast_b;
            let done = device.submit(host, dur_kernel);
            device_busy += dur_kernel;
            stack.push((slab_elems, done.at));
            let count = algorithm2_merge_count(k + 1);
            if count > 0 {
                lane_busy += merge_all(&mut stack, count, &mut lane);
            }
        }
        if stack.len() > 1 {
            let count = stack.len();
            lane_busy += merge_all(&mut stack, count, &mut lane);
        }
        // The host needs the phase's merged slab — right away when bulk
        // synchronous, one phase late (after the next phase's issue work)
        // when pipelined.
        let ready = stack.last().map_or(host, |&(_, r)| r);
        if inputs.pipelined {
            if let Some(prev) = sealed_ready.replace(ready) {
                host = host.max(prev);
            }
        } else {
            host = host.max(ready);
        }
    }
    if let Some(prev) = sealed_ready {
        host = host.max(prev);
    }

    let makespan = host.max(device.busy_until()).max(lane.busy_until());
    (makespan - host_busy) + (makespan - device_busy) + (makespan - lane_busy)
}

/// Bi-objective phase planning: starts from the memory floor
/// ([`plan_phases`]) and searches `h ∈ [h_min, h_min + max_extra]` for
/// the candidate with the lowest [`modeled_pipeline_idle`]. Since slab
/// memory shrinks monotonically in `h`, every candidate satisfies the
/// memory budget the floor satisfies; ties go to the smallest `h`.
pub fn plan_phases_overlap(
    estimate: &MemoryEstimate,
    ranks: usize,
    per_rank_budget_bytes: u64,
    model: &hipmcl_comm::MachineModel,
    inputs: &OverlapInputs,
    max_extra: usize,
) -> PhaseDecision {
    let memory_floor = plan_phases(estimate, ranks, per_rank_budget_bytes);
    let scores: Vec<(usize, f64)> = (memory_floor..=memory_floor + max_extra)
        .map(|h| (h, modeled_pipeline_idle(model, inputs, h)))
        .collect();
    let phases = scores
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("modeled idle is finite"))
        .map(|&(h, _)| h)
        .unwrap_or(memory_floor);
    PhaseDecision {
        phases,
        memory_floor,
        scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmcl_comm::{MachineModel, Universe};
    use hipmcl_sparse::{Idx, Triples};
    use rand::Rng;

    fn random_global(n: usize, nnz: usize, seed: u64) -> Triples<f64> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut t = Triples::new(n, n);
        for _ in 0..nnz {
            t.push(
                rng.gen_range(0..n) as Idx,
                rng.gen_range(0..n) as Idx,
                rng.gen_range(0.5..1.5),
            );
        }
        t.sum_duplicates();
        t
    }

    fn exact_reference(n: usize, nnz: usize, seed: u64) -> (u64, u64) {
        let g = Csc::from_triples(&random_global(n, nnz, seed));
        let flops = hipmcl_spgemm::flops(&g, &g);
        let out = hipmcl_spgemm::symbolic::output_nnz(&g, &g);
        (flops, out)
    }

    #[test]
    fn distributed_flops_matches_serial() {
        let (want_flops, _) = exact_reference(24, 160, 7);
        for p in [1usize, 4, 9] {
            let results = Universe::run(p, MachineModel::summit(), |comm| {
                let grid = ProcGrid::new(comm);
                let g = random_global(24, 160, 7);
                let a = DistMatrix::from_global(&grid, &g);
                distributed_flops(&grid, &a, &a)
            });
            assert!(
                results.iter().all(|&f| f == want_flops),
                "p={p}: {results:?}"
            );
        }
    }

    #[test]
    fn exact_symbolic_matches_serial_nnz() {
        let (want_flops, want_nnz) = exact_reference(20, 120, 8);
        for p in [1usize, 4, 9] {
            let results = Universe::run(p, MachineModel::summit(), |comm| {
                let grid = ProcGrid::new(comm);
                let g = random_global(20, 120, 8);
                let a = DistMatrix::from_global(&grid, &g);
                estimate_memory(&grid, &a, &a, EstimatorKind::ExactSymbolic, 0)
            });
            for e in &results {
                assert_eq!(e.nnz_estimate, want_nnz as f64, "p={p}");
                assert_eq!(e.flops, want_flops, "p={p}");
                assert!(e.time > 0.0);
                assert_eq!(e.scheme, "exact-symbolic");
            }
        }
    }

    #[test]
    fn probabilistic_estimate_is_close_and_grid_invariant() {
        let (_, want_nnz) = exact_reference(60, 900, 9);
        // Column estimates share one key draw, so a single seed carries a
        // correlated error of order 1/sqrt(r-2); average over seeds like
        // the paper's per-iteration averages (Fig. 6).
        let mut estimates = Vec::new();
        for p in [1usize, 4, 9] {
            let results = Universe::run(p, MachineModel::summit(), |comm| {
                let grid = ProcGrid::new(comm);
                let g = random_global(60, 900, 9);
                let a = DistMatrix::from_global(&grid, &g);
                let per_seed: Vec<f64> = (0..6)
                    .map(|s| {
                        estimate_memory(&grid, &a, &a, EstimatorKind::Probabilistic { r: 10 }, s)
                            .nnz_estimate
                    })
                    .collect();
                per_seed
            });
            // All ranks agree exactly.
            for e in &results[1..] {
                assert_eq!(e, &results[0]);
            }
            let mean = results[0].iter().sum::<f64>() / results[0].len() as f64;
            estimates.push(mean);
        }
        // Grid-size independent: the sketch sees the same global matrix.
        for e in &estimates[1..] {
            assert!(
                (e - estimates[0]).abs() / estimates[0] < 1e-6,
                "{estimates:?}"
            );
        }
        let err = (estimates[0] - want_nnz as f64).abs() / want_nnz as f64;
        assert!(
            err < 0.2,
            "estimate {} vs exact {} (err {err})",
            estimates[0],
            want_nnz
        );
    }

    /// Serial reference for the clamp bracket: `Σ_j max_k nnz(A_{*k})`
    /// over `k ∈ B_{*j}` (lower) and `flops(A·B)` (upper).
    fn serial_bracket(g: &Csc<f64>) -> (f64, f64) {
        let lo: f64 = (0..g.ncols())
            .map(|j| {
                g.col_rows(j)
                    .iter()
                    .map(|&k| g.col_nnz(k as usize) as f64)
                    .fold(0.0f64, f64::max)
            })
            .sum();
        (lo, hipmcl_spgemm::flops(g, g) as f64)
    }

    #[test]
    fn sketch_estimate_is_clamped_to_its_provable_bracket() {
        let g = Csc::from_triples(&random_global(40, 600, 13));
        let (lo_sum, hi_sum) = serial_bracket(&g);
        // r = 2 is the noisiest admissible sketch the old assert allowed;
        // sweep seeds so pathological draws (the ones the clamp exists
        // for) get a chance to occur.
        for r in [2usize, 3] {
            let results = Universe::run(4, MachineModel::summit(), |comm| {
                let grid = ProcGrid::new(comm);
                let a = DistMatrix::from_global(&grid, &random_global(40, 600, 13));
                (0..8)
                    .map(|s| {
                        estimate_memory(&grid, &a, &a, EstimatorKind::Probabilistic { r }, s)
                            .nnz_estimate
                    })
                    .collect::<Vec<f64>>()
            });
            for est in &results[0] {
                assert!(
                    (lo_sum..=hi_sum).contains(est),
                    "r={r}: estimate {est} outside bracket [{lo_sum}, {hi_sum}]"
                );
            }
        }
    }

    #[test]
    fn pathological_single_key_sketch_degenerates_to_the_lower_bound() {
        // With r = 1 the raw estimator `(r-1)/Σkeys` is 0 for every
        // column (the old code asserted this case away); the clamp turns
        // it into the per-column lower bound — still grid-invariant and
        // never above the exact output size.
        let g = Csc::from_triples(&random_global(30, 300, 14));
        let (lo_sum, _) = serial_bracket(&g);
        let exact = hipmcl_spgemm::symbolic::output_nnz(&g, &g) as f64;
        assert!(lo_sum > 0.0 && lo_sum <= exact);
        for p in [1usize, 4, 9] {
            let results = Universe::run(p, MachineModel::summit(), |comm| {
                let grid = ProcGrid::new(comm);
                let a = DistMatrix::from_global(&grid, &random_global(30, 300, 14));
                estimate_memory(&grid, &a, &a, EstimatorKind::Probabilistic { r: 1 }, 5)
            });
            for e in &results {
                assert_eq!(e.nnz_estimate, lo_sum, "p={p}");
            }
        }
    }

    #[test]
    fn hybrid_fallback_judges_cf_with_the_clamped_estimate() {
        // The threshold comparison must run against the *clamped* value.
        // An r = 1 sketch reports the per-column lower bound, so the
        // implied cf is exactly flops / lower-bound: a threshold just
        // below that keeps the probabilistic scheme, one just above
        // flips to exact — pinning the fallback decision to the bracket
        // (the raw estimate of 0 would have flipped both to exact via
        // the cf = 1 empty-estimate convention).
        let g = Csc::from_triples(&random_global(30, 300, 14));
        let (lo_sum, _) = serial_bracket(&g);
        let flops = hipmcl_spgemm::flops(&g, &g) as f64;
        let cf_clamped = flops / lo_sum;
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let a = DistMatrix::from_global(&grid, &random_global(30, 300, 14));
            let keep = estimate_memory(
                &grid,
                &a,
                &a,
                EstimatorKind::Hybrid {
                    r: 1,
                    cf_threshold: cf_clamped - 0.01,
                },
                5,
            );
            let flip = estimate_memory(
                &grid,
                &a,
                &a,
                EstimatorKind::Hybrid {
                    r: 1,
                    cf_threshold: cf_clamped + 0.01,
                },
                5,
            );
            (keep.scheme, flip.scheme)
        });
        for (keep, flip) in results {
            assert_eq!(keep, "probabilistic");
            assert_eq!(flip, "exact-symbolic");
        }
    }

    #[test]
    fn probabilistic_is_cheaper_than_exact_at_high_cf() {
        // Dense-ish square: cf large, sketch should win on virtual time.
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_global(300, 30_000, 10);
            let a = DistMatrix::from_global(&grid, &g);
            let exact = estimate_memory(&grid, &a, &a, EstimatorKind::ExactSymbolic, 0);
            let prob = estimate_memory(&grid, &a, &a, EstimatorKind::Probabilistic { r: 5 }, 1);
            (exact.time, prob.time)
        });
        for (te, tp) in results {
            assert!(tp < te, "probabilistic {tp} should beat exact {te}");
        }
    }

    #[test]
    fn hybrid_switches_on_cf() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            // Hypersparse: cf ~ 1 -> hybrid should pick exact.
            let sparse = random_global(60, 60, 11);
            let a = DistMatrix::from_global(&grid, &sparse);
            let low = estimate_memory(
                &grid,
                &a,
                &a,
                EstimatorKind::Hybrid {
                    r: 5,
                    cf_threshold: 1.5,
                },
                2,
            );
            // Dense: cf >> threshold -> probabilistic.
            let dense = random_global(40, 1200, 12);
            let d = DistMatrix::from_global(&grid, &dense);
            let high = estimate_memory(
                &grid,
                &d,
                &d,
                EstimatorKind::Hybrid {
                    r: 5,
                    cf_threshold: 1.5,
                },
                2,
            );
            (low.scheme, high.scheme)
        });
        for (lo, hi) in results {
            assert_eq!(lo, "exact-symbolic");
            assert_eq!(hi, "probabilistic");
        }
    }

    #[test]
    fn gpu_estimator_matches_cpu_estimate_and_is_faster() {
        // summit_bench + a dense instance: offload only pays once the key
        // work amortizes the transfer, like any device offload.
        let results = Universe::run(4, MachineModel::summit_bench(), |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_global(300, 30_000, 31);
            let a = DistMatrix::from_global(&grid, &g);
            let cpu = estimate_memory(&grid, &a, &a, EstimatorKind::Probabilistic { r: 7 }, 9);
            let gpu = estimate_memory(&grid, &a, &a, EstimatorKind::ProbabilisticGpu { r: 7 }, 9);
            (cpu, gpu)
        });
        for (cpu, gpu) in results {
            assert_eq!(
                cpu.nnz_estimate, gpu.nnz_estimate,
                "same sketch, same estimate"
            );
            assert_eq!(gpu.scheme, "probabilistic-gpu");
            assert!(gpu.time < cpu.time, "gpu {} vs cpu {}", gpu.time, cpu.time);
        }
    }

    #[test]
    fn plan_phases_divides_budget() {
        let est = MemoryEstimate {
            nnz_estimate: 0.0,
            bytes_estimate: 1000,
            flops: 0,
            time: 0.0,
            scheme: "x",
        };
        assert_eq!(plan_phases(&est, 4, 250), 1);
        assert_eq!(plan_phases(&est, 4, 100), 3);
        assert_eq!(plan_phases(&est, 1, 100), 10);
        assert_eq!(plan_phases(&est, 1, u64::MAX), 1);
    }

    fn workload() -> (MemoryEstimate, OverlapInputs) {
        let est = MemoryEstimate {
            nnz_estimate: 4e6,
            bytes_estimate: 64 << 20,
            flops: 40_000_000,
            time: 0.0,
            scheme: "x",
        };
        let inputs = OverlapInputs {
            side: 4,
            flops_per_rank: est.flops / 16,
            bytes_a: 2 << 20,
            bytes_b: 2 << 20,
            cf: 4.0,
            kernel: SpgemmKernel::CpuHash,
            pipelined: true,
        };
        (est, inputs)
    }

    #[test]
    fn overlap_planner_never_goes_below_the_memory_floor() {
        let (est, inputs) = workload();
        let model = MachineModel::summit();
        for budget in [1u64 << 20, 4 << 20, 1 << 30] {
            let floor = plan_phases(&est, 16, budget);
            let d = plan_phases_overlap(&est, 16, budget, &model, &inputs, 6);
            assert_eq!(d.memory_floor, floor);
            assert!(
                d.phases >= floor,
                "chosen h {} under floor {floor}",
                d.phases
            );
            assert_eq!(d.scores.len(), 7, "floor..=floor+6 all scored");
            // The chosen candidate has the minimal modeled idle.
            let best = d
                .scores
                .iter()
                .map(|&(_, s)| s)
                .fold(f64::INFINITY, f64::min);
            let chosen = d.scores.iter().find(|&&(hh, _)| hh == d.phases).unwrap().1;
            assert_eq!(chosen, best);
        }
    }

    #[test]
    fn overlap_planner_with_no_headroom_is_the_memory_plan() {
        let (est, inputs) = workload();
        let model = MachineModel::summit();
        let d = plan_phases_overlap(&est, 16, 4 << 20, &model, &inputs, 0);
        assert_eq!(d.phases, d.memory_floor);
        assert_eq!(d.phases, plan_phases(&est, 16, 4 << 20));
        assert_eq!(d.scores.len(), 1);
    }

    #[test]
    fn modeled_idle_is_finite_and_nonnegative_across_phase_counts() {
        let (_, inputs) = workload();
        let model = MachineModel::summit();
        let idles: Vec<f64> = (1..=12)
            .map(|h| modeled_pipeline_idle(&model, &inputs, h))
            .collect();
        for (h, idle) in idles.iter().enumerate() {
            assert!(idle.is_finite() && *idle >= -1e-9, "h={}: {idle}", h + 1);
        }
    }

    #[test]
    fn planner_default_is_memory_only() {
        assert_eq!(PhasePlanner::default(), PhasePlanner::MemoryOnly);
    }

    #[test]
    fn draw_keys_deterministic_across_ranges() {
        // Keys for id 5 must be identical whether drawn in 0..10 or 5..6.
        let a = draw_keys_range(0..10, 3, 42);
        let b = draw_keys_range(5..6, 3, 42);
        assert_eq!(&a[15..18], &b[..]);
    }
}
