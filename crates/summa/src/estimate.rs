//! Distributed memory-requirement estimation (§V).
//!
//! Before each MCL iteration HipMCL must know how large the *unpruned*
//! expanded matrix will be, to pick the number of SUMMA phases `h` that
//! keeps every process inside its memory budget. Two estimators:
//!
//! * **Exact symbolic SUMMA** (original HipMCL): replays the whole SUMMA
//!   stage structure, computing output structure without values. Cost is
//!   `O(flops)` — nearly as expensive as the numeric multiplication, which
//!   is why Fig. 1 shows memory estimation consuming ~½ of the original
//!   runtime.
//! * **Probabilistic** (the paper's contribution): the distributed form of
//!   Cohen's min-key sketch. Keys are drawn *deterministically from global
//!   row ids*, so the first layer needs no communication; propagation
//!   through each operand is local per block followed by a min-allreduce
//!   along the process column; the two propagations are stitched together
//!   by a single transpose-pair exchange. Cost is
//!   `O(r·(nnz A + nnz B)/P)` per rank plus two thin collectives —
//!   independent of `flops`, hence the Fig. 6 runtime win at high `cf`.
//!
//! The hybrid rule (§VII-D, last paragraph): when the estimated `cf` is
//! below a threshold the exact scheme is actually cheaper, so use it.

use crate::distmat::DistMatrix;
use hipmcl_comm::collectives::{allreduce, allreduce_min_vec_f32};
use hipmcl_comm::{Comm, ProcGrid, SpgemmKernel, WireSize};
use hipmcl_sparse::Csc;
use rand::SeedableRng;
use rand_distr::Distribution;

/// Which estimator to run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EstimatorKind {
    /// Exact symbolic SUMMA (original HipMCL).
    ExactSymbolic,
    /// Cohen sketch with `r` keys per vertex.
    Probabilistic {
        /// Keys per vertex (paper sweeps r ∈ {3, 5, 7, 10}).
        r: usize,
    },
    /// Probabilistic first; fall back to exact when estimated `cf` is
    /// below `cf_threshold`.
    Hybrid {
        /// Keys per vertex for the probabilistic pass.
        r: usize,
        /// `cf` below which the exact scheme is cheaper and is rerun.
        cf_threshold: f64,
    },
    /// The paper's stated future work (§VIII): the Cohen sketch with its
    /// key propagation offloaded to the GPUs. Identical estimates; the
    /// key-op compute is charged at the device rate plus the H2D staging
    /// of the operand structures.
    ProbabilisticGpu {
        /// Keys per vertex.
        r: usize,
    },
}

/// Result of a memory estimation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryEstimate {
    /// Estimated global `nnz(A·B)` before pruning.
    pub nnz_estimate: f64,
    /// Estimated bytes of the unpruned output, CSC, summed over ranks.
    pub bytes_estimate: u64,
    /// `flops(A·B)` (exact — cheap to compute).
    pub flops: u64,
    /// Virtual seconds this rank spent estimating.
    pub time: f64,
    /// Name of the scheme that produced the estimate.
    pub scheme: &'static str,
}

/// Exact `flops(A·B)` for 2D-distributed operands: each rank needs the
/// global column counts of `A`, obtained with one allreduce, then counts
/// locally against its `B` block.
pub fn distributed_flops(grid: &ProcGrid, a: &DistMatrix, b: &DistMatrix) -> u64 {
    // Global nnz per column of A: local counts summed down process columns
    // then shared along rows. We allreduce the full-length vector for
    // simplicity (cost charged through the collective's real bytes).
    let mut counts = vec![0.0f64; a.ncols_global];
    let col_range = a.col_range(grid);
    for (local_j, global_j) in col_range.enumerate() {
        counts[global_j] = a.local.col_nnz(local_j) as f64;
    }
    let counts = hipmcl_comm::collectives::allreduce_sum_vec(&grid.world, counts);

    // Each B-block column selects A columns by *global* row id.
    let row_range = b.row_range(grid);
    let mut local_flops = 0u64;
    for j in 0..b.local.ncols() {
        for &k in b.local.col_rows(j) {
            local_flops += counts[row_range.start + k as usize] as u64;
        }
    }
    allreduce(&grid.world, local_flops, |x, y| x + y)
}

/// Runs the requested estimator. Collective over the grid. Returns an
/// identical estimate on every rank.
pub fn estimate_memory(
    grid: &ProcGrid,
    a: &DistMatrix,
    b: &DistMatrix,
    kind: EstimatorKind,
    seed: u64,
) -> MemoryEstimate {
    match kind {
        EstimatorKind::ExactSymbolic => exact_symbolic(grid, a, b),
        EstimatorKind::Probabilistic { r } => probabilistic(grid, a, b, r, seed, false),
        EstimatorKind::ProbabilisticGpu { r } => probabilistic(grid, a, b, r, seed, true),
        EstimatorKind::Hybrid { r, cf_threshold } => {
            let prob = probabilistic(grid, a, b, r, seed, false);
            let cf_est = if prob.nnz_estimate > 0.0 {
                prob.flops as f64 / prob.nnz_estimate
            } else {
                1.0
            };
            if cf_est < cf_threshold {
                let mut exact = exact_symbolic(grid, a, b);
                exact.time += prob.time; // the probabilistic probe was paid too
                exact
            } else {
                prob
            }
        }
    }
}

/// Pattern-only broadcast payload: structure bytes, no values (what a
/// symbolic SUMMA actually moves).
#[derive(Clone)]
struct PatternBlock(std::sync::Arc<Csc<f64>>);

impl WireSize for PatternBlock {
    fn wire_bytes(&self) -> usize {
        self.0.rowidx.len() * std::mem::size_of::<hipmcl_sparse::Idx>()
            + self.0.colptr.len() * std::mem::size_of::<usize>()
    }
}

/// Exact symbolic SUMMA: replays the stage loop, broadcasting block
/// *structures* and computing per-stage symbolic products, then merges the
/// patterns to the exact output nnz.
fn exact_symbolic(grid: &ProcGrid, a: &DistMatrix, b: &DistMatrix) -> MemoryEstimate {
    let t0 = grid.world.now();
    let side = grid.side;
    let mut stage_patterns: Vec<Csc<f64>> = Vec::with_capacity(side);
    let mut flops_total = 0u64;

    for k in 0..side {
        // Broadcast A_{i,k} along rows and B_{k,j} along columns.
        let a_blk = bcast_pattern(&grid.row_comm, k, &a.local, grid.col == k);
        let b_blk = bcast_pattern(&grid.col_comm, k, &b.local, grid.row == k);

        let flops = hipmcl_spgemm::flops(&a_blk, &b_blk);
        flops_total += flops;
        // Real symbolic pass; pattern materialized (values=1) so stage
        // patterns can be union-merged exactly.
        let mut pattern = hipmcl_spgemm::hash::multiply(&a_blk, &b_blk);
        for v in &mut pattern.vals {
            *v = 1.0;
        }
        let cf = if pattern.nnz() == 0 {
            1.0
        } else {
            flops as f64 / pattern.nnz() as f64
        };
        grid.world.advance_clock(
            grid.world
                .model()
                .spgemm_time(SpgemmKernel::CpuHash, flops, cf),
        );
        stage_patterns.push(pattern);
    }

    // Union of stage patterns = exact local output structure.
    let merged = crate::merge::kway_merge(&stage_patterns);
    let merged_elems: usize = stage_patterns.iter().map(|p| p.nnz()).sum();
    grid.world.advance_clock(
        grid.world
            .model()
            .merge_time(merged_elems as u64, side.max(2)),
    );

    let local_nnz = merged.nnz() as u64;
    let global_nnz = allreduce(&grid.world, local_nnz, |x, y| x + y);
    let flops = allreduce(&grid.world, flops_total, |x, y| x + y);
    MemoryEstimate {
        nnz_estimate: global_nnz as f64,
        bytes_estimate: hipmcl_spgemm::symbolic::csc_bytes(global_nnz, b.ncols_global as u64),
        flops,
        time: grid.world.now() - t0,
        scheme: "exact-symbolic",
    }
}

/// Broadcasts a block's pattern within `comm` from `root`; `is_root` says
/// whether this rank supplies `local`.
fn bcast_pattern(comm: &Comm, root: usize, local: &Csc<f64>, is_root: bool) -> Csc<f64> {
    let payload = if is_root {
        Some(PatternBlock(std::sync::Arc::new(local.clone())))
    } else {
        None
    };
    let blk = hipmcl_comm::collectives::bcast(comm, root, payload);
    blk.0.as_ref().clone()
}

/// Distributed Cohen estimation. Requires square operands distributed on
/// the same grid with `nrows_global == ncols_global` (the MCL case), so
/// that row and column ranges coincide for the transpose exchange.
fn probabilistic(
    grid: &ProcGrid,
    a: &DistMatrix,
    b: &DistMatrix,
    r: usize,
    seed: u64,
    on_gpu: bool,
) -> MemoryEstimate {
    assert!(r >= 2, "need at least two keys");
    assert_eq!(
        a.nrows_global, a.ncols_global,
        "distributed Cohen estimation assumes square operands (MCL matrices)"
    );
    let t0 = grid.world.now();
    let flops = distributed_flops(grid, a, b);

    // Layer 1: keys for this block's global rows, drawn deterministically
    // from (seed, global row id) — identical across ranks, zero comm.
    let row_range = a.row_range(grid);
    let row_keys = draw_keys_range(row_range.clone(), r, seed);

    // Propagate through A: per local column, min over present rows.
    let col_range = a.col_range(grid);
    let mut mid_partial = vec![f32::INFINITY; col_range.len() * r];
    propagate_block(&a.local, &row_keys, &mut mid_partial, r);
    // Combine partial mins down the process column.
    let mid_keys = allreduce_min_vec_f32(&grid.col_comm, mid_partial);

    // Transpose exchange: this rank holds mid keys for its *column* range
    // but needs them for its *row* range (B's rows). The grid transpose
    // partner holds exactly those.
    let my_rows_mid: Vec<f32> = if grid.row == grid.col {
        mid_keys.clone()
    } else {
        const TAG: u64 = 0xC0E7;
        let partner = grid.rank_of(grid.col, grid.row);
        grid.world.send(partner, TAG, mid_keys.clone());
        grid.world.recv::<Vec<f32>>(partner, TAG)
    };

    // Propagate through B.
    let out_range = b.col_range(grid);
    let mut out_partial = vec![f32::INFINITY; out_range.len() * r];
    propagate_block(&b.local, &my_rows_mid, &mut out_partial, r);
    let out_keys = allreduce_min_vec_f32(&grid.col_comm, out_partial);

    // Charge the sketch's compute: r·(nnz A + nnz B) local key ops. On
    // the GPU path (§VIII future work) the key propagation runs at the
    // aggregate device key-op rate after staging the operand structures
    // over the link; the collectives above are unchanged.
    let ops = r as u64 * (a.local.nnz() as u64 + b.local.nnz() as u64);
    let model = grid.world.model();
    if on_gpu && model.gpus > 0 {
        let structure_bytes =
            (a.local.nnz() + b.local.nnz()) * std::mem::size_of::<hipmcl_sparse::Idx>();
        // Device key-op rate: scale the CPU estimate rate by the same
        // GPU:CPU throughput ratio the SpGEMM kernels enjoy at high cf.
        let gpu_ratio =
            model.gpu_node_rate / (model.core_spgemm_rate * 40.0 / (1.0 + 0.007 * 40.0));
        let gpu_time = model.link_time(structure_bytes) + model.estimate_time(ops) / gpu_ratio;
        grid.world.advance_clock(gpu_time);
    } else {
        grid.world.advance_clock(model.estimate_time(ops));
    }

    // Per-column estimates for this rank's slab; identical across the
    // process column, so divide the global sum by `side`.
    let slab_total: f64 = (0..out_range.len())
        .map(|j| {
            let keys = &out_keys[j * r..(j + 1) * r];
            if keys.iter().any(|k| k.is_infinite()) {
                return 0.0;
            }
            let sum: f64 = keys.iter().map(|&k| k as f64).sum();
            if sum <= 0.0 {
                0.0
            } else {
                (r as f64 - 1.0) / sum
            }
        })
        .sum();
    let total = allreduce(&grid.world, slab_total, |x, y| x + y) / grid.side as f64;

    MemoryEstimate {
        nnz_estimate: total,
        bytes_estimate: hipmcl_spgemm::symbolic::csc_bytes(
            total.max(0.0) as u64,
            b.ncols_global as u64,
        ),
        flops,
        time: grid.world.now() - t0,
        scheme: if on_gpu {
            "probabilistic-gpu"
        } else {
            "probabilistic"
        },
    }
}

/// Keys for global vertex ids in `range`: `r` per vertex, deterministic in
/// `(seed, id)` so every rank agrees without communication.
fn draw_keys_range(range: std::ops::Range<usize>, r: usize, seed: u64) -> Vec<f32> {
    let mut keys = Vec::with_capacity(range.len() * r);
    for id in range {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(
            seed ^ (id as u64).wrapping_mul(0x9E3779B97F4A7C15),
        );
        for _ in 0..r {
            let e: f64 = rand_distr::Exp1.sample(&mut rng);
            keys.push(e as f32);
        }
    }
    keys
}

/// `out[j·r + t] = min(out[j·r + t], min over rows i of col j of keys[i·r + t])`.
fn propagate_block(m: &Csc<f64>, row_keys: &[f32], out: &mut [f32], r: usize) {
    debug_assert_eq!(row_keys.len(), m.nrows() * r);
    debug_assert_eq!(out.len(), m.ncols() * r);
    for j in 0..m.ncols() {
        for &i in m.col_rows(j) {
            let src = &row_keys[i as usize * r..(i as usize + 1) * r];
            let dst = &mut out[j * r..(j + 1) * r];
            for t in 0..r {
                if src[t] < dst[t] {
                    dst[t] = src[t];
                }
            }
        }
    }
}

/// Phase planning: the number of SUMMA phases `h` needed so the unpruned
/// output slab fits each rank's memory budget (§V).
pub fn plan_phases(estimate: &MemoryEstimate, ranks: usize, per_rank_budget_bytes: u64) -> usize {
    let per_rank = estimate.bytes_estimate / ranks as u64;
    (per_rank.div_ceil(per_rank_budget_bytes.max(1)) as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmcl_comm::{MachineModel, Universe};
    use hipmcl_sparse::{Idx, Triples};
    use rand::Rng;

    fn random_global(n: usize, nnz: usize, seed: u64) -> Triples<f64> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut t = Triples::new(n, n);
        for _ in 0..nnz {
            t.push(
                rng.gen_range(0..n) as Idx,
                rng.gen_range(0..n) as Idx,
                rng.gen_range(0.5..1.5),
            );
        }
        t.sum_duplicates();
        t
    }

    fn exact_reference(n: usize, nnz: usize, seed: u64) -> (u64, u64) {
        let g = Csc::from_triples(&random_global(n, nnz, seed));
        let flops = hipmcl_spgemm::flops(&g, &g);
        let out = hipmcl_spgemm::symbolic::output_nnz(&g, &g);
        (flops, out)
    }

    #[test]
    fn distributed_flops_matches_serial() {
        let (want_flops, _) = exact_reference(24, 160, 7);
        for p in [1usize, 4, 9] {
            let results = Universe::run(p, MachineModel::summit(), |comm| {
                let grid = ProcGrid::new(comm);
                let g = random_global(24, 160, 7);
                let a = DistMatrix::from_global(&grid, &g);
                distributed_flops(&grid, &a, &a)
            });
            assert!(
                results.iter().all(|&f| f == want_flops),
                "p={p}: {results:?}"
            );
        }
    }

    #[test]
    fn exact_symbolic_matches_serial_nnz() {
        let (want_flops, want_nnz) = exact_reference(20, 120, 8);
        for p in [1usize, 4, 9] {
            let results = Universe::run(p, MachineModel::summit(), |comm| {
                let grid = ProcGrid::new(comm);
                let g = random_global(20, 120, 8);
                let a = DistMatrix::from_global(&grid, &g);
                estimate_memory(&grid, &a, &a, EstimatorKind::ExactSymbolic, 0)
            });
            for e in &results {
                assert_eq!(e.nnz_estimate, want_nnz as f64, "p={p}");
                assert_eq!(e.flops, want_flops, "p={p}");
                assert!(e.time > 0.0);
                assert_eq!(e.scheme, "exact-symbolic");
            }
        }
    }

    #[test]
    fn probabilistic_estimate_is_close_and_grid_invariant() {
        let (_, want_nnz) = exact_reference(60, 900, 9);
        // Column estimates share one key draw, so a single seed carries a
        // correlated error of order 1/sqrt(r-2); average over seeds like
        // the paper's per-iteration averages (Fig. 6).
        let mut estimates = Vec::new();
        for p in [1usize, 4, 9] {
            let results = Universe::run(p, MachineModel::summit(), |comm| {
                let grid = ProcGrid::new(comm);
                let g = random_global(60, 900, 9);
                let a = DistMatrix::from_global(&grid, &g);
                let per_seed: Vec<f64> = (0..6)
                    .map(|s| {
                        estimate_memory(&grid, &a, &a, EstimatorKind::Probabilistic { r: 10 }, s)
                            .nnz_estimate
                    })
                    .collect();
                per_seed
            });
            // All ranks agree exactly.
            for e in &results[1..] {
                assert_eq!(e, &results[0]);
            }
            let mean = results[0].iter().sum::<f64>() / results[0].len() as f64;
            estimates.push(mean);
        }
        // Grid-size independent: the sketch sees the same global matrix.
        for e in &estimates[1..] {
            assert!(
                (e - estimates[0]).abs() / estimates[0] < 1e-6,
                "{estimates:?}"
            );
        }
        let err = (estimates[0] - want_nnz as f64).abs() / want_nnz as f64;
        assert!(
            err < 0.2,
            "estimate {} vs exact {} (err {err})",
            estimates[0],
            want_nnz
        );
    }

    #[test]
    fn probabilistic_is_cheaper_than_exact_at_high_cf() {
        // Dense-ish square: cf large, sketch should win on virtual time.
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_global(300, 30_000, 10);
            let a = DistMatrix::from_global(&grid, &g);
            let exact = estimate_memory(&grid, &a, &a, EstimatorKind::ExactSymbolic, 0);
            let prob = estimate_memory(&grid, &a, &a, EstimatorKind::Probabilistic { r: 5 }, 1);
            (exact.time, prob.time)
        });
        for (te, tp) in results {
            assert!(tp < te, "probabilistic {tp} should beat exact {te}");
        }
    }

    #[test]
    fn hybrid_switches_on_cf() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            // Hypersparse: cf ~ 1 -> hybrid should pick exact.
            let sparse = random_global(60, 60, 11);
            let a = DistMatrix::from_global(&grid, &sparse);
            let low = estimate_memory(
                &grid,
                &a,
                &a,
                EstimatorKind::Hybrid {
                    r: 5,
                    cf_threshold: 1.5,
                },
                2,
            );
            // Dense: cf >> threshold -> probabilistic.
            let dense = random_global(40, 1200, 12);
            let d = DistMatrix::from_global(&grid, &dense);
            let high = estimate_memory(
                &grid,
                &d,
                &d,
                EstimatorKind::Hybrid {
                    r: 5,
                    cf_threshold: 1.5,
                },
                2,
            );
            (low.scheme, high.scheme)
        });
        for (lo, hi) in results {
            assert_eq!(lo, "exact-symbolic");
            assert_eq!(hi, "probabilistic");
        }
    }

    #[test]
    fn gpu_estimator_matches_cpu_estimate_and_is_faster() {
        // summit_bench + a dense instance: offload only pays once the key
        // work amortizes the transfer, like any device offload.
        let results = Universe::run(4, MachineModel::summit_bench(), |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_global(300, 30_000, 31);
            let a = DistMatrix::from_global(&grid, &g);
            let cpu = estimate_memory(&grid, &a, &a, EstimatorKind::Probabilistic { r: 7 }, 9);
            let gpu = estimate_memory(&grid, &a, &a, EstimatorKind::ProbabilisticGpu { r: 7 }, 9);
            (cpu, gpu)
        });
        for (cpu, gpu) in results {
            assert_eq!(
                cpu.nnz_estimate, gpu.nnz_estimate,
                "same sketch, same estimate"
            );
            assert_eq!(gpu.scheme, "probabilistic-gpu");
            assert!(gpu.time < cpu.time, "gpu {} vs cpu {}", gpu.time, cpu.time);
        }
    }

    #[test]
    fn plan_phases_divides_budget() {
        let est = MemoryEstimate {
            nnz_estimate: 0.0,
            bytes_estimate: 1000,
            flops: 0,
            time: 0.0,
            scheme: "x",
        };
        assert_eq!(plan_phases(&est, 4, 250), 1);
        assert_eq!(plan_phases(&est, 4, 100), 3);
        assert_eq!(plan_phases(&est, 1, 100), 10);
        assert_eq!(plan_phases(&est, 1, u64::MAX), 1);
    }

    #[test]
    fn draw_keys_deterministic_across_ranges() {
        // Keys for id 5 must be identical whether drawn in 0..10 or 5..6.
        let a = draw_keys_range(0..10, 3, 42);
        let b = draw_keys_range(5..6, 3, 42);
        assert_eq!(&a[15..18], &b[..]);
    }
}
