//! The Pipelined Sparse SUMMA stage scheduler (§III).
//!
//! One code path drives every configuration: for each phase and each of
//! the `√P` stages the scheduler exchanges the `A` and `B` blocks,
//! selects a kernel, submits it to the [`Executor`], and decides what to
//! overlap purely from the launch's completion events:
//!
//! * **pipelined** — the host resumes at `inputs_ready_at`, so the next
//!   stage's broadcasts (and the one-stage-late binary merge) overlap the
//!   kernel, whether it runs on the devices or the CPU worker pool; the
//!   phase's closing merge is likewise drained one *phase* late, so its
//!   tail overlaps the next phase's broadcasts and launches;
//! * **bulk synchronous** — the host waits for `output_ready_at`, and the
//!   wait minus any inline host compute is charged as CPU idle (Table V).
//!
//! There is deliberately no `match` on CPU-vs-GPU here: where a kernel
//! runs is the executor's business, and the pipelined/bulk-sync
//! distinction is a property of this scheduler, not of the kernel.
//!
//! # Per-stage communication selection
//!
//! Under [`CommPolicy::Hybrid`] each stage operand panel is moved by
//! whichever collective the machine model prices cheaper for its byte
//! count: the `⌈lg p⌉`-hop binomial tree, or flat root-sequential
//! point-to-point sends whose single α wins for small panels
//! ([`MachineModel::choose_comm_mode`](hipmcl_comm::MachineModel::choose_comm_mode)).
//! Mode agreement is reached by first tree-broadcasting the panel's byte
//! count (one 8-byte header) and letting every rank evaluate the same
//! model — no voting round. [`CommPolicy::Broadcast`] skips the header
//! and always takes the tree: the exact legacy path. Either way the
//! choice made for every `(phase, stage, operand)` is recorded as a
//! [`CommChoice`] in the output, so the policy is observable, not a
//! hidden constant.

use crate::distmat::DistMatrix;
use crate::executor::{Executor, LaunchSpec, MergeTask};
use crate::merge::{
    algorithm2_merge_count, brmerge_into, merge_refs_with, select_merge_kernel, spadd_into,
    ArenaPool, ColsRef, MergeKernelPolicy, MergeSlab, MergeSpan, MergeStats, MergeStrategy,
};
use crate::spgemm::{CommChoice, CommPolicy, SummaConfig};
use hipmcl_comm::clock::StageTimers;
use hipmcl_comm::collectives::{bcast, flat_bcast};
use hipmcl_comm::{
    Comm, CommMode, MergeKernel, ProcGrid, SpgemmKernel, WireDecode, WireEncode, WireError,
    WireReader, WireSize,
};
use hipmcl_gpu::select::select_kernel;
use hipmcl_sparse::util::even_chunk;
use hipmcl_sparse::{Csc, Dcsc, Semiring, Value};
use hipmcl_spgemm::{CohenEstimator, MultAnalysis};
use std::sync::Arc;

/// Broadcast payload: a shared block plus its hypersparse wire size.
/// HipMCL broadcasts DCSC; an `Arc` keeps the in-process copy free while
/// the virtual cost reflects the real payload (§III-B).
#[derive(Clone)]
struct BlockMsg<T: Value>(Arc<Csc<T>>, usize);

impl<T: Value> WireSize for BlockMsg<T> {
    fn wire_bytes(&self) -> usize {
        self.1
    }
}

// On a byte-moving transport the panel really travels as its hypersparse
// DCSC encoding — the same representation whose byte count the α–β model
// charges — and is re-densified to CSC on arrival.
impl<T: Value> WireEncode for BlockMsg<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        Dcsc::from_csc(&self.0).encode(out);
    }
}

impl<T: Value> WireDecode for BlockMsg<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let dcsc = Dcsc::<T>::decode(r)?;
        let bytes = dcsc.bytes();
        Ok(BlockMsg(Arc::new(dcsc.to_csc()), bytes))
    }
}

/// Moves one stage operand panel from `root` to every rank of `comm`,
/// returning the block, its wire bytes, and the collective that moved it.
///
/// [`CommPolicy::Broadcast`] is the legacy tree, bit-for-bit (no header).
/// [`CommPolicy::Hybrid`] first tree-broadcasts the byte count so all
/// ranks agree, then takes the model's cheaper mode for the payload.
fn exchange_block<T: Value>(
    comm: &Comm,
    policy: CommPolicy,
    root: usize,
    local: Option<&Csc<T>>,
) -> (Arc<Csc<T>>, usize, CommMode) {
    match policy {
        CommPolicy::Broadcast => {
            let payload = local.map(|m| {
                let bytes = Dcsc::from_csc(m).bytes();
                BlockMsg(Arc::new(m.clone()), bytes)
            });
            let msg = bcast(comm, root, payload);
            (msg.0, msg.1, CommMode::Broadcast)
        }
        CommPolicy::Hybrid => {
            let sized = local.map(|m| (Dcsc::from_csc(m).bytes(), m));
            // Header round: every rank learns the payload size over the
            // tree (8 bytes), then evaluates the same machine model — so
            // the mode decision is agreed without any extra exchange.
            let bytes = bcast(comm, root, sized.map(|(b, _)| b as u64)) as usize;
            let mode = comm.model().choose_comm_mode(comm.size(), bytes);
            let payload = sized.map(|(b, m)| BlockMsg(Arc::new(m.clone()), b));
            let msg = match mode {
                CommMode::Broadcast => bcast(comm, root, payload),
                CommMode::Gather => flat_bcast(comm, root, payload),
            };
            (msg.0, msg.1, mode)
        }
    }
}

/// What one pipeline run produced, besides the stage timers it filled in.
pub(crate) struct PipelineOutcome<T: Value = f64> {
    /// Per-phase merged output slabs (post `on_slab` hook).
    pub slabs: Vec<Csc<T>>,
    /// Accumulated merge statistics.
    pub merge_stats: MergeStats,
    /// Every merge operation's timeline span, in submission order.
    pub merge_spans: Vec<MergeSpan>,
    /// Host idle time waiting on launch/merge events.
    pub cpu_idle: f64,
    /// Kernel recorded for every (phase, stage), `phases × √P` entries.
    pub kernels_used: Vec<SpgemmKernel>,
    /// Communication mode chosen for every (phase, stage, operand) panel,
    /// `2 × phases × √P` entries in issue order.
    pub comm_choices: Vec<CommChoice>,
    /// Wall-clock counterpart of the virtual stage timers, filled only
    /// under `TimeModel::Measured` (all-zero durations under `Modeled`,
    /// which never reads the host clock).
    pub timers_measured: StageTimers,
}

/// A stage product waiting on the merge stack: the real matrix (a
/// materialized kernel product or an arena buffer written by a previous
/// merge), the virtual time it exists from, and the merge lane that
/// produced it (`None` for kernel products, which have no socket
/// affinity; arena buffers are always homed on the lane whose
/// [`MergeArena`](crate::merge::MergeArena) owns them).
struct Slab<T: Value> {
    m: MergeSlab<T>,
    ready: f64,
    home: Option<usize>,
}

/// Sinks stage products into the configured merge scheme. Every merge
/// operation is a [`MergeTask`] submitted through the executor, so its
/// cost lands on a merge-lane [`Timeline`](hipmcl_comm::Timeline) — the
/// engine holds no clock of its own. Binary merging under pipelining
/// holds each slab back one stage so its merge (which Algorithm 2 may
/// trigger) overlaps the next launch; because the merge is an async task
/// the host never blocks on it mid-phase.
struct MergeEngine<S: Semiring> {
    sr: S,
    strategy: MergeStrategy,
    policy: MergeKernelPolicy,
    pipelined: bool,
    shape: (usize, usize),
    stack: Vec<Slab<S::Elem>>,
    pushed: usize,
    pending: Option<Slab<S::Elem>>,
    spans: Vec<MergeSpan>,
    stats: MergeStats,
}

impl<S: Semiring> MergeEngine<S> {
    fn new(sr: S, cfg: &SummaConfig, shape: (usize, usize)) -> Self {
        Self {
            sr,
            strategy: cfg.merge,
            policy: cfg.merge_kernel,
            pipelined: cfg.pipelined,
            shape,
            stack: Vec::new(),
            pushed: 0,
            pending: None,
            spans: Vec::new(),
            stats: MergeStats::default(),
        }
    }

    /// Merges the top `count` stack entries as one executor task: the
    /// task is ready when its last input is, the chosen kernel does the
    /// real work, and the result re-enters the stack homed on the lane
    /// that produced it. Arena kernels write into the placed lane's
    /// [`MergeArena`](crate::merge::MergeArena) from `pool`; consumed
    /// arena inputs are released back to their home lanes, so within a
    /// phase the hot loop recycles buffers instead of allocating.
    fn do_merge(
        &mut self,
        comm: &Comm,
        exec: &mut dyn Executor<S>,
        pool: &mut ArenaPool<S::Elem>,
        count: usize,
    ) {
        let tail: Vec<Slab<S::Elem>> = self.stack.split_off(self.stack.len() - count);
        let inputs: Vec<(u64, Option<usize>)> =
            tail.iter().map(|s| (s.m.nnz() as u64, s.home)).collect();
        let ready = tail.iter().map(|s| s.ready).fold(0.0, f64::max);
        let total: u64 = inputs.iter().map(|&(e, _)| e).sum();
        let kernel = match self.policy {
            MergeKernelPolicy::Fixed(k) => k,
            MergeKernelPolicy::Auto => select_merge_kernel(comm.model(), total, count),
        };
        let task = MergeTask { kernel, inputs };
        let launch = exec.submit_merge(comm.model(), ready, &task);
        // Wall sample of the real merge compute below; `measured_now`
        // is pinned to 0 under `Modeled`, so the delta costs nothing
        // there and the host clock stays untouched.
        let w0 = comm.measured_now();
        let merged = {
            let refs: Vec<ColsRef<'_, S::Elem>> = tail.iter().map(|s| s.m.as_cols()).collect();
            let arena = pool.lane_mut(launch.lane);
            match kernel {
                MergeKernel::BrMerge => {
                    MergeSlab::Buf(brmerge_into(self.sr, &refs, self.shape, arena))
                }
                MergeKernel::SpAdd => MergeSlab::Buf(spadd_into(self.sr, &refs, self.shape, arena)),
                k => MergeSlab::Mat(merge_refs_with(self.sr, k, &refs, self.shape)),
            }
        };
        let measured_s = comm.measured_now() - w0;
        for s in tail {
            let home = s.home.unwrap_or(launch.lane);
            s.m.recycle(pool.lane_mut(home));
        }
        self.spans.push(MergeSpan {
            start: launch.started_at,
            end: launch.output_ready_at,
            kernel,
            ways: count,
            elems: total,
            lane: launch.lane,
            origin: launch.origin,
            stolen: launch.stolen,
            measured_s,
        });
        self.stats.peak_merge_elems = self.stats.peak_merge_elems.max(total as usize);
        self.stats.total_merged_elems += total;
        self.stats.merge_ops += 1;
        self.stats.merge_time += launch.duration;
        self.stats.measured_merge_s += measured_s;
        self.stack.push(Slab {
            m: merged,
            ready: launch.output_ready_at,
            home: Some(launch.lane),
        });
    }

    /// Stacks a slab and runs whatever merge Algorithm 2 triggers.
    fn push_binary(
        &mut self,
        comm: &Comm,
        exec: &mut dyn Executor<S>,
        pool: &mut ArenaPool<S::Elem>,
        slab: Slab<S::Elem>,
    ) {
        self.stack.push(slab);
        self.pushed += 1;
        let count = algorithm2_merge_count(self.pushed);
        if count > 0 {
            self.do_merge(comm, exec, pool, count);
        }
    }

    /// Accepts a stage product that is mergeable from `ready_at`.
    fn accept(
        &mut self,
        comm: &Comm,
        exec: &mut dyn Executor<S>,
        pool: &mut ArenaPool<S::Elem>,
        slab: Csc<S::Elem>,
        ready_at: f64,
    ) {
        let slab = Slab {
            m: MergeSlab::Mat(slab),
            ready: ready_at,
            home: None,
        };
        match self.strategy {
            MergeStrategy::Multiway => self.stack.push(slab),
            MergeStrategy::Binary => {
                if self.pipelined {
                    // Push the *previous* stage's slab: its merge (if
                    // Algorithm 2 triggers one) overlaps this stage's
                    // kernel on the merge lane.
                    if let Some(prev) = self.pending.take() {
                        self.push_binary(comm, exec, pool, prev);
                    }
                    self.pending = Some(slab);
                } else {
                    // Bulk synchronous: the host blocks until the merge
                    // (still a lane task) completes; the block is wait
                    // time, since the host does none of the merging.
                    self.push_binary(comm, exec, pool, slab);
                    let ready = self.stack.last().map_or(comm.now(), |s| s.ready);
                    self.stats.wait_time += comm.wait_clock_until(ready);
                }
            }
        }
    }

    /// Submits the phase's closing merge work: the flushed pending slab
    /// and the final collapse (Multiway's single deferred k-way merge, or
    /// Algorithm 2's `finish` collapse of the remaining stack). All of it
    /// is async lane work — the host does not wait here; that is
    /// [`drain`](Self::drain)'s job, which pipelining defers one phase.
    fn seal(&mut self, comm: &Comm, exec: &mut dyn Executor<S>, pool: &mut ArenaPool<S::Elem>) {
        if let Some(prev) = self.pending.take() {
            self.push_binary(comm, exec, pool, prev);
        }
        if self.stack.len() > 1 {
            let count = self.stack.len();
            self.do_merge(comm, exec, pool, count);
        }
    }

    /// Waits for the sealed phase's merged slab and folds timing into the
    /// accumulators. Under pipelining the scheduler calls this only after
    /// the *next* phase's broadcasts and launches are issued, so the
    /// closing merge's tail overlaps them instead of stalling the grid.
    #[allow(clippy::too_many_arguments)]
    fn drain(
        mut self,
        comm: &Comm,
        pool: &mut ArenaPool<S::Elem>,
        timers: &mut StageTimers,
        timers_measured: &mut StageTimers,
        merge_stats: &mut MergeStats,
        merge_spans: &mut Vec<MergeSpan>,
        cpu_idle: &mut f64,
    ) -> Csc<S::Elem> {
        let ready = self.stack.last().map_or(comm.now(), |s| s.ready);
        self.stats.wait_time += comm.wait_clock_until(ready);

        timers.add("merge", self.stats.merge_time);
        timers_measured.add("merge", self.stats.measured_merge_s);
        *cpu_idle += self.stats.wait_time;
        merge_stats.absorb(&self.stats);
        merge_spans.append(&mut self.spans);
        // The once-per-phase materialization: an arena-resident result is
        // copied out and its buffer recycled for the next phase. Reuse
        // must never ratchet capacity across phases — debug-checked here,
        // at the phase boundary.
        let out = self.stack.pop().map_or_else(
            || Csc::zero(self.shape.0, self.shape.1),
            |s| {
                let home = s.home.unwrap_or(0);
                s.m.into_csc(pool.lane_mut(home))
            },
        );
        if cfg!(debug_assertions) {
            pool.assert_no_capacity_leak();
        }
        out
    }
}

/// Runs all phases and stages of one distributed multiplication through
/// `exec`, in semiring `s`. Fills `timers`; returns the per-phase output
/// slabs and the idle/instrumentation accumulators. Collective over the
/// grid.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run<S, F>(
    s: S,
    grid: &ProcGrid,
    exec: &mut dyn Executor<S>,
    a: &DistMatrix<S::Elem>,
    b: &DistMatrix<S::Elem>,
    cfg: &SummaConfig,
    phases: usize,
    cf_hint: Option<f64>,
    timers: &mut StageTimers,
    mut on_slab: F,
) -> PipelineOutcome<S::Elem>
where
    S: Semiring,
    F: FnMut(usize, Csc<S::Elem>) -> Csc<S::Elem>,
{
    let comm = &grid.world;
    let side = grid.side;
    let probe = CohenEstimator::new(4, cfg.seed ^ 0xABCD);
    let mut kernels_used = Vec::with_capacity(phases * side);
    let mut comm_choices: Vec<CommChoice> = Vec::with_capacity(2 * phases * side);
    let mut timers_measured = StageTimers::new();
    let mut merge_stats = MergeStats::default();
    let mut merge_spans: Vec<MergeSpan> = Vec::new();
    let mut cpu_idle = 0.0f64;
    let local_cols = b.local.ncols();
    let mut slabs: Vec<Csc<S::Elem>> = Vec::with_capacity(phases);
    // One merge arena per executor merge lane, living across *all*
    // phases: merges write into (and recycle) lane-homed slab buffers,
    // so after warm-up the merge hot loop stops allocating.
    let mut pool: ArenaPool<S::Elem> = ArenaPool::with_lanes(exec.merge_lane_count());
    // Under pipelining the previous phase's sealed engine drains only
    // after this phase's stage loop, so its closing merge overlaps the
    // next round of broadcasts and launches (phases sliced from `B` are
    // independent; only the per-phase hook needs the merged slab).
    let mut sealed: Option<(usize, MergeEngine<S>)> = None;

    for ph in 0..phases {
        let cols = even_chunk(local_cols, phases, ph);
        let b_phase = b.local.column_slice(cols);
        // Every stage product this phase has the same block shape.
        let mut merge = MergeEngine::new(s, cfg, (a.local.nrows(), b_phase.ncols()));

        for k in 0..side {
            // --- SUMMA exchanges (mode per panel, §III-B) -------------
            let t0 = comm.now();
            let w0 = comm.measured_now();
            let (a_blk, a_bytes, a_mode) = exchange_block(
                &grid.row_comm,
                cfg.comm,
                k,
                (grid.col == k).then_some(&a.local),
            );
            let (b_blk, b_bytes, b_mode) = exchange_block(
                &grid.col_comm,
                cfg.comm,
                k,
                (grid.row == k).then_some(&b_phase),
            );
            timers.add("summa_bcast", comm.now() - t0);
            timers_measured.add("summa_bcast", comm.measured_now() - w0);
            for (operand, bytes, mode) in [('A', a_bytes, a_mode), ('B', b_bytes, b_mode)] {
                comm_choices.push(CommChoice {
                    phase: ph,
                    stage: k,
                    operand,
                    bytes,
                    mode,
                    t_tree: comm.model().tree_bcast_time(side, bytes),
                    t_flat: comm.model().flat_bcast_time(side, bytes),
                });
            }

            // --- Kernel selection (flops + Cohen cf probe, §III/VI) ----
            let flops = hipmcl_spgemm::flops(&a_blk, &b_blk);
            let (slab, ready_at) = if flops == 0 {
                // Nothing to multiply, but instrumentation still records
                // the selector's degenerate choice so per-stage counts
                // stay `phases × √P`.
                let analysis = MultAnalysis {
                    flops: 0,
                    nnz_out: 1,
                };
                kernels_used.push(select_kernel(&analysis, &cfg.policy, exec.gpus_available()));
                (Csc::zero(a_blk.nrows(), b_blk.ncols()), comm.now())
            } else {
                // `nnz(C)` can never exceed `flops`: clamp the probe so a
                // stale global cf hint (or an overshooting estimate) on a
                // local block never shows the selector `cf < 1`.
                let nnz_cap = flops;
                let nnz_probe = match cf_hint {
                    Some(cf) => (((flops as f64 / cf).max(1.0)) as u64).min(nnz_cap),
                    None => {
                        comm.advance_clock(
                            comm.model().estimate_time(probe.op_count(&a_blk, &b_blk)),
                        );
                        (probe.estimate_total(&a_blk, &b_blk).max(1.0) as u64).min(nnz_cap)
                    }
                };
                let analysis = MultAnalysis {
                    flops,
                    nnz_out: nnz_probe.max(1),
                };
                let kernel = select_kernel(&analysis, &cfg.policy, exec.gpus_available());
                kernels_used.push(kernel);

                // --- Submit to the executor; overlap off its events ----
                // The probe's clamped cf estimate rides along so hybrid
                // split policies can evaluate the machine model's rate
                // curves before the realized cf exists.
                let spec = LaunchSpec {
                    kernel,
                    flops,
                    cf_est: flops as f64 / nnz_probe.max(1) as f64,
                    time: comm.time_model(),
                };
                let launch = exec.submit(s, comm.model(), comm.now(), &a_blk, &b_blk, spec);
                if cfg.pipelined {
                    // Host resumes as soon as the inputs are handed off.
                    comm.wait_clock_until(launch.inputs_ready_at);
                } else {
                    // Bulk synchronous: wait for the output; inline host
                    // compute inside the wait is work, not idleness.
                    let waited = comm.wait_clock_until(launch.output_ready_at);
                    cpu_idle += (waited - launch.host_compute).max(0.0);
                }
                timers.add("local_spgemm", launch.kernel_time);
                timers_measured.add("local_spgemm", launch.measured_s);
                (launch.c, launch.output_ready_at)
            };

            merge.accept(comm, exec, &mut pool, slab, ready_at);
        }

        // --- Phase wrap-up: submit the closing merge ------------------
        merge.seal(comm, exec, &mut pool);
        let drain_now = if cfg.pipelined {
            sealed.replace((ph, merge))
        } else {
            Some((ph, merge))
        };
        if let Some((pph, eng)) = drain_now {
            let merged = eng.drain(
                comm,
                &mut pool,
                timers,
                &mut timers_measured,
                &mut merge_stats,
                &mut merge_spans,
                &mut cpu_idle,
            );
            slabs.push(on_slab(pph, merged));
        }
    }
    if let Some((pph, eng)) = sealed.take() {
        let merged = eng.drain(
            comm,
            &mut pool,
            timers,
            &mut timers_measured,
            &mut merge_stats,
            &mut merge_spans,
            &mut cpu_idle,
        );
        slabs.push(on_slab(pph, merged));
    }

    PipelineOutcome {
        slabs,
        merge_stats,
        merge_spans,
        cpu_idle,
        kernels_used,
        comm_choices,
        timers_measured,
    }
}
