//! The Pipelined Sparse SUMMA stage scheduler (§III).
//!
//! One code path drives every configuration: for each phase and each of
//! the `√P` stages the scheduler broadcasts the `A` and `B` blocks,
//! selects a kernel, submits it to the [`Executor`], and decides what to
//! overlap purely from the launch's completion events:
//!
//! * **pipelined** — the host resumes at `inputs_ready_at`, so the next
//!   stage's broadcasts (and the one-stage-late binary merge) overlap the
//!   kernel, whether it runs on the devices or the CPU worker pool;
//! * **bulk synchronous** — the host waits for `output_ready_at`, and the
//!   wait minus any inline host compute is charged as CPU idle (Table V).
//!
//! There is deliberately no `match` on CPU-vs-GPU here: where a kernel
//! runs is the executor's business, and the pipelined/bulk-sync
//! distinction is a property of this scheduler, not of the kernel.

use crate::distmat::DistMatrix;
use crate::executor::{Executor, LaunchSpec};
use crate::merge::{multiway_merge_timed, BinaryMerger, MergeStats, MergeStrategy};
use crate::spgemm::SummaConfig;
use hipmcl_comm::clock::StageTimers;
use hipmcl_comm::collectives::bcast;
use hipmcl_comm::{Comm, ProcGrid, SpgemmKernel, WireSize};
use hipmcl_gpu::select::select_kernel;
use hipmcl_sparse::util::even_chunk;
use hipmcl_sparse::{Csc, Dcsc};
use hipmcl_spgemm::{CohenEstimator, MultAnalysis};
use std::sync::Arc;

/// Broadcast payload: a shared block plus its hypersparse wire size.
/// HipMCL broadcasts DCSC; an `Arc` keeps the in-process copy free while
/// the virtual cost reflects the real payload (§III-B).
#[derive(Clone)]
struct BlockMsg(Arc<Csc<f64>>, usize);

impl WireSize for BlockMsg {
    fn wire_bytes(&self) -> usize {
        self.1
    }
}

fn bcast_block(comm: &Comm, root: usize, local: Option<&Csc<f64>>) -> Arc<Csc<f64>> {
    let payload = local.map(|m| {
        let bytes = Dcsc::from_csc(m).bytes();
        BlockMsg(Arc::new(m.clone()), bytes)
    });
    bcast(comm, root, payload).0
}

/// What one pipeline run produced, besides the stage timers it filled in.
pub(crate) struct PipelineOutcome {
    /// Per-phase merged output slabs (post `on_slab` hook).
    pub slabs: Vec<Csc<f64>>,
    /// Accumulated merge statistics.
    pub merge_stats: MergeStats,
    /// Host idle time waiting on launch/merge events.
    pub cpu_idle: f64,
    /// Kernel recorded for every (phase, stage), `phases × √P` entries.
    pub kernels_used: Vec<SpgemmKernel>,
}

/// Sinks stage products into the configured merge scheme, driven by the
/// slabs' completion events. Binary merging under pipelining holds each
/// slab back one stage so its merge overlaps the next launch.
enum MergeDriver {
    Multiway {
        slabs: Vec<(Csc<f64>, f64)>,
    },
    Binary {
        merger: Box<BinaryMerger>,
        pending: Option<(Csc<f64>, f64)>,
        pipelined: bool,
    },
}

impl MergeDriver {
    fn new(comm: &Comm, cfg: &SummaConfig) -> Self {
        match cfg.merge {
            MergeStrategy::Multiway => MergeDriver::Multiway { slabs: Vec::new() },
            MergeStrategy::Binary => MergeDriver::Binary {
                merger: Box::new(BinaryMerger::new(comm.model().clone())),
                pending: None,
                pipelined: cfg.pipelined,
            },
        }
    }

    /// Accepts a stage product that is mergeable from `ready_at`.
    fn accept(&mut self, comm: &Comm, slab: Csc<f64>, ready_at: f64) {
        match self {
            MergeDriver::Multiway { slabs } => slabs.push((slab, ready_at)),
            MergeDriver::Binary {
                merger,
                pending,
                pipelined,
            } => {
                if *pipelined {
                    // Push the *previous* stage's slab: its merge (if
                    // Algorithm 2 triggers one) overlaps this stage's
                    // kernel.
                    if let Some((prev, prev_ready)) = pending.take() {
                        let now = merger.push(prev, prev_ready, comm.now());
                        comm.wait_clock_until(now);
                    }
                    *pending = Some((slab, ready_at));
                } else {
                    let now = merger.push(slab, ready_at, comm.now());
                    comm.wait_clock_until(now);
                }
            }
        }
    }

    /// Completes the phase's merge; folds timing into the accumulators.
    fn finish(
        self,
        comm: &Comm,
        timers: &mut StageTimers,
        merge_stats: &mut MergeStats,
        cpu_idle: &mut f64,
    ) -> Csc<f64> {
        let (m, stats) = match self {
            MergeDriver::Multiway { slabs } => {
                let (m, now, stats) = multiway_merge_timed(comm.model(), slabs, comm.now());
                comm.wait_clock_until(now);
                (m, stats)
            }
            MergeDriver::Binary {
                mut merger,
                pending,
                ..
            } => {
                if let Some((prev, prev_ready)) = pending {
                    let now = merger.push(prev, prev_ready, comm.now());
                    comm.wait_clock_until(now);
                }
                let (m, now) = merger.finish(comm.now());
                comm.wait_clock_until(now);
                (m, merger.stats())
            }
        };
        timers.add("merge", stats.merge_time);
        *cpu_idle += stats.wait_time;
        merge_stats.absorb(&stats);
        m
    }
}

/// Runs all phases and stages of one distributed multiplication through
/// `exec`. Fills `timers`; returns the per-phase output slabs and the
/// idle/instrumentation accumulators. Collective over the grid.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run<F>(
    grid: &ProcGrid,
    exec: &mut dyn Executor,
    a: &DistMatrix,
    b: &DistMatrix,
    cfg: &SummaConfig,
    phases: usize,
    cf_hint: Option<f64>,
    timers: &mut StageTimers,
    mut on_slab: F,
) -> PipelineOutcome
where
    F: FnMut(usize, Csc<f64>) -> Csc<f64>,
{
    let comm = &grid.world;
    let side = grid.side;
    let probe = CohenEstimator::new(4, cfg.seed ^ 0xABCD);
    let mut kernels_used = Vec::with_capacity(phases * side);
    let mut merge_stats = MergeStats::default();
    let mut cpu_idle = 0.0f64;
    let local_cols = b.local.ncols();
    let mut slabs: Vec<Csc<f64>> = Vec::with_capacity(phases);

    for ph in 0..phases {
        let cols = even_chunk(local_cols, phases, ph);
        let b_phase = b.local.column_slice(cols);
        let mut merge = MergeDriver::new(comm, cfg);

        for k in 0..side {
            // --- SUMMA broadcasts -------------------------------------
            let t0 = comm.now();
            let a_blk = bcast_block(&grid.row_comm, k, (grid.col == k).then_some(&a.local));
            let b_blk = bcast_block(&grid.col_comm, k, (grid.row == k).then_some(&b_phase));
            timers.add("summa_bcast", comm.now() - t0);

            // --- Kernel selection (flops + Cohen cf probe, §III/VI) ----
            let flops = hipmcl_spgemm::flops(&a_blk, &b_blk);
            let (slab, ready_at) = if flops == 0 {
                // Nothing to multiply, but instrumentation still records
                // the selector's degenerate choice so per-stage counts
                // stay `phases × √P`.
                let analysis = MultAnalysis {
                    flops: 0,
                    nnz_out: 1,
                };
                kernels_used.push(select_kernel(&analysis, &cfg.policy, exec.gpus_available()));
                (Csc::zero(a_blk.nrows(), b_blk.ncols()), comm.now())
            } else {
                // `nnz(C)` can never exceed `flops`: clamp the probe so a
                // stale global cf hint (or an overshooting estimate) on a
                // local block never shows the selector `cf < 1`.
                let nnz_cap = flops;
                let nnz_probe = match cf_hint {
                    Some(cf) => (((flops as f64 / cf).max(1.0)) as u64).min(nnz_cap),
                    None => {
                        comm.advance_clock(
                            comm.model().estimate_time(probe.op_count(&a_blk, &b_blk)),
                        );
                        (probe.estimate_total(&a_blk, &b_blk).max(1.0) as u64).min(nnz_cap)
                    }
                };
                let analysis = MultAnalysis {
                    flops,
                    nnz_out: nnz_probe.max(1),
                };
                let kernel = select_kernel(&analysis, &cfg.policy, exec.gpus_available());
                kernels_used.push(kernel);

                // --- Submit to the executor; overlap off its events ----
                // The probe's clamped cf estimate rides along so hybrid
                // split policies can evaluate the machine model's rate
                // curves before the realized cf exists.
                let spec = LaunchSpec {
                    kernel,
                    flops,
                    cf_est: flops as f64 / nnz_probe.max(1) as f64,
                };
                let launch = exec.submit(comm.model(), comm.now(), &a_blk, &b_blk, spec);
                if cfg.pipelined {
                    // Host resumes as soon as the inputs are handed off.
                    comm.wait_clock_until(launch.inputs_ready_at);
                } else {
                    // Bulk synchronous: wait for the output; inline host
                    // compute inside the wait is work, not idleness.
                    let waited = comm.wait_clock_until(launch.output_ready_at);
                    cpu_idle += (waited - launch.host_compute).max(0.0);
                }
                timers.add("local_spgemm", launch.kernel_time);
                (launch.c, launch.output_ready_at)
            };

            merge.accept(comm, slab, ready_at);
        }

        // --- Phase wrap-up: final merge --------------------------------
        let merged = merge.finish(comm, timers, &mut merge_stats, &mut cpu_idle);
        slabs.push(on_slab(ph, merged));
    }

    PipelineOutcome {
        slabs,
        merge_stats,
        cpu_idle,
        kernels_used,
    }
}
