//! The Pipelined Sparse SUMMA stage scheduler (§III).
//!
//! One code path drives every configuration: for each phase and each of
//! the `√P` stages the scheduler broadcasts the `A` and `B` blocks,
//! selects a kernel, submits it to the [`Executor`], and decides what to
//! overlap purely from the launch's completion events:
//!
//! * **pipelined** — the host resumes at `inputs_ready_at`, so the next
//!   stage's broadcasts (and the one-stage-late binary merge) overlap the
//!   kernel, whether it runs on the devices or the CPU worker pool; the
//!   phase's closing merge is likewise drained one *phase* late, so its
//!   tail overlaps the next phase's broadcasts and launches;
//! * **bulk synchronous** — the host waits for `output_ready_at`, and the
//!   wait minus any inline host compute is charged as CPU idle (Table V).
//!
//! There is deliberately no `match` on CPU-vs-GPU here: where a kernel
//! runs is the executor's business, and the pipelined/bulk-sync
//! distinction is a property of this scheduler, not of the kernel.

use crate::distmat::DistMatrix;
use crate::executor::{Executor, LaunchSpec, MergeTask};
use crate::merge::{
    algorithm2_merge_count, merge_algo, select_merge_kernel, MergeKernelPolicy, MergeSpan,
    MergeStats, MergeStrategy,
};
use crate::spgemm::SummaConfig;
use hipmcl_comm::clock::StageTimers;
use hipmcl_comm::collectives::bcast;
use hipmcl_comm::{Comm, ProcGrid, SpgemmKernel, WireSize};
use hipmcl_gpu::select::select_kernel;
use hipmcl_sparse::util::even_chunk;
use hipmcl_sparse::{Csc, Dcsc};
use hipmcl_spgemm::{CohenEstimator, MultAnalysis};
use std::sync::Arc;

/// Broadcast payload: a shared block plus its hypersparse wire size.
/// HipMCL broadcasts DCSC; an `Arc` keeps the in-process copy free while
/// the virtual cost reflects the real payload (§III-B).
#[derive(Clone)]
struct BlockMsg(Arc<Csc<f64>>, usize);

impl WireSize for BlockMsg {
    fn wire_bytes(&self) -> usize {
        self.1
    }
}

fn bcast_block(comm: &Comm, root: usize, local: Option<&Csc<f64>>) -> Arc<Csc<f64>> {
    let payload = local.map(|m| {
        let bytes = Dcsc::from_csc(m).bytes();
        BlockMsg(Arc::new(m.clone()), bytes)
    });
    bcast(comm, root, payload).0
}

/// What one pipeline run produced, besides the stage timers it filled in.
pub(crate) struct PipelineOutcome {
    /// Per-phase merged output slabs (post `on_slab` hook).
    pub slabs: Vec<Csc<f64>>,
    /// Accumulated merge statistics.
    pub merge_stats: MergeStats,
    /// Every merge operation's timeline span, in submission order.
    pub merge_spans: Vec<MergeSpan>,
    /// Host idle time waiting on launch/merge events.
    pub cpu_idle: f64,
    /// Kernel recorded for every (phase, stage), `phases × √P` entries.
    pub kernels_used: Vec<SpgemmKernel>,
}

/// A stage product waiting on the merge stack: the real matrix, the
/// virtual time it exists from, and the merge lane that produced it
/// (`None` for kernel products, which have no socket affinity).
struct Slab {
    m: Csc<f64>,
    ready: f64,
    home: Option<usize>,
}

/// Sinks stage products into the configured merge scheme. Every merge
/// operation is a [`MergeTask`] submitted through the executor, so its
/// cost lands on a merge-lane [`Timeline`](hipmcl_comm::Timeline) — the
/// engine holds no clock of its own. Binary merging under pipelining
/// holds each slab back one stage so its merge (which Algorithm 2 may
/// trigger) overlaps the next launch; because the merge is an async task
/// the host never blocks on it mid-phase.
struct MergeEngine {
    strategy: MergeStrategy,
    policy: MergeKernelPolicy,
    pipelined: bool,
    shape: (usize, usize),
    stack: Vec<Slab>,
    pushed: usize,
    pending: Option<Slab>,
    spans: Vec<MergeSpan>,
    stats: MergeStats,
}

impl MergeEngine {
    fn new(cfg: &SummaConfig, shape: (usize, usize)) -> Self {
        Self {
            strategy: cfg.merge,
            policy: cfg.merge_kernel,
            pipelined: cfg.pipelined,
            shape,
            stack: Vec::new(),
            pushed: 0,
            pending: None,
            spans: Vec::new(),
            stats: MergeStats::default(),
        }
    }

    /// Merges the top `count` stack entries as one executor task: the
    /// task is ready when its last input is, the chosen kernel does the
    /// real work, and the result re-enters the stack homed on the lane
    /// that produced it.
    fn do_merge(&mut self, comm: &Comm, exec: &mut dyn Executor, count: usize) {
        let tail: Vec<Slab> = self.stack.split_off(self.stack.len() - count);
        let inputs: Vec<(u64, Option<usize>)> =
            tail.iter().map(|s| (s.m.nnz() as u64, s.home)).collect();
        let ready = tail.iter().map(|s| s.ready).fold(0.0, f64::max);
        let total: u64 = inputs.iter().map(|&(e, _)| e).sum();
        let kernel = match self.policy {
            MergeKernelPolicy::Fixed(k) => k,
            MergeKernelPolicy::Auto => select_merge_kernel(comm.model(), total, count),
        };
        let task = MergeTask { kernel, inputs };
        let launch = exec.submit_merge(comm.model(), ready, &task);
        let mats: Vec<Csc<f64>> = tail.into_iter().map(|s| s.m).collect();
        let merged = merge_algo(kernel).merge(&mats, self.shape);
        self.spans.push(MergeSpan {
            start: launch.started_at,
            end: launch.output_ready_at,
            kernel,
            ways: count,
            elems: total,
            lane: launch.lane,
            origin: launch.origin,
            stolen: launch.stolen,
        });
        self.stats.peak_merge_elems = self.stats.peak_merge_elems.max(total as usize);
        self.stats.total_merged_elems += total;
        self.stats.merge_ops += 1;
        self.stats.merge_time += launch.duration;
        self.stack.push(Slab {
            m: merged,
            ready: launch.output_ready_at,
            home: Some(launch.lane),
        });
    }

    /// Stacks a slab and runs whatever merge Algorithm 2 triggers.
    fn push_binary(&mut self, comm: &Comm, exec: &mut dyn Executor, slab: Slab) {
        self.stack.push(slab);
        self.pushed += 1;
        let count = algorithm2_merge_count(self.pushed);
        if count > 0 {
            self.do_merge(comm, exec, count);
        }
    }

    /// Accepts a stage product that is mergeable from `ready_at`.
    fn accept(&mut self, comm: &Comm, exec: &mut dyn Executor, slab: Csc<f64>, ready_at: f64) {
        let slab = Slab {
            m: slab,
            ready: ready_at,
            home: None,
        };
        match self.strategy {
            MergeStrategy::Multiway => self.stack.push(slab),
            MergeStrategy::Binary => {
                if self.pipelined {
                    // Push the *previous* stage's slab: its merge (if
                    // Algorithm 2 triggers one) overlaps this stage's
                    // kernel on the merge lane.
                    if let Some(prev) = self.pending.take() {
                        self.push_binary(comm, exec, prev);
                    }
                    self.pending = Some(slab);
                } else {
                    // Bulk synchronous: the host blocks until the merge
                    // (still a lane task) completes; the block is wait
                    // time, since the host does none of the merging.
                    self.push_binary(comm, exec, slab);
                    let ready = self.stack.last().map_or(comm.now(), |s| s.ready);
                    self.stats.wait_time += comm.wait_clock_until(ready);
                }
            }
        }
    }

    /// Submits the phase's closing merge work: the flushed pending slab
    /// and the final collapse (Multiway's single deferred k-way merge, or
    /// Algorithm 2's `finish` collapse of the remaining stack). All of it
    /// is async lane work — the host does not wait here; that is
    /// [`drain`](Self::drain)'s job, which pipelining defers one phase.
    fn seal(&mut self, comm: &Comm, exec: &mut dyn Executor) {
        if let Some(prev) = self.pending.take() {
            self.push_binary(comm, exec, prev);
        }
        if self.stack.len() > 1 {
            let count = self.stack.len();
            self.do_merge(comm, exec, count);
        }
    }

    /// Waits for the sealed phase's merged slab and folds timing into the
    /// accumulators. Under pipelining the scheduler calls this only after
    /// the *next* phase's broadcasts and launches are issued, so the
    /// closing merge's tail overlaps them instead of stalling the grid.
    fn drain(
        mut self,
        comm: &Comm,
        timers: &mut StageTimers,
        merge_stats: &mut MergeStats,
        merge_spans: &mut Vec<MergeSpan>,
        cpu_idle: &mut f64,
    ) -> Csc<f64> {
        let ready = self.stack.last().map_or(comm.now(), |s| s.ready);
        self.stats.wait_time += comm.wait_clock_until(ready);

        timers.add("merge", self.stats.merge_time);
        *cpu_idle += self.stats.wait_time;
        merge_stats.absorb(&self.stats);
        merge_spans.append(&mut self.spans);
        self.stack
            .pop()
            .map_or_else(|| Csc::zero(self.shape.0, self.shape.1), |s| s.m)
    }
}

/// Runs all phases and stages of one distributed multiplication through
/// `exec`. Fills `timers`; returns the per-phase output slabs and the
/// idle/instrumentation accumulators. Collective over the grid.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run<F>(
    grid: &ProcGrid,
    exec: &mut dyn Executor,
    a: &DistMatrix,
    b: &DistMatrix,
    cfg: &SummaConfig,
    phases: usize,
    cf_hint: Option<f64>,
    timers: &mut StageTimers,
    mut on_slab: F,
) -> PipelineOutcome
where
    F: FnMut(usize, Csc<f64>) -> Csc<f64>,
{
    let comm = &grid.world;
    let side = grid.side;
    let probe = CohenEstimator::new(4, cfg.seed ^ 0xABCD);
    let mut kernels_used = Vec::with_capacity(phases * side);
    let mut merge_stats = MergeStats::default();
    let mut merge_spans: Vec<MergeSpan> = Vec::new();
    let mut cpu_idle = 0.0f64;
    let local_cols = b.local.ncols();
    let mut slabs: Vec<Csc<f64>> = Vec::with_capacity(phases);
    // Under pipelining the previous phase's sealed engine drains only
    // after this phase's stage loop, so its closing merge overlaps the
    // next round of broadcasts and launches (phases sliced from `B` are
    // independent; only the per-phase hook needs the merged slab).
    let mut sealed: Option<(usize, MergeEngine)> = None;

    for ph in 0..phases {
        let cols = even_chunk(local_cols, phases, ph);
        let b_phase = b.local.column_slice(cols);
        // Every stage product this phase has the same block shape.
        let mut merge = MergeEngine::new(cfg, (a.local.nrows(), b_phase.ncols()));

        for k in 0..side {
            // --- SUMMA broadcasts -------------------------------------
            let t0 = comm.now();
            let a_blk = bcast_block(&grid.row_comm, k, (grid.col == k).then_some(&a.local));
            let b_blk = bcast_block(&grid.col_comm, k, (grid.row == k).then_some(&b_phase));
            timers.add("summa_bcast", comm.now() - t0);

            // --- Kernel selection (flops + Cohen cf probe, §III/VI) ----
            let flops = hipmcl_spgemm::flops(&a_blk, &b_blk);
            let (slab, ready_at) = if flops == 0 {
                // Nothing to multiply, but instrumentation still records
                // the selector's degenerate choice so per-stage counts
                // stay `phases × √P`.
                let analysis = MultAnalysis {
                    flops: 0,
                    nnz_out: 1,
                };
                kernels_used.push(select_kernel(&analysis, &cfg.policy, exec.gpus_available()));
                (Csc::zero(a_blk.nrows(), b_blk.ncols()), comm.now())
            } else {
                // `nnz(C)` can never exceed `flops`: clamp the probe so a
                // stale global cf hint (or an overshooting estimate) on a
                // local block never shows the selector `cf < 1`.
                let nnz_cap = flops;
                let nnz_probe = match cf_hint {
                    Some(cf) => (((flops as f64 / cf).max(1.0)) as u64).min(nnz_cap),
                    None => {
                        comm.advance_clock(
                            comm.model().estimate_time(probe.op_count(&a_blk, &b_blk)),
                        );
                        (probe.estimate_total(&a_blk, &b_blk).max(1.0) as u64).min(nnz_cap)
                    }
                };
                let analysis = MultAnalysis {
                    flops,
                    nnz_out: nnz_probe.max(1),
                };
                let kernel = select_kernel(&analysis, &cfg.policy, exec.gpus_available());
                kernels_used.push(kernel);

                // --- Submit to the executor; overlap off its events ----
                // The probe's clamped cf estimate rides along so hybrid
                // split policies can evaluate the machine model's rate
                // curves before the realized cf exists.
                let spec = LaunchSpec {
                    kernel,
                    flops,
                    cf_est: flops as f64 / nnz_probe.max(1) as f64,
                };
                let launch = exec.submit(comm.model(), comm.now(), &a_blk, &b_blk, spec);
                if cfg.pipelined {
                    // Host resumes as soon as the inputs are handed off.
                    comm.wait_clock_until(launch.inputs_ready_at);
                } else {
                    // Bulk synchronous: wait for the output; inline host
                    // compute inside the wait is work, not idleness.
                    let waited = comm.wait_clock_until(launch.output_ready_at);
                    cpu_idle += (waited - launch.host_compute).max(0.0);
                }
                timers.add("local_spgemm", launch.kernel_time);
                (launch.c, launch.output_ready_at)
            };

            merge.accept(comm, exec, slab, ready_at);
        }

        // --- Phase wrap-up: submit the closing merge ------------------
        merge.seal(comm, exec);
        let drain_now = if cfg.pipelined {
            sealed.replace((ph, merge))
        } else {
            Some((ph, merge))
        };
        if let Some((pph, eng)) = drain_now {
            let merged = eng.drain(
                comm,
                timers,
                &mut merge_stats,
                &mut merge_spans,
                &mut cpu_idle,
            );
            slabs.push(on_slab(pph, merged));
        }
    }
    if let Some((pph, eng)) = sealed.take() {
        let merged = eng.drain(
            comm,
            timers,
            &mut merge_stats,
            &mut merge_spans,
            &mut cpu_idle,
        );
        slabs.push(on_slab(pph, merged));
    }

    PipelineOutcome {
        slabs,
        merge_stats,
        merge_spans,
        cpu_idle,
        kernels_used,
    }
}
