//! Distributed SpGEMM for `hipmcl-rs`: the Sparse SUMMA algorithm and the
//! paper's optimizations on top of it.
//!
//! * [`active`] — convergence-aware active-set shrinking: per-column
//!   settlement tracking, the frozen store of converged columns, and the
//!   reshard that rebuilds the SUMMA operand over the surviving columns.
//! * [`distmat`] — 2D block-distributed matrices on the
//!   [`hipmcl_comm::ProcGrid`] (CombBLAS-style layout, DCSC-aware sizing).
//! * [`merge`] — merging the per-stage intermediate products: the
//!   multiway and **binary** (§IV, Algorithm 2) schedules, and three
//!   bit-identical per-merge kernels (heap, pairwise, SpAdd-style hash)
//!   selected by a machine-model cost rule
//!   ([`merge::select_merge_kernel`]). Merges themselves execute as
//!   executor tasks ([`executor::MergeTask`]) on per-socket merge lanes.
//! * [`estimate`] — distributed memory-requirement estimation: the exact
//!   symbolic SUMMA of original HipMCL and the paper's **probabilistic**
//!   Cohen-sketch estimator (§V), plus the hybrid rule (exact when `cf` is
//!   small).
//! * [`executor`] — the kernel-execution layer: every local multiply is
//!   an asynchronous [`executor::KernelLaunch`] submitted to an
//!   [`executor::Executor`] — the devices ([`hipmcl_gpu::multi::MultiGpu`]),
//!   a per-rank CPU worker pool ([`executor::CpuPool`]), or a
//!   column-splitting [`executor::Hybrid`] of both whose per-stage GPU
//!   share follows a [`executor::SplitPolicy`] (fixed, model-derived, or
//!   adaptively controlled from the realized finish-time imbalance).
//! * [`pipeline`] — the single stage scheduler of Pipelined Sparse SUMMA:
//!   issues broadcasts, submits launches, and drives merging off the
//!   launches' completion events.
//! * [`spgemm`] — distributed `C = A·B`: configuration and entry points
//!   for plain Sparse SUMMA (bulk synchronous, original HipMCL) and
//!   **Pipelined Sparse SUMMA** (§III) overlapping local multiplications
//!   with broadcasts and CPU merging.
//! * [`topk`] — distributed top-k column selection for MCL pruning.
//! * [`components`] — cluster extraction from the converged distributed
//!   matrix.
//!
//! Everything executes for real over the simulated-MPI runtime (results
//! are validated against single-process kernels) while virtual clocks
//! produce the Summit-shaped timings (see `hipmcl-comm` docs).

pub mod active;
pub mod components;
pub mod distmat;
pub mod estimate;
pub mod executor;
pub mod merge;
pub mod pipeline;
pub mod spgemm;
pub mod topk;

pub use active::{ActiveSet, ActiveSetPolicy, InvalidActiveSet};
pub use distmat::DistMatrix;
pub use estimate::{EstimatorKind, MemoryEstimate, OverlapInputs, PhaseDecision, PhasePlanner};
pub use executor::{
    CpuPool, Executor, ExecutorKind, GpuExecutor, Hybrid, InvalidSplit, KernelLaunch, LaunchSpec,
    MergeLaunch, MergeTask, SplitController, SplitPolicy,
};
pub use merge::{
    merge_with, ArenaPool, ColsRef, MergeArena, MergeKernelPolicy, MergeSlab, MergeSpan,
    MergeStrategy, SlabBuf, StackMerger,
};
pub use spgemm::{
    summa_spgemm, summa_spgemm_in, summa_spgemm_with, summa_spgemm_with_in, CommChoice, CommPolicy,
    ConfigError, SummaConfig, SummaOutput,
};
