//! Convergence-aware active-set shrinking for the distributed MCL loop.
//!
//! MCL columns converge at wildly different rates: long before the global
//! chaos statistic crosses the stopping threshold, most columns have
//! already collapsed onto their attractor while the expansion still pays
//! full SpGEMM cost for them every iteration. The active set tracks which
//! columns are *settled* — per-column chaos below the policy's `epsilon`
//! **and** negligible feedback mass flowing back into the column's row
//! from the rest of the matrix — checkpoints their converged state into a
//! frozen store, and rebuilds the SUMMA operand as the induced submatrix
//! over the surviving columns ([`hipmcl_sparse::Csc::select_cols`]
//! semantics, resharded over the same `√P × √P` grid). Late iterations
//! then run on a matrix that keeps getting smaller.
//!
//! Lifecycle per shrink point (driven by `hipmcl-core`'s distributed
//! driver):
//!
//! 1. **Settle** — [`ActiveSet::settled_columns`] combines the per-column
//!    chaos vector (already reduced down the process columns) with
//!    feedback row mass (reduced across the process rows) into a global
//!    settled mask.
//! 2. **Freeze** — settled columns' entries are mapped back to original
//!    vertex ids (their top entry is the eventual cluster attractor) and
//!    gathered into the frozen store on rank 0.
//! 3. **Reshard** — every rank filters its block to the surviving
//!    rows/columns, remaps them through the old↔new index map, and routes
//!    each entry to the rank that owns it under the shrunken balanced 2D
//!    distribution ([`hipmcl_sparse::convert::block_of`]).
//! 4. **Scatter back** — at termination [`ActiveSet::final_components`]
//!    maps the small converged matrix back through the index map, unions
//!    it with the frozen store and labels connected components over the
//!    original vertex set.
//!
//! The row-feedback condition in step 1 is what keeps labels identical to
//! the unshrunk run: dropping column `j` also drops row `j` from the
//! induced submatrix, so `j` may only leave while the mass the still
//! active columns place on row `j` (diagonal excluded — attractors keep
//! their own self-loop) is below `epsilon`. In the star graphs MCL
//! converges to, satellites freeze first and attractors last, so no
//! cluster edge is ever truncated beyond the `epsilon` tolerance.

use crate::components;
use crate::distmat::DistMatrix;
use hipmcl_comm::collectives::{allreduce, allreduce_sum_vec, bcast, gather};
use hipmcl_comm::ProcGrid;
use hipmcl_sparse::components::connected_components;
use hipmcl_sparse::convert::block_of;
use hipmcl_sparse::util::{even_chunk, inverse_selection, DROPPED};
use hipmcl_sparse::{Csc, Idx, Triples};

/// When (and how aggressively) the distributed MCL driver shrinks the
/// SUMMA operand. Lives on `MclConfig`; `Off` is the default everywhere.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum ActiveSetPolicy {
    /// Never shrink: every iteration squares the full matrix (the
    /// behaviour of original HipMCL and of every preset).
    #[default]
    Off,
    /// Freeze settled columns out of the operand.
    Shrink {
        /// A column is settled when its chaos *and* its feedback row mass
        /// are below this. `0.0` settles nothing (strict `<`), making the
        /// run bit-identical to `Off`.
        epsilon: f64,
        /// A reshard only happens when at least this fraction of the
        /// current active columns would leave; smaller batches stay
        /// active (and are retried later) because re-owning the matrix
        /// costs `P²` messages.
        min_shrink_frac: f64,
        /// Only test for settled columns every this many iterations since
        /// the last reshard (`1` = every iteration).
        reshard_every: usize,
    },
}

impl ActiveSetPolicy {
    /// The shrink configuration used by the ablation probes: settle at
    /// the driver's default chaos tolerance, reshard every iteration when
    /// at least 2% of the active columns would leave.
    pub fn shrink() -> Self {
        Self::Shrink {
            epsilon: 1e-3,
            min_shrink_frac: 0.02,
            reshard_every: 1,
        }
    }

    /// `true` unless the policy is [`ActiveSetPolicy::Off`].
    pub fn is_on(&self) -> bool {
        !matches!(self, Self::Off)
    }

    /// Rejects parameter values that would misbehave at run time: a
    /// negative or non-finite `epsilon`, a `min_shrink_frac` outside
    /// `[0, 1]`, or a zero `reshard_every`.
    pub fn validate(&self) -> Result<(), InvalidActiveSet> {
        if let Self::Shrink {
            epsilon,
            min_shrink_frac,
            reshard_every,
        } = *self
        {
            if !epsilon.is_finite() || epsilon < 0.0 {
                return Err(InvalidActiveSet {
                    field: "epsilon",
                    value: epsilon,
                });
            }
            if !(0.0..=1.0).contains(&min_shrink_frac) {
                return Err(InvalidActiveSet {
                    field: "min_shrink_frac",
                    value: min_shrink_frac,
                });
            }
            if reshard_every == 0 {
                return Err(InvalidActiveSet {
                    field: "reshard_every",
                    value: 0.0,
                });
            }
        }
        Ok(())
    }
}

/// An [`ActiveSetPolicy::Shrink`] parameter outside its legal range.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InvalidActiveSet {
    /// Which parameter.
    pub field: &'static str,
    /// The offending value (`0.0` stands in for a zero `reshard_every`).
    pub value: f64,
}

impl std::fmt::Display for InvalidActiveSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "active-set {} = {} out of range (epsilon must be finite and >= 0, \
             min_shrink_frac in [0, 1], reshard_every >= 1)",
            self.field, self.value
        )
    }
}

/// Tag for the reshard's all-to-all block exchange.
const RESHARD_TAG: u64 = 0xAC5E;

/// The driver-side state of active-set shrinking: the old↔new column
/// index map of the current (possibly shrunken) operand plus the frozen
/// store of settled columns. One per MCL run, mutated at every reshard.
#[derive(Clone, Debug)]
pub struct ActiveSet {
    /// Original (full) vertex count.
    n_global: usize,
    /// `to_global[new] = old`: maps the current operand's row/column ids
    /// back to original vertex ids. Identity while nothing is frozen.
    to_global: Vec<Idx>,
    /// Frozen columns' entries in original ids — only populated on rank 0
    /// (where components are labelled); other ranks keep it empty.
    frozen: Triples<f64>,
    /// Number of frozen columns, replicated on every rank.
    frozen_cols: usize,
}

impl ActiveSet {
    /// A full active set over `n` vertices: identity map, nothing frozen.
    pub fn full(n: usize) -> Self {
        Self {
            n_global: n,
            to_global: (0..n as Idx).collect(),
            frozen: Triples::new(n, n),
            frozen_cols: 0,
        }
    }

    /// Original vertex count.
    pub fn n_global(&self) -> usize {
        self.n_global
    }

    /// Columns still in the operand.
    pub fn active_cols(&self) -> usize {
        self.to_global.len()
    }

    /// Columns checkpointed into the frozen store.
    pub fn frozen_cols(&self) -> usize {
        self.frozen_cols
    }

    /// `true` while no column has ever been frozen (the operand is the
    /// original matrix and every code path below degenerates to the
    /// unshrunk one).
    pub fn is_full(&self) -> bool {
        self.frozen_cols == 0
    }

    /// Global settled mask over the current operand's columns: column `j`
    /// settles when its chaos is below `epsilon` *and* the mass the other
    /// active columns place on row `j` (self-loop excluded) is at most
    /// `epsilon` — see the module docs for why both conditions are needed
    /// to preserve labels. `col_chaos` is this rank's local column panel
    /// of per-column chaos (identical across a process column, as
    /// produced by the driver's inflation step). Collective.
    pub fn settled_columns(
        &self,
        grid: &ProcGrid,
        a: &DistMatrix,
        col_chaos: &[f64],
        epsilon: f64,
    ) -> Vec<bool> {
        let n_cur = a.ncols_global;
        debug_assert_eq!(n_cur, self.to_global.len());
        let row_range = a.row_range(grid);
        let col_range = a.col_range(grid);
        debug_assert_eq!(col_chaos.len(), col_range.len());

        // Feedback mass into each of this block's rows, diagonal excluded.
        let mut local_feedback = vec![0.0f64; row_range.len()];
        for (i, j, v) in a.local.iter() {
            let gi = row_range.start + i as usize;
            let gj = col_range.start + j as usize;
            if gi != gj {
                local_feedback[i as usize] += v;
            }
        }
        let row_feedback = allreduce_sum_vec(&grid.row_comm, local_feedback);

        // Globalize chaos (owned per process column) and feedback (owned
        // per process row) in one elementwise-max allreduce: owners hold
        // identical nonnegative values, everyone else contributes 0.
        let mut both = vec![0.0f64; 2 * n_cur];
        both[col_range.start..col_range.end].copy_from_slice(col_chaos);
        both[n_cur + row_range.start..n_cur + row_range.end].copy_from_slice(&row_feedback);
        let both = allreduce(&grid.world, both, |mut x, y| {
            for (a, b) in x.iter_mut().zip(&y) {
                *a = a.max(*b);
            }
            x
        });
        let (chaos, feedback) = both.split_at(n_cur);
        chaos
            .iter()
            .zip(feedback)
            .map(|(&c, &f)| c < epsilon && f <= epsilon)
            .collect()
    }

    /// Freezes the settled columns and reshards the survivors: returns
    /// the induced `n_active × n_active` submatrix, redistributed over
    /// the same grid with balanced stripes. Entries whose row *or* column
    /// leaves the active set are dropped (the row-feedback settle
    /// condition bounds the dropped off-column mass by `epsilon` per
    /// row). Collective; the caller brackets the modeled time.
    pub fn shrink(&mut self, grid: &ProcGrid, a: &DistMatrix, settled: &[bool]) -> DistMatrix {
        let comm = &grid.world;
        let side = grid.side;
        let n_cur = a.ncols_global;
        debug_assert_eq!(settled.len(), n_cur);
        let row_range = a.row_range(grid);
        let col_range = a.col_range(grid);

        // 1. Checkpoint the settled columns in original ids; rank 0 keeps
        //    the union (labels are extracted there).
        let mut newly_frozen = Triples::new(self.n_global, self.n_global);
        for (i, j, v) in a.local.iter() {
            let gj = col_range.start + j as usize;
            if settled[gj] {
                let gi = row_range.start + i as usize;
                newly_frozen.push(self.to_global[gi], self.to_global[gj], v);
            }
        }
        if let Some(parts) = gather(comm, 0, newly_frozen) {
            for t in &parts {
                for (i, j, v) in t.iter() {
                    self.frozen.push(i, j, v);
                }
            }
        }
        self.frozen_cols += settled.iter().filter(|&&s| s).count();

        // 2. Old↔new index maps over the current operand.
        let keep: Vec<usize> = (0..n_cur).filter(|&j| !settled[j]).collect();
        let n_new = keep.len();
        assert!(n_new > 0, "cannot shrink away every column");
        let old_to_new = inverse_selection(n_cur, &keep);
        self.to_global = keep.iter().map(|&j| self.to_global[j]).collect();

        // 3. Route every surviving entry to its owner under the shrunken
        //    distribution (block-local indices, ready to ingest).
        let p = comm.size();
        let mut outgoing: Vec<Triples<f64>> = (0..p)
            .map(|r| {
                let rows = even_chunk(n_new, side, r / side).len();
                let cols = even_chunk(n_new, side, r % side).len();
                Triples::new(rows, cols)
            })
            .collect();
        for (i, j, v) in a.local.iter() {
            let ni = old_to_new[row_range.start + i as usize];
            let nj = old_to_new[col_range.start + j as usize];
            if ni == DROPPED || nj == DROPPED {
                continue;
            }
            let dr = block_of(n_new, side, ni);
            let dc = block_of(n_new, side, nj);
            outgoing[dr * side + dc].push(
                (ni - even_chunk(n_new, side, dr).start) as Idx,
                (nj - even_chunk(n_new, side, dc).start) as Idx,
                v,
            );
        }
        // Charge the filter/remap scan over the local block.
        comm.advance_clock(comm.model().elementwise_time(a.local.nnz() as u64));

        // 4. Pairwise exchange: send everyone their piece, then drain in
        //    rank order (transports buffer, so all-send-then-all-receive
        //    cannot deadlock — the same shape scatter_from_root relies on).
        let me = comm.rank();
        let mut mine = std::mem::replace(&mut outgoing[me], Triples::new(0, 0));
        for (r, out) in outgoing.into_iter().enumerate() {
            if r != me {
                comm.send(r, RESHARD_TAG, out);
            }
        }
        for r in 0..p {
            if r != me {
                let t: Triples<f64> = comm.recv(r, RESHARD_TAG);
                for (i, j, v) in t.iter() {
                    mine.push(i, j, v);
                }
            }
        }
        // Distinct global entries map injectively, so no duplicates.
        DistMatrix {
            local: Csc::from_nodup_triples(&mine),
            nrows_global: n_new,
            ncols_global: n_new,
        }
    }

    /// Cluster labels over the *original* vertex set: the converged small
    /// matrix is scattered back through the index map, unioned with the
    /// frozen store, and labelled by connected components on rank 0
    /// (broadcast to all, mirroring
    /// [`components::gathered_components`] — to which this degenerates,
    /// bit for bit, while [`ActiveSet::is_full`]). Collective.
    pub fn final_components(&self, grid: &ProcGrid, a: &DistMatrix) -> (Vec<u32>, usize) {
        if self.is_full() {
            return components::gathered_components(grid, a);
        }
        let gathered = a.gather_to_root(grid);
        let payload = gathered.map(|small| {
            let mut t = Triples::new(self.n_global, self.n_global);
            for (i, j, v) in small.iter() {
                t.push(self.to_global[i as usize], self.to_global[j as usize], v);
            }
            // Frozen columns are disjoint from active ones, so the union
            // has no duplicate (row, col) pairs.
            for (i, j, v) in self.frozen.iter() {
                t.push(i, j, v);
            }
            let (labels, k) = connected_components(&Csc::from_nodup_triples(&t));
            (labels, k as u64)
        });
        let (labels, k) = bcast(&grid.world, 0, payload);
        (labels, k as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmcl_comm::{MachineModel, Universe};

    #[test]
    fn policy_validation_bounds() {
        assert!(ActiveSetPolicy::Off.validate().is_ok());
        assert!(ActiveSetPolicy::shrink().validate().is_ok());
        let bad = ActiveSetPolicy::Shrink {
            epsilon: -1.0,
            min_shrink_frac: 0.1,
            reshard_every: 1,
        };
        assert_eq!(bad.validate().unwrap_err().field, "epsilon");
        let bad = ActiveSetPolicy::Shrink {
            epsilon: 0.0,
            min_shrink_frac: 1.5,
            reshard_every: 1,
        };
        assert_eq!(bad.validate().unwrap_err().field, "min_shrink_frac");
        let bad = ActiveSetPolicy::Shrink {
            epsilon: 0.0,
            min_shrink_frac: 0.5,
            reshard_every: 0,
        };
        assert_eq!(bad.validate().unwrap_err().field, "reshard_every");
    }

    /// Two 2-star clusters: attractors 0 and 3 hold their satellites.
    /// Columns 1, 2, 4, 5 are satellites with all mass on their attractor.
    fn two_stars() -> Triples<f64> {
        let mut t = Triples::new(6, 6);
        for &(attractor, sat) in &[(0u32, 1u32), (0, 2), (3, 4), (3, 5)] {
            t.push(attractor, sat, 1.0); // satellite column -> attractor row
        }
        for v in 0..6u32 {
            if v == 0 || v == 3 {
                t.push(v, v, 1.0); // attractors keep their self-loop
            }
        }
        t
    }

    #[test]
    fn shrink_freezes_satellites_and_labels_survive() {
        for p in [1usize, 4] {
            let results = Universe::run(p, MachineModel::summit(), |comm| {
                let grid = ProcGrid::new(comm);
                let a = DistMatrix::from_global(&grid, &two_stars());
                let mut active = ActiveSet::full(6);
                // Satellite columns have chaos 0 (single entry of mass 1)
                // and no feedback into their rows; attractors receive
                // satellite mass, so only satellites may settle.
                let col_chaos = vec![0.0; a.local.ncols()];
                let settled = active.settled_columns(&grid, &a, &col_chaos, 1e-3);
                assert_eq!(settled, vec![false, true, true, false, true, true]);
                let small = active.shrink(&grid, &a, &settled);
                assert_eq!(small.ncols_global, 2);
                assert_eq!(active.active_cols(), 2);
                assert_eq!(active.frozen_cols(), 4);
                assert!(!active.is_full());
                active.final_components(&grid, &small)
            });
            for (labels, k) in &results {
                assert_eq!(*k, 2, "p={p}");
                assert_eq!(labels, &vec![0, 0, 0, 1, 1, 1], "p={p}");
            }
        }
    }

    #[test]
    fn full_active_set_is_identity() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let a = DistMatrix::from_global(&grid, &two_stars());
            let active = ActiveSet::full(6);
            assert!(active.is_full());
            assert_eq!(active.active_cols(), 6);
            let via_active = active.final_components(&grid, &a);
            let direct = components::gathered_components(&grid, &a);
            via_active == direct
        });
        assert!(results.into_iter().all(|same| same));
    }

    #[test]
    fn epsilon_zero_settles_nothing() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let a = DistMatrix::from_global(&grid, &two_stars());
            let active = ActiveSet::full(6);
            let col_chaos = vec![0.0; a.local.ncols()];
            active.settled_columns(&grid, &a, &col_chaos, 0.0)
        });
        for settled in results {
            assert!(settled.iter().all(|&s| !s), "strict < keeps chaos-0 active");
        }
    }
}
