//! Distributed `C = A · B`: Sparse SUMMA and Pipelined Sparse SUMMA (§III).
//!
//! The plain algorithm (original HipMCL) is bulk synchronous: in stage `k`
//! of `√P`, `A_{ik}` is broadcast along grid rows and `B_{kj}` along grid
//! columns, each rank multiplies locally on the CPU, and all intermediate
//! products are merged at the end with one multiway merge.
//!
//! The pipelined variant offloads the local multiplications to the GPUs
//! and exploits two overlaps (Fig. 2):
//!
//! 1. **Broadcast/compute** — the host regains control as soon as stage
//!    `k`'s inputs are *transferred* to the device, so the stage `k+1`
//!    broadcasts proceed while the GPU multiplies stage `k`.
//! 2. **Merge/compute** — the stage `k−1` intermediate product is merged
//!    on the CPU (binary merge, §IV) while the GPU works on stage `k`;
//!    only the first broadcast and the final merge cannot be hidden.
//!
//! Execution is real (the returned distributed product is validated
//! against single-process kernels); the stage timers, CPU idle and GPU
//! idle times come from the virtual clocks.

use crate::distmat::DistMatrix;
use crate::estimate::{estimate_memory, plan_phases, EstimatorKind, MemoryEstimate};
use crate::merge::{multiway_merge_timed, BinaryMerger, MergeStats, MergeStrategy};
use hipmcl_comm::clock::StageTimers;
use hipmcl_comm::collectives::bcast;
use hipmcl_comm::{Comm, ProcGrid, SpgemmKernel, WireSize};
use hipmcl_gpu::multi::MultiGpu;
use hipmcl_gpu::select::{select_kernel, SelectionPolicy};
use hipmcl_sparse::util::even_chunk;
use hipmcl_sparse::{Csc, Dcsc};
use hipmcl_spgemm::{CohenEstimator, MultAnalysis};
use std::sync::Arc;

/// How the number of SUMMA phases is chosen.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PhasePlan {
    /// Fixed phase count.
    Fixed(usize),
    /// Run a memory estimator and derive the phase count from a per-rank
    /// byte budget (§V).
    Auto {
        /// Which estimator to run.
        estimator: EstimatorKind,
        /// Unpruned-output bytes each rank may hold at once.
        per_rank_budget: u64,
    },
}

/// Configuration of one distributed multiplication.
#[derive(Clone, Copy, Debug)]
pub struct SummaConfig {
    /// Phase selection.
    pub phases: PhasePlan,
    /// CPU/GPU kernel selection thresholds.
    pub policy: SelectionPolicy,
    /// Merging scheme for the stage intermediates.
    pub merge: MergeStrategy,
    /// Overlap GPU multiplications with broadcasts and merging (§III).
    /// Without it the host waits for every kernel's output (bulk
    /// synchronous, like original HipMCL even when kernels run on GPU).
    pub pipelined: bool,
    /// Seed for the per-stage Cohen probes driving kernel selection.
    pub seed: u64,
}

impl SummaConfig {
    /// Original HipMCL: CPU heap kernels, multiway merge, exact symbolic
    /// estimation, no pipelining.
    pub fn original_hipmcl(per_rank_budget: u64) -> Self {
        Self {
            phases: PhasePlan::Auto {
                estimator: EstimatorKind::ExactSymbolic,
                per_rank_budget,
            },
            policy: SelectionPolicy::original_heap(),
            merge: MergeStrategy::Multiway,
            pipelined: false,
            seed: 0,
        }
    }

    /// The paper's optimized HipMCL *without* overlap (Fig. 1 middle bar):
    /// GPU kernels and the probabilistic estimator, but bulk synchronous
    /// with multiway merging.
    pub fn optimized_no_overlap(per_rank_budget: u64) -> Self {
        Self {
            phases: PhasePlan::Auto {
                estimator: EstimatorKind::Hybrid { r: 5, cf_threshold: 2.0 },
                per_rank_budget,
            },
            policy: SelectionPolicy::always_gpu(),
            merge: MergeStrategy::Multiway,
            pipelined: false,
            seed: 0,
        }
    }

    /// The fully optimized HipMCL (Fig. 1 right bar): Pipelined Sparse
    /// SUMMA with binary merge.
    pub fn optimized(per_rank_budget: u64) -> Self {
        Self {
            phases: PhasePlan::Auto {
                estimator: EstimatorKind::Hybrid { r: 5, cf_threshold: 2.0 },
                per_rank_budget,
            },
            policy: SelectionPolicy::always_gpu(),
            merge: MergeStrategy::Binary,
            pipelined: true,
            seed: 0,
        }
    }
}

/// Result of a distributed multiplication on one rank.
pub struct SummaOutput {
    /// This rank's block of `C` (post any per-phase hook).
    pub c: DistMatrix,
    /// Virtual-time stage breakdown (`local_spgemm`, `summa_bcast`,
    /// `merge`, `mem_estimation`, `other`).
    pub timers: StageTimers,
    /// Merge statistics (peak elements feed Table III).
    pub merge_stats: MergeStats,
    /// Host idle time spent waiting on device events (Table V, CPU).
    pub cpu_idle: f64,
    /// Device idle time (Table V, GPU).
    pub gpu_idle: f64,
    /// The memory estimate, when `PhasePlan::Auto` ran.
    pub estimate: Option<MemoryEstimate>,
    /// Number of phases executed.
    pub phases: usize,
    /// Kernels chosen per (phase, stage), for instrumentation.
    pub kernels_used: Vec<SpgemmKernel>,
}

/// Broadcast payload: a shared block plus its hypersparse wire size.
/// HipMCL broadcasts DCSC; an `Arc` keeps the in-process copy free while
/// the virtual cost reflects the real payload (§III-B).
#[derive(Clone)]
struct BlockMsg(Arc<Csc<f64>>, usize);

impl WireSize for BlockMsg {
    fn wire_bytes(&self) -> usize {
        self.1
    }
}

fn bcast_block(comm: &Comm, root: usize, local: Option<&Csc<f64>>) -> Arc<Csc<f64>> {
    let payload = local.map(|m| {
        let bytes = Dcsc::from_csc(m).bytes();
        BlockMsg(Arc::new(m.clone()), bytes)
    });
    bcast(comm, root, payload).0
}

/// Distributed `C = A·B` with the identity per-phase hook.
pub fn summa_spgemm(
    grid: &ProcGrid,
    gpus: &mut MultiGpu,
    a: &DistMatrix,
    b: &DistMatrix,
    cfg: &SummaConfig,
) -> SummaOutput {
    summa_spgemm_with(grid, gpus, a, b, cfg, |_, c| c)
}

/// Distributed `C = A·B` with a per-phase output hook.
///
/// `on_slab(phase, slab)` receives each phase's merged (unpruned) output
/// slab and returns what should be kept — the MCL driver prunes here, so
/// the full unpruned matrix never exists at once (the fused
/// expansion+pruning of §II). The hook's virtual cost must be charged by
/// the caller (the driver charges the pruning stage).
pub fn summa_spgemm_with<F>(
    grid: &ProcGrid,
    gpus: &mut MultiGpu,
    a: &DistMatrix,
    b: &DistMatrix,
    cfg: &SummaConfig,
    mut on_slab: F,
) -> SummaOutput
where
    F: FnMut(usize, Csc<f64>) -> Csc<f64>,
{
    assert_eq!(a.ncols_global, b.nrows_global, "global inner dims must agree");
    let comm = &grid.world;
    let side = grid.side;
    let mut timers = StageTimers::new();
    let mut kernels_used = Vec::new();
    let mut cpu_idle = 0.0f64;
    // Idle accounting is per SUMMA-pipeline section: the gap between the
    // previous expansion's last kernel and this one's first (pruning,
    // inflation, estimation happen there) is not pipeline idle — Table V
    // measures idleness *within* the Pipelined Sparse SUMMA.
    gpus.reset_timelines();
    let gpu_idle_before = gpus.total_idle();

    // Phase planning (memory estimation).
    let (phases, estimate) = match cfg.phases {
        PhasePlan::Fixed(h) => (h.max(1), None),
        PhasePlan::Auto { estimator, per_rank_budget } => {
            let t0 = comm.now();
            let est = estimate_memory(grid, a, b, estimator, cfg.seed);
            timers.add("mem_estimation", comm.now() - t0);
            (plan_phases(&est, grid.size(), per_rank_budget), Some(est))
        }
    };

    // Kernel selection needs a cf estimate per local multiply. When the
    // phase planner ran an estimator, reuse its global cf (the paper's
    // recipe: the selection metrics come from the iteration's memory
    // estimation); only Fixed-phase runs pay for a per-stage Cohen probe.
    let cf_hint: Option<f64> = estimate.as_ref().map(|e| {
        if e.nnz_estimate > 0.0 {
            e.flops as f64 / e.nnz_estimate
        } else {
            1.0
        }
    });
    let probe = CohenEstimator::new(4, cfg.seed ^ 0xABCD);
    let mut merge_stats = MergeStats::default();
    let local_cols = b.local.ncols();
    let mut phase_slabs: Vec<Csc<f64>> = Vec::with_capacity(phases);

    for ph in 0..phases {
        let cols = even_chunk(local_cols, phases, ph);
        let b_phase = b.local.column_slice(cols);

        // Pending GPU slab from the previous stage (pipelined binary merge
        // pushes one stage late so merging overlaps the next kernel).
        let mut pending: Option<(Csc<f64>, f64)> = None;
        let mut merger = BinaryMerger::new(comm.model().clone());
        let mut multiway_slabs: Vec<(Csc<f64>, f64)> = Vec::new();

        for k in 0..side {
            // --- SUMMA broadcasts -------------------------------------
            let t0 = comm.now();
            let a_blk =
                bcast_block(&grid.row_comm, k, (grid.col == k).then_some(&a.local));
            let b_blk = bcast_block(&grid.col_comm, k, (grid.row == k).then_some(&b_phase));
            timers.add("summa_bcast", comm.now() - t0);

            // --- Kernel selection (flops + Cohen cf probe, §III/VI) ----
            let flops = hipmcl_spgemm::flops(&a_blk, &b_blk);
            let (slab, ready_at) = if flops == 0 {
                (Csc::zero(a_blk.nrows(), b_blk.ncols()), comm.now())
            } else {
                let nnz_probe = match cf_hint {
                    Some(cf) => ((flops as f64 / cf).max(1.0)) as u64,
                    None => {
                        comm.advance_clock(
                            comm.model().estimate_time(probe.op_count(&a_blk, &b_blk)),
                        );
                        probe.estimate_total(&a_blk, &b_blk).max(1.0) as u64
                    }
                };
                let analysis = MultAnalysis { flops, nnz_out: nnz_probe.max(1) };
                let kernel = select_kernel(&analysis, &cfg.policy, gpus.len());
                kernels_used.push(kernel);

                match kernel {
                    SpgemmKernel::Gpu(lib) => {
                        let launch = gpus
                            .multiply(comm.now(), &a_blk, &b_blk, lib)
                            .expect("device OOM: increase phases or use CPU policy");
                        if cfg.pipelined {
                            // Host resumes right after the input transfer.
                            comm.wait_clock_until(launch.inputs_transferred_at);
                        } else {
                            // Bulk synchronous: wait for the output.
                            cpu_idle += comm.wait_clock_until(launch.output_ready_at);
                        }
                        timers.add(
                            "local_spgemm",
                            launch.output_ready_at - launch.inputs_transferred_at,
                        );
                        (launch.c, launch.output_ready_at)
                    }
                    cpu_kernel => {
                        let algo = match cpu_kernel {
                            SpgemmKernel::CpuHeap => hipmcl_spgemm::CpuAlgo::Heap,
                            SpgemmKernel::CpuSpa => hipmcl_spgemm::CpuAlgo::Spa,
                            _ => hipmcl_spgemm::CpuAlgo::Hash,
                        };
                        let c = algo.multiply(&a_blk, &b_blk);
                        let cf =
                            if c.nnz() == 0 { 1.0 } else { flops as f64 / c.nnz() as f64 };
                        let dur = comm.model().spgemm_time(cpu_kernel, flops, cf);
                        comm.advance_clock(dur);
                        timers.add("local_spgemm", dur);
                        (c, comm.now())
                    }
                }
            };

            // --- Merging ----------------------------------------------
            match cfg.merge {
                MergeStrategy::Multiway => multiway_slabs.push((slab, ready_at)),
                MergeStrategy::Binary => {
                    if cfg.pipelined {
                        // Push the *previous* stage's slab: its merge (if
                        // Algorithm 2 triggers one) overlaps this stage's
                        // GPU kernel.
                        if let Some((prev, prev_ready)) = pending.take() {
                            let now = merger.push(prev, prev_ready, comm.now());
                            comm.wait_clock_until(now);
                        }
                        pending = Some((slab, ready_at));
                    } else {
                        let now = merger.push(slab, ready_at, comm.now());
                        comm.wait_clock_until(now);
                    }
                }
            }
        }

        // --- Phase wrap-up: final merge --------------------------------
        let merged = match cfg.merge {
            MergeStrategy::Multiway => {
                let (m, now, stats) =
                    multiway_merge_timed(comm.model(), std::mem::take(&mut multiway_slabs), comm.now());
                comm.wait_clock_until(now);
                timers.add("merge", stats.merge_time);
                cpu_idle += stats.wait_time;
                merge_stats.peak_merge_elems =
                    merge_stats.peak_merge_elems.max(stats.peak_merge_elems);
                merge_stats.total_merged_elems += stats.total_merged_elems;
                merge_stats.merge_ops += stats.merge_ops;
                merge_stats.merge_time += stats.merge_time;
                merge_stats.wait_time += stats.wait_time;
                m
            }
            MergeStrategy::Binary => {
                if let Some((prev, prev_ready)) = pending.take() {
                    let now = merger.push(prev, prev_ready, comm.now());
                    comm.wait_clock_until(now);
                }
                let (m, now) = merger.finish(comm.now());
                comm.wait_clock_until(now);
                let stats = merger.stats();
                timers.add("merge", stats.merge_time);
                cpu_idle += stats.wait_time;
                merge_stats.peak_merge_elems =
                    merge_stats.peak_merge_elems.max(stats.peak_merge_elems);
                merge_stats.total_merged_elems += stats.total_merged_elems;
                merge_stats.merge_ops += stats.merge_ops;
                merge_stats.merge_time += stats.merge_time;
                merge_stats.wait_time += stats.wait_time;
                m
            }
        };
        phase_slabs.push(on_slab(ph, merged));
    }

    let local = if phase_slabs.len() == 1 {
        phase_slabs.pop().unwrap()
    } else {
        Csc::hcat(&phase_slabs)
    };

    SummaOutput {
        c: DistMatrix {
            local,
            nrows_global: a.nrows_global,
            ncols_global: b.ncols_global,
        },
        timers,
        merge_stats,
        cpu_idle,
        gpu_idle: gpus.total_idle() - gpu_idle_before,
        estimate,
        phases,
        kernels_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmcl_comm::{MachineModel, Universe};
    use hipmcl_sparse::{Idx, Triples};
    use rand::{Rng, SeedableRng};

    fn random_global(n: usize, nnz: usize, seed: u64) -> Triples<f64> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut t = Triples::new(n, n);
        for _ in 0..nnz {
            t.push(
                rng.gen_range(0..n) as Idx,
                rng.gen_range(0..n) as Idx,
                rng.gen_range(0.5..1.5),
            );
        }
        t.sum_duplicates();
        t
    }

    fn serial_product(n: usize, nnz: usize, seed: u64) -> Csc<f64> {
        let g = Csc::from_triples(&random_global(n, nnz, seed));
        hipmcl_spgemm::hash::multiply(&g, &g)
    }

    fn run_config(n: usize, nnz: usize, seed: u64, p: usize, cfg: SummaConfig) -> Csc<f64> {
        let results = Universe::run(p, MachineModel::summit(), move |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_global(n, nnz, seed);
            let a = DistMatrix::from_global(&grid, &g);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let out = summa_spgemm(&grid, &mut gpus, &a, &a, &cfg);
            out.c.gather_to_root(&grid)
        });
        results.into_iter().next().unwrap().unwrap()
    }

    fn base_cfg() -> SummaConfig {
        SummaConfig {
            phases: PhasePlan::Fixed(1),
            policy: SelectionPolicy::cpu_only(),
            merge: MergeStrategy::Multiway,
            pipelined: false,
            seed: 7,
        }
    }

    #[test]
    fn plain_summa_matches_serial_product() {
        let want = serial_product(22, 140, 1);
        for p in [1usize, 4, 9] {
            let got = run_config(22, 140, 1, p, base_cfg());
            assert!(got.max_abs_diff(&want) < 1e-9, "p={p}");
            assert_eq!(got.nnz(), want.nnz(), "p={p}");
        }
    }

    #[test]
    fn phased_execution_matches() {
        let want = serial_product(25, 170, 2);
        for phases in [1usize, 2, 3, 5] {
            let cfg = SummaConfig { phases: PhasePlan::Fixed(phases), ..base_cfg() };
            let got = run_config(25, 170, 2, 4, cfg);
            assert!(got.max_abs_diff(&want) < 1e-9, "phases={phases}");
        }
    }

    #[test]
    fn binary_merge_matches_multiway() {
        let want = serial_product(24, 160, 3);
        let cfg = SummaConfig { merge: MergeStrategy::Binary, ..base_cfg() };
        let got = run_config(24, 160, 3, 9, cfg);
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn gpu_pipelined_matches() {
        let want = serial_product(26, 200, 4);
        let cfg = SummaConfig {
            policy: SelectionPolicy::always_gpu(),
            merge: MergeStrategy::Binary,
            pipelined: true,
            ..base_cfg()
        };
        let got = run_config(26, 200, 4, 4, cfg);
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn gpu_unpipelined_matches() {
        let want = serial_product(26, 200, 5);
        let cfg = SummaConfig {
            policy: SelectionPolicy::always_gpu(),
            ..base_cfg()
        };
        let got = run_config(26, 200, 5, 9, cfg);
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn auto_phases_run_estimator() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_global(30, 400, 6);
            let a = DistMatrix::from_global(&grid, &g);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let cfg = SummaConfig {
                phases: PhasePlan::Auto {
                    estimator: EstimatorKind::Probabilistic { r: 5 },
                    per_rank_budget: 500, // small budget forces phases
                },
                policy: SelectionPolicy::cpu_only(),
                merge: MergeStrategy::Multiway,
                pipelined: false,
                seed: 1,
            };
            let out = summa_spgemm(&grid, &mut gpus, &a, &a, &cfg);
            (out.phases, out.estimate.is_some(), out.timers.get("mem_estimation") > 0.0)
        });
        for (phases, has_est, timed) in results {
            assert!(phases > 1, "small budget must force multiple phases");
            assert!(has_est);
            assert!(timed);
        }
    }

    #[test]
    fn on_slab_hook_sees_every_phase() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_global(20, 150, 7);
            let a = DistMatrix::from_global(&grid, &g);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let cfg = SummaConfig { phases: PhasePlan::Fixed(3), ..base_cfg() };
            let mut seen = Vec::new();
            let out = summa_spgemm_with(&grid, &mut gpus, &a, &a, &cfg, |ph, slab| {
                seen.push(ph);
                slab
            });
            (seen, out.phases)
        });
        for (seen, phases) in results {
            assert_eq!(phases, 3);
            assert_eq!(seen, vec![0, 1, 2]);
        }
    }

    #[test]
    fn pipelined_overlap_beats_bulk_synchronous() {
        // Dense enough that kernels dominate; overall time with overlap
        // must be below the no-overlap run (Table II's effect).
        let elapsed = |pipelined: bool| {
            let results = Universe::run(4, MachineModel::summit(), move |comm| {
                let grid = ProcGrid::new(comm);
                let g = random_global(120, 7000, 8);
                let a = DistMatrix::from_global(&grid, &g);
                let mut gpus = MultiGpu::summit_node(grid.world.model());
                let cfg = SummaConfig {
                    phases: PhasePlan::Fixed(2),
                    policy: SelectionPolicy::always_gpu(),
                    merge: MergeStrategy::Binary,
                    pipelined,
                    seed: 2,
                };
                let _ = summa_spgemm(&grid, &mut gpus, &a, &a, &cfg);
                grid.world.now()
            });
            results.into_iter().fold(0.0f64, f64::max)
        };
        let with = elapsed(true);
        let without = elapsed(false);
        assert!(with < without, "pipelined {with} must beat bulk-sync {without}");
    }

    #[test]
    fn timers_cover_expected_stages() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_global(30, 300, 9);
            let a = DistMatrix::from_global(&grid, &g);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let out = summa_spgemm(&grid, &mut gpus, &a, &a, &base_cfg());
            (
                out.timers.get("local_spgemm") > 0.0,
                out.timers.get("summa_bcast") > 0.0,
                out.timers.get("merge") >= 0.0,
                out.kernels_used.len(),
            )
        });
        for (sp, bc, mg, kernels) in results {
            assert!(sp && bc && mg);
            assert!(kernels >= 1);
        }
    }
}
