//! Distributed `C = A · B`: Sparse SUMMA and Pipelined Sparse SUMMA (§III).
//!
//! The plain algorithm (original HipMCL) is bulk synchronous: in stage `k`
//! of `√P`, `A_{ik}` is broadcast along grid rows and `B_{kj}` along grid
//! columns, each rank multiplies locally on the CPU, and all intermediate
//! products are merged at the end with one multiway merge.
//!
//! The pipelined variant makes the local multiplications asynchronous and
//! exploits two overlaps (Fig. 2):
//!
//! 1. **Broadcast/compute** — the host regains control as soon as stage
//!    `k`'s inputs are handed to the executor, so the stage `k+1`
//!    broadcasts proceed while stage `k` multiplies.
//! 2. **Merge/compute** — the stage `k−1` intermediate product is merged
//!    on the CPU (binary merge, §IV) while stage `k` computes; only the
//!    first broadcast and the final merge cannot be hidden.
//!
//! This module holds the configuration and entry points; the stage loop
//! itself lives in [`crate::pipeline`] and submits every kernel — GPU
//! *and* CPU — to the configured [`Executor`] (see [`crate::executor`]).
//! Execution is real (the returned distributed product is validated
//! against single-process kernels); the stage timers, CPU idle and device
//! idle times come from the virtual clocks and executor timelines.

use crate::distmat::DistMatrix;
use crate::estimate::{
    estimate_memory_in, plan_phases, plan_phases_overlap, EstimatorKind, MemoryEstimate,
    OverlapInputs, PhaseDecision, PhasePlanner,
};
use crate::executor::{
    CpuPool, Executor, ExecutorKind, GpuExecutor, Hybrid, InvalidSplit, StealPolicy,
};
use crate::merge::{MergeKernelPolicy, MergeSpan, MergeStats, MergeStrategy};
use crate::pipeline::{self, PipelineOutcome};
use hipmcl_comm::clock::StageTimers;
use hipmcl_comm::{
    CommMode, CommStats, GpuLib, MergeKernel, ProcGrid, SpgemmKernel, TimeModel, TransportKind,
};
use hipmcl_gpu::multi::MultiGpu;
use hipmcl_gpu::select::SelectionPolicy;
use hipmcl_sparse::{Csc, Dcsc, PlusTimes, Semiring, Value};

/// How the number of SUMMA phases is chosen.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PhasePlan {
    /// Fixed phase count.
    Fixed(usize),
    /// Run a memory estimator and derive the phase count from a per-rank
    /// byte budget (§V).
    Auto {
        /// Which estimator to run.
        estimator: EstimatorKind,
        /// Unpruned-output bytes each rank may hold at once.
        per_rank_budget: u64,
    },
}

/// How each SUMMA stage's operand panels are communicated (§III-B).
///
/// The classical collective is a binomial-tree broadcast: `⌈lg √P⌉`
/// rounds, each moving the whole panel. For small panels the `⌈lg √P⌉·α`
/// latency term dominates and the root sending `√P − 1` flat
/// point-to-point copies (one `α`, serialized bandwidth) is cheaper; the
/// crossover sits at `b* = α·(⌈lg p⌉ − 1) / (β·(p − 1 − ⌈lg p⌉))` —
/// `α/β` at `p = 4` — wherever [`flat_bcast_time`] undercuts
/// [`tree_bcast_time`].
///
/// [`flat_bcast_time`]: hipmcl_comm::MachineModel::flat_bcast_time
/// [`tree_bcast_time`]: hipmcl_comm::MachineModel::tree_bcast_time
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CommPolicy {
    /// Always the binomial-tree broadcast — original HipMCL's collective.
    /// Bit-exact on the virtual clock with the pre-refactor pipeline.
    Broadcast,
    /// Price tree-broadcast vs flat point-to-point per stage panel and
    /// take the cheaper. An 8-byte panel-size header is tree-broadcast
    /// first so every rank evaluates the model on the same byte count and
    /// agrees on the mode without extra negotiation.
    #[default]
    Hybrid,
}

impl CommPolicy {
    /// Short lowercase name for logs and benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            CommPolicy::Broadcast => "broadcast",
            CommPolicy::Hybrid => "hybrid",
        }
    }
}

/// The communication record of one stage operand panel: what was moved,
/// which mode the policy chose, and what the model priced both modes at.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommChoice {
    /// SUMMA phase the stage belongs to.
    pub phase: usize,
    /// Stage index within the phase (`0..√P`).
    pub stage: usize,
    /// `'A'` for the row-panel broadcast, `'B'` for the column panel.
    pub operand: char,
    /// Wire bytes of the panel (DCSC representation).
    pub bytes: usize,
    /// The mode actually used ([`CommMode::Broadcast`] = tree,
    /// [`CommMode::Gather`] = flat point-to-point).
    pub mode: CommMode,
    /// Modeled tree-broadcast time for this panel.
    pub t_tree: f64,
    /// Modeled flat point-to-point time for this panel.
    pub t_flat: f64,
}

impl CommChoice {
    /// Modeled time of the mode that was chosen.
    pub fn chosen_time(&self) -> f64 {
        match self.mode {
            CommMode::Broadcast => self.t_tree,
            CommMode::Gather => self.t_flat,
        }
    }
}

/// Configuration of one distributed multiplication.
#[derive(Clone, Copy, Debug)]
pub struct SummaConfig {
    /// Phase selection.
    pub phases: PhasePlan,
    /// How `Auto` phase planning picks within the memory-feasible phase
    /// counts (memory floor only, or overlap-aware search above it).
    pub planner: PhasePlanner,
    /// CPU/GPU kernel selection thresholds.
    pub policy: SelectionPolicy,
    /// Merging scheme for the stage intermediates.
    pub merge: MergeStrategy,
    /// How each individual merge operation's kernel is chosen (the
    /// model-cost `Auto` rule, or a fixed kernel for ablations).
    pub merge_kernel: MergeKernelPolicy,
    /// Overlap local multiplications with broadcasts and merging (§III).
    /// Without it the host waits for every kernel's output (bulk
    /// synchronous, like original HipMCL even when kernels run on GPU).
    pub pipelined: bool,
    /// Where local multiplications execute (devices, CPU worker pool, or
    /// a hybrid column split across both).
    pub executor: ExecutorKind,
    /// Whether an idle merge lane may steal a task pinned to another lane
    /// when the modeled steal-time (cross-socket penalty included) beats
    /// waiting. Never changes results, only the virtual schedule.
    pub steal: StealPolicy,
    /// How stage operand panels are communicated (tree broadcast always,
    /// or the per-stage modeled broadcast/gather choice). Never changes
    /// numeric results, only the virtual comm schedule.
    pub comm: CommPolicy,
    /// Seed for the per-stage Cohen probes driving kernel selection.
    pub seed: u64,
}

impl SummaConfig {
    /// Original HipMCL: CPU heap kernels, multiway merge, exact symbolic
    /// estimation, no pipelining.
    pub fn original_hipmcl(per_rank_budget: u64) -> Self {
        Self {
            phases: PhasePlan::Auto {
                estimator: EstimatorKind::ExactSymbolic,
                per_rank_budget,
            },
            planner: PhasePlanner::MemoryOnly,
            policy: SelectionPolicy::original_heap(),
            merge: MergeStrategy::Multiway,
            merge_kernel: MergeKernelPolicy::Fixed(MergeKernel::Heap),
            pipelined: false,
            executor: ExecutorKind::Gpus,
            steal: StealPolicy::Off,
            comm: CommPolicy::Broadcast,
            seed: 0,
        }
    }

    /// The paper's optimized HipMCL *without* overlap (Fig. 1 middle bar):
    /// GPU kernels and the probabilistic estimator, but bulk synchronous
    /// with multiway merging.
    pub fn optimized_no_overlap(per_rank_budget: u64) -> Self {
        Self {
            phases: PhasePlan::Auto {
                estimator: EstimatorKind::Hybrid {
                    r: 5,
                    cf_threshold: 2.0,
                },
                per_rank_budget,
            },
            planner: PhasePlanner::MemoryOnly,
            policy: SelectionPolicy::always_gpu(),
            merge: MergeStrategy::Multiway,
            merge_kernel: MergeKernelPolicy::Fixed(MergeKernel::Heap),
            pipelined: false,
            executor: ExecutorKind::Gpus,
            steal: StealPolicy::Off,
            comm: CommPolicy::Hybrid,
            seed: 0,
        }
    }

    /// The fully optimized HipMCL (Fig. 1 right bar): Pipelined Sparse
    /// SUMMA with binary merge.
    pub fn optimized(per_rank_budget: u64) -> Self {
        Self {
            phases: PhasePlan::Auto {
                estimator: EstimatorKind::Hybrid {
                    r: 5,
                    cf_threshold: 2.0,
                },
                per_rank_budget,
            },
            planner: PhasePlanner::MemoryOnly,
            policy: SelectionPolicy::always_gpu(),
            merge: MergeStrategy::Binary,
            merge_kernel: MergeKernelPolicy::Auto,
            pipelined: true,
            executor: ExecutorKind::Gpus,
            steal: StealPolicy::CostAware,
            comm: CommPolicy::Hybrid,
            seed: 0,
        }
    }

    /// Optimized HipMCL on nodes without accelerators: CPU kernels become
    /// asynchronous launches on the per-rank worker pool, so the §III
    /// broadcast/merge overlap applies without any GPU.
    pub fn cpu_pipelined(per_rank_budget: u64) -> Self {
        Self {
            policy: SelectionPolicy::cpu_only(),
            executor: ExecutorKind::CpuPool,
            ..Self::optimized(per_rank_budget)
        }
    }

    /// Checks the configuration for values that would misbehave at run
    /// time: a fixed hybrid split outside `[0, 1]`, or an overlap-aware
    /// planner with a degenerate search headroom. Entry points call this
    /// and panic with the error's message; callers that accept untrusted
    /// configuration should call it themselves first.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.executor.validate()?;
        self.steal.validate()?;
        if let PhasePlanner::OverlapAware { max_extra_phases } = self.planner {
            if max_extra_phases == 0 || max_extra_phases > 64 {
                return Err(ConfigError::Planner { max_extra_phases });
            }
        }
        Ok(())
    }
}

/// Error returned by [`SummaConfig::validate`] (and `MclConfig`'s, which
/// delegates here).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfigError {
    /// A fixed hybrid split fraction outside `[0, 1]`.
    Split(InvalidSplit),
    /// An overlap-aware planner whose search headroom is useless (0) or
    /// unreasonably wide (> 64 phases past the memory floor).
    Planner {
        /// The offending headroom.
        max_extra_phases: usize,
    },
    /// An active-set shrinking parameter out of range (reported through
    /// `MclConfig::validate`, which owns the policy).
    ActiveSet(crate::active::InvalidActiveSet),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Split(e) => e.fmt(f),
            ConfigError::Planner { max_extra_phases } => write!(
                f,
                "overlap-aware planner headroom must lie in 1..=64 phases, got {max_extra_phases}"
            ),
            ConfigError::ActiveSet(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<InvalidSplit> for ConfigError {
    fn from(e: InvalidSplit) -> Self {
        ConfigError::Split(e)
    }
}

impl From<crate::active::InvalidActiveSet> for ConfigError {
    fn from(e: crate::active::InvalidActiveSet) -> Self {
        ConfigError::ActiveSet(e)
    }
}

/// Result of a distributed multiplication on one rank.
///
/// Generic over the element type; `SummaOutput` with no parameter is the
/// plus-times `f64` output the MCL driver consumes.
pub struct SummaOutput<T: Value = f64> {
    /// This rank's block of `C` (post any per-phase hook).
    pub c: DistMatrix<T>,
    /// Virtual-time stage breakdown (`local_spgemm`, `summa_bcast`,
    /// `merge`, `mem_estimation`, `other`).
    pub timers: StageTimers,
    /// Merge statistics (peak elements feed Table III).
    pub merge_stats: MergeStats,
    /// Every merge operation's timeline span — start/end on its merge
    /// lane, chosen kernel, fan-in, elements — in submission order. The
    /// merge-side counterpart of
    /// [`hybrid_fractions`](Self::hybrid_fractions).
    pub merge_spans: Vec<MergeSpan>,
    /// Host idle time spent waiting on launch events (Table V, CPU).
    pub cpu_idle: f64,
    /// Device/worker idle time off the executor's timelines (Table V,
    /// GPU column; the pool's idle for CPU-only executors).
    pub gpu_idle: f64,
    /// Idle accumulated on the executor's merge lanes. Dedicated lanes
    /// (GPU executor) are disjoint from [`gpu_idle`](Self::gpu_idle);
    /// pool-backed executors share worker timelines with SpGEMM, so this
    /// overlaps the pool's share of `gpu_idle`.
    pub merge_lane_idle: f64,
    /// What the phase planner decided (candidates scored, memory floor),
    /// when `PhasePlan::Auto` ran with the overlap-aware planner.
    pub planner_decision: Option<PhaseDecision>,
    /// The memory estimate, when `PhasePlan::Auto` ran.
    pub estimate: Option<MemoryEstimate>,
    /// Number of phases executed.
    pub phases: usize,
    /// Kernels chosen per (phase, stage), for instrumentation; always
    /// `phases × √P` entries (zero-flops stages record the selector's
    /// degenerate choice).
    pub kernels_used: Vec<SpgemmKernel>,
    /// Realized GPU share of every hybrid submission, in submission order
    /// (0 for multiplications that ran entirely on the worker pool; empty
    /// for non-hybrid executors). The observable trace of the
    /// [`SplitPolicy`](crate::executor::SplitPolicy) decisions.
    pub hybrid_fractions: Vec<f64>,
    /// Per-stage communication record: two entries per executed stage
    /// (operand `A` then `B`), with the panel bytes, chosen mode and the
    /// model's price for both modes. Under [`CommPolicy::Broadcast`]
    /// every entry's mode is `Broadcast`.
    pub comm_choices: Vec<CommChoice>,
    /// Which transport moved the panels (in-process channels or the
    /// `process-shm` byte rings).
    pub transport: TransportKind,
    /// Which time model the run used. The modeled clock is authoritative
    /// either way; `Measured` additionally fills the wall-clock rollups
    /// below.
    pub time: TimeModel,
    /// Wall-clock counterpart of [`timers`](Self::timers): real host
    /// seconds per stage, sampled only under [`TimeModel::Measured`]
    /// (all durations are `0.0` under `Modeled`, which never reads the
    /// host clock).
    pub timers_measured: StageTimers,
    /// This multiply's communication-counter delta on the world
    /// communicator: messages, bytes, the modeled α–β receive wait, and
    /// — under `Measured` — the wall seconds the rank actually spent
    /// blocked in `recv`.
    pub comm_stats: CommStats,
}

impl<T: Value> SummaOutput<T> {
    /// Modeled communication time of the stage panels as actually moved —
    /// the sum of each [`CommChoice`]'s chosen-mode price.
    pub fn modeled_comm_time(&self) -> f64 {
        self.comm_choices.iter().map(|c| c.chosen_time()).sum()
    }

    /// Modeled communication time had every panel used the tree
    /// broadcast — the [`CommPolicy::Broadcast`] baseline over the same
    /// panels. `modeled_comm_time() <= modeled_comm_time_broadcast()`
    /// whenever the per-panel choice is the model's argmin.
    pub fn modeled_comm_time_broadcast(&self) -> f64 {
        self.comm_choices.iter().map(|c| c.t_tree).sum()
    }

    /// Modeled α–β seconds this rank's clock idled inside `recv` during
    /// the multiply — the receiver-side rollup of the same virtual time
    /// [`modeled_comm_time`](Self::modeled_comm_time) prices sender-side.
    pub fn modeled_comm_wait(&self) -> f64 {
        self.comm_stats.modeled_comm_s
    }

    /// Wall seconds this rank actually spent blocked in `recv` during
    /// the multiply. Only meaningful under [`TimeModel::Measured`];
    /// exactly `0.0` under `Modeled`.
    pub fn measured_comm_time(&self) -> f64 {
        self.comm_stats.measured_comm_s
    }
}

/// Distributed `C = A·B` with the identity per-phase hook.
pub fn summa_spgemm(
    grid: &ProcGrid,
    gpus: &mut MultiGpu,
    a: &DistMatrix,
    b: &DistMatrix,
    cfg: &SummaConfig,
) -> SummaOutput {
    summa_spgemm_with(grid, gpus, a, b, cfg, |_, c| c)
}

/// Distributed `C = A ⊕.⊗ B` over an arbitrary semiring, identity hook.
///
/// The semiring-generic twin of [`summa_spgemm`]: the same Pipelined
/// Sparse SUMMA machinery (phase planning, executor scheduling, merge
/// engine, per-stage comm selection) instantiated at `S` — min-plus for
/// shortest paths, boolean for reachability, plus-times for MCL.
pub fn summa_spgemm_in<S: Semiring>(
    s: S,
    grid: &ProcGrid,
    gpus: &mut MultiGpu,
    a: &DistMatrix<S::Elem>,
    b: &DistMatrix<S::Elem>,
    cfg: &SummaConfig,
) -> SummaOutput<S::Elem> {
    summa_spgemm_with_in(s, grid, gpus, a, b, cfg, |_, c| c)
}

/// Runs the pipeline with idle accounting bracketed around it: timelines
/// reset first (the gap between the previous expansion's last kernel and
/// this one's first is not pipeline idle — Table V measures idleness
/// *within* the Pipelined Sparse SUMMA), device idle read as a delta
/// after.
#[allow(clippy::too_many_arguments)]
fn run_on<S, F>(
    s: S,
    grid: &ProcGrid,
    exec: &mut dyn Executor<S>,
    a: &DistMatrix<S::Elem>,
    b: &DistMatrix<S::Elem>,
    cfg: &SummaConfig,
    phases: usize,
    cf_hint: Option<f64>,
    timers: &mut StageTimers,
    on_slab: F,
) -> (PipelineOutcome<S::Elem>, f64, f64)
where
    S: Semiring,
    F: FnMut(usize, Csc<S::Elem>) -> Csc<S::Elem>,
{
    exec.reset_timelines();
    let idle0 = exec.device_idle();
    let lane_idle0 = exec.merge_lane_idle();
    let outcome = pipeline::run(s, grid, exec, a, b, cfg, phases, cf_hint, timers, on_slab);
    let device_idle = exec.device_idle() - idle0;
    let merge_lane_idle = exec.merge_lane_idle() - lane_idle0;
    (outcome, device_idle, merge_lane_idle)
}

/// Distributed `C = A·B` with a per-phase output hook.
///
/// `on_slab(phase, slab)` receives each phase's merged (unpruned) output
/// slab and returns what should be kept — the MCL driver prunes here, so
/// the full unpruned matrix never exists at once (the fused
/// expansion+pruning of §II). The hook's virtual cost must be charged by
/// the caller (the driver charges the pruning stage).
pub fn summa_spgemm_with<F>(
    grid: &ProcGrid,
    gpus: &mut MultiGpu,
    a: &DistMatrix,
    b: &DistMatrix,
    cfg: &SummaConfig,
    on_slab: F,
) -> SummaOutput
where
    F: FnMut(usize, Csc<f64>) -> Csc<f64>,
{
    summa_spgemm_with_in(PlusTimes::<f64>::new(), grid, gpus, a, b, cfg, on_slab)
}

/// Distributed `C = A ⊕.⊗ B` over an arbitrary semiring with a per-phase
/// output hook — the generic engine behind every other entry point.
pub fn summa_spgemm_with_in<S, F>(
    s: S,
    grid: &ProcGrid,
    gpus: &mut MultiGpu,
    a: &DistMatrix<S::Elem>,
    b: &DistMatrix<S::Elem>,
    cfg: &SummaConfig,
    on_slab: F,
) -> SummaOutput<S::Elem>
where
    S: Semiring,
    F: FnMut(usize, Csc<S::Elem>) -> Csc<S::Elem>,
{
    assert_eq!(
        a.ncols_global, b.nrows_global,
        "global inner dims must agree"
    );
    cfg.validate()
        .unwrap_or_else(|e| panic!("invalid SummaConfig: {e}"));
    let comm = &grid.world;
    let mut timers = StageTimers::new();
    let stats_before = comm.stats();
    let mut est_measured = 0.0f64;

    // Phase planning (memory estimation + optional overlap search).
    let (phases, estimate, planner_decision) = match cfg.phases {
        PhasePlan::Fixed(h) => (h.max(1), None, None),
        PhasePlan::Auto {
            estimator,
            per_rank_budget,
        } => {
            let t0 = comm.now();
            let w0 = comm.measured_now();
            let est = estimate_memory_in(s, grid, a, b, estimator, cfg.seed);
            timers.add("mem_estimation", comm.now() - t0);
            est_measured = comm.measured_now() - w0;
            match cfg.planner {
                PhasePlanner::MemoryOnly => (
                    plan_phases(&est, grid.size(), per_rank_budget),
                    Some(est),
                    None,
                ),
                PhasePlanner::OverlapAware { max_extra_phases } => {
                    // Feed the overlap model the workload's shape: wire
                    // bytes of the blocks this rank re-broadcasts, its
                    // flop share, the estimator's cf, and the kernel the
                    // selector is expected to pick.
                    let cf = if est.nnz_estimate > 0.0 {
                        (est.flops as f64 / est.nnz_estimate).max(1.0)
                    } else {
                        1.0
                    };
                    let gpu_capable = !gpus.is_empty()
                        && cfg.policy.gpu_flops_threshold < u64::MAX
                        && cfg.executor != ExecutorKind::CpuPool;
                    let inputs = OverlapInputs {
                        side: grid.side,
                        flops_per_rank: est.flops / grid.size().max(1) as u64,
                        bytes_a: Dcsc::from_csc(&a.local).bytes(),
                        bytes_b: Dcsc::from_csc(&b.local).bytes(),
                        cf,
                        kernel: if gpu_capable {
                            SpgemmKernel::Gpu(GpuLib::Nsparse)
                        } else {
                            SpgemmKernel::CpuHash
                        },
                        pipelined: cfg.pipelined,
                    };
                    let decision = plan_phases_overlap(
                        &est,
                        grid.size(),
                        per_rank_budget,
                        comm.model(),
                        &inputs,
                        max_extra_phases,
                    );
                    (decision.phases, Some(est), Some(decision))
                }
            }
        }
    };

    // Kernel selection needs a cf estimate per local multiply. When the
    // phase planner ran an estimator, reuse its global cf (the paper's
    // recipe: the selection metrics come from the iteration's memory
    // estimation); only Fixed-phase runs pay for a per-stage Cohen probe.
    let cf_hint: Option<f64> = estimate.as_ref().map(|e| {
        if e.nnz_estimate > 0.0 {
            e.flops as f64 / e.nnz_estimate
        } else {
            1.0
        }
    });

    let (outcome, gpu_idle, merge_lane_idle, hybrid_fractions) = match cfg.executor {
        ExecutorKind::Gpus => {
            let mut exec = GpuExecutor::new(gpus, comm.model()).with_steal(cfg.steal);
            let (o, idle, lane_idle) = run_on(
                s,
                grid,
                &mut exec,
                a,
                b,
                cfg,
                phases,
                cf_hint,
                &mut timers,
                on_slab,
            );
            (o, idle, lane_idle, Vec::new())
        }
        ExecutorKind::CpuPool => {
            let mut pool = CpuPool::for_model(comm.model()).with_steal(cfg.steal);
            let (o, idle, lane_idle) = run_on(
                s,
                grid,
                &mut pool,
                a,
                b,
                cfg,
                phases,
                cf_hint,
                &mut timers,
                on_slab,
            );
            (o, idle, lane_idle, Vec::new())
        }
        ExecutorKind::Hybrid { split } => {
            let mut hybrid = Hybrid::for_model(gpus, split, comm.model()).with_steal(cfg.steal);
            let (o, idle, lane_idle) = run_on(
                s,
                grid,
                &mut hybrid,
                a,
                b,
                cfg,
                phases,
                cf_hint,
                &mut timers,
                on_slab,
            );
            let fractions = hybrid.fractions().to_vec();
            (o, idle, lane_idle, fractions)
        }
    };

    let PipelineOutcome {
        mut slabs,
        merge_stats,
        merge_spans,
        cpu_idle,
        kernels_used,
        comm_choices,
        mut timers_measured,
    } = outcome;
    timers_measured.add("mem_estimation", est_measured);
    let local = if slabs.len() == 1 {
        slabs.pop().unwrap()
    } else {
        Csc::hcat(&slabs)
    };

    SummaOutput {
        c: DistMatrix {
            local,
            nrows_global: a.nrows_global,
            ncols_global: b.ncols_global,
        },
        timers,
        merge_stats,
        merge_spans,
        cpu_idle,
        gpu_idle,
        merge_lane_idle,
        planner_decision,
        estimate,
        phases,
        kernels_used,
        hybrid_fractions,
        comm_choices,
        transport: comm.transport(),
        time: comm.time_model(),
        timers_measured,
        comm_stats: comm.stats().delta_since(&stats_before),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SplitPolicy;
    use hipmcl_comm::{MachineModel, Universe};
    use hipmcl_sparse::{Idx, Triples};
    use rand::{Rng, SeedableRng};

    fn random_global(n: usize, nnz: usize, seed: u64) -> Triples<f64> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut t = Triples::new(n, n);
        for _ in 0..nnz {
            t.push(
                rng.gen_range(0..n) as Idx,
                rng.gen_range(0..n) as Idx,
                rng.gen_range(0.5..1.5),
            );
        }
        t.sum_duplicates();
        t
    }

    fn serial_product(n: usize, nnz: usize, seed: u64) -> Csc<f64> {
        let g = Csc::from_triples(&random_global(n, nnz, seed));
        hipmcl_spgemm::hash::multiply(&g, &g)
    }

    fn run_config(n: usize, nnz: usize, seed: u64, p: usize, cfg: SummaConfig) -> Csc<f64> {
        let results = Universe::run(p, MachineModel::summit(), move |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_global(n, nnz, seed);
            let a = DistMatrix::from_global(&grid, &g);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let out = summa_spgemm(&grid, &mut gpus, &a, &a, &cfg);
            out.c.gather_to_root(&grid)
        });
        results.into_iter().next().unwrap().unwrap()
    }

    fn base_cfg() -> SummaConfig {
        SummaConfig {
            phases: PhasePlan::Fixed(1),
            planner: PhasePlanner::MemoryOnly,
            policy: SelectionPolicy::cpu_only(),
            merge: MergeStrategy::Multiway,
            merge_kernel: MergeKernelPolicy::Auto,
            pipelined: false,
            executor: ExecutorKind::Gpus,
            steal: StealPolicy::default(),
            comm: CommPolicy::Hybrid,
            seed: 7,
        }
    }

    #[test]
    fn plain_summa_matches_serial_product() {
        let want = serial_product(22, 140, 1);
        for p in [1usize, 4, 9] {
            let got = run_config(22, 140, 1, p, base_cfg());
            assert!(got.max_abs_diff(&want) < 1e-9, "p={p}");
            assert_eq!(got.nnz(), want.nnz(), "p={p}");
        }
    }

    #[test]
    fn phased_execution_matches() {
        let want = serial_product(25, 170, 2);
        for phases in [1usize, 2, 3, 5] {
            let cfg = SummaConfig {
                phases: PhasePlan::Fixed(phases),
                ..base_cfg()
            };
            let got = run_config(25, 170, 2, 4, cfg);
            assert!(got.max_abs_diff(&want) < 1e-9, "phases={phases}");
        }
    }

    #[test]
    fn binary_merge_matches_multiway() {
        let want = serial_product(24, 160, 3);
        let cfg = SummaConfig {
            merge: MergeStrategy::Binary,
            ..base_cfg()
        };
        let got = run_config(24, 160, 3, 9, cfg);
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn gpu_pipelined_matches() {
        let want = serial_product(26, 200, 4);
        let cfg = SummaConfig {
            policy: SelectionPolicy::always_gpu(),
            merge: MergeStrategy::Binary,
            pipelined: true,
            ..base_cfg()
        };
        let got = run_config(26, 200, 4, 4, cfg);
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn gpu_unpipelined_matches() {
        let want = serial_product(26, 200, 5);
        let cfg = SummaConfig {
            policy: SelectionPolicy::always_gpu(),
            ..base_cfg()
        };
        let got = run_config(26, 200, 5, 9, cfg);
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn cpu_pool_executor_matches() {
        let want = serial_product(27, 210, 10);
        for pipelined in [false, true] {
            let cfg = SummaConfig {
                executor: ExecutorKind::CpuPool,
                merge: MergeStrategy::Binary,
                pipelined,
                ..base_cfg()
            };
            let got = run_config(27, 210, 10, 4, cfg);
            assert!(got.max_abs_diff(&want) < 1e-9, "pipelined={pipelined}");
        }
    }

    #[test]
    fn hybrid_executor_matches() {
        let want = serial_product(28, 240, 11);
        let splits = [
            SplitPolicy::Fixed(0.0),
            SplitPolicy::Fixed(0.5),
            SplitPolicy::Fixed(0.85),
            SplitPolicy::Fixed(1.0),
            SplitPolicy::ModelDerived,
            SplitPolicy::Adaptive,
        ];
        for split in splits {
            let cfg = SummaConfig {
                executor: ExecutorKind::Hybrid { split },
                policy: SelectionPolicy::always_gpu(),
                merge: MergeStrategy::Binary,
                pipelined: true,
                ..base_cfg()
            };
            let got = run_config(28, 240, 11, 4, cfg);
            assert!(got.max_abs_diff(&want) < 1e-9, "split={split:?}");
        }
    }

    #[test]
    fn hybrid_fractions_recorded_per_stage() {
        for split in [SplitPolicy::Fixed(0.85), SplitPolicy::Adaptive] {
            let results = Universe::run(4, MachineModel::summit(), move |comm| {
                let grid = ProcGrid::new(comm);
                let g = random_global(28, 300, 13);
                let a = DistMatrix::from_global(&grid, &g);
                let mut gpus = MultiGpu::summit_node(grid.world.model());
                let cfg = SummaConfig {
                    executor: ExecutorKind::Hybrid { split },
                    policy: SelectionPolicy::always_gpu(),
                    merge: MergeStrategy::Binary,
                    pipelined: true,
                    ..base_cfg()
                };
                let out = summa_spgemm(&grid, &mut gpus, &a, &a, &cfg);
                (out.hybrid_fractions, out.kernels_used.len())
            });
            for (fracs, stages) in results {
                assert!(
                    fracs.len() <= stages,
                    "at most one split per stage (zero-flops stages skip)"
                );
                assert!(!fracs.is_empty(), "split={split:?}");
                assert!(
                    fracs.iter().all(|f| (0.0..=1.0).contains(f)),
                    "split={split:?}: {fracs:?}"
                );
            }
        }
    }

    #[test]
    fn non_hybrid_runs_record_no_fractions() {
        let results = Universe::run(1, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_global(20, 150, 14);
            let a = DistMatrix::from_global(&grid, &g);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let out = summa_spgemm(&grid, &mut gpus, &a, &a, &base_cfg());
            out.hybrid_fractions.len()
        });
        assert_eq!(results, vec![0]);
    }

    #[test]
    fn invalid_fixed_split_is_rejected_by_validation() {
        for bad in [-0.25, 1.25, f64::NAN] {
            let cfg = SummaConfig {
                executor: ExecutorKind::Hybrid {
                    split: SplitPolicy::Fixed(bad),
                },
                ..base_cfg()
            };
            assert!(cfg.validate().is_err(), "bad={bad}");
        }
        assert!(base_cfg().validate().is_ok());
        for ok in [0.0, 1.0] {
            let cfg = SummaConfig {
                executor: ExecutorKind::Hybrid {
                    split: SplitPolicy::Fixed(ok),
                },
                ..base_cfg()
            };
            assert!(cfg.validate().is_ok(), "ok={ok}");
        }
    }

    #[test]
    fn auto_phases_run_estimator() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_global(30, 400, 6);
            let a = DistMatrix::from_global(&grid, &g);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let cfg = SummaConfig {
                phases: PhasePlan::Auto {
                    estimator: EstimatorKind::Probabilistic { r: 5 },
                    per_rank_budget: 500, // small budget forces phases
                },
                policy: SelectionPolicy::cpu_only(),
                merge: MergeStrategy::Multiway,
                seed: 1,
                ..base_cfg()
            };
            let out = summa_spgemm(&grid, &mut gpus, &a, &a, &cfg);
            (
                out.phases,
                out.estimate.is_some(),
                out.timers.get("mem_estimation") > 0.0,
            )
        });
        for (phases, has_est, timed) in results {
            assert!(phases > 1, "small budget must force multiple phases");
            assert!(has_est);
            assert!(timed);
        }
    }

    #[test]
    fn on_slab_hook_sees_every_phase() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_global(20, 150, 7);
            let a = DistMatrix::from_global(&grid, &g);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let cfg = SummaConfig {
                phases: PhasePlan::Fixed(3),
                ..base_cfg()
            };
            let mut seen = Vec::new();
            let out = summa_spgemm_with(&grid, &mut gpus, &a, &a, &cfg, |ph, slab| {
                seen.push(ph);
                slab
            });
            (seen, out.phases)
        });
        for (seen, phases) in results {
            assert_eq!(phases, 3);
            assert_eq!(seen, vec![0, 1, 2]);
        }
    }

    /// Max over ranks of the final virtual clock for one configuration.
    fn elapsed(n: usize, nnz: usize, seed: u64, cfg: SummaConfig) -> f64 {
        let results = Universe::run(4, MachineModel::summit(), move |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_global(n, nnz, seed);
            let a = DistMatrix::from_global(&grid, &g);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let _ = summa_spgemm(&grid, &mut gpus, &a, &a, &cfg);
            grid.world.now()
        });
        results.into_iter().fold(0.0f64, f64::max)
    }

    #[test]
    fn pipelined_overlap_beats_bulk_synchronous() {
        // Dense enough that kernels dominate; overall time with overlap
        // must be below the no-overlap run (Table II's effect).
        let run = |pipelined: bool| {
            let cfg = SummaConfig {
                phases: PhasePlan::Fixed(2),
                policy: SelectionPolicy::always_gpu(),
                merge: MergeStrategy::Binary,
                pipelined,
                seed: 2,
                ..base_cfg()
            };
            elapsed(120, 7000, 8, cfg)
        };
        let with = run(true);
        let without = run(false);
        assert!(
            with < without,
            "pipelined {with} must beat bulk-sync {without}"
        );
    }

    #[test]
    fn cpu_only_pipelined_beats_bulk_synchronous() {
        // The new capability: with the worker-pool executor, the same
        // overlap shows up without any GPU (Table II's effect on
        // accelerator-less nodes).
        let run = |pipelined: bool| {
            let cfg = SummaConfig {
                phases: PhasePlan::Fixed(2),
                policy: SelectionPolicy::cpu_only(),
                merge: MergeStrategy::Binary,
                pipelined,
                executor: ExecutorKind::CpuPool,
                seed: 2,
                ..base_cfg()
            };
            elapsed(120, 7000, 8, cfg)
        };
        let with = run(true);
        let without = run(false);
        assert!(
            with < without,
            "cpu pipelined {with} must beat bulk-sync {without}"
        );
    }

    #[test]
    fn kernels_used_counts_every_stage() {
        // Sparse enough that some stage blocks are empty (zero flops):
        // the fast path must still record an entry, keeping the count at
        // phases × √P on every rank.
        for (nnz, phases) in [(30usize, 2usize), (200, 3)] {
            let results = Universe::run(9, MachineModel::summit(), move |comm| {
                let grid = ProcGrid::new(comm);
                let g = random_global(21, nnz, 12);
                let a = DistMatrix::from_global(&grid, &g);
                let mut gpus = MultiGpu::summit_node(grid.world.model());
                let cfg = SummaConfig {
                    phases: PhasePlan::Fixed(phases),
                    ..base_cfg()
                };
                let out = summa_spgemm(&grid, &mut gpus, &a, &a, &cfg);
                (out.kernels_used.len(), out.phases, grid.side)
            });
            for (kernels, ph, side) in results {
                assert_eq!(kernels, ph * side, "nnz={nnz} phases={ph}");
            }
        }
    }

    #[test]
    fn idle_times_are_nonnegative_across_configs() {
        // Property-style sweep over executors, overlap modes and seeds:
        // Table V's idle quantities must never go negative.
        let execs = [
            ExecutorKind::Gpus,
            ExecutorKind::CpuPool,
            ExecutorKind::Hybrid {
                split: SplitPolicy::Fixed(0.7),
            },
            ExecutorKind::Hybrid {
                split: SplitPolicy::Adaptive,
            },
        ];
        for exec in execs {
            for pipelined in [false, true] {
                for seed in [1u64, 9, 23] {
                    let results = Universe::run(4, MachineModel::summit(), move |comm| {
                        let grid = ProcGrid::new(comm);
                        let g = random_global(30, 350, seed);
                        let a = DistMatrix::from_global(&grid, &g);
                        let mut gpus = MultiGpu::summit_node(grid.world.model());
                        let cfg = SummaConfig {
                            policy: SelectionPolicy::always_gpu(),
                            merge: MergeStrategy::Binary,
                            pipelined,
                            executor: exec,
                            ..base_cfg()
                        };
                        let out = summa_spgemm(&grid, &mut gpus, &a, &a, &cfg);
                        (out.cpu_idle, out.gpu_idle)
                    });
                    for (cpu, gpu) in results {
                        assert!(cpu >= 0.0, "{exec:?} pipelined={pipelined} seed={seed}");
                        assert!(gpu >= 0.0, "{exec:?} pipelined={pipelined} seed={seed}");
                    }
                }
            }
        }
    }

    #[test]
    fn merge_kernel_policy_never_changes_the_product() {
        let want = serial_product(26, 220, 15);
        let policies = [
            MergeKernelPolicy::Auto,
            MergeKernelPolicy::Fixed(MergeKernel::Heap),
            MergeKernelPolicy::Fixed(MergeKernel::Pairwise),
            MergeKernelPolicy::Fixed(MergeKernel::Hash),
        ];
        for merge_kernel in policies {
            for merge in [MergeStrategy::Multiway, MergeStrategy::Binary] {
                let cfg = SummaConfig {
                    merge,
                    merge_kernel,
                    pipelined: true,
                    ..base_cfg()
                };
                let got = run_config(26, 220, 15, 9, cfg);
                assert!(got.max_abs_diff(&want) < 1e-9, "{merge_kernel:?} {merge:?}");
                assert_eq!(got.nnz(), want.nnz(), "{merge_kernel:?} {merge:?}");
            }
        }
    }

    /// A global matrix whose mass is concentrated in a few dense columns:
    /// the per-stage slabs (and hence the Algorithm 2 merge stack) are
    /// heavily skewed, so under pinning one merge lane backlogs while the
    /// other starves — the workload of the ISSUE's lane-starvation audit.
    fn skewed_global(n: usize, seed: u64) -> Triples<f64> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut t = Triples::new(n, n);
        for j in 0..n {
            // Columns 0..4 are nearly dense; the rest carry two entries.
            let entries = if j < 4 { n - 2 } else { 2 };
            for _ in 0..entries {
                t.push(
                    rng.gen_range(0..n) as Idx,
                    j as Idx,
                    rng.gen_range(0.5..1.5),
                );
            }
        }
        t.sum_duplicates();
        t
    }

    #[test]
    fn merge_spans_reconcile_with_lane_timelines() {
        // The acceptance property: no merge charges time outside the
        // unified timelines, under either steal policy and on both a
        // balanced and a lane-starved skewed workload. Per rank, the
        // spans' durations must sum to the recorded merge time, the span
        // count must equal merge_ops, the peak must be the largest span,
        // and the per-lane gaps reconstructed from the spans must equal
        // the executor's reported merge-lane idle (Timeline semantics:
        // a leading gap — and a lane with zero tasks — counts as zero, so
        // starved lanes add no phantom idle and steals none double).
        for steal in StealPolicy::all() {
            for skewed in [false, true] {
                let results = Universe::run(4, MachineModel::summit(), move |comm| {
                    let grid = ProcGrid::new(comm);
                    let g = if skewed {
                        skewed_global(40, 16)
                    } else {
                        random_global(40, 600, 16)
                    };
                    let a = DistMatrix::from_global(&grid, &g);
                    let mut gpus = MultiGpu::summit_node(grid.world.model());
                    let cfg = SummaConfig {
                        phases: PhasePlan::Fixed(2),
                        policy: SelectionPolicy::always_gpu(),
                        merge: MergeStrategy::Binary,
                        pipelined: true,
                        steal,
                        ..base_cfg()
                    };
                    let out = summa_spgemm(&grid, &mut gpus, &a, &a, &cfg);
                    (
                        out.merge_spans,
                        out.merge_stats,
                        out.merge_lane_idle,
                        grid.world.model().sockets,
                    )
                });
                for (spans, stats, lane_idle, sockets) in results {
                    assert!(!spans.is_empty());
                    assert_eq!(spans.len(), stats.merge_ops);
                    let dur_sum: f64 = spans.iter().map(|s| s.duration()).sum();
                    assert!(
                        (dur_sum - stats.merge_time).abs() < 1e-9,
                        "span durations {dur_sum} vs merge_time {}",
                        stats.merge_time
                    );
                    let peak = spans.iter().map(|s| s.elems).max().unwrap();
                    assert_eq!(peak as usize, stats.peak_merge_elems);
                    for s in &spans {
                        assert_eq!(
                            s.stolen,
                            s.lane != s.origin,
                            "stolen flag must match lane vs origin"
                        );
                        if steal == StealPolicy::Off {
                            assert!(!s.stolen, "pinning never steals");
                        }
                    }
                    // Rebuild each lane's idle from its spans alone.
                    let mut rebuilt = 0.0;
                    for lane in 0..sockets {
                        let mut on_lane: Vec<_> = spans.iter().filter(|s| s.lane == lane).collect();
                        on_lane.sort_by(|x, y| x.start.partial_cmp(&y.start).unwrap());
                        for pair in on_lane.windows(2) {
                            rebuilt += (pair[1].start - pair[0].end).max(0.0);
                        }
                    }
                    assert!(
                        (rebuilt - lane_idle).abs() < 1e-9,
                        "steal={steal:?} skewed={skewed}: lane gaps {rebuilt} \
                         vs reported idle {lane_idle}"
                    );
                }
            }
        }
    }

    #[test]
    fn steal_policy_never_changes_the_product() {
        // The tentpole's bit-identity gate at the SUMMA level: stealing
        // moves merges between lanes on the virtual clock but never
        // touches operands, so the distributed product is unchanged.
        let want = serial_product(26, 220, 17);
        for steal in StealPolicy::all() {
            let cfg = SummaConfig {
                merge: MergeStrategy::Binary,
                pipelined: true,
                steal,
                ..base_cfg()
            };
            let got = run_config(26, 220, 17, 9, cfg);
            assert!(got.max_abs_diff(&want) < 1e-9, "{steal:?}");
            assert_eq!(got.nnz(), want.nnz(), "{steal:?}");
        }
    }

    #[test]
    fn overlap_planner_runs_and_respects_the_memory_floor() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_global(30, 400, 6);
            let a = DistMatrix::from_global(&grid, &g);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let cfg = SummaConfig {
                phases: PhasePlan::Auto {
                    estimator: EstimatorKind::Probabilistic { r: 5 },
                    per_rank_budget: 500,
                },
                planner: PhasePlanner::OverlapAware {
                    max_extra_phases: 4,
                },
                merge: MergeStrategy::Binary,
                pipelined: true,
                seed: 1,
                ..base_cfg()
            };
            let out = summa_spgemm(&grid, &mut gpus, &a, &a, &cfg);
            (out.phases, out.planner_decision)
        });
        for (phases, decision) in results {
            let d = decision.expect("overlap planner records its decision");
            assert_eq!(d.phases, phases);
            assert!(d.phases >= d.memory_floor);
            assert_eq!(d.scores.len(), 5, "floor..=floor+4 scored");
        }
    }

    #[test]
    fn memory_only_planner_records_no_decision() {
        let results = Universe::run(1, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_global(20, 150, 14);
            let a = DistMatrix::from_global(&grid, &g);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let cfg = SummaConfig {
                phases: PhasePlan::Auto {
                    estimator: EstimatorKind::Probabilistic { r: 5 },
                    per_rank_budget: 1 << 30,
                },
                ..base_cfg()
            };
            let out = summa_spgemm(&grid, &mut gpus, &a, &a, &cfg);
            (out.planner_decision.is_none(), out.merge_lane_idle >= 0.0)
        });
        for (no_decision, lane_ok) in results {
            assert!(no_decision && lane_ok);
        }
    }

    #[test]
    fn validate_rejects_degenerate_planner_headroom() {
        for bad in [0usize, 65] {
            let cfg = SummaConfig {
                planner: PhasePlanner::OverlapAware {
                    max_extra_phases: bad,
                },
                ..base_cfg()
            };
            let err = cfg.validate().unwrap_err();
            assert_eq!(
                err,
                ConfigError::Planner {
                    max_extra_phases: bad
                }
            );
            assert!(format!("{err}").contains("1..=64"));
        }
        let ok = SummaConfig {
            planner: PhasePlanner::OverlapAware {
                max_extra_phases: 64,
            },
            ..base_cfg()
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn comm_policy_never_changes_the_product() {
        let want = serial_product(26, 220, 19);
        for comm in [CommPolicy::Broadcast, CommPolicy::Hybrid] {
            for p in [4usize, 9] {
                let cfg = SummaConfig {
                    merge: MergeStrategy::Binary,
                    pipelined: true,
                    comm,
                    ..base_cfg()
                };
                let got = run_config(26, 220, 19, p, cfg);
                assert!(got.max_abs_diff(&want) < 1e-9, "{comm:?} p={p}");
                assert_eq!(got.nnz(), want.nnz(), "{comm:?} p={p}");
            }
        }
    }

    #[test]
    fn comm_choices_record_every_stage_panel() {
        for comm in [CommPolicy::Broadcast, CommPolicy::Hybrid] {
            let results = Universe::run(4, MachineModel::summit(), move |comm_| {
                let grid = ProcGrid::new(comm_);
                let g = random_global(28, 300, 20);
                let a = DistMatrix::from_global(&grid, &g);
                let mut gpus = MultiGpu::summit_node(grid.world.model());
                let cfg = SummaConfig {
                    phases: PhasePlan::Fixed(2),
                    comm,
                    ..base_cfg()
                };
                let out = summa_spgemm(&grid, &mut gpus, &a, &a, &cfg);
                (out.comm_choices, out.phases, grid.side)
            });
            for (choices, phases, side) in results {
                // Two operand panels per executed stage.
                assert_eq!(choices.len(), 2 * phases * side, "{comm:?}");
                for c in &choices {
                    assert!(c.phase < phases && c.stage < side);
                    assert!(c.operand == 'A' || c.operand == 'B');
                    assert!(c.t_tree > 0.0 && c.t_flat > 0.0);
                    if comm == CommPolicy::Broadcast {
                        assert_eq!(c.mode, CommMode::Broadcast, "{c:?}");
                    } else {
                        // Hybrid takes the model's argmin for each panel.
                        let want = if c.t_flat <= c.t_tree {
                            CommMode::Gather
                        } else {
                            CommMode::Broadcast
                        };
                        assert_eq!(c.mode, want, "{c:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn hybrid_modeled_comm_never_exceeds_broadcast() {
        // The per-panel argmin makes the chosen-mode sum a lower bound on
        // the all-broadcast sum over the same panels. On a 4×4 grid the
        // row/col communicators have 4 ranks, where the flat/tree
        // crossover sits at b* = α/β ≈ 69 kB on Summit; this workload's
        // panels are far below it, so Hybrid picks flat sends and
        // strictly wins. (On a 2×2 grid both modes cost the same — one
        // round, one copy — so 16 ranks are needed to see a difference.)
        let results = Universe::run(16, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_global(40, 400, 21);
            let a = DistMatrix::from_global(&grid, &g);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let cfg = SummaConfig {
                phases: PhasePlan::Fixed(2),
                ..base_cfg()
            };
            let out = summa_spgemm(&grid, &mut gpus, &a, &a, &cfg);
            (
                out.modeled_comm_time(),
                out.modeled_comm_time_broadcast(),
                out.comm_choices.iter().any(|c| c.mode == CommMode::Gather),
            )
        });
        for (hybrid, bcast, any_gather) in results {
            assert!(hybrid <= bcast, "hybrid {hybrid} vs broadcast {bcast}");
            assert!(any_gather, "small panels must cross to flat sends");
            assert!(hybrid < bcast, "sub-crossover panels must strictly win");
        }
    }

    #[test]
    fn min_plus_summa_matches_serial_reference() {
        use hipmcl_sparse::MinPlus;
        let g = random_global(22, 160, 22);
        let gc = Csc::from_triples_in(MinPlus, &g);
        let want = hipmcl_spgemm::hash::multiply_in(MinPlus, &gc, &gc);
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_global(22, 160, 22);
            let a = DistMatrix::from_global_in(MinPlus, &grid, &g);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let cfg = SummaConfig {
                merge: MergeStrategy::Binary,
                pipelined: true,
                ..base_cfg()
            };
            let out = summa_spgemm_in(MinPlus, &grid, &mut gpus, &a, &a, &cfg);
            out.c.gather_to_root_in(MinPlus, &grid)
        });
        let got = results.into_iter().next().unwrap().unwrap();
        assert_eq!(got, want, "min-plus SUMMA must be bit-identical");
    }

    fn random_bool_global(n: usize, nnz: usize, seed: u64) -> Triples<bool> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut t = Triples::new(n, n);
        for _ in 0..nnz {
            t.push(rng.gen_range(0..n) as Idx, rng.gen_range(0..n) as Idx, true);
        }
        t.sum_duplicates_in(hipmcl_sparse::Boolean);
        t
    }

    #[test]
    fn boolean_summa_matches_serial_reference() {
        use hipmcl_sparse::Boolean;
        let g = random_bool_global(24, 180, 23);
        let gc = Csc::from_triples_in(Boolean, &g);
        let want = hipmcl_spgemm::hash::multiply_in(Boolean, &gc, &gc);
        let results = Universe::run(9, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_bool_global(24, 180, 23);
            let a = DistMatrix::from_global_in(Boolean, &grid, &g);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let out = summa_spgemm_in(Boolean, &grid, &mut gpus, &a, &a, &base_cfg());
            out.c.gather_to_root_in(Boolean, &grid)
        });
        let got = results.into_iter().next().unwrap().unwrap();
        assert_eq!(got, want, "boolean SUMMA must be bit-identical");
    }

    #[test]
    fn timers_cover_expected_stages() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_global(30, 300, 9);
            let a = DistMatrix::from_global(&grid, &g);
            let mut gpus = MultiGpu::summit_node(grid.world.model());
            let out = summa_spgemm(&grid, &mut gpus, &a, &a, &base_cfg());
            (
                out.timers.get("local_spgemm") > 0.0,
                out.timers.get("summa_bcast") > 0.0,
                out.timers.get("merge") >= 0.0,
                out.kernels_used.len(),
            )
        });
        for (sp, bc, mg, kernels) in results {
            assert!(sp && bc && mg);
            assert!(kernels >= 1);
        }
    }
}
