//! The kernel-execution layer: every local SpGEMM is an asynchronous
//! launch.
//!
//! The Pipelined Sparse SUMMA scheduler (`pipeline`) never cares *where* a
//! local multiplication runs — it submits the selected kernel to an
//! [`Executor`] and overlaps against the returned [`KernelLaunch`] events.
//! Three executors implement the trait:
//!
//! * [`MultiGpu`] — the paper's configuration (§III-A): GPU kernels run
//!   asynchronously on the devices (the host resumes after the input
//!   transfer), CPU-selected kernels run inline on the host, exactly as
//!   original HipMCL executes them.
//! * [`CpuPool`] — a per-rank worker pool (the rayon thread pool executes
//!   the real kernel) advancing its own [`Timeline`] like a device stream
//!   does, which makes CPU kernels overlappable: "optimized HipMCL on
//!   nodes without accelerators" gains the §III broadcast/merge overlap.
//! * [`Hybrid`] — extends §III-A's multi-GPU column split to the CPU: a
//!   [`SplitPolicy`]-chosen fraction of `B`'s columns is multiplied on the
//!   devices while the worker pool takes the trailing slab, and the output
//!   is a trivial `hcat`. The split is either a fixed constant, derived
//!   per stage from the machine model
//!   ([`MachineModel::hybrid_gpu_fraction`]), or adapted online by a
//!   damped [`SplitController`] reading the realized finish-time imbalance
//!   off the two sides' timelines.
//!
//! Merging is a first-class executor task, not a side activity: the
//! pipeline submits every merge operation as a [`MergeTask`] through
//! [`Executor::submit_merge`], and the executor queues it on a host-side
//! **merge lane** — one [`Timeline`] per socket of the machine model, so
//! a NUMA node merges at its per-socket rate and inputs produced on the
//! other socket pay the model's cross-socket penalty. On [`CpuPool`] (and
//! the pool half of [`Hybrid`]) the merge lanes *are* the worker
//! timelines, so merges genuinely contend with CPU-side SpGEMM for the
//! same cores; on [`GpuExecutor`] the lanes are dedicated host-side
//! timelines next to the device streams. Either way a merge's cost shows
//! up only as a [`MergeLaunch`] span on a lane — there is no private
//! merge clock anywhere.
//!
//! All timestamps are virtual seconds on the owning rank's clock; the
//! executors only read the clock value the scheduler passes in and never
//! advance it themselves — waiting (and therefore idle accounting) is the
//! scheduler's job.

use hipmcl_comm::{Event, MachineModel, MergeKernel, SpgemmKernel, TimeModel, Timeline};
use hipmcl_gpu::multi::MultiGpu;
use hipmcl_sparse::{Csc, PlusTimes, Semiring, Value};
use hipmcl_spgemm::CpuAlgo;

/// How the [`Hybrid`] executor chooses the GPU share of each column split.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SplitPolicy {
    /// The same fraction of `B`'s columns goes to the devices in every
    /// stage (the legacy behaviour; must lie in `[0, 1]` — see
    /// [`SplitPolicy::validate`]).
    Fixed(f64),
    /// Each stage's fraction comes from
    /// [`MachineModel::hybrid_gpu_fraction`], evaluated at the stage's
    /// exact `flops` and its estimated compression factor.
    ModelDerived,
    /// Model-derived initial fraction, then a damped online feedback
    /// update per stage from the realized CPU/GPU finish-time imbalance
    /// (see [`SplitController`]).
    Adaptive,
}

/// Error returned by [`SplitPolicy::validate`] for a [`SplitPolicy::Fixed`]
/// fraction outside `[0, 1]` (or not finite).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InvalidSplit {
    /// The offending fraction.
    pub fraction: f64,
}

impl std::fmt::Display for InvalidSplit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hybrid gpu fraction must be a finite value in [0, 1], got {}",
            self.fraction
        )
    }
}

impl std::error::Error for InvalidSplit {}

impl SplitPolicy {
    /// Checks that a [`SplitPolicy::Fixed`] fraction is a valid share.
    /// Out-of-range values are a configuration error (surfaced by
    /// `MclConfig`/[`SummaConfig`](crate::spgemm::SummaConfig) validation),
    /// never silently clamped.
    pub fn validate(self) -> Result<(), InvalidSplit> {
        match self {
            SplitPolicy::Fixed(f) if !f.is_finite() || !(0.0..=1.0).contains(&f) => {
                Err(InvalidSplit { fraction: f })
            }
            _ => Ok(()),
        }
    }
}

/// Whether an idle merge lane may steal a task pinned to another lane.
///
/// Under [`StealPolicy::Off`] every merge task pins to the least-busy lane
/// at submission time (the PR-3 behaviour): the pick looks only at lane
/// backlogs, so a task whose inputs are homed elsewhere — or one that
/// arrives after a short lane just freed up — can open an idle gap on one
/// socket while the other queues. [`StealPolicy::CostAware`] lets any lane
/// win the task, but only by the model's arithmetic: each candidate lane
/// is priced with [`MachineModel::merge_lane_time_with`] (which charges
/// `xsocket_penalty` for input elements homed on another socket), and the
/// task goes to the lane with the earliest modeled completion — so a steal
/// is taken exactly when paying the cross-socket penalty still beats
/// waiting for the home lane, and refused otherwise. Ties prefer the lane
/// that opens the smallest idle gap, then the lowest index, keeping the
/// schedule deterministic.
///
/// Stealing only moves *when and where* a task runs on the virtual clock —
/// never its operands — so results stay bit-identical across policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StealPolicy {
    /// Submission-time pinning to the least-busy lane (legacy).
    Off,
    /// Cost-aware stealing: any lane may take the task if its modeled
    /// completion (cross-socket penalty included) is earliest.
    #[default]
    CostAware,
}

impl StealPolicy {
    /// Validates the policy. Both variants are currently always valid;
    /// the hook exists so `MclConfig`/`SummaConfig` validation covers the
    /// steal dimension like every other scheduling knob.
    pub fn validate(self) -> Result<(), InvalidSplit> {
        Ok(())
    }

    /// Label used in probes and CSV output.
    pub fn name(self) -> &'static str {
        match self {
            StealPolicy::Off => "off",
            StealPolicy::CostAware => "cost-aware",
        }
    }

    /// Both policies, in display order.
    pub fn all() -> [StealPolicy; 2] {
        [StealPolicy::Off, StealPolicy::CostAware]
    }
}

/// Which executor a SUMMA run submits its local multiplications to.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum ExecutorKind {
    /// GPU kernels async on the devices, CPU kernels inline on the host
    /// (the paper's setup and the legacy behaviour).
    #[default]
    Gpus,
    /// Every kernel is an async launch on the per-rank CPU worker pool.
    CpuPool,
    /// Column-split each multiplication across the GPUs and the pool.
    Hybrid {
        /// How the per-stage GPU share is chosen.
        split: SplitPolicy,
    },
}

/// GPU share of the legacy fixed hybrid column split. Summit's six V100s
/// out-rate the host cores by a wide margin at high `cf` (Fig. 4), so the
/// pool only takes a sliver; kept as the baseline the adaptive policies
/// are measured against (`probe_hybrid_split`).
pub const DEFAULT_GPU_FRACTION: f64 = 0.85;

impl ExecutorKind {
    /// Hybrid execution with the adaptive split (the recommended default:
    /// model-derived start, online feedback thereafter).
    pub fn hybrid() -> Self {
        ExecutorKind::Hybrid {
            split: SplitPolicy::Adaptive,
        }
    }

    /// Hybrid execution with the legacy fixed split
    /// ([`DEFAULT_GPU_FRACTION`]).
    pub fn hybrid_fixed() -> Self {
        ExecutorKind::Hybrid {
            split: SplitPolicy::Fixed(DEFAULT_GPU_FRACTION),
        }
    }

    /// Validates the executor choice (currently: a `Fixed` hybrid split
    /// must lie in `[0, 1]`).
    pub fn validate(self) -> Result<(), InvalidSplit> {
        match self {
            ExecutorKind::Hybrid { split } => split.validate(),
            _ => Ok(()),
        }
    }
}

/// The scheduler-side description of one local multiplication, passed to
/// [`Executor::submit`].
#[derive(Clone, Copy, Debug)]
pub struct LaunchSpec {
    /// The pre-selected kernel.
    pub kernel: SpgemmKernel,
    /// Exact flop count the scheduler already derived for selection.
    pub flops: u64,
    /// Estimated compression factor `flops / nnz(C)` from the stage's
    /// Cohen probe (already clamped so `cf_est ≥ 1`); executors use it to
    /// evaluate the machine model's rate curves before the realized `cf`
    /// is known.
    pub cf_est: f64,
    /// The universe's time model. Executors key their timelines off the
    /// modeled clock either way; under [`TimeModel::Measured`] they
    /// additionally stamp each launch's real host compute with wall
    /// seconds ([`KernelLaunch::measured_s`]). Under
    /// [`TimeModel::Modeled`] the host clock is never read.
    pub time: TimeModel,
}

/// Starts a wall-clock sample iff `spec` was submitted under
/// [`TimeModel::Measured`] — the modeled path must never touch the host
/// clock, so the sample is the executor's only `Instant` read.
fn wall_start(spec: &LaunchSpec) -> Option<std::time::Instant> {
    spec.time.is_measured().then(std::time::Instant::now)
}

/// Seconds since a [`wall_start`] sample (`0.0` when none was taken).
fn wall_elapsed(w0: Option<std::time::Instant>) -> f64 {
    w0.map_or(0.0, |t| t.elapsed().as_secs_f64())
}

/// One asynchronous local multiplication, as seen by the scheduler.
///
/// The product is real (verified against serial kernels); the timestamps
/// are virtual. A pipelined scheduler resumes the host at
/// [`inputs_ready_at`](Self::inputs_ready_at); a bulk-synchronous one
/// waits for [`output_ready_at`](Self::output_ready_at) and counts only
/// `waited − host_compute` as idle (time the host spent computing inline
/// is work, not waiting).
#[derive(Debug)]
pub struct KernelLaunch<T: Value = f64> {
    /// The (real) product `A ⊗ B` in the submitted semiring.
    pub c: Csc<T>,
    /// The kernel that produced it.
    pub kernel: SpgemmKernel,
    /// Virtual time from which the host may issue the next stage's
    /// broadcasts (inputs handed off / transferred).
    pub inputs_ready_at: f64,
    /// Virtual time at which the output is on the host and mergeable.
    pub output_ready_at: f64,
    /// Host-synchronous compute folded into the launch (inline CPU
    /// kernels); never idle time.
    pub host_compute: f64,
    /// Seconds attributed to the `local_spgemm` stage timer.
    pub kernel_time: f64,
    /// Flops of the multiplication.
    pub flops: u64,
    /// Realized compression factor.
    pub cf: f64,
    /// Wall seconds the real kernel compute took on the host, sampled
    /// only when the launch was submitted under
    /// [`TimeModel::Measured`]; `0.0` under [`TimeModel::Modeled`],
    /// which never reads the host clock.
    pub measured_s: f64,
}

/// The scheduler-side description of one merge operation, passed to
/// [`Executor::submit_merge`]. The pipeline has already chosen the kernel
/// (see `merge::select_merge_kernel`); the executor only decides *where*
/// and *when* it runs.
#[derive(Clone, Debug)]
pub struct MergeTask {
    /// The pre-selected merge kernel.
    pub kernel: MergeKernel,
    /// Per input list: its element count and, if it was produced by an
    /// earlier merge, the lane (socket) that produced it — `None` for
    /// kernel products and anything else with no socket affinity. Inputs
    /// homed on a different socket than the lane the merge lands on are
    /// charged the model's cross-socket penalty.
    pub inputs: Vec<(u64, Option<usize>)>,
}

impl MergeTask {
    /// Fan-in of the merge.
    pub fn ways(&self) -> usize {
        self.inputs.len()
    }

    /// Total elements passing through the merge.
    pub fn total_elems(&self) -> u64 {
        self.inputs.iter().map(|&(e, _)| e).sum()
    }
}

/// One merge operation as scheduled on an executor merge lane — the
/// merge-side analogue of [`KernelLaunch`]. The real merging work is the
/// pipeline's (`merge::merge_algo`); this records only the span.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MergeLaunch {
    /// Virtual time the merge began executing on its lane (≥ the
    /// submission `ready_at`; later if the lane was still busy).
    pub started_at: f64,
    /// Virtual time the merged slab is available.
    pub output_ready_at: f64,
    /// Modeled duration, cross-socket penalty included.
    pub duration: f64,
    /// Index of the lane (socket) the merge occupied.
    pub lane: usize,
    /// The lane submission-time pinning ([`StealPolicy::Off`]) would have
    /// chosen — the task's origin queue.
    pub origin: usize,
    /// Whether another lane stole the task from its origin queue
    /// (`lane != origin`; only under [`StealPolicy::CostAware`]).
    pub stolen: bool,
}

/// Remote-homed input elements of `task` if it runs on `lane`.
fn remote_elems(task: &MergeTask, lane: usize) -> u64 {
    task.inputs
        .iter()
        .filter(|&&(_, home)| home.is_some_and(|s| s != lane))
        .map(|&(e, _)| e)
        .sum()
}

/// Places `task` on one of `lanes` per `policy` and returns the span.
///
/// The task conceptually lands in the queue of its *origin* lane — the
/// least-busy lane, which is where submission-time pinning would leave it.
/// Under [`StealPolicy::CostAware`] every lane then competes for the task:
/// lane `l` would finish it at `max(ready_at, busy_until(l)) + duration(l)`
/// where the duration prices remote-homed inputs at the model's
/// cross-socket penalty ([`MachineModel::merge_lane_time_with`]), and the
/// earliest modeled completion wins. A lane other than the origin winning
/// is a *steal*: it only happens when the thief's penalty-inclusive time
/// beats waiting in the origin's queue. Ties break toward the lane that
/// opens the smallest idle gap (`ready_at − busy_until`, zero for a lane
/// with no jobs yet, whose leading gap is not accounted idle), then the
/// lowest index — fully deterministic, like every other scheduling rule in
/// the simulator.
fn submit_merge_on(
    lanes: &mut [Timeline],
    model: &MachineModel,
    policy: StealPolicy,
    ready_at: f64,
    task: &MergeTask,
) -> MergeLaunch {
    let n = lanes.len();
    let dur_on = |lane: usize| {
        model.merge_lane_time_with(
            task.kernel,
            task.total_elems(),
            task.ways(),
            remote_elems(task, lane),
            n,
        )
    };
    let origin = lanes
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.busy_until().partial_cmp(&b.busy_until()).unwrap())
        .map(|(i, _)| i)
        .expect("executors always have at least one merge lane");
    let lane = match policy {
        StealPolicy::Off => origin,
        StealPolicy::CostAware => {
            let cost = |l: usize| {
                let end = lanes[l].busy_until().max(ready_at) + dur_on(l);
                let gap = if lanes[l].jobs() > 0 {
                    (ready_at - lanes[l].busy_until()).max(0.0)
                } else {
                    0.0
                };
                (end, gap)
            };
            (0..n)
                .min_by(|&i, &j| {
                    let (ei, gi) = cost(i);
                    let (ej, gj) = cost(j);
                    ei.partial_cmp(&ej)
                        .unwrap()
                        .then(gi.partial_cmp(&gj).unwrap())
                })
                .expect("executors always have at least one merge lane")
        }
    };
    let dur = dur_on(lane);
    let done = lanes[lane].submit(ready_at, dur);
    MergeLaunch {
        started_at: done.at - dur,
        output_ready_at: done.at,
        duration: dur,
        lane,
        origin,
        stolen: lane != origin,
    }
}

/// Sums the internal idle gaps of a set of lanes.
fn lanes_idle(lanes: &[Timeline]) -> f64 {
    lanes.iter().map(Timeline::idle_time).sum()
}

/// A target that local SpGEMM launches and merge operations are submitted
/// to.
///
/// The trait is generic over the [`Semiring`] the multiplications run in;
/// the default parameter keeps `dyn Executor` meaning the plus-times
/// `f64` executor the MCL driver uses. Every concrete executor implements
/// the trait for *all* semirings — scheduling (timelines, merge lanes,
/// split policies) is element-type-free, so the same scheduler instance
/// works for shortest paths exactly as it does for MCL.
pub trait Executor<S: Semiring = PlusTimes<f64>> {
    /// Submits `C = A ⊗ B` in semiring `s` as described by `spec`,
    /// starting at host virtual time `host_now`. Must not advance any
    /// rank clock — the scheduler decides what to wait on.
    fn submit(
        &mut self,
        s: S,
        model: &MachineModel,
        host_now: f64,
        a: &Csc<S::Elem>,
        b: &Csc<S::Elem>,
        spec: LaunchSpec,
    ) -> KernelLaunch<S::Elem>;

    /// Submits one merge operation, ready at virtual time `ready_at`
    /// (when its last input slab exists), onto a host-side merge lane.
    /// Like [`submit`](Self::submit), never advances a rank clock.
    fn submit_merge(
        &mut self,
        model: &MachineModel,
        ready_at: f64,
        task: &MergeTask,
    ) -> MergeLaunch;

    /// GPUs visible to kernel selection (0 keeps selection CPU-only).
    fn gpus_available(&self) -> usize;

    /// Accumulated device/worker idle time — the Table V "GPU idle"
    /// column, read uniformly off the executor's timelines.
    fn device_idle(&self) -> f64;

    /// Accumulated idle on the merge lanes. For [`GpuExecutor`] the lanes
    /// are dedicated (disjoint from [`device_idle`](Self::device_idle));
    /// for [`CpuPool`]-backed executors the lanes are the shared worker
    /// timelines, so this overlaps the pool's share of `device_idle`.
    fn merge_lane_idle(&self) -> f64;

    /// Number of merge lanes (per-socket [`Timeline`]s) merges can be
    /// placed on. The pipeline sizes its per-lane
    /// [`ArenaPool`](crate::merge::ArenaPool) from this, so every lane's
    /// merges recycle buffers out of a lane-homed
    /// [`MergeArena`](crate::merge::MergeArena).
    fn merge_lane_count(&self) -> usize;

    /// Resets all internal timelines (between pipeline sections).
    fn reset_timelines(&mut self);
}

/// The CPU algorithm behind a CPU-side kernel selection.
fn cpu_algo(kernel: SpgemmKernel) -> CpuAlgo {
    match kernel {
        SpgemmKernel::CpuHeap => CpuAlgo::Heap,
        SpgemmKernel::CpuSpa => CpuAlgo::Spa,
        _ => CpuAlgo::Hash,
    }
}

/// The paper's configuration (§III-A) behind the [`Executor`] contract:
/// GPU kernels run asynchronously on the wrapped devices, CPU-selected
/// kernels run inline on the host, and merges queue on dedicated
/// host-side merge lanes — one [`Timeline`] per socket of the machine
/// model, disjoint from the device streams, so
/// [`merge_lane_idle`](Executor::merge_lane_idle) reconciles exactly with
/// the gaps between the recorded merge spans.
pub struct GpuExecutor<'g> {
    gpus: &'g mut MultiGpu,
    lanes: Vec<Timeline>,
    steal: StealPolicy,
}

impl<'g> GpuExecutor<'g> {
    /// Wraps the rank's devices; merge lanes are sized to the model's
    /// socket count.
    pub fn new(gpus: &'g mut MultiGpu, model: &MachineModel) -> Self {
        let lanes = (0..model.sockets.max(1)).map(|_| Timeline::new()).collect();
        Self {
            gpus,
            lanes,
            steal: StealPolicy::default(),
        }
    }

    /// Sets the merge-lane steal policy (default
    /// [`StealPolicy::CostAware`]).
    pub fn with_steal(mut self, steal: StealPolicy) -> Self {
        self.steal = steal;
        self
    }

    /// The host-side merge lanes (one per socket).
    pub fn merge_lanes(&self) -> &[Timeline] {
        &self.lanes
    }

    /// Places a merge on a host-side lane (see [`Executor::submit_merge`]).
    /// Inherent so callers with a concrete executor need not name a
    /// semiring — merge scheduling is element-type-free.
    pub fn submit_merge(
        &mut self,
        model: &MachineModel,
        ready_at: f64,
        task: &MergeTask,
    ) -> MergeLaunch {
        submit_merge_on(&mut self.lanes, model, self.steal, ready_at, task)
    }

    /// GPUs visible to kernel selection (see [`Executor::gpus_available`]).
    pub fn gpus_available(&self) -> usize {
        self.gpus.len()
    }

    /// Accumulated device idle (see [`Executor::device_idle`]).
    pub fn device_idle(&self) -> f64 {
        self.gpus.total_idle()
    }

    /// Accumulated merge-lane idle (see [`Executor::merge_lane_idle`]).
    pub fn merge_lane_idle(&self) -> f64 {
        lanes_idle(&self.lanes)
    }

    /// Number of dedicated merge lanes (see
    /// [`Executor::merge_lane_count`]).
    pub fn merge_lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Resets all internal timelines (see [`Executor::reset_timelines`]).
    pub fn reset_timelines(&mut self) {
        self.gpus.reset_timelines();
        for lane in &mut self.lanes {
            lane.reset();
        }
    }
}

impl<S: Semiring> Executor<S> for GpuExecutor<'_> {
    fn submit(
        &mut self,
        s: S,
        model: &MachineModel,
        host_now: f64,
        a: &Csc<S::Elem>,
        b: &Csc<S::Elem>,
        spec: LaunchSpec,
    ) -> KernelLaunch<S::Elem> {
        let w0 = wall_start(&spec);
        match spec.kernel {
            SpgemmKernel::Gpu(lib) => match self.gpus.multiply_in(s, host_now, a, b, lib) {
                Ok(r) => KernelLaunch {
                    c: r.c,
                    kernel: spec.kernel,
                    inputs_ready_at: r.inputs_transferred_at,
                    output_ready_at: r.output_ready_at,
                    host_compute: 0.0,
                    kernel_time: r.output_ready_at - r.inputs_transferred_at,
                    flops: r.flops,
                    cf: r.cf,
                    measured_s: wall_elapsed(w0),
                },
                // The devices cannot take this phase (out of memory): a
                // busy or undersized engine degrades the launch to the
                // host hash kernel instead of killing the rank. The
                // modeled clock charges the CPU duration, so the slowdown
                // shows up in reports rather than vanishing.
                Err(e) => {
                    eprintln!(
                        "gpu launch degraded to CpuHash: {e} (increase phases or use a CPU \
                         policy to avoid the fallback)"
                    );
                    let (c, cf) =
                        cpu_algo(SpgemmKernel::CpuHash).multiply_measured_in(s, a, b, spec.flops);
                    let dur = model.spgemm_time(SpgemmKernel::CpuHash, spec.flops, cf);
                    KernelLaunch {
                        c,
                        kernel: SpgemmKernel::CpuHash,
                        inputs_ready_at: host_now + dur,
                        output_ready_at: host_now + dur,
                        host_compute: dur,
                        kernel_time: dur,
                        flops: spec.flops,
                        cf,
                        measured_s: wall_elapsed(w0),
                    }
                }
            },
            cpu_kernel => {
                // Inline on the host, as original HipMCL runs CPU kernels:
                // the host is busy (not idle) for the whole duration and
                // cannot issue the next broadcast meanwhile.
                let (c, cf) = cpu_algo(cpu_kernel).multiply_measured_in(s, a, b, spec.flops);
                let dur = model.spgemm_time(cpu_kernel, spec.flops, cf);
                KernelLaunch {
                    c,
                    kernel: cpu_kernel,
                    inputs_ready_at: host_now + dur,
                    output_ready_at: host_now + dur,
                    host_compute: dur,
                    kernel_time: dur,
                    flops: spec.flops,
                    cf,
                    measured_s: wall_elapsed(w0),
                }
            }
        }
    }

    fn submit_merge(
        &mut self,
        model: &MachineModel,
        ready_at: f64,
        task: &MergeTask,
    ) -> MergeLaunch {
        GpuExecutor::submit_merge(self, model, ready_at, task)
    }

    fn gpus_available(&self) -> usize {
        GpuExecutor::gpus_available(self)
    }

    fn device_idle(&self) -> f64 {
        GpuExecutor::device_idle(self)
    }

    fn merge_lane_idle(&self) -> f64 {
        GpuExecutor::merge_lane_idle(self)
    }

    fn merge_lane_count(&self) -> usize {
        GpuExecutor::merge_lane_count(self)
    }

    fn reset_timelines(&mut self) {
        GpuExecutor::reset_timelines(self)
    }
}

/// A per-rank CPU worker pool with a device-like virtual timeline.
///
/// The real kernel executes through rayon (the kernels themselves are
/// row-parallel); the modeled duration comes from the machine model's
/// whole-node CPU rate, queued FIFO on the pool's [`Timeline`]. Handing a
/// job to the pool is free for the host — that is what makes a CPU-only
/// configuration pipelinable.
///
/// # Example
///
/// Two launches submitted back-to-back queue FIFO; a launch that only
/// becomes ready after the previous one finished leaves a measurable idle
/// gap on the pool's timeline (the Table V "GPU idle" analogue for
/// accelerator-less nodes):
///
/// ```
/// use hipmcl_comm::{MachineModel, SpgemmKernel, TimeModel};
/// use hipmcl_sparse::PlusTimes;
/// use hipmcl_summa::executor::{CpuPool, Executor, LaunchSpec};
/// use hipmcl_spgemm::testutil::random_csc;
///
/// let model = MachineModel::summit();
/// let a = random_csc(20, 20, 120, 7);
/// let spec = LaunchSpec {
///     kernel: SpgemmKernel::CpuHash,
///     flops: hipmcl_spgemm::flops(&a, &a),
///     cf_est: 1.0,
///     time: TimeModel::Modeled,
/// };
///
/// let mut pool = CpuPool::new();
/// let pt = PlusTimes::<f64>::new();
/// let l1 = pool.submit(pt, &model, 0.0, &a, &a, spec);
/// assert_eq!(l1.inputs_ready_at, 0.0, "handoff is free for the host");
///
/// // Ready 1 s after the first launch completed: the pool sat idle in
/// // between, and the gap is exactly what `device_idle` reports.
/// let l2 = pool.submit(pt, &model, l1.output_ready_at + 1.0, &a, &a, spec);
/// assert!(l2.output_ready_at > l1.output_ready_at);
/// assert!((pool.device_idle() - 1.0).abs() < 1e-9);
/// ```
///
/// # NUMA lanes
///
/// [`CpuPool::for_model`] sizes the pool from the machine model's node
/// topology — one lane (a [`Timeline`]) per socket, `model.threads`
/// workers overall — instead of a flat process-wide constant. A
/// whole-node SpGEMM occupies **every** lane (the kernels are
/// row-parallel across all cores); a merge occupies **one** lane at the
/// per-socket rate, so merges genuinely contend with SpGEMM for the same
/// cores and two merges can run socket-parallel. Merge inputs homed on
/// the other socket pay the model's cross-socket penalty.
pub struct CpuPool {
    threads: usize,
    lanes: Vec<Timeline>,
    steal: StealPolicy,
}

impl Default for CpuPool {
    fn default() -> Self {
        Self::new()
    }
}

impl CpuPool {
    /// A single-lane pool sized to the rayon thread pool of this process
    /// (no NUMA structure — the legacy shape, kept for direct use).
    pub fn new() -> Self {
        Self {
            threads: rayon::current_num_threads().max(1),
            lanes: vec![Timeline::new()],
            steal: StealPolicy::default(),
        }
    }

    /// A pool sized from the machine model's node topology: one lane per
    /// socket, `model.threads` workers.
    pub fn for_model(model: &MachineModel) -> Self {
        Self {
            threads: model.threads.max(1),
            lanes: (0..model.sockets.max(1)).map(|_| Timeline::new()).collect(),
            steal: StealPolicy::default(),
        }
    }

    /// Sets the merge-lane steal policy (default
    /// [`StealPolicy::CostAware`]).
    pub fn with_steal(mut self, steal: StealPolicy) -> Self {
        self.steal = steal;
        self
    }

    /// Worker threads backing the pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The pool's first lane (jobs queued, idle gaps) — the whole pool
    /// for a single-lane [`CpuPool::new`].
    pub fn timeline(&self) -> &Timeline {
        &self.lanes[0]
    }

    /// All worker lanes (one per socket).
    pub fn lanes(&self) -> &[Timeline] {
        &self.lanes
    }

    /// Queues a whole-node job (all lanes busy for `dur`, the machine
    /// model's whole-node rate already being baked into `dur`); returns
    /// the completion event, which is the slowest lane's.
    fn node_job(&mut self, ready: f64, dur: f64) -> Event {
        self.lanes
            .iter_mut()
            .map(|lane| lane.submit(ready, dur))
            .max_by(|a, b| a.at.partial_cmp(&b.at).unwrap())
            .expect("pool always has at least one lane")
    }

    /// Places a merge on a worker lane (see [`Executor::submit_merge`]).
    /// Inherent so callers with a concrete pool need not name a semiring.
    pub fn submit_merge(
        &mut self,
        model: &MachineModel,
        ready_at: f64,
        task: &MergeTask,
    ) -> MergeLaunch {
        submit_merge_on(&mut self.lanes, model, self.steal, ready_at, task)
    }

    /// GPUs visible to kernel selection — always 0 for a pure pool.
    pub fn gpus_available(&self) -> usize {
        0
    }

    /// Accumulated worker idle (see [`Executor::device_idle`]).
    pub fn device_idle(&self) -> f64 {
        lanes_idle(&self.lanes)
    }

    /// Accumulated merge-lane idle — the merge lanes *are* the shared
    /// worker timelines, so this equals [`CpuPool::device_idle`].
    pub fn merge_lane_idle(&self) -> f64 {
        self.device_idle()
    }

    /// Number of worker lanes merges can occupy (see
    /// [`Executor::merge_lane_count`]).
    pub fn merge_lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Resets all worker timelines (see [`Executor::reset_timelines`]).
    pub fn reset_timelines(&mut self) {
        for lane in &mut self.lanes {
            lane.reset();
        }
    }
}

impl<S: Semiring> Executor<S> for CpuPool {
    fn submit(
        &mut self,
        s: S,
        model: &MachineModel,
        host_now: f64,
        a: &Csc<S::Elem>,
        b: &Csc<S::Elem>,
        spec: LaunchSpec,
    ) -> KernelLaunch<S::Elem> {
        // Selection never yields a GPU kernel here (`gpus_available` is
        // 0); a forced GPU request degrades to the hash kernel.
        let cpu_kernel = match spec.kernel {
            SpgemmKernel::Gpu(_) => SpgemmKernel::CpuHash,
            k => k,
        };
        let w0 = wall_start(&spec);
        let (c, cf) = cpu_algo(cpu_kernel).multiply_measured_in(s, a, b, spec.flops);
        let dur = model.spgemm_time(cpu_kernel, spec.flops, cf);
        let done = self.node_job(host_now, dur);
        KernelLaunch {
            c,
            kernel: cpu_kernel,
            inputs_ready_at: host_now,
            output_ready_at: done.at,
            host_compute: 0.0,
            kernel_time: dur,
            flops: spec.flops,
            cf,
            measured_s: wall_elapsed(w0),
        }
    }

    fn submit_merge(
        &mut self,
        model: &MachineModel,
        ready_at: f64,
        task: &MergeTask,
    ) -> MergeLaunch {
        CpuPool::submit_merge(self, model, ready_at, task)
    }

    fn gpus_available(&self) -> usize {
        CpuPool::gpus_available(self)
    }

    fn device_idle(&self) -> f64 {
        CpuPool::device_idle(self)
    }

    fn merge_lane_idle(&self) -> f64 {
        // The merge lanes are the shared worker timelines.
        CpuPool::merge_lane_idle(self)
    }

    fn merge_lane_count(&self) -> usize {
        CpuPool::merge_lane_count(self)
    }

    fn reset_timelines(&mut self) {
        CpuPool::reset_timelines(self)
    }
}

/// Interior clamp of the adaptive fraction: both sides always keep a
/// sliver of work so the controller keeps receiving two-sided finish-time
/// observations (a share pinned at 0 or 1 could never measure the silent
/// side's rate again).
pub const ADAPTIVE_MIN_FRACTION: f64 = 0.05;
/// Upper interior clamp of the adaptive fraction (see
/// [`ADAPTIVE_MIN_FRACTION`]).
pub const ADAPTIVE_MAX_FRACTION: f64 = 0.95;
/// Default damping gain `γ` of the [`SplitController`] update.
pub const SPLIT_GAIN: f64 = 0.5;

/// Damped online feedback controller for [`SplitPolicy::Adaptive`].
///
/// After a stage splits its work `f : (1 − f)` between the devices and
/// the pool, the two sides' finish latencies `t_G` and `t_C` (virtual
/// seconds from submission to each side's completion event) imply
/// realized per-share rates `r_G = f / t_G` and `r_C = (1 − f) / t_C`.
/// The fraction that would have balanced the stage is
///
/// ```text
/// f* = r_G / (r_G + r_C)
/// ```
///
/// and the controller nudges the next stage's fraction toward it with a
/// damped, clamped update
///
/// ```text
/// f ← clamp(f + γ·(f* − f), ADAPTIVE_MIN_FRACTION, ADAPTIVE_MAX_FRACTION)
/// ```
///
/// With `γ ∈ (0, 1]` the fraction always stays in `[0, 1]`, and a
/// constant imbalance (fixed underlying rates) drives it monotonically
/// toward the balance point — the geometric convergence the property
/// tests below pin down.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SplitController {
    fraction: f64,
    gain: f64,
}

impl SplitController {
    /// A controller starting at `initial` (clamped into the interior
    /// band) with damping gain `gain` (clamped into `(0, 1]`).
    pub fn new(initial: f64, gain: f64) -> Self {
        Self {
            fraction: initial.clamp(ADAPTIVE_MIN_FRACTION, ADAPTIVE_MAX_FRACTION),
            gain: gain.clamp(f64::MIN_POSITIVE, 1.0),
        }
    }

    /// The fraction the next stage should use.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// Feeds back one stage's finish latencies: `gpu_time` for the device
    /// share, `cpu_time` for the pool share, both measured from the
    /// submission instant. Non-positive latencies (a side with no work)
    /// are skipped — there is no two-sided observation to learn from.
    pub fn observe(&mut self, gpu_time: f64, cpu_time: f64) {
        if !(gpu_time > 0.0 && cpu_time > 0.0) {
            return;
        }
        let f = self.fraction;
        let rg = f / gpu_time;
        let rc = (1.0 - f) / cpu_time;
        if rg + rc <= 0.0 || !(rg + rc).is_finite() {
            return;
        }
        let target = rg / (rg + rc);
        self.fraction =
            (f + self.gain * (target - f)).clamp(ADAPTIVE_MIN_FRACTION, ADAPTIVE_MAX_FRACTION);
    }
}

/// Joint CPU+GPU execution: each GPU-sized multiplication is column-split
/// between the devices (leading columns) and the worker pool (trailing
/// columns), extending §III-A's multi-GPU split by one more "device".
/// CPU-selected (small) multiplications go to the pool whole.
///
/// The per-stage GPU share follows the configured [`SplitPolicy`]; every
/// realized share is recorded (see [`Hybrid::fractions`]) so the split
/// decision is an observable part of the pipeline, not a hidden constant.
pub struct Hybrid<'g> {
    gpus: &'g mut MultiGpu,
    pool: CpuPool,
    policy: SplitPolicy,
    controller: Option<SplitController>,
    fractions: Vec<f64>,
}

impl<'g> Hybrid<'g> {
    /// Wraps the rank's devices with the given split policy.
    ///
    /// # Panics
    ///
    /// On a [`SplitPolicy::Fixed`] fraction outside `[0, 1]` — such values
    /// are a configuration error that `MclConfig`/`SummaConfig` validation
    /// reports before any executor is built; they are never clamped.
    pub fn new(gpus: &'g mut MultiGpu, split: SplitPolicy) -> Self {
        split
            .validate()
            .unwrap_or_else(|e| panic!("invalid hybrid split: {e}"));
        Self {
            gpus,
            pool: CpuPool::new(),
            policy: split,
            controller: None,
            fractions: Vec::new(),
        }
    }

    /// Like [`Hybrid::new`], but the pool side is sized from the machine
    /// model's node topology ([`CpuPool::for_model`]): NUMA merge lanes
    /// shared with the CPU slab of every column split.
    ///
    /// # Panics
    ///
    /// As [`Hybrid::new`], on an invalid [`SplitPolicy::Fixed`] fraction.
    pub fn for_model(gpus: &'g mut MultiGpu, split: SplitPolicy, model: &MachineModel) -> Self {
        let mut h = Self::new(gpus, split);
        h.pool = CpuPool::for_model(model);
        h
    }

    /// Sets the merge-lane steal policy of the pool side (default
    /// [`StealPolicy::CostAware`]); merges delegate to the pool's lanes.
    pub fn with_steal(mut self, steal: StealPolicy) -> Self {
        self.pool.steal = steal;
        self
    }

    /// The realized GPU share of every submission so far, in order (0 for
    /// multiplications that went to the pool whole).
    pub fn fractions(&self) -> &[f64] {
        &self.fractions
    }

    /// The GPU share the policy picks for this launch.
    fn pick_fraction(
        &mut self,
        model: &MachineModel,
        lib: hipmcl_comm::GpuLib,
        spec: &LaunchSpec,
    ) -> f64 {
        match self.policy {
            SplitPolicy::Fixed(f) => f,
            SplitPolicy::ModelDerived => model.hybrid_gpu_fraction(lib, spec.flops, spec.cf_est),
            SplitPolicy::Adaptive => self
                .controller
                .get_or_insert_with(|| {
                    SplitController::new(
                        model.hybrid_gpu_fraction(lib, spec.flops, spec.cf_est),
                        SPLIT_GAIN,
                    )
                })
                .fraction(),
        }
    }

    /// Places a merge on the pool's worker lanes (see
    /// [`Executor::submit_merge`]). Inherent so callers with a concrete
    /// executor need not name a semiring.
    pub fn submit_merge(
        &mut self,
        model: &MachineModel,
        ready_at: f64,
        task: &MergeTask,
    ) -> MergeLaunch {
        // Merges land on the pool's worker lanes, contending with the
        // CPU slabs of the column splits for the same cores.
        self.pool.submit_merge(model, ready_at, task)
    }

    /// GPUs visible to kernel selection (see [`Executor::gpus_available`]).
    pub fn gpus_available(&self) -> usize {
        self.gpus.len()
    }

    /// Accumulated device + worker idle (see [`Executor::device_idle`]).
    pub fn device_idle(&self) -> f64 {
        self.gpus.total_idle() + self.pool.device_idle()
    }

    /// Accumulated merge-lane idle (see [`Executor::merge_lane_idle`]).
    pub fn merge_lane_idle(&self) -> f64 {
        self.pool.merge_lane_idle()
    }

    /// Number of worker lanes merges can occupy (see
    /// [`Executor::merge_lane_count`]) — the delegated pool's.
    pub fn merge_lane_count(&self) -> usize {
        self.pool.merge_lane_count()
    }

    /// Resets all internal timelines (see [`Executor::reset_timelines`]).
    pub fn reset_timelines(&mut self) {
        self.gpus.reset_timelines();
        self.pool.reset_timelines();
    }
}

impl<S: Semiring> Executor<S> for Hybrid<'_> {
    fn submit(
        &mut self,
        s: S,
        model: &MachineModel,
        host_now: f64,
        a: &Csc<S::Elem>,
        b: &Csc<S::Elem>,
        spec: LaunchSpec,
    ) -> KernelLaunch<S::Elem> {
        let n = b.ncols();
        let lib = match spec.kernel {
            SpgemmKernel::Gpu(lib) if !self.gpus.is_empty() => lib,
            _ => {
                self.fractions.push(0.0);
                return self.pool.submit(s, model, host_now, a, b, spec);
            }
        };
        let frac = self.pick_fraction(model, lib, &spec);
        let gcols = ((n as f64 * frac).round() as usize).min(n);
        if gcols == 0 {
            self.fractions.push(0.0);
            return self.pool.submit(s, model, host_now, a, b, spec);
        }
        self.fractions.push(gcols as f64 / n.max(1) as f64);

        let w0 = wall_start(&spec);
        let b_gpu = b.column_slice(0..gcols);
        let r = match self.gpus.multiply_in(s, host_now, a, &b_gpu, lib) {
            Ok(r) => r,
            // Device out of memory: hand the whole multiply to the CPU
            // pool instead of panicking, and record that the GPU took
            // none of it so the adaptive fraction stays honest.
            Err(e) => {
                eprintln!(
                    "hybrid gpu side degraded to the cpu pool: {e} (increase phases or use \
                     a CPU policy to avoid the fallback)"
                );
                *self.fractions.last_mut().expect("fraction pushed above") = 0.0;
                return self.pool.submit(s, model, host_now, a, b, spec);
            }
        };

        let mut output_ready_at = r.output_ready_at;
        let mut total_flops = r.flops;
        let mut total_nnz = r.c.nnz() as u64;
        let c = if gcols < n {
            let b_cpu = b.column_slice(gcols..n);
            let flops_cpu = hipmcl_spgemm::flops(a, &b_cpu);
            let (c_cpu, cf_cpu) = CpuAlgo::Hash.multiply_measured_in(s, a, &b_cpu, flops_cpu);
            let dur = model.spgemm_time(SpgemmKernel::CpuHash, flops_cpu, cf_cpu);
            let done = self.pool.node_job(host_now, dur);
            output_ready_at = output_ready_at.max(done.at);
            total_flops += flops_cpu;
            total_nnz += c_cpu.nnz() as u64;
            // Online feedback: the two sides' finish latencies from this
            // submission instant are exactly the imbalance the adaptive
            // policy drives to zero.
            if let Some(ctl) = self.controller.as_mut() {
                ctl.observe(r.output_ready_at - host_now, done.at - host_now);
            }
            Csc::hcat(&[r.c, c_cpu])
        } else {
            r.c
        };
        debug_assert_eq!(total_flops, spec.flops, "split must cover all columns");

        let cf = if total_nnz == 0 {
            1.0
        } else {
            total_flops as f64 / total_nnz as f64
        };
        KernelLaunch {
            c,
            kernel: spec.kernel,
            // The host blocks on the GPU input transfers (the pool handoff
            // is free), exactly like the pure multi-GPU path.
            inputs_ready_at: r.inputs_transferred_at,
            output_ready_at,
            host_compute: 0.0,
            kernel_time: output_ready_at - r.inputs_transferred_at,
            flops: total_flops,
            cf,
            measured_s: wall_elapsed(w0),
        }
    }

    fn submit_merge(
        &mut self,
        model: &MachineModel,
        ready_at: f64,
        task: &MergeTask,
    ) -> MergeLaunch {
        Hybrid::submit_merge(self, model, ready_at, task)
    }

    fn gpus_available(&self) -> usize {
        Hybrid::gpus_available(self)
    }

    fn device_idle(&self) -> f64 {
        Hybrid::device_idle(self)
    }

    fn merge_lane_idle(&self) -> f64 {
        Hybrid::merge_lane_idle(self)
    }

    fn merge_lane_count(&self) -> usize {
        Hybrid::merge_lane_count(self)
    }

    fn reset_timelines(&mut self) {
        Hybrid::reset_timelines(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmcl_comm::GpuLib;
    use hipmcl_spgemm::testutil::random_csc;
    use proptest::prelude::*;

    fn model() -> MachineModel {
        MachineModel::summit()
    }

    fn pt() -> PlusTimes<f64> {
        PlusTimes::new()
    }

    fn want(a: &Csc<f64>) -> Csc<f64> {
        hipmcl_spgemm::hash::multiply(a, a)
    }

    fn spec_for(a: &Csc<f64>, kernel: SpgemmKernel) -> LaunchSpec {
        LaunchSpec {
            kernel,
            flops: hipmcl_spgemm::flops(a, a),
            cf_est: 1.0,
            time: TimeModel::Modeled,
        }
    }

    #[test]
    fn multigpu_executor_gpu_kernel_is_async() {
        let a = random_csc(30, 30, 260, 41);
        let mut gpus = MultiGpu::new(model(), 2, 1 << 30);
        let mut exec = GpuExecutor::new(&mut gpus, &model());
        let l = exec.submit(
            pt(),
            &model(),
            1.0,
            &a,
            &a,
            spec_for(&a, SpgemmKernel::Gpu(GpuLib::Nsparse)),
        );
        assert!(l.c.max_abs_diff(&want(&a)) < 1e-9);
        assert!(l.inputs_ready_at > 1.0);
        assert!(
            l.output_ready_at > l.inputs_ready_at,
            "kernel + D2H after transfer"
        );
        assert_eq!(l.host_compute, 0.0);
        assert!((l.kernel_time - (l.output_ready_at - l.inputs_ready_at)).abs() < 1e-12);
    }

    #[test]
    fn multigpu_executor_cpu_kernel_is_host_synchronous() {
        let a = random_csc(30, 30, 260, 42);
        let mut gpus = MultiGpu::new(model(), 2, 1 << 30);
        let mut exec = GpuExecutor::new(&mut gpus, &model());
        let l = exec.submit(
            pt(),
            &model(),
            1.0,
            &a,
            &a,
            spec_for(&a, SpgemmKernel::CpuHash),
        );
        assert!(l.c.max_abs_diff(&want(&a)) < 1e-9);
        assert_eq!(
            l.inputs_ready_at, l.output_ready_at,
            "host blocked for the whole kernel"
        );
        assert!(l.host_compute > 0.0);
        assert!((l.host_compute - (l.output_ready_at - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn gpu_oom_degrades_to_host_kernel_instead_of_panicking() {
        let a = random_csc(30, 30, 260, 45);
        // Devices far too small for the operands: every launch OOMs.
        let mut gpus = MultiGpu::new(model(), 2, 64);
        let mut exec = GpuExecutor::new(&mut gpus, &model());
        let l = exec.submit(
            pt(),
            &model(),
            1.0,
            &a,
            &a,
            spec_for(&a, SpgemmKernel::Gpu(GpuLib::Nsparse)),
        );
        assert!(l.c.max_abs_diff(&want(&a)) < 1e-9, "result still correct");
        assert_eq!(
            l.kernel,
            SpgemmKernel::CpuHash,
            "launch degraded to the host kernel"
        );
        assert!(l.host_compute > 0.0, "host pays for the fallback");
        assert_eq!(l.flops, hipmcl_spgemm::flops(&a, &a));
    }

    #[test]
    fn hybrid_oom_hands_the_whole_multiply_to_the_pool() {
        let a = random_csc(30, 30, 260, 46);
        let mut gpus = MultiGpu::new(model(), 2, 64);
        let mut h = Hybrid::new(&mut gpus, SplitPolicy::Fixed(0.5));
        let l = h.submit(
            pt(),
            &model(),
            1.0,
            &a,
            &a,
            spec_for(&a, SpgemmKernel::Gpu(GpuLib::Nsparse)),
        );
        assert!(l.c.max_abs_diff(&want(&a)) < 1e-9, "result still correct");
        assert_eq!(
            h.fractions(),
            &[0.0],
            "the realized GPU share records the fallback, not the intent"
        );
    }

    #[test]
    fn cpu_pool_launches_are_async_and_fifo() {
        let a = random_csc(30, 30, 260, 43);
        let mut pool = CpuPool::new();
        let l1 = pool.submit(
            pt(),
            &model(),
            1.0,
            &a,
            &a,
            spec_for(&a, SpgemmKernel::CpuHash),
        );
        assert!(l1.c.max_abs_diff(&want(&a)) < 1e-9);
        assert_eq!(
            l1.inputs_ready_at, 1.0,
            "handoff is free — host resumes at once"
        );
        assert!(l1.output_ready_at > 1.0);
        assert_eq!(l1.host_compute, 0.0);
        // Second job ready immediately queues behind the first.
        let l2 = pool.submit(
            pt(),
            &model(),
            1.0,
            &a,
            &a,
            spec_for(&a, SpgemmKernel::CpuHeap),
        );
        assert!(l2.output_ready_at > l1.output_ready_at);
        assert_eq!(pool.timeline().jobs(), 2);
        assert_eq!(pool.device_idle(), 0.0, "back-to-back jobs leave no gap");
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn cpu_pool_degrades_gpu_requests_to_hash() {
        let a = random_csc(20, 20, 120, 44);
        let mut pool = CpuPool::new();
        let l = pool.submit(
            pt(),
            &model(),
            0.0,
            &a,
            &a,
            spec_for(&a, SpgemmKernel::Gpu(GpuLib::Nsparse)),
        );
        assert_eq!(l.kernel, SpgemmKernel::CpuHash);
        assert!(l.c.max_abs_diff(&want(&a)) < 1e-9);
    }

    #[test]
    fn hybrid_splits_and_matches_reference() {
        let a = random_csc(40, 40, 500, 45);
        let w = want(&a);
        let policies = [
            SplitPolicy::Fixed(0.0),
            SplitPolicy::Fixed(0.3),
            SplitPolicy::Fixed(0.5),
            SplitPolicy::Fixed(0.85),
            SplitPolicy::Fixed(1.0),
            SplitPolicy::ModelDerived,
            SplitPolicy::Adaptive,
        ];
        for policy in policies {
            let mut gpus = MultiGpu::new(model(), 3, 1 << 30);
            let mut h = Hybrid::new(&mut gpus, policy);
            let l = h.submit(
                pt(),
                &model(),
                0.0,
                &a,
                &a,
                spec_for(&a, SpgemmKernel::Gpu(GpuLib::Nsparse)),
            );
            assert!(l.c.max_abs_diff(&w) < 1e-9, "{policy:?}");
            assert_eq!(l.c.nnz(), w.nnz(), "{policy:?}");
            assert_eq!(
                l.flops,
                spec_for(&a, SpgemmKernel::CpuHash).flops,
                "{policy:?}"
            );
            assert!(l.output_ready_at >= l.inputs_ready_at, "{policy:?}");
            assert_eq!(h.fractions().len(), 1, "{policy:?}");
            let f = h.fractions()[0];
            assert!((0.0..=1.0).contains(&f), "{policy:?}: {f}");
        }
    }

    #[test]
    fn hybrid_sends_cpu_kernels_to_the_pool() {
        let a = random_csc(25, 25, 180, 46);
        let mut gpus = MultiGpu::new(model(), 2, 1 << 30);
        let mut h = Hybrid::new(&mut gpus, SplitPolicy::Fixed(0.85));
        let l = h.submit(
            pt(),
            &model(),
            2.0,
            &a,
            &a,
            spec_for(&a, SpgemmKernel::CpuHeap),
        );
        assert!(l.c.max_abs_diff(&want(&a)) < 1e-9);
        assert_eq!(
            l.inputs_ready_at, 2.0,
            "pool handoff frees the host immediately"
        );
        assert_eq!(h.gpus_available(), 2);
        assert_eq!(h.fractions(), &[0.0], "whole multiply on the pool");
    }

    #[test]
    fn hybrid_without_devices_runs_entirely_on_pool() {
        let a = random_csc(20, 20, 140, 47);
        let mut gpus = MultiGpu::new(model(), 0, 1 << 30);
        let mut h = Hybrid::new(&mut gpus, SplitPolicy::Adaptive);
        let l = h.submit(
            pt(),
            &model(),
            0.0,
            &a,
            &a,
            spec_for(&a, SpgemmKernel::Gpu(GpuLib::Rmerge2)),
        );
        assert!(l.c.max_abs_diff(&want(&a)) < 1e-9);
        assert_eq!(l.kernel, SpgemmKernel::CpuHash);
    }

    #[test]
    #[should_panic(expected = "invalid hybrid split")]
    fn hybrid_rejects_fraction_above_one() {
        let mut gpus = MultiGpu::new(model(), 2, 1 << 30);
        let _ = Hybrid::new(&mut gpus, SplitPolicy::Fixed(1.5));
    }

    #[test]
    #[should_panic(expected = "invalid hybrid split")]
    fn hybrid_rejects_negative_fraction() {
        let mut gpus = MultiGpu::new(model(), 2, 1 << 30);
        let _ = Hybrid::new(&mut gpus, SplitPolicy::Fixed(-0.1));
    }

    #[test]
    fn split_policy_validation_accepts_bounds_rejects_outside() {
        assert!(SplitPolicy::Fixed(0.0).validate().is_ok());
        assert!(SplitPolicy::Fixed(1.0).validate().is_ok());
        assert!(SplitPolicy::ModelDerived.validate().is_ok());
        assert!(SplitPolicy::Adaptive.validate().is_ok());
        let below = SplitPolicy::Fixed(-1e-9).validate().unwrap_err();
        assert_eq!(below.fraction, -1e-9);
        let above = SplitPolicy::Fixed(1.0 + 1e-9).validate().unwrap_err();
        assert!(above.fraction > 1.0);
        assert!(SplitPolicy::Fixed(f64::NAN).validate().is_err());
        assert!(ExecutorKind::Hybrid {
            split: SplitPolicy::Fixed(2.0)
        }
        .validate()
        .is_err());
        assert!(ExecutorKind::Gpus.validate().is_ok());
        // The error is displayable (surfaced by MclConfig validation).
        let msg = format!("{}", above);
        assert!(msg.contains("[0, 1]"), "{msg}");
    }

    #[test]
    fn executor_kind_default_and_hybrid_presets() {
        assert_eq!(ExecutorKind::default(), ExecutorKind::Gpus);
        assert_eq!(
            ExecutorKind::hybrid(),
            ExecutorKind::Hybrid {
                split: SplitPolicy::Adaptive
            }
        );
        assert_eq!(
            ExecutorKind::hybrid_fixed(),
            ExecutorKind::Hybrid {
                split: SplitPolicy::Fixed(DEFAULT_GPU_FRACTION)
            }
        );
    }

    #[test]
    fn adaptive_converges_toward_balanced_finish_times() {
        // Repeated identical multiplications from a deliberately bad
        // initial fraction (the model seed already starts near balance):
        // the controller must walk toward the point where devices and pool
        // finish together, shrinking the finish-time gap.
        // Big enough that split work dwarfs the fixed launch/transfer
        // overheads — otherwise the gap floor is the overhead, not the
        // imbalance.
        let a = random_csc(300, 300, 24000, 49);
        let spec = spec_for(&a, SpgemmKernel::Gpu(GpuLib::Nsparse));
        let mut gpus = MultiGpu::new(model(), 6, 1 << 30);
        let mut h = Hybrid::new(&mut gpus, SplitPolicy::Adaptive);
        h.controller = Some(SplitController::new(0.2, SPLIT_GAIN));
        let mut gaps = Vec::new();
        let mut now = 0.0;
        for _ in 0..12 {
            let l = h.submit(pt(), &model(), now, &a, &a, spec);
            now = l.output_ready_at;
            let gpu_done = h
                .gpus
                .devices
                .iter()
                .map(|d| d.quiescent_at())
                .fold(0.0, f64::max);
            let pool_done = h.pool.timeline().busy_until();
            gaps.push((gpu_done - pool_done).abs());
        }
        assert!(
            gaps.last().unwrap() < &(0.5 * gaps[0]).max(1e-12),
            "finish-time gap must shrink: {gaps:?}"
        );
    }

    fn merge_task(kernel: MergeKernel, inputs: Vec<(u64, Option<usize>)>) -> MergeTask {
        MergeTask { kernel, inputs }
    }

    #[test]
    fn merge_tasks_spread_across_socket_lanes() {
        // Summit's model has two sockets → two merge lanes; two merges
        // ready at the same instant run socket-parallel, not queued.
        let mut gpus = MultiGpu::new(model(), 2, 1 << 30);
        let mut exec = GpuExecutor::new(&mut gpus, &model());
        assert_eq!(exec.merge_lanes().len(), 2);
        let t = merge_task(MergeKernel::Heap, vec![(50_000, None), (50_000, None)]);
        let l1 = exec.submit_merge(&model(), 0.0, &t);
        let l2 = exec.submit_merge(&model(), 0.0, &t);
        assert_ne!(l1.lane, l2.lane, "second merge takes the free lane");
        assert_eq!(l1.started_at, 0.0);
        assert_eq!(l2.started_at, 0.0);
        assert!((l1.output_ready_at - l1.duration).abs() < 1e-12);
        // A third merge must queue behind one of them.
        let l3 = exec.submit_merge(&model(), 0.0, &t);
        assert!(l3.started_at >= l1.output_ready_at.min(l2.output_ready_at) - 1e-12);
    }

    #[test]
    fn merge_lane_idle_reconciles_with_span_gaps() {
        // One rank per socket (4 ranks/node) → a single merge lane, so
        // the gap between two spans is exactly the reported lane idle.
        let m = MachineModel::summit_ranks_per_node(4);
        assert_eq!(m.sockets, 1);
        let mut gpus = MultiGpu::new(m.clone(), 2, 1 << 30);
        let mut exec = GpuExecutor::new(&mut gpus, &m);
        let t = merge_task(MergeKernel::Hash, vec![(10_000, None); 4]);
        let l1 = exec.submit_merge(&m, 0.0, &t);
        let l2 = exec.submit_merge(&m, l1.output_ready_at + 0.25, &t);
        assert!((l2.started_at - (l1.output_ready_at + 0.25)).abs() < 1e-12);
        assert!((exec.merge_lane_idle() - 0.25).abs() < 1e-12);
        assert_eq!(exec.device_idle(), 0.0, "device streams saw no merges");
        exec.reset_timelines();
        assert_eq!(exec.merge_lane_idle(), 0.0);
    }

    #[test]
    fn remote_socket_inputs_pay_the_crossing_penalty() {
        // Pin the legacy policy: under cost-aware stealing the scheduler
        // would route the all-remote task to its home lane and never pay.
        let m = model();
        let mut gpus = MultiGpu::new(m.clone(), 2, 1 << 30);
        let mut exec = GpuExecutor::new(&mut gpus, &m).with_steal(StealPolicy::Off);
        // Fresh lanes tie on busy_until → lane 0 wins; inputs homed on
        // socket 1 are all remote.
        let local = merge_task(
            MergeKernel::Heap,
            vec![(40_000, Some(0)), (40_000, Some(0))],
        );
        let remote = merge_task(
            MergeKernel::Heap,
            vec![(40_000, Some(1)), (40_000, Some(1))],
        );
        let ll = exec.submit_merge(&m, 0.0, &local);
        assert_eq!(ll.lane, 0);
        assert!(!ll.stolen);
        let mut gpus2 = MultiGpu::new(m.clone(), 2, 1 << 30);
        let mut exec2 = GpuExecutor::new(&mut gpus2, &m).with_steal(StealPolicy::Off);
        let lr = exec2.submit_merge(&m, 0.0, &remote);
        assert_eq!(lr.lane, 0);
        let ratio = lr.duration / ll.duration;
        assert!(
            (ratio - (1.0 + m.xsocket_penalty)).abs() < 1e-9,
            "all-remote inputs scale the merge by 1 + penalty, got {ratio}"
        );
    }

    #[test]
    fn cost_aware_steal_avoids_the_crossing_penalty_on_free_lanes() {
        // Same all-remote task as above, but under the default CostAware
        // policy: lane 1 (the inputs' home) finishes it sooner than the
        // origin pick (lane 0, which would pay the penalty), so lane 1
        // steals it and the span records the steal.
        let m = model();
        let mut gpus = MultiGpu::new(m.clone(), 2, 1 << 30);
        let mut exec = GpuExecutor::new(&mut gpus, &m);
        let remote = merge_task(
            MergeKernel::Heap,
            vec![(40_000, Some(1)), (40_000, Some(1))],
        );
        let l = exec.submit_merge(&m, 0.0, &remote);
        assert_eq!(l.lane, 1, "home lane wins the task");
        assert_eq!(l.origin, 0, "pinning would have picked lane 0");
        assert!(l.stolen);
        let unpenalized = m.merge_lane_time_with(MergeKernel::Heap, 80_000, 2, 0, 2);
        assert!(
            (l.duration - unpenalized).abs() < 1e-12,
            "the steal pays no cross-socket penalty: {} vs {unpenalized}",
            l.duration
        );
    }

    #[test]
    fn cost_aware_refuses_a_steal_that_loses_to_waiting() {
        // Lane 1 (the inputs' home) is deeply backlogged; lane 0 is free.
        // Paying the penalty on lane 0 now beats waiting for lane 1, so
        // the task stays on its origin lane — stealing is cost-gated, not
        // affinity-greedy.
        let m = model();
        let mut gpus = MultiGpu::new(m.clone(), 2, 1 << 30);
        let mut exec = GpuExecutor::new(&mut gpus, &m);
        // Backlog lane 1 with a huge merge homed there.
        let big = merge_task(MergeKernel::Heap, vec![(50_000_000, Some(1)); 2]);
        let lb = exec.submit_merge(&m, 0.0, &big);
        assert_eq!(lb.lane, 1);
        let small = merge_task(MergeKernel::Heap, vec![(40_000, Some(1)); 2]);
        let ls = exec.submit_merge(&m, 0.0, &small);
        assert_eq!(ls.lane, 0, "waiting behind the backlog would lose");
        assert_eq!(ls.origin, 0);
        assert!(!ls.stolen);
        let penalized = m.merge_lane_time_with(MergeKernel::Heap, 80_000, 2, 80_000, 2);
        assert!((ls.duration - penalized).abs() < 1e-12);
    }

    #[test]
    fn cost_aware_tie_breaks_toward_the_smallest_idle_gap() {
        // Both lanes hold jobs; the task becomes ready exactly when the
        // longer lane frees up. Off pins to the shorter backlog (opening
        // an idle gap there); CostAware sees equal completion times and
        // prefers the lane that opens no gap.
        let m = model();
        let t_short = merge_task(MergeKernel::Heap, vec![(10_000, None); 2]);
        let t_long = merge_task(MergeKernel::Heap, vec![(80_000, None); 2]);
        let probe = merge_task(MergeKernel::Heap, vec![(20_000, None); 2]);
        let run = |policy: StealPolicy| {
            let mut gpus = MultiGpu::new(m.clone(), 2, 1 << 30);
            let mut exec = GpuExecutor::new(&mut gpus, &m).with_steal(policy);
            let a = exec.submit_merge(&m, 0.0, &t_long); // lane 0
            let b = exec.submit_merge(&m, 0.0, &t_short); // lane 1
            assert_ne!(a.lane, b.lane);
            let l = exec.submit_merge(&m, a.output_ready_at, &probe);
            (l, exec.merge_lane_idle())
        };
        let (l_off, idle_off) = run(StealPolicy::Off);
        assert_eq!(l_off.lane, 1, "pinning chases the shorter backlog");
        assert!(idle_off > 0.0, "and opens an idle gap there");
        let (l_ca, idle_ca) = run(StealPolicy::CostAware);
        assert_eq!(l_ca.lane, 0, "equal finish → prefer the gapless lane");
        assert!(l_ca.stolen);
        assert_eq!(idle_ca, 0.0);
        assert_eq!(
            l_ca.output_ready_at, l_off.output_ready_at,
            "the steal was free: same completion, less idle"
        );
    }

    #[test]
    fn starved_lane_reconciliation_counts_no_phantom_idle() {
        // Every merge is homed on (and won by) lane 0: lane 1 receives
        // zero tasks, and its empty Timeline must contribute exactly zero
        // to merge_lane_idle — neither under- nor double-counted.
        let m = model();
        let mut gpus = MultiGpu::new(m.clone(), 2, 1 << 30);
        let mut exec = GpuExecutor::new(&mut gpus, &m);
        let t = merge_task(MergeKernel::Heap, vec![(30_000, Some(0)); 2]);
        let mut ready = 0.0;
        let mut spans = Vec::new();
        for _ in 0..4 {
            let l = exec.submit_merge(&m, ready, &t);
            assert_eq!(l.lane, 0, "home lane always wins: lane 1 starves");
            spans.push(l);
            ready = l.output_ready_at + 0.125; // open a real gap each time
        }
        assert_eq!(exec.merge_lanes()[1].jobs(), 0, "lane 1 saw nothing");
        let gaps: f64 = spans
            .windows(2)
            .map(|w| (w[1].started_at - w[0].output_ready_at).max(0.0))
            .sum();
        assert!(
            (exec.merge_lane_idle() - gaps).abs() < 1e-12,
            "idle {} must equal the span gaps {gaps} on the busy lane alone",
            exec.merge_lane_idle()
        );
    }

    #[test]
    fn steal_policy_default_validation_and_names() {
        assert_eq!(StealPolicy::default(), StealPolicy::CostAware);
        for p in StealPolicy::all() {
            assert!(p.validate().is_ok());
        }
        assert_eq!(StealPolicy::Off.name(), "off");
        assert_eq!(StealPolicy::CostAware.name(), "cost-aware");
    }

    #[test]
    fn cpu_pool_sizes_from_model_topology() {
        let m = model();
        let pool = CpuPool::for_model(&m);
        assert_eq!(pool.threads(), m.threads, "workers = sockets × cores");
        assert_eq!(pool.lanes().len(), m.sockets);
        assert_eq!(CpuPool::new().lanes().len(), 1, "legacy pool is flat");
    }

    #[test]
    fn pool_merges_contend_with_spgemm_for_the_lanes() {
        let m = model();
        let a = random_csc(30, 30, 260, 50);
        let mut pool = CpuPool::for_model(&m);
        let k = pool.submit(pt(), &m, 0.0, &a, &a, spec_for(&a, SpgemmKernel::CpuHash));
        // The whole-node kernel holds every lane; a merge ready at 0 can
        // only start once a lane frees up.
        let t = merge_task(MergeKernel::Pairwise, vec![(1000, None), (1000, None)]);
        let l = pool.submit_merge(&m, 0.0, &t);
        assert!(
            (l.started_at - k.output_ready_at).abs() < 1e-12,
            "merge waited for the SpGEMM to release its lane"
        );
        assert_eq!(
            pool.merge_lane_idle(),
            pool.device_idle(),
            "shared lanes: merge-lane idle is the pool idle"
        );
    }

    #[test]
    fn merge_task_accessors() {
        let t = merge_task(
            MergeKernel::Hash,
            vec![(3, Some(0)), (4, None), (5, Some(1))],
        );
        assert_eq!(t.ways(), 3);
        assert_eq!(t.total_elems(), 12);
    }

    #[test]
    fn reset_timelines_clears_idle_accounting() {
        let a = random_csc(20, 20, 120, 48);
        let mut pool = CpuPool::new();
        pool.submit(
            pt(),
            &model(),
            0.0,
            &a,
            &a,
            spec_for(&a, SpgemmKernel::CpuHash),
        );
        pool.submit(
            pt(),
            &model(),
            1e9,
            &a,
            &a,
            spec_for(&a, SpgemmKernel::CpuHash),
        );
        assert!(pool.device_idle() > 0.0);
        pool.reset_timelines();
        assert_eq!(pool.device_idle(), 0.0);
    }

    #[test]
    fn controller_constant_rates_converge_monotonically() {
        // Closed loop against fixed true rates: |f - f*| must never grow,
        // and the fraction must land on the balance point.
        let (rg, rc) = (3.0, 1.0);
        let target = rg / (rg + rc);
        let mut c = SplitController::new(0.1, 0.5);
        let mut err = (c.fraction() - target).abs();
        for _ in 0..64 {
            let f = c.fraction();
            c.observe(f / rg, (1.0 - f) / rc);
            let e = (c.fraction() - target).abs();
            assert!(e <= err + 1e-12, "error grew: {e} > {err}");
            err = e;
        }
        assert!(err < 1e-6, "did not converge: {err}");
    }

    #[test]
    fn controller_skips_one_sided_observations() {
        let mut c = SplitController::new(0.5, 0.5);
        c.observe(0.0, 1.0);
        c.observe(1.0, 0.0);
        c.observe(-1.0, 2.0);
        assert_eq!(c.fraction(), 0.5, "no two-sided signal, no update");
    }

    proptest! {
        /// Any sequence of stage imbalances keeps the fraction in [0, 1].
        #[test]
        fn controller_fraction_always_in_unit_interval(
            initial in -1.0f64..2.0,
            gain in 0.01f64..1.0,
            times in proptest::collection::vec((1e-9f64..1e6, 1e-9f64..1e6), 1..40),
        ) {
            let mut c = SplitController::new(initial, gain);
            prop_assert!((0.0..=1.0).contains(&c.fraction()));
            for (tg, tc) in times {
                c.observe(tg, tc);
                prop_assert!(
                    (0.0..=1.0).contains(&c.fraction()),
                    "fraction escaped: {}", c.fraction()
                );
            }
        }

        /// A constant imbalance (fixed underlying rates) drives the
        /// fraction monotonically toward the balance point.
        #[test]
        fn controller_constant_imbalance_is_monotone(
            initial in 0.0f64..1.0,
            gain in 0.01f64..1.0,
            rg in 0.1f64..100.0,
            rc in 0.1f64..100.0,
        ) {
            let target = (rg / (rg + rc))
                .clamp(ADAPTIVE_MIN_FRACTION, ADAPTIVE_MAX_FRACTION);
            let mut c = SplitController::new(initial, gain);
            let mut prev = (c.fraction() - target).abs();
            // Error contracts by (1 − gain) per step; 2000 steps suffice
            // for even the smallest gain in range.
            for _ in 0..2000 {
                let f = c.fraction();
                c.observe(f / rg, (1.0 - f) / rc);
                let err = (c.fraction() - target).abs();
                prop_assert!(err <= prev + 1e-12, "diverged: {err} > {prev}");
                prev = err;
            }
            prop_assert!(prev < 1e-3, "not converged: {prev}");
        }
    }
}
