//! The kernel-execution layer: every local SpGEMM is an asynchronous
//! launch.
//!
//! The Pipelined Sparse SUMMA scheduler (`pipeline`) never cares *where* a
//! local multiplication runs — it submits the selected kernel to an
//! [`Executor`] and overlaps against the returned [`KernelLaunch`] events.
//! Three executors implement the trait:
//!
//! * [`MultiGpu`] — the paper's configuration (§III-A): GPU kernels run
//!   asynchronously on the devices (the host resumes after the input
//!   transfer), CPU-selected kernels run inline on the host, exactly as
//!   original HipMCL executes them.
//! * [`CpuPool`] — a per-rank worker pool (the rayon thread pool executes
//!   the real kernel) advancing its own [`Timeline`] like a device stream
//!   does, which makes CPU kernels overlappable: "optimized HipMCL on
//!   nodes without accelerators" gains the §III broadcast/merge overlap.
//! * [`Hybrid`] — extends §III-A's multi-GPU column split to the CPU: the
//!   trailing column slab of `B` is multiplied on the worker pool while
//!   the GPUs take the rest, and the output is a trivial `hcat`.
//!
//! All timestamps are virtual seconds on the owning rank's clock; the
//! executors only read the clock value the scheduler passes in and never
//! advance it themselves — waiting (and therefore idle accounting) is the
//! scheduler's job.

use hipmcl_comm::{MachineModel, SpgemmKernel, Timeline};
use hipmcl_gpu::multi::MultiGpu;
use hipmcl_sparse::Csc;
use hipmcl_spgemm::CpuAlgo;

/// Which executor a SUMMA run submits its local multiplications to.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum ExecutorKind {
    /// GPU kernels async on the devices, CPU kernels inline on the host
    /// (the paper's setup and the legacy behaviour).
    #[default]
    Gpus,
    /// Every kernel is an async launch on the per-rank CPU worker pool.
    CpuPool,
    /// Column-split each multiplication across the GPUs and the pool.
    Hybrid {
        /// Fraction of `B`'s columns sent to the GPUs (clamped to [0, 1]).
        gpu_fraction: f64,
    },
}

/// Default GPU share of the hybrid column split. Summit's six V100s
/// out-rate the host cores by a wide margin at high `cf` (Fig. 4), so the
/// pool only takes a sliver; tuning the ratio per-instance is a ROADMAP
/// open item.
pub const DEFAULT_GPU_FRACTION: f64 = 0.85;

impl ExecutorKind {
    /// Hybrid execution with the default GPU share.
    pub fn hybrid() -> Self {
        ExecutorKind::Hybrid {
            gpu_fraction: DEFAULT_GPU_FRACTION,
        }
    }
}

/// One asynchronous local multiplication, as seen by the scheduler.
///
/// The product is real (verified against serial kernels); the timestamps
/// are virtual. A pipelined scheduler resumes the host at
/// `inputs_ready_at`; a bulk-synchronous one waits for `output_ready_at`
/// and counts only `waited − host_compute` as idle (time the host spent
/// computing inline is work, not waiting).
#[derive(Debug)]
pub struct KernelLaunch {
    /// The (real) product `A · B`.
    pub c: Csc<f64>,
    /// The kernel that produced it.
    pub kernel: SpgemmKernel,
    /// Virtual time from which the host may issue the next stage's
    /// broadcasts (inputs handed off / transferred).
    pub inputs_ready_at: f64,
    /// Virtual time at which the output is on the host and mergeable.
    pub output_ready_at: f64,
    /// Host-synchronous compute folded into the launch (inline CPU
    /// kernels); never idle time.
    pub host_compute: f64,
    /// Seconds attributed to the `local_spgemm` stage timer.
    pub kernel_time: f64,
    /// Flops of the multiplication.
    pub flops: u64,
    /// Realized compression factor.
    pub cf: f64,
}

/// A target that local SpGEMM launches are submitted to.
pub trait Executor {
    /// Submits `C = A · B` with the pre-selected `kernel`, starting at
    /// host virtual time `host_now`. `flops` is the exact flop count the
    /// scheduler already derived for kernel selection. Must not advance
    /// any rank clock — the scheduler decides what to wait on.
    fn submit(
        &mut self,
        model: &MachineModel,
        host_now: f64,
        a: &Csc<f64>,
        b: &Csc<f64>,
        kernel: SpgemmKernel,
        flops: u64,
    ) -> KernelLaunch;

    /// GPUs visible to kernel selection (0 keeps selection CPU-only).
    fn gpus_available(&self) -> usize;

    /// Accumulated device/worker idle time — the Table V "GPU idle"
    /// column, read uniformly off the executor's timelines.
    fn device_idle(&self) -> f64;

    /// Resets all internal timelines (between pipeline sections).
    fn reset_timelines(&mut self);
}

/// The CPU algorithm behind a CPU-side kernel selection.
fn cpu_algo(kernel: SpgemmKernel) -> CpuAlgo {
    match kernel {
        SpgemmKernel::CpuHeap => CpuAlgo::Heap,
        SpgemmKernel::CpuSpa => CpuAlgo::Spa,
        _ => CpuAlgo::Hash,
    }
}

impl Executor for MultiGpu {
    fn submit(
        &mut self,
        model: &MachineModel,
        host_now: f64,
        a: &Csc<f64>,
        b: &Csc<f64>,
        kernel: SpgemmKernel,
        flops: u64,
    ) -> KernelLaunch {
        match kernel {
            SpgemmKernel::Gpu(lib) => {
                let r = self
                    .multiply(host_now, a, b, lib)
                    .expect("device OOM: increase phases or use CPU policy");
                KernelLaunch {
                    c: r.c,
                    kernel,
                    inputs_ready_at: r.inputs_transferred_at,
                    output_ready_at: r.output_ready_at,
                    host_compute: 0.0,
                    kernel_time: r.output_ready_at - r.inputs_transferred_at,
                    flops: r.flops,
                    cf: r.cf,
                }
            }
            cpu_kernel => {
                // Inline on the host, as original HipMCL runs CPU kernels:
                // the host is busy (not idle) for the whole duration and
                // cannot issue the next broadcast meanwhile.
                let (c, cf) = cpu_algo(cpu_kernel).multiply_measured(a, b, flops);
                let dur = model.spgemm_time(cpu_kernel, flops, cf);
                KernelLaunch {
                    c,
                    kernel: cpu_kernel,
                    inputs_ready_at: host_now + dur,
                    output_ready_at: host_now + dur,
                    host_compute: dur,
                    kernel_time: dur,
                    flops,
                    cf,
                }
            }
        }
    }

    fn gpus_available(&self) -> usize {
        self.len()
    }

    fn device_idle(&self) -> f64 {
        self.total_idle()
    }

    fn reset_timelines(&mut self) {
        MultiGpu::reset_timelines(self);
    }
}

/// A per-rank CPU worker pool with a device-like virtual timeline.
///
/// The real kernel executes through rayon (the kernels themselves are
/// row-parallel); the modeled duration comes from the machine model's
/// whole-node CPU rate, queued FIFO on the pool's [`Timeline`]. Handing a
/// job to the pool is free for the host — that is what makes a CPU-only
/// configuration pipelinable.
pub struct CpuPool {
    threads: usize,
    workers: Timeline,
}

impl Default for CpuPool {
    fn default() -> Self {
        Self::new()
    }
}

impl CpuPool {
    /// A pool sized to the rayon thread pool of this process.
    pub fn new() -> Self {
        Self {
            threads: rayon::current_num_threads().max(1),
            workers: Timeline::new(),
        }
    }

    /// Worker threads backing the pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The pool's timeline (jobs queued, idle gaps).
    pub fn timeline(&self) -> &Timeline {
        &self.workers
    }
}

impl Executor for CpuPool {
    fn submit(
        &mut self,
        model: &MachineModel,
        host_now: f64,
        a: &Csc<f64>,
        b: &Csc<f64>,
        kernel: SpgemmKernel,
        flops: u64,
    ) -> KernelLaunch {
        // Selection never yields a GPU kernel here (`gpus_available` is
        // 0); a forced GPU request degrades to the hash kernel.
        let cpu_kernel = match kernel {
            SpgemmKernel::Gpu(_) => SpgemmKernel::CpuHash,
            k => k,
        };
        let (c, cf) = cpu_algo(cpu_kernel).multiply_measured(a, b, flops);
        let dur = model.spgemm_time(cpu_kernel, flops, cf);
        let done = self.workers.submit(host_now, dur);
        KernelLaunch {
            c,
            kernel: cpu_kernel,
            inputs_ready_at: host_now,
            output_ready_at: done.at,
            host_compute: 0.0,
            kernel_time: dur,
            flops,
            cf,
        }
    }

    fn gpus_available(&self) -> usize {
        0
    }

    fn device_idle(&self) -> f64 {
        self.workers.idle_time()
    }

    fn reset_timelines(&mut self) {
        self.workers.reset();
    }
}

/// Joint CPU+GPU execution: each GPU-sized multiplication is column-split
/// between the devices (leading columns) and the worker pool (trailing
/// columns), extending §III-A's multi-GPU split by one more "device".
/// CPU-selected (small) multiplications go to the pool whole.
pub struct Hybrid<'g> {
    gpus: &'g mut MultiGpu,
    pool: CpuPool,
    gpu_fraction: f64,
}

impl<'g> Hybrid<'g> {
    /// Wraps the rank's devices; `gpu_fraction` of each `B`'s columns go
    /// to the GPUs, the rest to the worker pool.
    pub fn new(gpus: &'g mut MultiGpu, gpu_fraction: f64) -> Self {
        Self {
            gpus,
            pool: CpuPool::new(),
            gpu_fraction: gpu_fraction.clamp(0.0, 1.0),
        }
    }
}

impl Executor for Hybrid<'_> {
    fn submit(
        &mut self,
        model: &MachineModel,
        host_now: f64,
        a: &Csc<f64>,
        b: &Csc<f64>,
        kernel: SpgemmKernel,
        flops: u64,
    ) -> KernelLaunch {
        let n = b.ncols();
        let gcols = match kernel {
            SpgemmKernel::Gpu(_) if !self.gpus.is_empty() => {
                ((n as f64 * self.gpu_fraction).round() as usize).min(n)
            }
            _ => 0,
        };
        if gcols == 0 {
            return self.pool.submit(model, host_now, a, b, kernel, flops);
        }
        let lib = match kernel {
            SpgemmKernel::Gpu(lib) => lib,
            _ => unreachable!("gcols > 0 only for GPU kernels"),
        };

        let b_gpu = b.column_slice(0..gcols);
        let r = self
            .gpus
            .multiply(host_now, a, &b_gpu, lib)
            .expect("device OOM: increase phases or use CPU policy");

        let mut output_ready_at = r.output_ready_at;
        let mut total_flops = r.flops;
        let mut total_nnz = r.c.nnz() as u64;
        let c = if gcols < n {
            let b_cpu = b.column_slice(gcols..n);
            let flops_cpu = hipmcl_spgemm::flops(a, &b_cpu);
            let (c_cpu, cf_cpu) = CpuAlgo::Hash.multiply_measured(a, &b_cpu, flops_cpu);
            let dur = model.spgemm_time(SpgemmKernel::CpuHash, flops_cpu, cf_cpu);
            let done = self.pool.workers.submit(host_now, dur);
            output_ready_at = output_ready_at.max(done.at);
            total_flops += flops_cpu;
            total_nnz += c_cpu.nnz() as u64;
            Csc::hcat(&[r.c, c_cpu])
        } else {
            r.c
        };
        debug_assert_eq!(total_flops, flops, "split must cover all columns");

        let cf = if total_nnz == 0 {
            1.0
        } else {
            total_flops as f64 / total_nnz as f64
        };
        KernelLaunch {
            c,
            kernel,
            // The host blocks on the GPU input transfers (the pool handoff
            // is free), exactly like the pure multi-GPU path.
            inputs_ready_at: r.inputs_transferred_at,
            output_ready_at,
            host_compute: 0.0,
            kernel_time: output_ready_at - r.inputs_transferred_at,
            flops: total_flops,
            cf,
        }
    }

    fn gpus_available(&self) -> usize {
        self.gpus.len()
    }

    fn device_idle(&self) -> f64 {
        self.gpus.total_idle() + self.pool.workers.idle_time()
    }

    fn reset_timelines(&mut self) {
        self.gpus.reset_timelines();
        self.pool.workers.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmcl_comm::GpuLib;
    use hipmcl_spgemm::testutil::random_csc;

    fn model() -> MachineModel {
        MachineModel::summit()
    }

    fn want(a: &Csc<f64>) -> Csc<f64> {
        hipmcl_spgemm::hash::multiply(a, a)
    }

    #[test]
    fn multigpu_executor_gpu_kernel_is_async() {
        let a = random_csc(30, 30, 260, 41);
        let flops = hipmcl_spgemm::flops(&a, &a);
        let mut gpus = MultiGpu::new(model(), 2, 1 << 30);
        let l = gpus.submit(
            &model(),
            1.0,
            &a,
            &a,
            SpgemmKernel::Gpu(GpuLib::Nsparse),
            flops,
        );
        assert!(l.c.max_abs_diff(&want(&a)) < 1e-9);
        assert!(l.inputs_ready_at > 1.0);
        assert!(
            l.output_ready_at > l.inputs_ready_at,
            "kernel + D2H after transfer"
        );
        assert_eq!(l.host_compute, 0.0);
        assert!((l.kernel_time - (l.output_ready_at - l.inputs_ready_at)).abs() < 1e-12);
    }

    #[test]
    fn multigpu_executor_cpu_kernel_is_host_synchronous() {
        let a = random_csc(30, 30, 260, 42);
        let flops = hipmcl_spgemm::flops(&a, &a);
        let mut gpus = MultiGpu::new(model(), 2, 1 << 30);
        let l = gpus.submit(&model(), 1.0, &a, &a, SpgemmKernel::CpuHash, flops);
        assert!(l.c.max_abs_diff(&want(&a)) < 1e-9);
        assert_eq!(
            l.inputs_ready_at, l.output_ready_at,
            "host blocked for the whole kernel"
        );
        assert!(l.host_compute > 0.0);
        assert!((l.host_compute - (l.output_ready_at - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn cpu_pool_launches_are_async_and_fifo() {
        let a = random_csc(30, 30, 260, 43);
        let flops = hipmcl_spgemm::flops(&a, &a);
        let mut pool = CpuPool::new();
        let l1 = pool.submit(&model(), 1.0, &a, &a, SpgemmKernel::CpuHash, flops);
        assert!(l1.c.max_abs_diff(&want(&a)) < 1e-9);
        assert_eq!(
            l1.inputs_ready_at, 1.0,
            "handoff is free — host resumes at once"
        );
        assert!(l1.output_ready_at > 1.0);
        assert_eq!(l1.host_compute, 0.0);
        // Second job ready immediately queues behind the first.
        let l2 = pool.submit(&model(), 1.0, &a, &a, SpgemmKernel::CpuHeap, flops);
        assert!(l2.output_ready_at > l1.output_ready_at);
        assert_eq!(pool.timeline().jobs(), 2);
        assert_eq!(pool.device_idle(), 0.0, "back-to-back jobs leave no gap");
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn cpu_pool_degrades_gpu_requests_to_hash() {
        let a = random_csc(20, 20, 120, 44);
        let flops = hipmcl_spgemm::flops(&a, &a);
        let mut pool = CpuPool::new();
        let l = pool.submit(
            &model(),
            0.0,
            &a,
            &a,
            SpgemmKernel::Gpu(GpuLib::Nsparse),
            flops,
        );
        assert_eq!(l.kernel, SpgemmKernel::CpuHash);
        assert!(l.c.max_abs_diff(&want(&a)) < 1e-9);
    }

    #[test]
    fn hybrid_splits_and_matches_reference() {
        let a = random_csc(40, 40, 500, 45);
        let flops = hipmcl_spgemm::flops(&a, &a);
        let w = want(&a);
        for frac in [0.0, 0.3, 0.5, 0.85, 1.0] {
            let mut gpus = MultiGpu::new(model(), 3, 1 << 30);
            let mut h = Hybrid::new(&mut gpus, frac);
            let l = h.submit(
                &model(),
                0.0,
                &a,
                &a,
                SpgemmKernel::Gpu(GpuLib::Nsparse),
                flops,
            );
            assert!(l.c.max_abs_diff(&w) < 1e-9, "frac={frac}");
            assert_eq!(l.c.nnz(), w.nnz(), "frac={frac}");
            assert_eq!(l.flops, flops, "frac={frac}");
            assert!(l.output_ready_at >= l.inputs_ready_at, "frac={frac}");
        }
    }

    #[test]
    fn hybrid_sends_cpu_kernels_to_the_pool() {
        let a = random_csc(25, 25, 180, 46);
        let flops = hipmcl_spgemm::flops(&a, &a);
        let mut gpus = MultiGpu::new(model(), 2, 1 << 30);
        let mut h = Hybrid::new(&mut gpus, 0.85);
        let l = h.submit(&model(), 2.0, &a, &a, SpgemmKernel::CpuHeap, flops);
        assert!(l.c.max_abs_diff(&want(&a)) < 1e-9);
        assert_eq!(
            l.inputs_ready_at, 2.0,
            "pool handoff frees the host immediately"
        );
        assert_eq!(h.gpus_available(), 2);
    }

    #[test]
    fn hybrid_without_devices_runs_entirely_on_pool() {
        let a = random_csc(20, 20, 140, 47);
        let flops = hipmcl_spgemm::flops(&a, &a);
        let mut gpus = MultiGpu::new(model(), 0, 1 << 30);
        let mut h = Hybrid::new(&mut gpus, 0.85);
        let l = h.submit(
            &model(),
            0.0,
            &a,
            &a,
            SpgemmKernel::Gpu(GpuLib::Rmerge2),
            flops,
        );
        assert!(l.c.max_abs_diff(&want(&a)) < 1e-9);
        assert_eq!(l.kernel, SpgemmKernel::CpuHash);
    }

    #[test]
    fn executor_kind_default_and_hybrid_preset() {
        assert_eq!(ExecutorKind::default(), ExecutorKind::Gpus);
        match ExecutorKind::hybrid() {
            ExecutorKind::Hybrid { gpu_fraction } => {
                assert_eq!(gpu_fraction, DEFAULT_GPU_FRACTION)
            }
            k => panic!("unexpected {k:?}"),
        }
    }

    #[test]
    fn reset_timelines_clears_idle_accounting() {
        let a = random_csc(20, 20, 120, 48);
        let flops = hipmcl_spgemm::flops(&a, &a);
        let mut pool = CpuPool::new();
        pool.submit(&model(), 0.0, &a, &a, SpgemmKernel::CpuHash, flops);
        pool.submit(&model(), 1e9, &a, &a, SpgemmKernel::CpuHash, flops);
        assert!(pool.device_idle() > 0.0);
        pool.reset_timelines();
        assert_eq!(pool.device_idle(), 0.0);
    }
}
