//! Distributed column pruning: cutoff + top-k selection across the process
//! grid.
//!
//! After expansion, MCL prunes each column of the distributed product.
//! The cutoff is embarrassingly local, but *selection* (keep only the
//! `select` largest entries of each column) needs coordination because a
//! column's entries are spread over the `√P` blocks of one process
//! column. HipMCL "identifies top-k entries in every column by selecting
//! top-k entries in each process and then exchanging these entries with
//! other processes" (§II) — reproduced here: each rank contributes its
//! local top-k candidates per column via an allgather on the column
//! subcommunicator, every rank then derives the same global threshold and
//! prunes locally. Ties at the threshold are granted deterministically in
//! grid-row order, so the global kept count never exceeds `select`.
//!
//! MCL's *recovery* step (`-R`) is also implemented distributedly: when a
//! column keeps too little mass and too few entries after pruning, the
//! largest pruned entries are restored. The recovery set is derived from
//! a second candidate exchange, with every rank walking the identical
//! merged candidate order so the global decision is deterministic.

use crate::distmat::DistMatrix;
use hipmcl_comm::collectives::{allgather, allreduce_sum_vec};
use hipmcl_comm::ProcGrid;
use hipmcl_sparse::colops::{PruneParams, PruneStats};
use hipmcl_sparse::{Csc, Idx, Triples};

/// Applies cutoff + top-`select` pruning to a 2D-distributed matrix.
/// Collective over the grid. Returns the pruned matrix and per-rank stats.
pub fn distributed_prune(
    grid: &ProcGrid,
    c: &DistMatrix,
    params: &PruneParams,
) -> (DistMatrix, PruneStats) {
    let (pruned, stats) = prune_local_slab(&grid.col_comm, &c.local, params);
    (
        DistMatrix {
            local: pruned,
            nrows_global: c.nrows_global,
            ncols_global: c.ncols_global,
        },
        stats,
    )
}

/// Slab-level distributed prune: operates on a column slab whose columns
/// are aligned across the ranks of `col_comm` (each rank holds a block of
/// the same global columns). This is what the MCL driver calls from the
/// per-phase SUMMA hook so expansion and pruning stay fused (§II).
pub fn prune_local_slab(
    col_comm: &hipmcl_comm::Comm,
    m: &Csc<f64>,
    params: &PruneParams,
) -> (Csc<f64>, PruneStats) {
    let ncols = m.ncols();
    let mut stats = PruneStats::default();

    // Global column maxima (for the never-empty guarantee) and the owner
    // of each maximum (lowest grid row wins ties).
    let local_max: Vec<f64> = (0..ncols)
        .map(|j| {
            m.col_vals(j)
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .collect();
    let all_max: Vec<Vec<f64>> = allgather(col_comm, local_max.clone());
    let owner_and_max: Vec<(usize, f64)> = (0..ncols)
        .map(|j| {
            let mut best = (usize::MAX, f64::NEG_INFINITY);
            for (r, v) in all_max.iter().enumerate() {
                if v[j] > best.1 {
                    best = (r, v[j]);
                }
            }
            best
        })
        .collect();

    // Candidate exchange: local top-`select` values per column, sorted
    // descending, cutoff survivors only.
    let my_row = col_comm.rank();
    let local_cands: Vec<Vec<f64>> = (0..ncols)
        .map(|j| {
            let mut v: Vec<f64> = m
                .col_vals(j)
                .iter()
                .copied()
                .filter(|&x| x >= params.cutoff)
                .collect();
            v.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
            v.truncate(params.select);
            v
        })
        .collect();
    let all_cands: Vec<Vec<Vec<f64>>> = allgather(col_comm, local_cands);

    // Survivor counts per column (for select decisions).
    let survivors: Vec<f64> = (0..ncols)
        .map(|j| {
            m.col_vals(j)
                .iter()
                .filter(|&&x| x >= params.cutoff)
                .count() as f64
        })
        .collect();
    let global_survivors = allreduce_sum_vec(col_comm, survivors);

    // Column masses (for recovery decisions).
    let want_recovery = params.recover_num > 0 || params.recover_pct > 0.0;
    let total_mass = if want_recovery {
        let local: Vec<f64> = (0..ncols).map(|j| m.col_vals(j).iter().sum()).collect();
        allreduce_sum_vec(col_comm, local)
    } else {
        Vec::new()
    };

    // Per-column keep decision, applied locally. `kept[j]` collects the
    // locally kept entry indices so recovery can extend them.
    let mut kept: Vec<Vec<usize>> = vec![Vec::new(); ncols];
    for j in 0..ncols {
        let rows = m.col_rows(j);
        let vals = m.col_vals(j);
        if rows.is_empty() {
            continue;
        }
        let (owner, gmax) = owner_and_max[j];
        let survivors_here: Vec<usize> = (0..rows.len())
            .filter(|&k| vals[k] >= params.cutoff)
            .collect();
        stats.pruned_by_cutoff += rows.len() - survivors_here.len();

        if global_survivors[j] == 0.0 {
            // Whole global column fell below the cutoff: the owner of the
            // maximum keeps exactly that entry.
            if owner == my_row {
                let best = (0..vals.len())
                    .max_by(|&a, &b| vals[a].partial_cmp(&vals[b]).unwrap())
                    .unwrap();
                debug_assert_eq!(vals[best], gmax);
                kept[j].push(best);
                stats.pruned_by_cutoff -= 1;
            }
            continue;
        }

        if global_survivors[j] as usize <= params.select {
            kept[j] = survivors_here;
            continue;
        }

        // Global selection threshold from the merged candidate lists —
        // identical on every rank of the process column.
        let mut merged: Vec<f64> = all_cands
            .iter()
            .flat_map(|per_rank| per_rank[j].iter().copied())
            .collect();
        merged.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
        let thr = merged[params.select - 1];

        // Entries strictly above the threshold are always kept; ties are
        // granted to ranks in grid-row order until the quota is filled.
        let gt_by_rank: Vec<usize> = all_cands
            .iter()
            .map(|per_rank| per_rank[j].iter().filter(|&&v| v > thr).count())
            .collect();
        let eq_by_rank: Vec<usize> = all_cands
            .iter()
            .map(|per_rank| per_rank[j].iter().filter(|&&v| v == thr).count())
            .collect();
        let gt_total: usize = gt_by_rank.iter().sum();
        let mut quota = params.select - gt_total;
        let mut my_eq_quota = 0usize;
        for (r, &eq) in eq_by_rank.iter().enumerate() {
            let grant = eq.min(quota);
            if r == my_row {
                my_eq_quota = grant;
            }
            quota -= grant;
        }

        let mut eq_used = 0usize;
        for &k in &survivors_here {
            let v = vals[k];
            if v > thr {
                kept[j].push(k);
            } else if v == thr && eq_used < my_eq_quota {
                kept[j].push(k);
                eq_used += 1;
            }
        }
        stats.pruned_by_select += survivors_here.len() - kept[j].len();
    }

    // Recovery (MCL `-R`): for columns that kept too few entries *and*
    // too little mass, restore the largest pruned entries until either
    // bound is met. A second candidate exchange (pruned entries this
    // time) lets every rank walk the identical merged order.
    if want_recovery {
        let kept_count: Vec<f64> = (0..ncols).map(|j| kept[j].len() as f64).collect();
        let kept_count = allreduce_sum_vec(col_comm, kept_count);
        let kept_mass: Vec<f64> = (0..ncols)
            .map(|j| kept[j].iter().map(|&k| m.col_vals(j)[k]).sum())
            .collect();
        let kept_mass = allreduce_sum_vec(col_comm, kept_mass);

        // Pruned candidates per column (largest first), only for columns
        // that might recover.
        let needs: Vec<bool> = (0..ncols)
            .map(|j| {
                (kept_count[j] as usize) < params.recover_num
                    && kept_mass[j] < params.recover_pct * total_mass[j]
            })
            .collect();
        let my_pruned: Vec<Vec<f64>> = (0..ncols)
            .map(|j| {
                if !needs[j] {
                    return Vec::new();
                }
                let vals = m.col_vals(j);
                let kept_set: std::collections::BTreeSet<usize> = kept[j].iter().copied().collect();
                let mut v: Vec<f64> = (0..vals.len())
                    .filter(|k| !kept_set.contains(k))
                    .map(|k| vals[k])
                    .collect();
                v.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
                v.truncate(params.recover_num);
                v
            })
            .collect();
        let all_pruned: Vec<Vec<Vec<f64>>> = allgather(col_comm, my_pruned);

        for j in 0..ncols {
            if !needs[j] {
                continue;
            }
            // Merge candidates as (value, rank, slot), sorted by value
            // desc with (rank, slot) tie-break — identical on all ranks.
            let mut merged: Vec<(f64, usize, usize)> = Vec::new();
            for (r, per_rank) in all_pruned.iter().enumerate() {
                for (slot, &v) in per_rank[j].iter().enumerate() {
                    merged.push((v, r, slot));
                }
            }
            merged.sort_unstable_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .unwrap()
                    .then(a.1.cmp(&b.1))
                    .then(a.2.cmp(&b.2))
            });
            let start_count = kept_count[j] as usize;
            let mut mass = kept_mass[j];
            let mut take_from_me = 0usize;
            for (taken, &(v, r, _)) in merged.iter().enumerate() {
                if start_count + taken >= params.recover_num
                    || mass >= params.recover_pct * total_mass[j]
                {
                    break;
                }
                mass += v;
                if r == my_row {
                    take_from_me += 1;
                }
            }
            if take_from_me > 0 {
                // Restore my `take_from_me` largest pruned entries.
                let vals = m.col_vals(j);
                let kept_set: std::collections::BTreeSet<usize> = kept[j].iter().copied().collect();
                let mut pruned_idx: Vec<usize> =
                    (0..vals.len()).filter(|k| !kept_set.contains(k)).collect();
                pruned_idx.sort_unstable_by(|&a, &b| vals[b].partial_cmp(&vals[a]).unwrap());
                for &k in pruned_idx.iter().take(take_from_me) {
                    kept[j].push(k);
                }
                stats.recovered += take_from_me;
            }
        }
    }

    let mut out = Triples::new(m.nrows(), ncols);
    for (j, kept_j) in kept.iter_mut().enumerate() {
        kept_j.sort_unstable();
        let rows = m.col_rows(j);
        let vals = m.col_vals(j);
        for &k in kept_j.iter() {
            out.push(rows[k], j as Idx, vals[k]);
        }
    }
    (Csc::from_triples(&out), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmcl_comm::{MachineModel, Universe};
    use hipmcl_sparse::colops;
    use rand::{Rng, SeedableRng};

    fn random_global(n: usize, nnz: usize, seed: u64) -> Triples<f64> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut t = Triples::new(n, n);
        for _ in 0..nnz {
            t.push(
                rng.gen_range(0..n) as Idx,
                rng.gen_range(0..n) as Idx,
                rng.gen_range(0.01..1.0),
            );
        }
        t.sum_duplicates();
        t
    }

    /// Serial reference with identical semantics.
    fn serial_prune(m: &Csc<f64>, p: &PruneParams) -> Csc<f64> {
        colops::prune(m, p).0
    }

    fn check(n: usize, nnz: usize, seed: u64, p: usize, params: PruneParams) {
        let want = serial_prune(&Csc::from_triples(&random_global(n, nnz, seed)), &params);
        let results = Universe::run(p, MachineModel::summit(), move |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_global(n, nnz, seed);
            let c = DistMatrix::from_global(&grid, &g);
            let (pruned, _) = distributed_prune(&grid, &c, &params);
            pruned.gather_to_root(&grid)
        });
        let got = results.into_iter().next().unwrap().unwrap();
        // Values kept must be identical except possibly *which* exact-tie
        // entries survive; compare nnz per column and value multisets.
        assert_eq!(got.nnz(), want.nnz(), "total kept");
        for j in 0..got.ncols() {
            assert_eq!(got.col_nnz(j), want.col_nnz(j), "col {j} count");
            let mut gv: Vec<f64> = got.col_vals(j).to_vec();
            let mut wv: Vec<f64> = want.col_vals(j).to_vec();
            gv.sort_by(|a, b| a.partial_cmp(b).unwrap());
            wv.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(gv, wv, "col {j} values");
        }
    }

    #[test]
    fn matches_serial_cutoff_only() {
        let params = PruneParams {
            cutoff: 0.3,
            select: 1000,
            recover_num: 0,
            recover_pct: 0.0,
        };
        for p in [1usize, 4, 9] {
            check(18, 120, 1, p, params);
        }
    }

    #[test]
    fn matches_serial_with_selection() {
        let params = PruneParams {
            cutoff: 0.05,
            select: 3,
            recover_num: 0,
            recover_pct: 0.0,
        };
        for p in [1usize, 4, 9] {
            check(20, 260, 2, p, params);
        }
    }

    #[test]
    fn column_never_emptied_globally() {
        // Brutal cutoff: every column must still keep exactly its max.
        let params = PruneParams {
            cutoff: 100.0,
            select: 5,
            recover_num: 0,
            recover_pct: 0.0,
        };
        for p in [1usize, 4] {
            check(15, 90, 3, p, params);
        }
    }

    #[test]
    fn selection_bounds_column_counts() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_global(16, 200, 4);
            let c = DistMatrix::from_global(&grid, &g);
            let params = PruneParams {
                cutoff: 0.0,
                select: 2,
                recover_num: 0,
                recover_pct: 0.0,
            };
            let (pruned, _) = distributed_prune(&grid, &c, &params);
            pruned.gather_to_root(&grid)
        });
        let got = results.into_iter().next().unwrap().unwrap();
        for j in 0..got.ncols() {
            assert!(got.col_nnz(j) <= 2, "col {j} kept {}", got.col_nnz(j));
        }
    }

    #[test]
    fn recovery_matches_serial_reference() {
        // Aggressive cutoff forces recovery in most columns.
        let params = PruneParams {
            cutoff: 0.6,
            select: 50,
            recover_num: 4,
            recover_pct: 0.8,
        };
        for p in [1usize, 4, 9] {
            check(18, 220, 6, p, params);
        }
    }

    #[test]
    fn recovery_restores_mass_distributedly() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_global(16, 220, 7);
            let c = DistMatrix::from_global(&grid, &g);
            let no_rec = PruneParams {
                cutoff: 0.6,
                select: 50,
                recover_num: 0,
                recover_pct: 0.0,
            };
            let with_rec = PruneParams {
                cutoff: 0.6,
                select: 50,
                recover_num: 5,
                recover_pct: 0.9,
            };
            let (lean, _) = distributed_prune(&grid, &c, &no_rec);
            let (fat, stats) = distributed_prune(&grid, &c, &with_rec);
            (
                lean.nnz_global(&grid),
                fat.nnz_global(&grid),
                stats.recovered,
            )
        });
        let (lean, fat, _) = results[0];
        assert!(
            fat > lean,
            "recovery must restore entries ({fat} vs {lean})"
        );
        let total_recovered: usize = results.iter().map(|r| r.2).sum();
        assert_eq!(total_recovered as u64, fat - lean);
    }

    mod grid_invariance {
        use super::*;
        use proptest::prelude::*;

        /// Gathers the distributed prune result on a `p`-rank grid.
        fn prune_on_grid(p: usize, t: &Triples<f64>, params: PruneParams) -> Csc<f64> {
            let results = Universe::run(p, MachineModel::summit(), |comm| {
                let grid = ProcGrid::new(comm);
                let c = DistMatrix::from_global(&grid, t);
                let (pruned, _) = distributed_prune(&grid, &c, &params);
                pruned.gather_to_root(&grid)
            });
            results.into_iter().next().unwrap().unwrap()
        }

        proptest! {
            // Each case spins up two universes; keep the count modest.
            #![proptest_config(ProptestConfig::with_cases(8))]

            /// Top-k selection with threshold-straddling duplicate values
            /// must keep the *identical* (row, value) entry set on a 1×1
            /// and a 2×2 grid — not merely equal counts or value
            /// multisets. Values are drawn from a four-element set, so
            /// with a small `select` the selection threshold lands on a
            /// duplicated value in most columns and the tie-grant path
            /// decides who survives; grid-row-order grants walk global
            /// rows in ascending order exactly like the serial scan, so
            /// distribution must not change the outcome.
            #[test]
            fn threshold_straddling_ties_keep_identical_entries_across_grids(
                entries in proptest::collection::vec(
                    (0..12usize, 0..12usize, 0..4u8),
                    30..90,
                ),
                select in 1..4usize,
            ) {
                let mut t = Triples::new(12, 12);
                for &(i, j, v) in &entries {
                    // {0.2, 0.4, 0.6, 0.8}: heavy duplicates, all above
                    // the cutoff so selection (not cutoff) does the work.
                    t.push(i as Idx, j as Idx, 0.2 + 0.2 * v as f64);
                }
                t.sum_duplicates();
                let params = PruneParams {
                    cutoff: 0.1,
                    select,
                    recover_num: 0,
                    recover_pct: 0.0,
                };
                let serial = prune_on_grid(1, &t, params);
                let dist = prune_on_grid(4, &t, params);
                prop_assert_eq!(serial.nnz(), dist.nnz());
                for j in 0..serial.ncols() {
                    prop_assert_eq!(
                        serial.col_rows(j),
                        dist.col_rows(j),
                        "col {} rows", j
                    );
                    prop_assert_eq!(
                        serial.col_vals(j),
                        dist.col_vals(j),
                        "col {} values", j
                    );
                }
            }
        }
    }

    #[test]
    fn stats_are_reported() {
        let results = Universe::run(4, MachineModel::summit(), |comm| {
            let grid = ProcGrid::new(comm);
            let g = random_global(16, 200, 5);
            let c = DistMatrix::from_global(&grid, &g);
            let params = PruneParams {
                cutoff: 0.5,
                select: 2,
                recover_num: 0,
                recover_pct: 0.0,
            };
            let (_, stats) = distributed_prune(&grid, &c, &params);
            stats.pruned_by_cutoff + stats.pruned_by_select
        });
        let total: usize = results.iter().sum();
        assert!(total > 0, "something must have been pruned");
    }
}
